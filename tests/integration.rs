//! Cross-crate integration tests: the applications, the core library,
//! the workload generators, and the baselines working together the way
//! the experiment harness uses them.

use pam::{AugMap, MaxAug, SumAug};
use pam_index::{top_k, InvertedIndex};
use pam_interval::IntervalMap;
use pam_rangetree::RangeTree;

#[test]
fn equation1_range_sum_pipeline() {
    // build -> aug queries -> bulk update -> persistence, end to end
    let pairs = workloads::uniform_pairs(50_000, 1, 200_000);
    let m: AugMap<SumAug<u64, u64>> =
        AugMap::build_with(pairs.clone(), |a: &u64, b: &u64| a.wrapping_add(*b));
    let brute: u64 = pairs.iter().map(|&(_, v)| v).fold(0, u64::wrapping_add);
    assert_eq!(m.aug_val(), brute);

    let lo = 50_000u64;
    let hi = 150_000u64;
    let mut oracle = std::collections::BTreeMap::new();
    for &(k, v) in &pairs {
        oracle
            .entry(k)
            .and_modify(|x: &mut u64| *x = x.wrapping_add(v))
            .or_insert(v);
    }
    let want: u64 = oracle
        .range(lo..=hi)
        .fold(0u64, |s, (_, &v)| s.wrapping_add(v));
    assert_eq!(m.aug_range(&lo, &hi), want);
}

#[test]
fn interval_tree_on_generated_sessions() {
    let sessions = workloads::random_intervals(20_000, 2, 100_000, 500);
    let tree = IntervalMap::from_intervals(sessions.clone());
    let brute = baselines::IntervalList::from_intervals(sessions);
    for p in (0..100_000).step_by(997) {
        assert_eq!(tree.stab(p), brute.stab(p));
        assert_eq!(tree.report_all(p), brute.report_all(p));
    }
}

#[test]
fn range_tree_matches_static_baseline() {
    let pts = workloads::random_points(20_000, 3, 1 << 12);
    // The static baseline keeps duplicate (x,y) points distinct while the
    // PAM tree sums them — compare on deduplicated input.
    let mut dedup = std::collections::BTreeMap::new();
    for &(x, y, w) in &pts {
        *dedup.entry((x, y)).or_insert(0u64) += w;
    }
    let flat: Vec<(u32, u32, u64)> = dedup.iter().map(|(&(x, y), &w)| (x, y, w)).collect();

    let pam_tree = RangeTree::build(flat.clone());
    let static_tree = baselines::StaticRangeTree::build(flat);
    for &(xl, xr, yl, yr) in &workloads::points::query_windows(100, 4, 1 << 12, 0.1) {
        assert_eq!(
            pam_tree.query_sum(xl, xr, yl, yr),
            static_tree.query_sum(xl, xr, yl, yr)
        );
        assert_eq!(
            pam_tree.query_points(xl, xr, yl, yr),
            static_tree.query_points(xl, xr, yl, yr)
        );
    }
}

#[test]
fn inverted_index_over_corpus_with_concurrent_updates() {
    let corpus = workloads::Corpus::generate(workloads::CorpusConfig {
        docs: 500,
        vocab: 2_000,
        doc_len: 80,
        zipf_s: 1.0,
        seed: 4,
    });
    let idx = std::sync::Arc::new(InvertedIndex::build(corpus.triples.clone()));
    let queries = corpus.query_pairs(100, 5);

    // concurrent snapshot queries while the "main" copy merges updates
    let reader = {
        let idx = idx.clone();
        let queries = queries.clone();
        std::thread::spawn(move || {
            queries
                .iter()
                .map(|&(a, b)| top_k(&idx.and_query(a, b), 10).len())
                .sum::<usize>()
        })
    };
    let mut live = idx.as_ref().clone();
    live.merge(vec![(0, 9_999_999, 1)]);
    let before = reader.join().unwrap();
    // re-running the same queries on the snapshot yields the same totals
    let after: usize = queries
        .iter()
        .map(|&(a, b)| top_k(&idx.and_query(a, b), 10).len())
        .sum();
    assert_eq!(before, after);
    assert!(live.posting(0).contains_key(&9_999_999));
}

#[test]
fn baselines_agree_with_pam_on_union() {
    let pa = workloads::uniform_pairs(5_000, 6, 20_000);
    let pb = workloads::uniform_pairs(5_000, 7, 20_000);
    let ma: AugMap<SumAug<u64, u64>> = AugMap::build(pa.clone());
    let mb: AugMap<SumAug<u64, u64>> = AugMap::build(pb.clone());
    let pam_union = ma.union_with(mb, |x, y| x.wrapping_add(*y)).to_vec();

    let sa = baselines::SortedVecMap::from_unsorted(pa.clone());
    let sb = baselines::SortedVecMap::from_unsorted(pb.clone());
    let arr_union = sa.union(&sb, |x, y| x.wrapping_add(y));
    assert_eq!(pam_union, arr_union.as_slice());

    let par_union =
        baselines::par_merge::par_union(sa.as_slice(), sb.as_slice(), |x, y| x.wrapping_add(y));
    assert_eq!(pam_union, par_union);

    let mut ra = baselines::RbTree::new();
    let mut rb = baselines::RbTree::new();
    for &(k, v) in sa.as_slice() {
        ra.insert(k, v);
    }
    for &(k, v) in sb.as_slice() {
        rb.insert(k, v);
    }
    let tree_union = baselines::RbTree::union_by_insertion(&ra, &rb, |x, y| x.wrapping_add(y));
    assert_eq!(pam_union, tree_union.to_vec());
}

#[test]
fn concurrent_structures_agree_on_ycsb_loads() {
    let keys = workloads::distinct_shuffled_keys(20_000, 8, 5);
    let sl = baselines::SkipList::new();
    let bp = baselines::BPlusTree::new();
    let sh = baselines::ShardedMap::default();
    for &k in &keys {
        sl.insert(k, k + 1);
        bp.insert(k, k + 1);
        sh.insert(k, k + 1);
    }
    for &k in workloads::read_probes(2_000, 9, &keys).iter() {
        assert_eq!(sl.get(k), Some(k + 1));
        assert_eq!(bp.get(k), Some(k + 1));
        assert_eq!(sh.get(k), Some(k + 1));
    }
    assert_eq!(sl.len(), keys.len());
    assert_eq!(bp.len(), keys.len());
}

#[test]
fn word_count_with_plain_ordered_map() {
    // OrdMap (NoAug) as a general-purpose ordered map
    let words = ["the", "quick", "the", "fox", "the", "quick"];
    let mut m: pam::OrdMap<String, u64> = pam::OrdMap::new();
    for w in words {
        m.insert_with(w.to_string(), 1, |a, b| a + b);
    }
    assert_eq!(m.get(&"the".to_string()), Some(&3));
    assert_eq!(m.get(&"quick".to_string()), Some(&2));
    assert_eq!(m.len(), 3);
}

#[test]
fn max_aug_top_k_against_sort() {
    let pairs = workloads::uniform_pairs(10_000, 11, 1 << 30);
    let posting: AugMap<MaxAug<u32, u64>> = AugMap::build(
        pairs
            .iter()
            .map(|&(k, v)| ((k % 100_000) as u32, v))
            .collect(),
    );
    let got = top_k(&posting, 25);
    let mut sorted = posting.to_vec();
    sorted.sort_by_key(|&(_, w)| std::cmp::Reverse(w));
    let want_weights: Vec<u64> = sorted.iter().take(25).map(|&(_, w)| w).collect();
    let got_weights: Vec<u64> = got.iter().map(|&(_, w)| w).collect();
    assert_eq!(got_weights, want_weights);
}
