//! The `pam-store` tour: a sensor-metrics service with live ingest,
//! non-blocking analytics, and named historical versions.
//!
//! Run with: `cargo run --release --example versioned_store`

use pam::SumAug;
use pam_store::{StoreConfig, VersionedStore, WriteOp};
use std::sync::Arc;
use std::time::Duration;

// key = (sensor_id << 32) | timestamp, value = reading; SumAug gives us
// O(log n) range *sums* over any key interval for free.
type Metrics = VersionedStore<SumAug<u64, u64>>;

fn key(sensor: u64, t: u64) -> u64 {
    (sensor << 32) | t
}

fn main() {
    let store = Arc::new(Metrics::with_config(StoreConfig {
        batch_window: Duration::from_micros(200), // group-commit window
        ..StoreConfig::default()
    }));

    // --- live ingest: 4 writer threads stream readings --------------------
    let writers: Vec<_> = (0..4u64)
        .map(|sensor| {
            let s = store.clone();
            std::thread::spawn(move || {
                for t in 0..10_000u64 {
                    // all writers' puts coalesce into shared commit batches
                    s.put(key(sensor, t), (sensor + 1) * 10 + t % 7);
                }
                s.flush()
            })
        })
        .collect();

    // --- analytics run concurrently, pinned to a consistent version ------
    let analytics = {
        let s = store.clone();
        std::thread::spawn(move || {
            let mut last = 0;
            for _ in 0..50 {
                let pin = s.pin(); // O(1); never blocks ingest
                let sensor0_sum = pin.map().aug_range(&key(0, 0), &key(0, u32::MAX as u64));
                assert!(sensor0_sum >= last, "sums are monotone under ingest");
                last = sensor0_sum;
                std::thread::sleep(Duration::from_micros(300));
            }
            last
        })
    };

    for w in writers {
        w.join().unwrap();
    }
    let final_sum = analytics.join().unwrap();
    println!("ingest done; last pinned sensor-0 sum: {final_sum}");

    // --- named versions: tag a nightly snapshot ---------------------------
    let nightly = store.tag("nightly");
    println!("tagged version {nightly} as \"nightly\"");

    // keep writing; the tag pins yesterday's view
    store
        .write_batch((0..1000u64).map(|t| WriteOp::Delete(key(0, t))))
        .wait();
    let now = store.pin();
    let then = store.pin_tagged("nightly").expect("tag pinned");
    println!(
        "sensor-0 readings now: {}, in \"nightly\": {}",
        now.map().range(&key(0, 0), &key(0, u32::MAX as u64)).len(),
        then.map().range(&key(0, 0), &key(0, u32::MAX as u64)).len(),
    );
    assert_eq!(
        then.map().range(&key(0, 0), &key(0, u32::MAX as u64)).len(),
        10_000
    );

    // --- observability ----------------------------------------------------
    let stats = store.stats();
    println!("\nstats: {stats}");
    println!(
        "memory: {} KiB across {} live versions (shared nodes counted once)",
        store.memory_bytes() / 1024,
        stats.live_versions
    );
    assert!(stats.mean_batch() > 1.0, "group commit batched writers");
}
