//! Quickstart: the augmented map in five minutes.
//!
//! Builds the paper's Equation-1 map (integer keys/values, sum
//! augmentation) and tours the core interface: construction, point and
//! bulk updates, range sums, set operations, and persistence.
//!
//! Run with: `cargo run --release --example quickstart`

use pam::{AugMap, SumAug};

fn main() {
    // AM(u64, <, u64, u64, (k,v) -> v, +, 0): values summed.
    type M = AugMap<SumAug<u64, u64>>;

    // Parallel bulk construction from unsorted pairs.
    let mut m: M = AugMap::build((0..1_000_000).map(|i| (i, 1)).collect());
    println!("built {} entries", m.len());

    // O(1): the augmented value (sum of all values) is cached at the root.
    assert_eq!(m.aug_val(), 1_000_000);

    // O(log n): range sums without scanning.
    assert_eq!(m.aug_range(&100, &199), 100);
    assert_eq!(m.aug_left(&499_999), 500_000); // keys <= 499_999

    // Point updates are O(log n) and persistent: snapshot first.
    let snapshot = m.clone(); // O(1)
    m.insert(2_000_000, 42);
    m.remove(&0);
    assert_eq!(m.aug_val(), 1_000_000 + 42 - 1);
    assert_eq!(snapshot.aug_val(), 1_000_000); // unchanged

    // Bulk operations run in parallel and are work-optimal.
    let evens: M = AugMap::build((0..1_000_000).map(|i| (i * 2, 10)).collect());
    let union = m.union_with(evens, |a, b| a + b);
    println!(
        "union has {} entries, total {}",
        union.len(),
        union.aug_val()
    );

    // Filter with a predicate on entries (linear work, parallel)...
    let big = union.clone().filter(|&k, _| k >= 1_500_000);
    println!("{} keys >= 1.5M", big.len());

    // ...or extract ranges as first-class maps that share structure.
    let mid = union.range(&250_000, &750_000);
    println!(
        "[250k, 750k] holds {} entries summing to {}",
        mid.len(),
        mid.aug_val()
    );

    // Order statistics come free with the size counters.
    let (k, _) = union.select(union.len() / 2).unwrap();
    println!("median key: {k}");

    println!("quickstart OK");
}
