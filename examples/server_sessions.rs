//! Interval trees (§5.1): "the intervals of times in which users are
//! logged into a site ... is there any user logged in at a given time?"
//!
//! Run with: `cargo run --release --example server_sessions`

use pam_interval::IntervalMap;

fn main() {
    // A day of user sessions: (login, logout) in seconds since midnight.
    let sessions = workloads::random_intervals(500_000, 42, 86_400, 3_600);
    let tree = IntervalMap::from_intervals(sessions.clone());
    println!("indexed {} sessions", tree.len());

    // Stabbing query: anyone online at 03:00? O(log n).
    let t = 3 * 3600;
    println!("03:00 — anyone online? {}", tree.stab(t));

    // Who exactly? report_all costs O(k log(n/k + 1)) for k sessions.
    let online = tree.report_all(t);
    println!("03:00 — {} sessions cover that instant", online.len());

    // Concurrency dashboard: sample the day at 5-minute ticks.
    let peak = (0..288u64)
        .map(|i| {
            let tick = i * 300;
            (tree.count_containing(tick), tick)
        })
        .max()
        .unwrap();
    println!(
        "peak concurrency ~{} sessions at {:02}:{:02}",
        peak.0,
        peak.1 / 3600,
        (peak.1 % 3600) / 60
    );

    // Live updates: a new session logs in; the dashboard snapshot taken
    // earlier is unaffected (persistence).
    let dashboard = tree.clone();
    let mut live = tree;
    live.insert(t - 100, t + 100);
    assert_eq!(live.count_containing(t), dashboard.count_containing(t) + 1);
    println!(
        "after login: live={} dashboard={}",
        live.count_containing(t),
        dashboard.count_containing(t)
    );

    // Bulk session expiry at end of day.
    let expired: Vec<(u64, u64)> = sessions
        .iter()
        .copied()
        .filter(|&(_, logout)| logout <= 43_200)
        .collect();
    let n_expired = expired.len();
    let mut pruned = live.clone();
    for (l, r) in expired {
        pruned.remove(l, r);
    }
    println!(
        "pruned {} morning sessions: {} remain",
        n_expired,
        pruned.len()
    );
}
