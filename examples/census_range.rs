//! 2D range trees (§5.2): "how many users are between 20 and 25 years
//! old and have salaries between $50K and $90K?"
//!
//! Each person is a point (age, salary) with weight 1 (for counting) or
//! a dollar weight (for sums). One nested augmented map answers both.
//!
//! Run with: `cargo run --release --example census_range`

use pam_rangetree::RangeTree;

fn main() {
    // Synthetic census: 300k people. x = age in months, y = salary in $.
    let people: Vec<(u32, u32, u64)> = (0..300_000u64)
        .map(|i| {
            let age_months = (216 + workloads::hash64(i) % 600) as u32; // 18..68y
            let salary = (20_000 + workloads::hash64(i ^ 0xFEED) % 180_000) as u32;
            (age_months, salary, 1) // weight 1: counting
        })
        .collect();

    let counts = RangeTree::build(people.clone());
    println!("indexed {} people", counts.len());

    // The paper's intro query: age in [20, 25], salary in [$50K, $90K].
    let hits = counts.query_sum(20 * 12, 25 * 12, 50_000, 90_000);
    println!("20-25 years & $50K-$90K: {hits} people");

    // A salary-weighted view of the same data answers payroll questions.
    let payroll = RangeTree::build(people.iter().map(|&(a, s, _)| (a, s, s as u64)).collect());
    let total = payroll.query_sum(30 * 12, 40 * 12, 0, u32::MAX);
    let n = counts.query_sum(30 * 12, 40 * 12, 0, u32::MAX);
    println!(
        "30-40 years: {} people, mean salary ${:.0}",
        n,
        total as f64 / n as f64
    );

    // Report-all materializes the matching points (O(k + log^2 n)).
    let sample = counts.query_points(65 * 12, 66 * 12, 150_000, u32::MAX);
    println!("{} high earners aged 65-66; first few:", sample.len());
    for (age, salary, _) in sample.iter().take(3) {
        println!("  age {:.1}y, ${salary}", *age as f64 / 12.0);
    }

    // Snapshots are O(1): hand the tree to concurrent dashboard threads.
    let snap = counts.clone();
    let handles: Vec<_> = (0..4)
        .map(|decade| {
            let t = snap.clone();
            std::thread::spawn(move || {
                let lo = (20 + decade * 10) * 12u32;
                (decade, t.query_sum(lo, lo + 119, 0, u32::MAX))
            })
        })
        .collect();
    for h in handles {
        let (d, c) = h.join().unwrap();
        println!("ages {}-{}: {c}", 20 + d * 10, 29 + d * 10);
    }
}
