//! Weighted inverted index (§5.3): a miniature search engine supporting
//! and/or queries with top-k ranking, built over a Zipfian corpus.
//!
//! Run with: `cargo run --release --example search_engine`

use pam_index::{top_k, InvertedIndex};
use workloads::{Corpus, CorpusConfig};

fn main() {
    // Generate a synthetic corpus (stand-in for the paper's Wikipedia
    // dump; word frequencies follow a Zipf law like natural text).
    let corpus = Corpus::generate(CorpusConfig {
        docs: 20_000,
        vocab: 50_000,
        doc_len: 150,
        zipf_s: 1.0,
        seed: 2024,
    });
    println!(
        "corpus: {} docs, {} tokens, {} word vocabulary",
        corpus.config.docs,
        corpus.tokens(),
        corpus.config.vocab
    );

    let idx = InvertedIndex::build(corpus.triples.clone());
    println!("index: {} distinct terms", idx.num_terms());

    // A two-word AND query with top-10 ranking. Weights combine on
    // intersection; the max-augmentation makes top-k cheap.
    let (w1, w2) = (3u32, 17u32); // two common words
    let and = idx.and_query(w1, w2);
    println!("\"{w1} AND {w2}\": {} matching docs; top 5:", and.len());
    for (doc, score) in top_k(&and, 5) {
        println!("  doc {doc} (score {score})");
    }

    // OR broadens, AND-NOT excludes.
    let or = idx.or_query(w1, w2);
    let not = idx.and_not_query(w1, w2);
    println!(
        "\"{w1} OR {w2}\": {} docs; \"{w1} NOT {w2}\": {} docs",
        or.len(),
        not.len()
    );

    // Many "users" querying concurrently: each works on an O(1) snapshot
    // of the shared index and builds its own persistent result maps —
    // the paper's snapshot-isolation story.
    let shared = std::sync::Arc::new(idx);
    let queries = corpus.query_pairs(10_000, 7);
    let start = std::time::Instant::now();
    let handles: Vec<_> = (0..4)
        .map(|t| {
            let idx = shared.clone();
            let qs = queries.clone();
            std::thread::spawn(move || {
                qs.iter()
                    .skip(t)
                    .step_by(4)
                    .map(|&(a, b)| top_k(&idx.and_query(a, b), 10).len())
                    .sum::<usize>()
            })
        })
        .collect();
    let results: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
    println!(
        "4 threads answered {} and+top10 queries ({} results) in {:.2?}",
        queries.len(),
        results,
        start.elapsed()
    );

    // Incremental crawl: merge a new batch of documents; concurrent
    // readers holding the old snapshot are unaffected.
    let snapshot = shared.as_ref().clone();
    let mut live = shared.as_ref().clone();
    live.merge(vec![(3, 1_000_000, 999_999), (17, 1_000_000, 999_998)]);
    let new_top = top_k(&live.and_query(3, 17), 1);
    println!(
        "after crawl: new best doc for \"3 AND 17\" is {:?} (old snapshot top: {:?})",
        new_top.first(),
        top_k(&snapshot.and_query(3, 17), 1).first()
    );
}
