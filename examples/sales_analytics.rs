//! The paper's introductory motivating example: a database of sales
//! receipts, keyed by time of sale, analyzed with augmented range sums.
//!
//! "consider a database of sales receipts keeping the value of each sale
//! ordered by the time of sale ... quickly query the sum or maximum of
//! sales during a period of time ... reporting the sales above a
//! threshold in O(k log(n/k + 1)) time if the augmentation is the
//! maximum of sales."
//!
//! Run with: `cargo run --release --example sales_analytics`

use pam::{AugMap, MaxAug, SumAug};

type Timestamp = u64;
type Cents = u64;

fn main() {
    // One year of synthetic sales: ~3 per minute.
    let receipts: Vec<(Timestamp, Cents)> = (0..1_500_000u64)
        .map(|i| {
            let t = i * 21 + workloads::hash64(i) % 20; // seconds since Jan 1
            let amount = 100 + workloads::hash64(i ^ 0xCAFE) % 50_000; // cents
            (t, amount)
        })
        .collect();

    // Two augmented views over the same data: sum and max of sales.
    let by_sum: AugMap<SumAug<Timestamp, Cents>> =
        AugMap::build_with(receipts.clone(), |a, b| a + b);
    let by_max: AugMap<MaxAug<Timestamp, Cents>> = AugMap::build(receipts.clone());

    const DAY: u64 = 86_400;
    let (day_lo, day_hi) = (100 * DAY, 101 * DAY - 1);

    // Total revenue for day 100 — O(log n), no scan.
    let revenue = by_sum.aug_range(&day_lo, &day_hi);
    println!("day-100 revenue: ${:.2}", revenue as f64 / 100.0);

    // Largest single sale that day — same query on the max view.
    let biggest = by_max.aug_range(&day_lo, &day_hi);
    println!("day-100 biggest sale: ${:.2}", biggest as f64 / 100.0);

    // All sales above a threshold, via aug_filter: prunes every subtree
    // whose max is below the threshold, so the cost scales with the
    // output size, not the database size.
    let threshold = 49_900;
    let big_sales = by_max.aug_filter(|&max| max > threshold);
    println!(
        "{} sales above ${:.2} (out of {})",
        big_sales.len(),
        threshold as f64 / 100.0,
        by_max.len()
    );

    // Weekly report: mapReduce over a range extraction.
    let week = by_sum.range(&(100 * DAY), &(107 * DAY));
    let (count, total) = (week.len(), week.aug_val());
    println!(
        "week from day 100: {count} sales, ${:.2}, avg ${:.2}",
        total as f64 / 100.0,
        total as f64 / count as f64 / 100.0
    );

    // End-of-day bulk load: yesterday's receipts arrive as a batch.
    let mut live = by_sum.clone(); // snapshot for the analysts
    let batch: Vec<(Timestamp, Cents)> = (0..10_000u64)
        .map(|i| (366 * DAY + i * 8, 100 + workloads::hash64(i) % 9_000))
        .collect();
    live.multi_insert_with(batch, |a, b| a + b);
    println!(
        "after nightly load: {} receipts (analyst snapshot still {})",
        live.len(),
        by_sum.len()
    );
}
