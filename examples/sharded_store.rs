//! The sharded-store tour: write parallelism across N independent roots.
//!
//! Walks the full lifecycle — hash-partitioned writes through N
//! group-commit pipelines, merged range scans, a consistent cross-shard
//! snapshot, and a durable restart where every shard recovers its own
//! WAL directory.
//!
//! Run with: `cargo run --release --example sharded_store`

use pam::SumAug;
use pam_store::{DurabilityConfig, DurableShardedStore, ShardedConfig, ShardedStore, StoreConfig};
use std::fs;
use std::time::Duration;

type Accounts = ShardedStore<SumAug<u64, u64>>;
type Ledger = DurableShardedStore<SumAug<u64, u64>>;

fn config(shards: usize) -> ShardedConfig {
    ShardedConfig {
        shards,
        store: StoreConfig {
            batch_window: Duration::from_micros(100),
            ..StoreConfig::default()
        },
    }
}

fn main() {
    // --- 1. in-memory: N committers, one keyspace ------------------------
    let store = std::sync::Arc::new(Accounts::with_config(config(4)));
    let writers: Vec<_> = (0..4u64)
        .map(|w| {
            let s = store.clone();
            std::thread::spawn(move || {
                for i in 0..5_000u64 {
                    // keys hash across all 4 shards regardless of writer
                    s.put(w * 100_000 + i, 1);
                }
                s.flush()
            })
        })
        .collect();
    for w in writers {
        w.join().unwrap();
    }
    assert_eq!(store.len(), 20_000);
    let stats = store.stats();
    println!("after ingest:  {stats}");
    for (i, per) in store.stats_per_shard().iter().enumerate() {
        println!(
            "  shard {i}:     {} commits, {} ops",
            per.commits, per.raw_ops
        );
    }

    // merged range scan: globally key-ordered despite hash partitioning
    let first: Vec<u64> = {
        let mut keys = Vec::new();
        store.range_for_each(&0, &u64::MAX, |&k, _| {
            if keys.len() < 5 {
                keys.push(k)
            }
        });
        keys
    };
    assert_eq!(first, vec![0, 1, 2, 3, 4]);
    // augmented sum combines across shards (commutative monoid)
    assert_eq!(store.aug_val(), 20_000);

    // --- 2. consistent cross-shard snapshot ------------------------------
    let snap = store.snapshot();
    store.put_all((0..100u64).map(|k| (k, 1000))).wait();
    assert_eq!(snap.get(&0), Some(1), "snapshot frozen at its cut");
    assert_eq!(store.get(&0), Some(1000), "live store moved on");
    println!("snapshot:      version vector {:?}", snap.version_vector());
    drop(snap);

    // --- 3. durable: per-shard WAL dirs, recovered independently ---------
    let dir = std::env::temp_dir().join(format!("pam-sharded-demo-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    let ledger = Ledger::open(&dir, config(4), DurabilityConfig::default()).expect("open");
    ledger.put_all((0..2_000u64).map(|k| (k, k % 97))).wait();
    let epochs = ledger.checkpoint().expect("checkpoint every shard");
    println!(
        "durable:       {} shards checkpointed at epochs {epochs:?}",
        epochs.len()
    );
    drop(ledger); // clean shutdown: every shard drains and flushes

    let ledger = Ledger::open(&dir, config(4), DurabilityConfig::default()).expect("reopen");
    assert_eq!(ledger.len(), 2_000);
    println!(
        "recovered:     {} entries across {} shards ({} checkpoint entries total)",
        ledger.len(),
        ledger.num_shards(),
        ledger
            .recovery()
            .iter()
            .map(|r| r.checkpoint_entries)
            .sum::<u64>(),
    );
    // a 4-shard directory refuses to open as 8 shards: the hash routing
    // is part of the on-disk format
    drop(ledger);
    let err = Ledger::open(&dir, config(8), DurabilityConfig::default())
        .expect_err("shard-count mismatch must be refused");
    println!("mismatch:      refused as expected: {err}");

    let _ = fs::remove_dir_all(&dir);
    println!("ok");
}
