//! The `pam-wal` tour: a key-value service that survives restarts.
//!
//! Walks the full durability lifecycle — logged writes, a non-blocking
//! checkpoint, clean restart, and a simulated crash (torn WAL record) —
//! against a `DurableStore`.
//!
//! Run with: `cargo run --release --example durable_store`

use pam::SumAug;
use pam_store::{DurabilityConfig, DurableStore, StoreConfig, SyncPolicy};
use std::fs;
use std::io::Write as _;
use std::time::Duration;

type Ledger = DurableStore<SumAug<u64, u64>>;

fn open(dir: &std::path::Path) -> Ledger {
    Ledger::open(
        dir,
        StoreConfig {
            batch_window: Duration::from_micros(100),
            ..StoreConfig::default()
        },
        DurabilityConfig {
            sync: SyncPolicy::SyncEachEpoch, // acked == on disk
            segment_bytes: 64 << 10,         // small segments for the demo
            ..DurabilityConfig::default()
        },
    )
    .expect("open durable store")
}

fn main() {
    let dir = std::env::temp_dir().join(format!("pam-durable-demo-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);

    // --- 1. a fresh store: writes are logged before they are acked ------
    let store = open(&dir);
    let accounts = 4u64;
    let writers: Vec<_> = (0..accounts)
        .map(|acct| {
            let s = store.handle(); // Arc handle; same logged pipeline
            std::thread::spawn(move || {
                for t in 0..2_000u64 {
                    s.put(acct * 10_000 + t, acct + 1);
                }
                s.flush()
            })
        })
        .collect();
    for w in writers {
        w.join().unwrap();
    }
    let stats = store.stats();
    println!("after ingest:  {stats}");
    assert_eq!(store.len() as u64, accounts * 2_000);
    // group commit amortizes the log: far fewer records than writes
    assert!(stats.durability.wal_records < stats.raw_ops);

    // --- 2. checkpoint: stream a pinned snapshot, truncate the log ------
    let ckpt_epoch = store.checkpoint().expect("checkpoint");
    println!(
        "checkpoint at wal epoch {ckpt_epoch}: {}",
        store.stats().durability
    );
    drop(store); // clean shutdown (drains + flushes)

    // --- 3. restart: bulk-load the checkpoint, replay the newer log -----
    let store = open(&dir);
    let rec = store.recovery().clone();
    println!(
        "recovered:     {} entries from checkpoint (epoch {}), {} epochs replayed",
        rec.checkpoint_entries, rec.checkpoint_epoch, rec.replayed_epochs
    );
    assert_eq!(store.len() as u64, accounts * 2_000);
    let balance_acct0 = store.aug_range(&0, &9_999);
    assert_eq!(balance_acct0, 2_000); // account 0 wrote 2000 × value 1

    // --- 4. crash: write, then tear the last WAL record -----------------
    store.put(777_777, 42).wait();
    drop(store);
    let torn_segment = fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| {
            let p = e.unwrap().path();
            p.extension().is_some_and(|x| x == "seg").then_some(p)
        })
        .max()
        .expect("a WAL segment");
    let mut f = fs::OpenOptions::new()
        .append(true)
        .open(&torn_segment)
        .unwrap();
    // a frame header promising 64 bytes, followed by... nothing much
    f.write_all(&[64, 0, 0, 0, 0xde, 0xad, 0xbe, 0xef, 1, 2, 3])
        .unwrap();
    drop(f);

    let store = open(&dir);
    println!(
        "after torn-tail crash: recovered len {} (torn record discarded cleanly)",
        store.len()
    );
    assert_eq!(
        store.get(&777_777),
        Some(42),
        "acked write survived the tear"
    );

    println!("\nfinal stats:   {}", store.stats());
    drop(store);
    let _ = fs::remove_dir_all(&dir);
    println!("ok");
}
