//! # pam-repro — workspace root
//!
//! Reproduction of **"PAM: Parallel Augmented Maps"** (Sun, Ferizovic,
//! Blelloch; PPoPP 2018). This root package exists to host the runnable
//! examples (`examples/`) and the cross-crate integration tests
//! (`tests/`); the library code lives in the workspace crates:
//!
//! * [`pam`] — the core augmented-map library,
//! * [`pam_store`] — the versioned snapshot store / group-commit
//!   serving layer,
//! * [`parlay`] — the parallel-primitives substrate,
//! * [`pam_interval`], [`pam_rangetree`], [`pam_index`] — the paper's
//!   three example applications,
//! * [`baselines`] — every comparison structure of §6,
//! * [`workloads`] — deterministic input generators.
//!
//! See README.md for the tour and EXPERIMENTS.md for paper-vs-measured
//! results.

pub use baselines;
pub use pam;
pub use pam_index;
pub use pam_interval;
pub use pam_rangetree;
pub use pam_store;
pub use parlay;
pub use workloads;
