//! The `pam-serve` binary: a durable sharded store behind TCP.
//!
//! ```text
//! pam-serve --dir DIR [--addr 127.0.0.1:7878] [--shards 4] [--workers 4]
//!           [--sync each|none|every:N|bytes:N] [--batch-window-us 200]
//!           [--obs-addr ADDR]
//! ```
//!
//! Prints `pam-serve listening on ADDR` once serving (and `obs listening
//! on ADDR` when telemetry is bound) — scripts bind port 0 and read the
//! real address back from stdout. Runs until stdin reaches EOF, then
//! drains gracefully (stop accepting, finish + ack in-flight requests,
//! flush every epoch, drop pins) and prints `pam-serve drained`.

use pam::NoAug;
use pam_serve::{serve, ServeConfig};
use pam_store::{DurabilityConfig, DurableShardedStore, ShardedConfig, SyncPolicy};
use std::io::{self, Read};
use std::process::exit;
use std::sync::Arc;
use std::time::Duration;

type Spec = NoAug<Vec<u8>, Vec<u8>>;

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn parse_sync(s: &str) -> Result<SyncPolicy, String> {
    match s {
        "each" => Ok(SyncPolicy::SyncEachEpoch),
        "none" => Ok(SyncPolicy::NoSync),
        _ => {
            if let Some(n) = s.strip_prefix("every:") {
                n.parse()
                    .map(SyncPolicy::SyncEveryN)
                    .map_err(|e| format!("--sync every:N: {e}"))
            } else if let Some(n) = s.strip_prefix("bytes:") {
                n.parse()
                    .map(SyncPolicy::SyncEveryBytes)
                    .map_err(|e| format!("--sync bytes:N: {e}"))
            } else {
                Err(format!("unknown --sync policy: {s}"))
            }
        }
    }
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().collect();
    let dir = flag(&args, "--dir").ok_or("--dir DIR is required")?;
    let addr = flag(&args, "--addr").unwrap_or_else(|| "127.0.0.1:7878".into());
    let shards: usize = flag(&args, "--shards")
        .map(|s| s.parse().map_err(|e| format!("--shards: {e}")))
        .transpose()?
        .unwrap_or(4);
    let workers: usize = flag(&args, "--workers")
        .map(|s| s.parse().map_err(|e| format!("--workers: {e}")))
        .transpose()?
        .unwrap_or(4);
    let window_us: u64 = flag(&args, "--batch-window-us")
        .map(|s| s.parse().map_err(|e| format!("--batch-window-us: {e}")))
        .transpose()?
        .unwrap_or(200);
    let sync = flag(&args, "--sync")
        .map(|s| parse_sync(&s))
        .transpose()?
        .unwrap_or(SyncPolicy::SyncEachEpoch);

    let cfg = ShardedConfig::builder()
        .shards(shards)
        .batch_window(Duration::from_micros(window_us))
        .build();
    let mut dur = DurabilityConfig::builder().sync(sync);
    if let Some(obs) = flag(&args, "--obs-addr") {
        dur = dur.obs_addr(obs);
    }

    let store = Arc::new(
        DurableShardedStore::<Spec>::open(&dir, cfg, dur.build())
            .map_err(|e| format!("open {dir}: {e}"))?,
    );
    let mut server = serve(
        Arc::clone(&store),
        addr.as_str(),
        ServeConfig {
            workers,
            ..ServeConfig::default()
        },
    )
    .map_err(|e| format!("bind {addr}: {e}"))?;

    println!("pam-serve listening on {}", server.local_addr());
    if let Some(obs) = store.obs_addr() {
        println!("obs listening on {obs}");
    }

    // Serve until our stdin reaches EOF (the supervisor closing the pipe
    // is the shutdown signal — same trick as `cat`), then drain.
    let mut sink = [0u8; 4096];
    let mut stdin = io::stdin().lock();
    while matches!(stdin.read(&mut sink), Ok(n) if n > 0) {}
    drop(stdin);

    println!("pam-serve draining");
    server.drain();
    drop(server);
    drop(store); // closes WALs, telemetry endpoint, releases the dir lock
    println!("pam-serve drained");
    Ok(())
}

fn main() {
    if let Err(e) = run() {
        eprintln!("pam-serve: {e}");
        exit(1);
    }
}
