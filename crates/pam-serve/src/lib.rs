//! # pam-serve — a network front end over the unified `Store` API
//!
//! PAM's headline result (Sun, Ferizovic & Blelloch, PPoPP 2018) is that
//! batched bulk operations over a purely functional tree scale with
//! parallelism. This crate is the production embodiment of that claim: a
//! TCP server whose request path funnels every connection's writes into
//! the store's **group-commit pipeline** — thousands of concurrent
//! writers coalesce into few epochs, each applied with one work-optimal
//! `multi_insert` — while reads run lock-free off O(1) pinned snapshots
//! (the multi-version access pattern of the augmented-maps queries
//! paper, arXiv 1803.08621).
//!
//! * [`wire`] — the length-prefixed binary protocol, reusing the WAL's
//!   frame layout (`[len | crc32 | payload]`) and [`pam_wal::Codec`]
//!   varint encoding, with hostile-input caps the on-disk reader does
//!   not need.
//! * [`server`] — a hand-rolled threaded accept loop (std `TcpListener`,
//!   bounded worker pool — the `pam_obs::ObsServer` idiom, no async
//!   runtime), generic over [`pam_store::StoreRead`] +
//!   [`pam_store::StoreWrite`]; includes the graceful-drain protocol.
//! * [`client`] — a small blocking client used by `ycsb --remote` and
//!   the integration tests.
//!
//! The binary (`pam-serve`) serves a
//! [`pam_store::DurableShardedStore`]`<NoAug<Vec<u8>, Vec<u8>>>`: opaque
//! byte keys/values, per-shard WALs, cross-shard atomic batches, and an
//! optional `--obs-addr` telemetry endpoint. It drains gracefully when
//! its stdin reaches EOF.

#![warn(missing_docs)]

pub mod client;
pub mod server;
pub mod wire;

pub use client::{Ack, Client};
pub use server::{serve, ServeConfig, Server};
pub use wire::{Request, Response, WireOp};
