//! The threaded accept loop and request dispatcher.
//!
//! Same shape as `pam_obs::ObsServer`: a `std::net::TcpListener`, a named
//! acceptor thread, and a shutdown flag woken by a self-connect — no async
//! runtime. Accepted connections flow through a bounded channel to a fixed
//! pool of worker threads; each worker serves one connection to completion
//! (requests on a connection are strictly ordered, which is what gives a
//! session read-your-writes against the live store: its `put` ack returns
//! only after the epoch is published).
//!
//! The server is generic over the unified store API
//! ([`StoreRead`] + [`StoreWrite`]), so the same dispatcher serves an
//! in-memory [`pam_store::ShardedStore`] in tests and a
//! [`pam_store::DurableShardedStore`] in production.
//!
//! ## Drain protocol
//!
//! [`Server::drain`] (also run on drop):
//! 1. set the drain flag and self-connect to pop the acceptor out of
//!    `accept()` — no new connections from here on;
//! 2. half-close (`Shutdown::Read`) every live connection: a worker
//!    blocked in a read sees EOF and exits after finishing — and
//!    *replying to* — its in-flight request;
//! 3. join the workers, then flush the store (every accepted epoch
//!    commits — and, on a durable store, hits the log) and drop all
//!    named snapshot pins so the version registry can prune.

use crate::wire::{
    decode_message, read_frame_capped, write_message, Request, Response, WireOp, MAX_FRAME,
    MAX_SCAN,
};
use pam::AugSpec;
use pam_store::api::{StoreRead, StoreSnapshot, StoreWrite, WriteTicket};
use pam_store::WriteOp;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver};
use std::sync::Arc;
use std::thread::{self, JoinHandle};

/// Server tuning knobs.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Worker threads (each serves one connection at a time, so this is
    /// also the concurrent-connection limit; further accepted
    /// connections queue).
    pub workers: usize,
    /// Accepted connections that may queue for a free worker before the
    /// acceptor blocks.
    pub backlog: usize,
    /// Maximum accepted frame payload in bytes (see
    /// [`crate::wire::read_frame_capped`]).
    pub max_frame: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 4,
            backlog: 64,
            max_frame: MAX_FRAME,
        }
    }
}

/// A running server. Dropping it drains gracefully ([`Server::drain`]).
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    on_drain: Option<Box<dyn FnOnce() + Send>>,
}

/// State shared between the acceptor, the workers, and `drain`.
struct Shared {
    draining: AtomicBool,
    /// Live connections by id (a `try_clone` of each worker's stream),
    /// so drain can half-close readers that are blocked mid-`read`.
    conns: Mutex<HashMap<u64, TcpStream>>,
}

/// Bind `addr` and serve `store` until [`Server::drain`] (or drop).
///
/// Writes feed the store's group-commit pipeline — concurrent
/// connections' puts coalesce into shared epochs — and each is acked
/// only once its ticket resolves. Reads run lock-free off pinned
/// snapshots. `Pin`/`UsePin` give sessions a named epoch-fenced snapshot
/// for repeatable reads.
///
/// # Errors
///
/// Propagates the bind failure.
pub fn serve<S, T>(store: Arc<T>, addr: impl ToSocketAddrs, cfg: ServeConfig) -> io::Result<Server>
where
    S: AugSpec<K = Vec<u8>, V = Vec<u8>>,
    T: StoreRead<S> + StoreWrite<S> + Send + Sync + 'static,
    T::Snapshot: Send + Sync + 'static,
{
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let shared = Arc::new(Shared {
        draining: AtomicBool::new(false),
        conns: Mutex::new(HashMap::new()),
    });
    let pins: Arc<Mutex<HashMap<String, Arc<T::Snapshot>>>> = Arc::new(Mutex::new(HashMap::new()));

    let (tx, rx) = sync_channel::<(u64, TcpStream)>(cfg.backlog.max(1));
    let rx = Arc::new(Mutex::new(rx));

    let workers = (0..cfg.workers.max(1))
        .map(|i| {
            let rx = Arc::clone(&rx);
            let store = Arc::clone(&store);
            let shared = Arc::clone(&shared);
            let pins = Arc::clone(&pins);
            let max_frame = cfg.max_frame;
            thread::Builder::new()
                .name(format!("pam-serve-worker-{i}"))
                .spawn(move || worker_loop(rx, store, shared, pins, max_frame))
        })
        .collect::<io::Result<Vec<_>>>()?;

    let acceptor = {
        let shared = Arc::clone(&shared);
        thread::Builder::new()
            .name("pam-serve-accept".into())
            .spawn(move || {
                let mut next_id = 0u64;
                // `tx` lives (only) here: when the acceptor exits, the
                // channel closes and idle workers wake up and exit.
                for stream in listener.incoming() {
                    if shared.draining.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let id = next_id;
                    next_id += 1;
                    if let Ok(clone) = stream.try_clone() {
                        shared.conns.lock().insert(id, clone);
                    }
                    if tx.send((id, stream)).is_err() {
                        break;
                    }
                }
            })?
        // a failed spawn drops `tx` with this scope, so the already
        // spawned workers wake on the closed channel and exit
    };

    let on_drain: Box<dyn FnOnce() + Send> = {
        let pins = Arc::clone(&pins);
        Box::new(move || {
            store.flush();
            pins.lock().clear();
        })
    };

    Ok(Server {
        addr: local,
        shared,
        acceptor: Some(acceptor),
        workers,
        on_drain: Some(on_drain),
    })
}

impl Server {
    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Gracefully drain: stop accepting, let in-flight requests finish
    /// and be acked, flush every submitted epoch, drop all named pins.
    /// Idempotent; also runs on drop.
    pub fn drain(&mut self) {
        let Some(acceptor) = self.acceptor.take() else {
            return;
        };
        self.shared.draining.store(true, Ordering::SeqCst);
        // pop the acceptor out of accept()
        let _ = TcpStream::connect(self.addr);
        let _ = acceptor.join();
        // half-close live connections: blocked reads see EOF, in-flight
        // responses can still be written
        for stream in self.shared.conns.lock().values() {
            let _ = stream.shutdown(Shutdown::Read);
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        if let Some(f) = self.on_drain.take() {
            f();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.drain();
    }
}

fn worker_loop<S, T>(
    rx: Arc<Mutex<Receiver<(u64, TcpStream)>>>,
    store: Arc<T>,
    shared: Arc<Shared>,
    pins: Arc<Mutex<HashMap<String, Arc<T::Snapshot>>>>,
    max_frame: usize,
) where
    S: AugSpec<K = Vec<u8>, V = Vec<u8>>,
    T: StoreRead<S> + StoreWrite<S>,
{
    loop {
        // hold the receiver lock only for the dequeue, not the serve
        let next = rx.lock().recv();
        let Ok((id, stream)) = next else { break };
        serve_connection(&*store, &pins, stream, max_frame);
        shared.conns.lock().remove(&id);
    }
}

/// Serve one connection to completion: read a frame, decode, dispatch,
/// reply — until clean EOF, a protocol error (answered with
/// [`Response::Err`], then the connection closes), or drain.
fn serve_connection<S, T>(
    store: &T,
    pins: &Mutex<HashMap<String, Arc<T::Snapshot>>>,
    mut stream: TcpStream,
    max_frame: usize,
) where
    S: AugSpec<K = Vec<u8>, V = Vec<u8>>,
    T: StoreRead<S> + StoreWrite<S>,
{
    let _ = stream.set_nodelay(true);
    let mut session: Option<Arc<T::Snapshot>> = None;
    loop {
        match read_frame_capped(&mut stream, max_frame) {
            Ok(None) => break,
            Ok(Some(payload)) => {
                let reply = match decode_message::<Request>(&payload) {
                    Ok(req) => {
                        // a panicking dispatch (e.g. a poisoned store's
                        // ticket) must not take the worker thread down
                        catch_unwind(AssertUnwindSafe(|| {
                            dispatch(store, pins, &mut session, req)
                        }))
                        .unwrap_or_else(|_| Response::Err("internal error".into()))
                    }
                    Err(e) => {
                        let _ = write_message(&mut stream, &Response::Err(e.msg.into()));
                        break;
                    }
                };
                if write_message(&mut stream, &reply).is_err() {
                    break;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                // hostile or corrupt framing: answer cleanly, then close
                let _ = write_message(&mut stream, &Response::Err(e.to_string()));
                break;
            }
            Err(_) => break,
        }
    }
}

fn dispatch<S, T>(
    store: &T,
    pins: &Mutex<HashMap<String, Arc<T::Snapshot>>>,
    session: &mut Option<Arc<T::Snapshot>>,
    req: Request,
) -> Response
where
    S: AugSpec<K = Vec<u8>, V = Vec<u8>>,
    T: StoreRead<S> + StoreWrite<S>,
{
    match req {
        Request::Ping => Response::Pong,
        Request::Get(key) => Response::Value(match session {
            Some(snap) => snap.get(&key),
            None => store.get(&key),
        }),
        Request::GetMany(keys) => Response::Values(match session {
            Some(snap) => snap.get_many(&keys),
            None => store.get_many(&keys),
        }),
        Request::Scan { lo, hi, limit } => {
            let limit = limit.min(MAX_SCAN) as usize;
            let mut entries = Vec::new();
            {
                let mut collect = |k: &Vec<u8>, v: &Vec<u8>| {
                    if entries.len() < limit {
                        entries.push((k.clone(), v.clone()));
                    }
                };
                match session {
                    Some(snap) => snap.range_for_each(&lo, &hi, &mut collect),
                    None => store.range_for_each(&lo, &hi, &mut collect),
                }
            }
            Response::Entries(entries)
        }
        Request::Len => Response::Count(match session {
            Some(snap) => snap.len() as u64,
            None => store.len() as u64,
        }),
        Request::Put(key, value) => acked(store.put(key, value)),
        Request::Delete(key) => acked(store.delete(key)),
        Request::Batch(ops) => {
            let ops: Vec<WriteOp<S>> = ops
                .into_iter()
                .map(|op| match op {
                    WireOp::Put(k, v) => WriteOp::Put(k, v),
                    WireOp::Delete(k) => WriteOp::Delete(k),
                })
                .collect();
            acked(store.write_batch(ops))
        }
        Request::Pin(name) => {
            let snap = Arc::new(store.snapshot());
            let epoch = snap.snapshot_epoch();
            pins.lock().insert(name, Arc::clone(&snap));
            *session = Some(snap);
            Response::Pinned(epoch)
        }
        Request::UsePin(name) => match pins.lock().get(&name) {
            Some(snap) => {
                let epoch = snap.snapshot_epoch();
                *session = Some(Arc::clone(snap));
                Response::Pinned(epoch)
            }
            None => Response::Err(format!("unknown pin: {name}")),
        },
        Request::Unpin(name) => {
            if pins.lock().remove(&name).is_some() {
                Response::Ok
            } else {
                Response::Err(format!("unknown pin: {name}"))
            }
        }
        Request::Release => {
            *session = None;
            Response::Ok
        }
    }
}

/// Block on the ticket — the write is committed, published, and (on a
/// durable store) logged per the sync policy — then ack it.
fn acked(ticket: impl WriteTicket) -> Response {
    let version = ticket.wait_committed();
    Response::Acked {
        version,
        global_epoch: ticket.global_epoch(),
    }
}
