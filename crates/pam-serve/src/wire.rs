//! The wire format: length-prefixed, CRC-framed, varint-encoded messages.
//!
//! Every message travels as one `pam-wal` frame — the exact
//! `[len u32 LE | crc32 u32 LE | payload]` layout the WAL uses on disk
//! (`pam_wal::frame`), so the network protocol inherits the same torn- and
//! corrupt-input discipline the recovery path already trusts. Payloads are
//! encoded with [`pam_wal::Codec`]: a one-byte message tag followed by the
//! variant's fields (LEB128 varints, length-prefixed byte strings).
//!
//! One deliberate difference from the WAL reader: the server never
//! allocates a length it has not capped. `pam_wal::frame::read_frame`
//! trusts lengths up to `MAX_PAYLOAD` (1 GiB) because the WAL is
//! self-written; a network peer is hostile, so [`read_frame_capped`]
//! rejects anything over its cap (default [`MAX_FRAME`], 16 MiB) *before*
//! allocating.

use pam_wal::frame::{self, HEADER_LEN};
use pam_wal::{put_varint, Codec, CodecError, Reader};
use std::io::{self, Write};

/// Default maximum frame payload accepted from a peer (16 MiB). Generous
/// for batches, small enough that a hostile length prefix cannot balloon
/// server memory.
pub const MAX_FRAME: usize = 16 << 20;

/// Cap on entries returned by one `Scan` request, applied server-side
/// regardless of the requested limit.
pub const MAX_SCAN: u64 = 1 << 16;

/// One write inside a [`Request::Batch`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireOp {
    /// Insert or overwrite a key.
    Put(Vec<u8>, Vec<u8>),
    /// Remove a key (no-op if absent).
    Delete(Vec<u8>),
}

impl Codec for WireOp {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            WireOp::Put(k, v) => {
                out.push(0);
                k.encode(out);
                v.encode(out);
            }
            WireOp::Delete(k) => {
                out.push(1);
                k.encode(out);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.byte()? {
            0 => Ok(WireOp::Put(Vec::decode(r)?, Vec::decode(r)?)),
            1 => Ok(WireOp::Delete(Vec::decode(r)?)),
            _ => Err(CodecError {
                msg: "unknown batch op tag",
            }),
        }
    }
}

/// A client request. Keys and values are opaque byte strings.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Liveness probe; answered with [`Response::Pong`].
    Ping,
    /// Point read (session-pinned snapshot if one is active, else live).
    Get(Vec<u8>),
    /// Multi-point read, results in input order.
    GetMany(Vec<Vec<u8>>),
    /// Ordered scan of `[lo, hi]`, at most `limit` entries
    /// (server-capped at [`MAX_SCAN`]).
    Scan {
        /// Inclusive lower bound.
        lo: Vec<u8>,
        /// Inclusive upper bound.
        hi: Vec<u8>,
        /// Maximum entries to return.
        limit: u64,
    },
    /// Entry count.
    Len,
    /// Insert or overwrite; acked when group-committed.
    Put(Vec<u8>, Vec<u8>),
    /// Remove; acked when group-committed.
    Delete(Vec<u8>),
    /// Atomic batch (cross-shard atomic on a sharded store).
    Batch(Vec<WireOp>),
    /// Cut an epoch-fenced snapshot, register it under `name`, and pin
    /// this session's reads to it.
    Pin(String),
    /// Pin this session's reads to the named snapshot.
    UsePin(String),
    /// Drop the named snapshot from the registry (sessions already
    /// reading it keep their pin).
    Unpin(String),
    /// Return this session's reads to the live store.
    Release,
}

impl Codec for Request {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Request::Ping => out.push(1),
            Request::Get(k) => {
                out.push(2);
                k.encode(out);
            }
            Request::GetMany(keys) => {
                out.push(3);
                put_seq(out, keys);
            }
            Request::Scan { lo, hi, limit } => {
                out.push(4);
                lo.encode(out);
                hi.encode(out);
                put_varint(out, *limit);
            }
            Request::Len => out.push(5),
            Request::Put(k, v) => {
                out.push(6);
                k.encode(out);
                v.encode(out);
            }
            Request::Delete(k) => {
                out.push(7);
                k.encode(out);
            }
            Request::Batch(ops) => {
                out.push(8);
                put_seq(out, ops);
            }
            Request::Pin(name) => {
                out.push(9);
                name.encode(out);
            }
            Request::UsePin(name) => {
                out.push(10);
                name.encode(out);
            }
            Request::Unpin(name) => {
                out.push(11);
                name.encode(out);
            }
            Request::Release => out.push(12),
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(match r.byte()? {
            1 => Request::Ping,
            2 => Request::Get(Vec::decode(r)?),
            3 => Request::GetMany(get_seq(r)?),
            4 => Request::Scan {
                lo: Vec::decode(r)?,
                hi: Vec::decode(r)?,
                limit: r.varint()?,
            },
            5 => Request::Len,
            6 => Request::Put(Vec::decode(r)?, Vec::decode(r)?),
            7 => Request::Delete(Vec::decode(r)?),
            8 => Request::Batch(get_seq(r)?),
            9 => Request::Pin(String::decode(r)?),
            10 => Request::UsePin(String::decode(r)?),
            11 => Request::Unpin(String::decode(r)?),
            12 => Request::Release,
            _ => {
                return Err(CodecError {
                    msg: "unknown request tag",
                })
            }
        })
    }
}

/// A server reply. Every request gets exactly one.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// Reply to [`Request::Ping`].
    Pong,
    /// Reply to [`Request::Get`].
    Value(Option<Vec<u8>>),
    /// Reply to [`Request::GetMany`], input order.
    Values(Vec<Option<Vec<u8>>>),
    /// Reply to [`Request::Scan`], key order.
    Entries(Vec<(Vec<u8>, Vec<u8>)>),
    /// Reply to [`Request::Len`].
    Count(u64),
    /// Reply to a write: the write is committed, published, and as
    /// durable as the server's sync policy promises. `global_epoch` is
    /// set only for batches that spanned multiple shards.
    Acked {
        /// Version id of the committed epoch (highest slice on a
        /// sharded store).
        version: u64,
        /// Global epoch stamp of a cross-shard batch.
        global_epoch: Option<u64>,
    },
    /// Reply to [`Request::Pin`] / [`Request::UsePin`]: the snapshot's
    /// global epoch coordinate.
    Pinned(u64),
    /// Generic success (Unpin, Release).
    Ok,
    /// The request could not be served; the connection stays usable
    /// unless the error was a framing/decoding one.
    Err(String),
}

impl Codec for Response {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Response::Pong => out.push(1),
            Response::Value(v) => {
                out.push(2);
                v.encode(out);
            }
            Response::Values(vs) => {
                out.push(3);
                put_seq(out, vs);
            }
            Response::Entries(es) => {
                out.push(4);
                put_seq(out, es);
            }
            Response::Count(n) => {
                out.push(5);
                put_varint(out, *n);
            }
            Response::Acked {
                version,
                global_epoch,
            } => {
                out.push(6);
                put_varint(out, *version);
                global_epoch.encode(out);
            }
            Response::Pinned(epoch) => {
                out.push(7);
                put_varint(out, *epoch);
            }
            Response::Ok => out.push(8),
            Response::Err(msg) => {
                out.push(9);
                msg.encode(out);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(match r.byte()? {
            1 => Response::Pong,
            2 => Response::Value(Option::decode(r)?),
            3 => Response::Values(get_seq(r)?),
            4 => Response::Entries(get_seq(r)?),
            5 => Response::Count(r.varint()?),
            6 => Response::Acked {
                version: r.varint()?,
                global_epoch: Option::decode(r)?,
            },
            7 => Response::Pinned(r.varint()?),
            8 => Response::Ok,
            9 => Response::Err(String::decode(r)?),
            _ => {
                return Err(CodecError {
                    msg: "unknown response tag",
                })
            }
        })
    }
}

fn put_seq<T: Codec>(out: &mut Vec<u8>, items: &[T]) {
    put_varint(out, items.len() as u64);
    for it in items {
        it.encode(out);
    }
}

fn get_seq<T: Codec>(r: &mut Reader<'_>) -> Result<Vec<T>, CodecError> {
    // `length()` range-checks the count against the remaining input
    // (every element costs >= 1 byte), so a hostile count cannot force a
    // huge allocation.
    let n = r.length()?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(T::decode(r)?);
    }
    Ok(out)
}

/// Frame `msg` and write it to `w` (one `write_all`, then flush).
///
/// # Errors
///
/// Propagates the underlying I/O error.
pub fn write_message<W: Write, M: Codec>(w: &mut W, msg: &M) -> io::Result<()> {
    let mut payload = Vec::new();
    msg.encode(&mut payload);
    let mut framed = Vec::with_capacity(HEADER_LEN + payload.len());
    frame::put_frame(&mut framed, &payload);
    w.write_all(&framed)?;
    w.flush()
}

/// The hostile-peer frame reader, now shared workspace-wide from
/// [`pam_wal::frame`]: enforces the cap on the announced payload length
/// **before allocating**. The server passes [`MAX_FRAME`] (or the
/// configured `ServeConfig::max_frame`) so a malicious 4 GiB length
/// field costs a closed connection, not an allocation.
pub use pam_wal::frame::read_frame_capped;

/// Decode one complete message from a frame payload, rejecting trailing
/// bytes (a well-formed frame holds exactly one message).
///
/// # Errors
///
/// Any [`CodecError`] from the message decoder, or "trailing bytes after
/// message" if the payload is longer than the message.
pub fn decode_message<M: Codec>(payload: &[u8]) -> Result<M, CodecError> {
    let mut r = Reader::new(payload);
    let msg = M::decode(&mut r)?;
    if !r.is_empty() {
        return Err(CodecError {
            msg: "trailing bytes after message",
        });
    }
    Ok(msg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<M: Codec + PartialEq + std::fmt::Debug>(msg: M) {
        let mut wire = Vec::new();
        write_message(&mut wire, &msg).unwrap();
        let mut r = &wire[..];
        let payload = read_frame_capped(&mut r, MAX_FRAME).unwrap().unwrap();
        assert_eq!(decode_message::<M>(&payload).unwrap(), msg);
        assert!(r.is_empty());
    }

    #[test]
    fn every_message_roundtrips() {
        roundtrip(Request::Ping);
        roundtrip(Request::Get(b"k".to_vec()));
        roundtrip(Request::GetMany(vec![b"a".to_vec(), vec![], b"c".to_vec()]));
        roundtrip(Request::Scan {
            lo: vec![0],
            hi: vec![255; 9],
            limit: 42,
        });
        roundtrip(Request::Len);
        roundtrip(Request::Put(b"k".to_vec(), b"v".to_vec()));
        roundtrip(Request::Delete(vec![]));
        roundtrip(Request::Batch(vec![
            WireOp::Put(b"a".to_vec(), b"1".to_vec()),
            WireOp::Delete(b"b".to_vec()),
        ]));
        roundtrip(Request::Pin("cut".into()));
        roundtrip(Request::UsePin("cut".into()));
        roundtrip(Request::Unpin("cut".into()));
        roundtrip(Request::Release);

        roundtrip(Response::Pong);
        roundtrip(Response::Value(None));
        roundtrip(Response::Value(Some(b"v".to_vec())));
        roundtrip(Response::Values(vec![Some(vec![1]), None]));
        roundtrip(Response::Entries(vec![(b"k".to_vec(), b"v".to_vec())]));
        roundtrip(Response::Count(7));
        roundtrip(Response::Acked {
            version: 9,
            global_epoch: Some(3),
        });
        roundtrip(Response::Pinned(5));
        roundtrip(Response::Ok);
        roundtrip(Response::Err("nope".into()));
    }

    #[test]
    fn clean_eof_is_none_and_torn_input_is_invalid_data() {
        let empty: &[u8] = &[];
        assert!(read_frame_capped(&mut { empty }, MAX_FRAME)
            .unwrap()
            .is_none());

        let mut torn: &[u8] = &[1, 2, 3];
        let err = read_frame_capped(&mut torn, MAX_FRAME).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn oversized_length_is_rejected_before_allocation() {
        // header announcing 1 GiB; only the header is present
        let mut wire = Vec::new();
        wire.extend_from_slice(&(1u32 << 30).to_le_bytes());
        wire.extend_from_slice(&0u32.to_le_bytes());
        let err = read_frame_capped(&mut &wire[..], MAX_FRAME).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("over limit"));
    }

    #[test]
    fn corrupt_crc_is_rejected() {
        let mut wire = Vec::new();
        write_message(&mut wire, &Request::Ping).unwrap();
        let last = wire.len() - 1;
        wire[last] ^= 0xff; // flip a payload bit; crc no longer matches
        let err = read_frame_capped(&mut &wire[..], MAX_FRAME).unwrap_err();
        assert!(err.to_string().contains("bad frame crc"));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut payload = Vec::new();
        Request::Ping.encode(&mut payload);
        payload.push(0xab);
        assert!(decode_message::<Request>(&payload).is_err());
    }
}
