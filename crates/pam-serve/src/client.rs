//! A small blocking client for the wire protocol (used by the remote
//! bench driver and the integration tests).

use crate::wire::{
    decode_message, read_frame_capped, write_message, Request, Response, WireOp, MAX_FRAME,
};
use std::io;
use std::net::{TcpStream, ToSocketAddrs};

/// A committed-write acknowledgement.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Ack {
    /// Version id of the committed epoch.
    pub version: u64,
    /// Global epoch stamp, for batches that spanned multiple shards.
    pub global_epoch: Option<u64>,
}

/// One blocking connection to a `pam-serve` server. Requests on a client
/// are strictly ordered, so a `get` after an acked `put` on the *same*
/// client always observes it (and so does everyone else: an ack means
/// the write is published).
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connect to a server.
    ///
    /// # Errors
    ///
    /// Propagates the connect failure.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream })
    }

    fn call(&mut self, req: &Request) -> io::Result<Response> {
        write_message(&mut self.stream, req)?;
        match read_frame_capped(&mut self.stream, MAX_FRAME)? {
            Some(payload) => Ok(decode_message::<Response>(&payload)?),
            None => Err(io::Error::new(
                io::ErrorKind::ConnectionAborted,
                "server closed the connection",
            )),
        }
    }

    fn unexpected(resp: Response) -> io::Error {
        match resp {
            Response::Err(msg) => io::Error::other(msg),
            other => io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected response: {other:?}"),
            ),
        }
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// I/O failure or an error reply.
    pub fn ping(&mut self) -> io::Result<()> {
        match self.call(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Point read (session snapshot if pinned, else live).
    ///
    /// # Errors
    ///
    /// I/O failure or an error reply.
    pub fn get(&mut self, key: &[u8]) -> io::Result<Option<Vec<u8>>> {
        match self.call(&Request::Get(key.to_vec()))? {
            Response::Value(v) => Ok(v),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Multi-point read, results in input order.
    ///
    /// # Errors
    ///
    /// I/O failure or an error reply.
    pub fn get_many(&mut self, keys: &[Vec<u8>]) -> io::Result<Vec<Option<Vec<u8>>>> {
        match self.call(&Request::GetMany(keys.to_vec()))? {
            Response::Values(vs) => Ok(vs),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Ordered scan of `[lo, hi]`, at most `limit` entries.
    ///
    /// # Errors
    ///
    /// I/O failure or an error reply.
    pub fn scan(
        &mut self,
        lo: &[u8],
        hi: &[u8],
        limit: u64,
    ) -> io::Result<Vec<(Vec<u8>, Vec<u8>)>> {
        let req = Request::Scan {
            lo: lo.to_vec(),
            hi: hi.to_vec(),
            limit,
        };
        match self.call(&req)? {
            Response::Entries(es) => Ok(es),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Entry count.
    ///
    /// # Errors
    ///
    /// I/O failure or an error reply.
    pub fn len(&mut self) -> io::Result<u64> {
        match self.call(&Request::Len)? {
            Response::Count(n) => Ok(n),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Whether the store holds no entries (a `len` round trip).
    ///
    /// # Errors
    ///
    /// I/O failure or an error reply.
    pub fn is_empty(&mut self) -> io::Result<bool> {
        Ok(self.len()? == 0)
    }

    /// Insert or overwrite; returns once the write is committed and
    /// published (group-commit ack).
    ///
    /// # Errors
    ///
    /// I/O failure or an error reply.
    pub fn put(&mut self, key: &[u8], value: &[u8]) -> io::Result<Ack> {
        self.acked(Request::Put(key.to_vec(), value.to_vec()))
    }

    /// Remove a key; acked like [`Client::put`].
    ///
    /// # Errors
    ///
    /// I/O failure or an error reply.
    pub fn delete(&mut self, key: &[u8]) -> io::Result<Ack> {
        self.acked(Request::Delete(key.to_vec()))
    }

    /// Submit an atomic batch (cross-shard atomic on a sharded server).
    ///
    /// # Errors
    ///
    /// I/O failure or an error reply.
    pub fn batch(&mut self, ops: Vec<WireOp>) -> io::Result<Ack> {
        self.acked(Request::Batch(ops))
    }

    fn acked(&mut self, req: Request) -> io::Result<Ack> {
        match self.call(&req)? {
            Response::Acked {
                version,
                global_epoch,
            } => Ok(Ack {
                version,
                global_epoch,
            }),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Cut an epoch-fenced snapshot named `name` and pin this session's
    /// reads to it; returns the snapshot's epoch coordinate.
    ///
    /// # Errors
    ///
    /// I/O failure or an error reply.
    pub fn pin(&mut self, name: &str) -> io::Result<u64> {
        match self.call(&Request::Pin(name.into()))? {
            Response::Pinned(e) => Ok(e),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Pin this session's reads to an existing named snapshot.
    ///
    /// # Errors
    ///
    /// I/O failure, or an error reply if the name is unknown.
    pub fn use_pin(&mut self, name: &str) -> io::Result<u64> {
        match self.call(&Request::UsePin(name.into()))? {
            Response::Pinned(e) => Ok(e),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Drop a named snapshot from the server's registry.
    ///
    /// # Errors
    ///
    /// I/O failure, or an error reply if the name is unknown.
    pub fn unpin(&mut self, name: &str) -> io::Result<()> {
        match self.call(&Request::Unpin(name.into()))? {
            Response::Ok => Ok(()),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Return this session's reads to the live store.
    ///
    /// # Errors
    ///
    /// I/O failure or an error reply.
    pub fn release(&mut self) -> io::Result<()> {
        match self.call(&Request::Release)? {
            Response::Ok => Ok(()),
            other => Err(Self::unexpected(other)),
        }
    }
}
