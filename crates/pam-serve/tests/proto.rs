//! Protocol fuzz: hostile frames against a live server. The contract
//! under attack: every malformed input gets a clean `Response::Err` (or
//! a clean close), the worker never panics, and the store stays healthy
//! and serviceable.

use pam::NoAug;
use pam_serve::wire::{self, read_frame_capped, Response, MAX_FRAME};
use pam_serve::{serve, Client, ServeConfig, Server};
use pam_store::{Health, ShardedConfig, ShardedStore};
use std::io::Write;
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

type Spec = NoAug<Vec<u8>, Vec<u8>>;

fn start() -> (Arc<ShardedStore<Spec>>, Server, SocketAddr) {
    let store = Arc::new(ShardedStore::with_config(
        ShardedConfig::builder()
            .shards(2)
            .batch_window(Duration::ZERO)
            .build(),
    ));
    let server = serve(Arc::clone(&store), "127.0.0.1:0", ServeConfig::default()).unwrap();
    let addr = server.local_addr();
    (store, server, addr)
}

/// Send raw bytes, half-close, and read back whatever the server says.
/// Returns the decoded replies (hostile input earns at most one `Err`).
fn poke(addr: SocketAddr, raw: &[u8]) -> Vec<Response> {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    // the server may reject and close before we finish writing (its
    // prerogative) — a broken pipe here is not a test failure
    let _ = stream.write_all(raw);
    let _ = stream.shutdown(Shutdown::Write);
    let mut replies = Vec::new();
    while let Ok(Some(payload)) = read_frame_capped(&mut stream, MAX_FRAME) {
        match wire::decode_message::<Response>(&payload) {
            Ok(r) => replies.push(r),
            Err(_) => break,
        }
    }
    replies
}

fn expect_err(replies: &[Response], what: &str) {
    assert_eq!(
        replies.len(),
        1,
        "{what}: want exactly one reply, got {replies:?}"
    );
    assert!(
        matches!(&replies[0], Response::Err(_)),
        "{what}: want a clean error reply, got {:?}",
        replies[0]
    );
}

fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    pam_wal::frame::put_frame(&mut out, payload);
    out
}

#[test]
fn hostile_frames_get_clean_errors_and_never_poison_the_store() {
    let (store, _server, addr) = start();

    // truncated length prefix: 3 of the 8 header bytes, then EOF
    expect_err(&poke(addr, &[0x01, 0x02, 0x03]), "truncated header");

    // header promising more payload than ever arrives
    let mut torn = Vec::new();
    torn.extend_from_slice(&100u32.to_le_bytes());
    torn.extend_from_slice(&0u32.to_le_bytes());
    torn.extend_from_slice(&[0xaa; 10]);
    expect_err(&poke(addr, &torn), "torn payload");

    // valid layout, corrupted payload byte → CRC mismatch
    let mut bad_crc = frame(&[1]); // a framed Ping...
    let last = bad_crc.len() - 1;
    bad_crc[last] ^= 0xff; // ...with its payload flipped
    expect_err(&poke(addr, &bad_crc), "bad crc");

    // length prefix far over the server cap (would be 256 MiB)
    let mut huge = Vec::new();
    huge.extend_from_slice(&(256u32 << 20).to_le_bytes());
    huge.extend_from_slice(&0u32.to_le_bytes());
    expect_err(&poke(addr, &huge), "oversized length");

    // well-framed Get whose key length is an oversized varint (11 × 0xff
    // overflows u64 during decode)
    let mut payload = vec![2u8];
    payload.extend_from_slice(&[0xff; 11]);
    expect_err(&poke(addr, &frame(&payload)), "oversized varint");

    // well-framed message with an unknown tag
    expect_err(&poke(addr, &frame(&[99u8])), "unknown tag");

    // well-framed message with trailing garbage after a valid Ping
    expect_err(&poke(addr, &frame(&[1u8, 0xde, 0xad])), "trailing bytes");

    // the server shrugged all of it off: healthy and still serving
    assert_eq!(store.health(), Health::Healthy);
    let mut c = Client::connect(addr).unwrap();
    c.ping().unwrap();
    c.put(b"k", b"v").unwrap();
    assert_eq!(c.get(b"k").unwrap(), Some(b"v".to_vec()));
}

#[test]
fn random_garbage_never_panics_the_server() {
    let (store, _server, addr) = start();

    // deterministic xorshift garbage, varying length and content
    let mut state = 0x9e3779b97f4a7c15u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for round in 0..64 {
        let len = (next() % 256) as usize + round;
        let bytes: Vec<u8> = (0..len).map(|_| next() as u8).collect();
        // replies (if any) must decode as protocol responses; mostly we
        // just require the connection to terminate without a hang
        let _ = poke(addr, &bytes);
    }

    assert_eq!(store.health(), Health::Healthy, "garbage must not poison");
    let mut c = Client::connect(addr).unwrap();
    c.put(b"after", b"garbage").unwrap();
    assert_eq!(c.get(b"after").unwrap(), Some(b"garbage".to_vec()));
    assert_eq!(c.len().unwrap(), 1);
}
