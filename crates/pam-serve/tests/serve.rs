//! End-to-end tests: a live server over TCP, real clients, group-commit
//! acks, session pins, and the graceful-drain protocol.

use pam::NoAug;
use pam_serve::{serve, Client, ServeConfig, Server, WireOp};
use pam_store::{DurabilityConfig, DurableShardedStore, ShardedConfig, ShardedStore};
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

type Spec = NoAug<Vec<u8>, Vec<u8>>;

fn eager_store(shards: usize) -> Arc<ShardedStore<Spec>> {
    Arc::new(ShardedStore::with_config(
        ShardedConfig::builder()
            .shards(shards)
            .batch_window(Duration::ZERO)
            .build(),
    ))
}

fn start(store: Arc<ShardedStore<Spec>>) -> (Server, SocketAddr) {
    let server = serve(store, "127.0.0.1:0", ServeConfig::default()).expect("bind");
    let addr = server.local_addr();
    (server, addr)
}

fn key(i: u64) -> Vec<u8> {
    i.to_be_bytes().to_vec()
}

#[test]
fn puts_gets_batches_and_scans_round_trip() {
    let store = eager_store(4);
    let (_server, addr) = start(Arc::clone(&store));
    let mut c = Client::connect(addr).unwrap();

    c.ping().unwrap();
    assert_eq!(c.len().unwrap(), 0);
    assert_eq!(c.get(b"missing").unwrap(), None);

    let ack = c.put(&key(1), b"one").unwrap();
    assert!(ack.version >= 1);
    assert_eq!(ack.global_epoch, None, "single put takes the fast path");
    assert_eq!(c.get(&key(1)).unwrap(), Some(b"one".to_vec()));

    // a batch wide enough to span shards carries a global epoch stamp
    let ops: Vec<WireOp> = (10..42)
        .map(|i| WireOp::Put(key(i), format!("v{i}").into_bytes()))
        .collect();
    let ack = c.batch(ops).unwrap();
    assert!(
        ack.global_epoch.is_some(),
        "multi-shard batch must be stamped"
    );
    assert_eq!(c.len().unwrap(), 33);

    assert_eq!(
        c.get_many(&[key(10), key(999), key(41)]).unwrap(),
        vec![Some(b"v10".to_vec()), None, Some(b"v41".to_vec())]
    );

    // scans come back merged in key order
    let entries = c.scan(&key(0), &key(u64::MAX), 1 << 16).unwrap();
    assert_eq!(entries.len(), 33);
    assert!(entries.windows(2).all(|w| w[0].0 < w[1].0));
    let limited = c.scan(&key(0), &key(u64::MAX), 5).unwrap();
    assert_eq!(limited.len(), 5);

    c.delete(&key(1)).unwrap();
    assert_eq!(c.get(&key(1)).unwrap(), None);
    assert_eq!(c.len().unwrap(), 32);

    // mixed batch: put + delete atomically
    c.batch(vec![
        WireOp::Put(key(100), b"hundred".to_vec()),
        WireOp::Delete(key(10)),
    ])
    .unwrap();
    assert_eq!(c.get(&key(100)).unwrap(), Some(b"hundred".to_vec()));
    assert_eq!(c.get(&key(10)).unwrap(), None);
}

#[test]
fn named_pins_freeze_reads_until_release() {
    let store = eager_store(2);
    let (_server, addr) = start(Arc::clone(&store));
    let mut writer = Client::connect(addr).unwrap();
    let mut reader = Client::connect(addr).unwrap();

    writer.put(b"k", b"v1").unwrap();
    let epoch = writer.pin("cut").unwrap();

    // another session joins the same named snapshot
    assert_eq!(reader.use_pin("cut").unwrap(), epoch);

    // live store moves on; both pinned sessions keep the old view
    writer.release().unwrap();
    writer.put(b"k", b"v2").unwrap();
    assert_eq!(writer.get(b"k").unwrap(), Some(b"v2".to_vec()));
    assert_eq!(reader.get(b"k").unwrap(), Some(b"v1".to_vec()));
    assert_eq!(reader.len().unwrap(), 1);

    // scans and multi-gets also read the pinned cut
    assert_eq!(
        reader.get_many(&[b"k".to_vec()]).unwrap(),
        vec![Some(b"v1".to_vec())]
    );
    assert_eq!(
        reader.scan(b"", b"\xff\xff", 100).unwrap(),
        vec![(b"k".to_vec(), b"v1".to_vec())]
    );

    // releasing returns the session to the live store
    reader.release().unwrap();
    assert_eq!(reader.get(b"k").unwrap(), Some(b"v2".to_vec()));

    // unpin drops the name; rejoining fails cleanly
    writer.unpin("cut").unwrap();
    assert!(reader.use_pin("cut").is_err());
    assert!(writer.unpin("cut").is_err(), "double unpin is an error");
    assert!(
        reader.ping().is_ok(),
        "error replies keep the session alive"
    );
}

#[test]
fn concurrent_clients_coalesce_into_the_group_commit_pipeline() {
    let store = Arc::new(ShardedStore::<Spec>::with_config(
        ShardedConfig::builder()
            .shards(2)
            .batch_window(Duration::from_micros(200))
            .build(),
    ));
    let (_server, addr) = start(Arc::clone(&store));

    let threads: Vec<_> = (0..4u64)
        .map(|t| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                for i in 0..50u64 {
                    let k = key(t * 1000 + i);
                    let ack = c.put(&k, b"x").unwrap();
                    assert!(ack.version >= 1);
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }

    let mut c = Client::connect(addr).unwrap();
    assert_eq!(c.len().unwrap(), 200, "every acked put is published");
    // acks rode the pipeline: commits can never exceed raw ops, and the
    // stats surface proves the writes flowed through it
    let stats = store.stats();
    assert_eq!(stats.raw_ops, 200);
    assert!(stats.commits <= stats.raw_ops);
}

#[test]
fn drain_stops_accepting_and_flushes_acked_writes() {
    let dir = std::env::temp_dir().join(format!("pam-serve-drain-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let open = || {
        DurableShardedStore::<Spec>::open(
            &dir,
            ShardedConfig::builder()
                .shards(2)
                .batch_window(Duration::ZERO)
                .build(),
            DurabilityConfig::default(),
        )
        .expect("open durable store")
    };

    let store = Arc::new(open());
    let mut server = serve(Arc::clone(&store), "127.0.0.1:0", ServeConfig::default()).unwrap();
    let addr = server.local_addr();

    let mut c = Client::connect(addr).unwrap();
    for i in 0..100u64 {
        c.put(&key(i), format!("v{i}").as_bytes()).unwrap();
    }

    // graceful drain: existing session dies cleanly, new connections are
    // refused, every acked epoch is flushed
    server.drain();
    assert!(c.ping().is_err(), "drained server closes the session");
    assert!(
        Client::connect(addr).and_then(|mut c| c.ping()).is_err(),
        "drained server accepts no new connections"
    );
    drop(server);
    drop(c);
    drop(store);

    let store = open();
    assert_eq!(store.len(), 100);
    for i in 0..100u64 {
        assert_eq!(
            store.get(&key(i)),
            Some(format!("v{i}").into_bytes()),
            "acked write {i} must survive a graceful drain"
        );
    }
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
}
