//! Crash-recover-under-load: kill the real `pam-serve` binary with
//! SIGKILL while clients are writing, reopen the directory, and verify
//! that **every acked remote write survived** (invariant I1: log before
//! ack) and every acked cross-shard batch is wholly present (I5/I6:
//! batches commit or vanish atomically on all shards).

use pam::NoAug;
use pam_serve::{Client, WireOp};
use pam_store::{DurabilityConfig, DurableShardedStore, ShardedConfig};
use std::collections::BTreeMap;
use std::io::BufRead;
use std::process::{Command, Stdio};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

type Spec = NoAug<Vec<u8>, Vec<u8>>;

fn key(i: u64) -> Vec<u8> {
    format!("k{i:08}").into_bytes()
}

fn batch_key(b: u64, j: u64) -> Vec<u8> {
    format!("b{b:06}-{j}").into_bytes()
}

#[test]
fn every_acked_remote_write_survives_a_server_kill() {
    let dir = std::env::temp_dir().join(format!("pam-serve-crash-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // the real binary, fsync-per-epoch, eager commits for fast acks
    let mut child = Command::new(env!("CARGO_BIN_EXE_pam-serve"))
        .args([
            "--dir",
            dir.to_str().unwrap(),
            "--addr",
            "127.0.0.1:0",
            "--shards",
            "2",
            "--sync",
            "each",
            "--batch-window-us",
            "0",
        ])
        .stdin(Stdio::piped()) // held open: the server must die by signal
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn pam-serve");
    let stdout = child.stdout.take().unwrap();
    let mut lines = std::io::BufReader::new(stdout).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("server exited before announcing its address")
            .unwrap();
        if let Some(rest) = line.strip_prefix("pam-serve listening on ") {
            break rest.to_string();
        }
    };

    // the killer fires as soon as enough writes have been acked — the
    // SIGKILL lands mid-traffic, with more writes in flight behind it
    let child = Arc::new(Mutex::new(child));
    let acked_count = Arc::new(AtomicUsize::new(0));
    let killer = {
        let child = Arc::clone(&child);
        let acked_count = Arc::clone(&acked_count);
        std::thread::spawn(move || {
            while acked_count.load(Ordering::Relaxed) < 200 {
                std::thread::sleep(Duration::from_millis(2));
            }
            child.lock().unwrap().kill().expect("kill server");
        })
    };

    // drive acked puts (plus a cross-shard batch every 16th round) until
    // the server dies under us; record exactly what was acked
    let mut client = Client::connect(&addr).expect("connect");
    let mut acked: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
    let mut acked_batches: Vec<u64> = Vec::new();
    let mut attempted_batches: Vec<u64> = Vec::new();
    for i in 0..1_000_000u64 {
        let value = format!("v{i}").into_bytes();
        match client.put(&key(i), &value) {
            Ok(_) => {
                acked.insert(key(i), value);
                acked_count.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => break, // the kill landed
        }
        if i % 16 == 0 {
            let b = i / 16;
            attempted_batches.push(b);
            let ops = (0..4)
                .map(|j| WireOp::Put(batch_key(b, j), format!("bv{b}").into_bytes()))
                .collect();
            match client.batch(ops) {
                Ok(_) => acked_batches.push(b),
                Err(_) => break,
            }
        }
    }
    killer.join().unwrap();
    let status = child.lock().unwrap().wait().unwrap();
    assert!(!status.success(), "server must have died by signal");
    assert!(
        acked.len() >= 200,
        "kill should land mid-traffic, after substantial acked load"
    );

    // reopen the directory in-process (the dead server's dir lock is
    // stale and gets broken) and hold recovery to its promises
    let store = DurableShardedStore::<Spec>::open(
        &dir,
        ShardedConfig::builder().shards(2).build(),
        DurabilityConfig::default(),
    )
    .expect("recover after kill");

    for (k, v) in &acked {
        assert_eq!(
            store.get(k).as_ref(),
            Some(v),
            "acked write {:?} lost in the crash",
            String::from_utf8_lossy(k)
        );
    }
    for b in &acked_batches {
        for j in 0..4 {
            assert_eq!(
                store.get(&batch_key(*b, j)),
                Some(format!("bv{b}").into_bytes()),
                "acked batch {b} torn by the crash"
            );
        }
    }
    // unacked batches may be kept or lost, but never torn (I5/I6)
    for b in &attempted_batches {
        let present = (0..4)
            .filter(|j| store.get(&batch_key(*b, *j)).is_some())
            .count();
        assert!(
            present == 0 || present == 4,
            "batch {b} recovered torn: {present}/4 keys present"
        );
    }
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
}
