//! Deterministic workload generators for the PAM reproduction.
//!
//! Everything is generated from stateless hash functions (SplitMix64) so
//! that workloads are reproducible across runs and can be generated in
//! parallel without shared RNG state (the PBBS approach, which is also
//! what the paper's drivers do).
//!
//! The synthetic text corpus ([`corpus`]) replaces the 2016 Wikipedia
//! dump used in §6.4 (unavailable offline): word frequencies follow a
//! Zipf distribution, matching the vocabulary-vs-token shape that the
//! inverted-index experiment depends on. See DESIGN.md ("Substitutions").

pub mod corpus;
pub mod intervals;
pub mod keys;
pub mod points;
pub mod rng;
pub mod zipf;

pub use corpus::{Corpus, CorpusConfig};
pub use intervals::random_intervals;
pub use keys::{distinct_shuffled_keys, read_probes, uniform_pairs};
pub use points::random_points;
pub use rng::hash64;
pub use zipf::Zipf;
