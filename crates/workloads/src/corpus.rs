//! Synthetic Zipfian text corpus — the stand-in for the Wikipedia dump of
//! §6.4 (see DESIGN.md, "Substitutions").
//!
//! The real experiment's inputs are `(word, doc_id, weight)` triples with
//! word frequencies following a Zipf law (natural language) and random
//! weights ("the values of the weights make no difference to the
//! runtime"). This generator reproduces those statistics with a tunable
//! document count, vocabulary size, and document length.

use crate::rng::hash64;
use crate::zipf::Zipf;
use rayon::prelude::*;

/// Corpus shape parameters.
#[derive(Clone, Copy, Debug)]
pub struct CorpusConfig {
    /// Number of documents.
    pub docs: usize,
    /// Vocabulary size (number of distinct words).
    pub vocab: usize,
    /// Words per document.
    pub doc_len: usize,
    /// Zipf exponent for word frequencies (≈1.0 for natural language).
    pub zipf_s: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            docs: 10_000,
            vocab: 50_000,
            doc_len: 200,
            zipf_s: 1.0,
            seed: 0xC0FFEE,
        }
    }
}

/// A generated corpus: the raw `(word, doc, weight)` triples plus query
/// material.
pub struct Corpus {
    /// `(word_id, doc_id, weight)` — one triple per token occurrence
    /// (duplicates of (word, doc) are possible, as in real text).
    pub triples: Vec<(u32, u32, u64)>,
    /// The sampler used (exposed so query generators can draw
    /// frequency-weighted words).
    pub zipf: Zipf,
    /// The configuration used.
    pub config: CorpusConfig,
}

impl Corpus {
    /// Generate the corpus (parallel over documents).
    pub fn generate(config: CorpusConfig) -> Self {
        let zipf = Zipf::new(config.vocab, config.zipf_s);
        let triples: Vec<(u32, u32, u64)> = (0..config.docs as u64)
            .into_par_iter()
            .flat_map_iter(|d| {
                let zipf = &zipf;
                (0..config.doc_len as u64).map(move |j| {
                    let token_id = d * config.doc_len as u64 + j;
                    let word = zipf.sample(config.seed, token_id) as u32;
                    let weight = hash64(config.seed ^ (token_id | 1 << 63)) % 1_000_000;
                    (word, d as u32, weight)
                })
            })
            .collect();
        Corpus {
            triples,
            zipf,
            config,
        }
    }

    /// Total number of tokens.
    pub fn tokens(&self) -> usize {
        self.triples.len()
    }

    /// `m` two-word queries drawn frequency-weighted (common words are
    /// queried more often, as in real search logs).
    pub fn query_pairs(&self, m: usize, seed: u64) -> Vec<(u32, u32)> {
        (0..m as u64)
            .map(|i| {
                let a = self.zipf.sample(seed ^ 0xA, i) as u32;
                let b = self.zipf.sample(seed ^ 0xB, i) as u32;
                (a, b)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_config() {
        let c = Corpus::generate(CorpusConfig {
            docs: 100,
            vocab: 1000,
            doc_len: 50,
            zipf_s: 1.0,
            seed: 1,
        });
        assert_eq!(c.tokens(), 100 * 50);
        assert!(c.triples.iter().all(|&(w, d, _)| w < 1000 && d < 100));
    }

    #[test]
    fn word_frequencies_are_skewed() {
        let c = Corpus::generate(CorpusConfig {
            docs: 200,
            vocab: 5000,
            doc_len: 100,
            zipf_s: 1.0,
            seed: 2,
        });
        let mut counts = vec![0usize; 5000];
        for &(w, _, _) in &c.triples {
            counts[w as usize] += 1;
        }
        let top: usize = counts[..10].iter().sum();
        assert!(
            top * 4 > c.tokens(),
            "top-10 words should carry >25% of tokens, got {top}/{}",
            c.tokens()
        );
    }

    #[test]
    fn queries_are_in_vocab() {
        let c = Corpus::generate(CorpusConfig {
            docs: 10,
            vocab: 100,
            doc_len: 10,
            zipf_s: 1.0,
            seed: 3,
        });
        for (a, b) in c.query_pairs(100, 9) {
            assert!(a < 100 && b < 100);
        }
    }
}
