//! Stateless pseudo-random hashing (SplitMix64).

/// SplitMix64 finalizer: a high-quality 64-bit mix usable as a stateless
/// RNG — `hash64(seed + i)` yields an i.i.d.-looking stream that can be
/// evaluated at any index in parallel.
#[inline]
pub fn hash64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A tiny stateful wrapper for sequential use.
#[derive(Clone, Debug)]
pub struct SplitMix {
    state: u64,
}

impl SplitMix {
    /// Create a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix { state: seed }
    }

    /// Next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(1);
        hash64(self.state)
    }

    /// Uniform value in `[0, bound)`. `bound` must be nonzero.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform f64 in `[0, 1)`.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_deterministic_and_mixing() {
        assert_eq!(hash64(1), hash64(1));
        assert_ne!(hash64(1), hash64(2));
        // avalanche smoke test: flipping one input bit flips ~half the output
        let a = hash64(0x1234);
        let b = hash64(0x1235);
        let flipped = (a ^ b).count_ones();
        assert!((16..=48).contains(&flipped), "{flipped} bits flipped");
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SplitMix::new(7);
        for _ in 0..1000 {
            assert!(r.below(10) < 10);
        }
    }

    #[test]
    fn unit_f64_in_range() {
        let mut r = SplitMix::new(9);
        for _ in 0..1000 {
            let x = r.unit_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
