//! Interval workloads for the §5.1 / §6.2 experiments.

use crate::rng::hash64;
use rayon::prelude::*;

/// `n` random intervals `(left, right)` with `left` uniform in
/// `[0, universe)` and length `1..=max_len`; `left < right` always holds.
///
/// Mirrors the paper's interval-tree input: e.g. login sessions with a
/// bounded duration scattered over a long timeline.
pub fn random_intervals(n: usize, seed: u64, universe: u64, max_len: u64) -> Vec<(u64, u64)> {
    assert!(universe > 0 && max_len > 0);
    (0..n as u64)
        .into_par_iter()
        .map(|i| {
            let left = hash64(seed ^ (i * 2)) % universe;
            let len = 1 + hash64(seed ^ (i * 2 + 1)) % max_len;
            (left, left + len)
        })
        .collect()
}

/// `m` stabbing-query points over the same universe.
pub fn stab_points(m: usize, seed: u64, universe: u64) -> Vec<u64> {
    (0..m as u64)
        .into_par_iter()
        .map(|i| hash64(seed ^ i) % universe)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intervals_are_well_formed() {
        for (l, r) in random_intervals(10_000, 11, 1 << 30, 1000) {
            assert!(l < r);
            assert!(r <= (1 << 30) + 1000);
        }
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            random_intervals(100, 5, 1000, 10),
            random_intervals(100, 5, 1000, 10)
        );
    }
}
