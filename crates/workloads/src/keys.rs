//! Integer key/value workloads (Table 3, Figure 6 experiments).

use crate::rng::hash64;
use rayon::prelude::*;

/// `n` pseudo-random `(key, value)` pairs with keys uniform in
/// `[0, key_range)`. Duplicate keys appear with the natural birthday
/// rate, exactly like the paper's random-integer workloads. Generated in
/// parallel.
pub fn uniform_pairs(n: usize, seed: u64, key_range: u64) -> Vec<(u64, u64)> {
    assert!(key_range > 0);
    (0..n as u64)
        .into_par_iter()
        .map(|i| {
            (
                hash64(seed ^ (i.wrapping_mul(2))) % key_range,
                hash64(seed ^ (i.wrapping_mul(2) + 1)),
            )
        })
        .collect()
}

/// `n` *distinct* keys in pseudo-random order: a random permutation of
/// `{0·s, 1·s, ..., (n-1)·s}` (stride `s` spreads keys over the space).
pub fn distinct_shuffled_keys(n: usize, seed: u64, stride: u64) -> Vec<u64> {
    let mut keys: Vec<u64> = (0..n as u64).map(|i| i * stride).collect();
    // Fisher-Yates with the stateless hash
    for i in (1..n).rev() {
        let j = (hash64(seed ^ i as u64) % (i as u64 + 1)) as usize;
        keys.swap(i, j);
    }
    keys
}

/// `m` read probes for a YCSB-C-style (read-only) workload: uniform
/// indices into an existing key population.
pub fn read_probes(m: usize, seed: u64, population: &[u64]) -> Vec<u64> {
    assert!(!population.is_empty());
    (0..m as u64)
        .into_par_iter()
        .map(|i| population[(hash64(seed ^ i) % population.len() as u64) as usize])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_pairs_in_range_and_deterministic() {
        let a = uniform_pairs(1000, 1, 500);
        let b = uniform_pairs(1000, 1, 500);
        assert_eq!(a, b);
        assert!(a.iter().all(|&(k, _)| k < 500));
        assert_eq!(a.len(), 1000);
    }

    #[test]
    fn distinct_keys_are_distinct() {
        let ks = distinct_shuffled_keys(10_000, 3, 7);
        let mut sorted = ks.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 10_000);
    }

    #[test]
    fn probes_come_from_population() {
        let pop: Vec<u64> = (0..100).map(|i| i * 13).collect();
        let probes = read_probes(1000, 5, &pop);
        let set: std::collections::HashSet<u64> = pop.iter().copied().collect();
        assert!(probes.iter().all(|p| set.contains(p)));
    }
}
