//! 2D point workloads for the range-tree experiments (§5.2 / §6.3).

use crate::rng::hash64;
use rayon::prelude::*;

/// `n` weighted points with coordinates uniform in `[0, universe)²` and
/// weights uniform in `[0, 100)`.
pub fn random_points(n: usize, seed: u64, universe: u32) -> Vec<(u32, u32, u64)> {
    assert!(universe > 0);
    (0..n as u64)
        .into_par_iter()
        .map(|i| {
            (
                (hash64(seed ^ (i * 3)) % universe as u64) as u32,
                (hash64(seed ^ (i * 3 + 1)) % universe as u64) as u32,
                hash64(seed ^ (i * 3 + 2)) % 100,
            )
        })
        .collect()
}

/// `m` query windows, each spanning roughly `frac` of the universe per
/// axis (so the expected output size is `n · frac²`).
pub fn query_windows(m: usize, seed: u64, universe: u32, frac: f64) -> Vec<(u32, u32, u32, u32)> {
    let span = ((universe as f64) * frac).max(1.0) as u64;
    (0..m as u64)
        .into_par_iter()
        .map(|i| {
            let xl = hash64(seed ^ (i * 2)) % universe as u64;
            let yl = hash64(seed ^ (i * 2 + 1)) % universe as u64;
            let xr = (xl + span).min(universe as u64 - 1);
            let yr = (yl + span).min(universe as u64 - 1);
            (xl as u32, xr as u32, yl as u32, yr as u32)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn points_in_bounds() {
        for (x, y, w) in random_points(10_000, 3, 1 << 20) {
            assert!(x < 1 << 20 && y < 1 << 20 && w < 100);
        }
    }

    #[test]
    fn windows_are_ordered() {
        for (xl, xr, yl, yr) in query_windows(1000, 4, 1 << 20, 0.01) {
            assert!(xl <= xr && yl <= yr);
        }
    }
}
