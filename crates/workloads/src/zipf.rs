//! Zipf-distributed sampling (word frequencies, skewed key access).
//!
//! Implemented from scratch with an inverse-CDF table over the harmonic
//! weights `1/k^s` — O(N) setup, O(log N) per sample, exact (no rejection
//! approximation), deterministic given the seed.

use crate::rng::hash64;

/// A Zipf(N, s) sampler over ranks `0..n` (rank 0 is the most frequent).
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build a sampler for `n` ranks with exponent `s` (s = 1.0 is the
    /// classic Zipf law; Wikipedia word frequencies fit s ≈ 1.0-1.1).
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0);
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Is the support empty? (never true — kept for API completeness)
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Sample a rank using 64 random bits derived from `(seed, i)`.
    /// Stateless: any index can be drawn independently (and in parallel).
    pub fn sample(&self, seed: u64, i: u64) -> usize {
        let u = (hash64(seed ^ i) >> 11) as f64 / (1u64 << 53) as f64;
        // first index with cdf[idx] >= u
        match self
            .cdf
            .binary_search_by(|p| p.partial_cmp(&u).expect("cdf is finite"))
        {
            Ok(idx) => idx,
            Err(idx) => idx.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn most_frequent_rank_dominates() {
        let z = Zipf::new(1000, 1.0);
        let mut counts = vec![0usize; 1000];
        for i in 0..100_000u64 {
            counts[z.sample(42, i)] += 1;
        }
        // rank 0 should be roughly 1/H(1000) ≈ 13% of draws
        assert!(counts[0] > 8_000, "rank0 drawn {} times", counts[0]);
        // frequency must decay with rank (coarse check on decades)
        assert!(counts[0] > counts[9]);
        assert!(counts[9] > counts[99]);
        assert!(counts[99] > counts[990].saturating_sub(5));
    }

    #[test]
    fn samples_cover_support_bounds() {
        let z = Zipf::new(10, 1.2);
        for i in 0..10_000u64 {
            assert!(z.sample(7, i) < 10);
        }
    }

    #[test]
    fn deterministic() {
        let z = Zipf::new(100, 1.0);
        let a: Vec<usize> = (0..100).map(|i| z.sample(3, i)).collect();
        let b: Vec<usize> = (0..100).map(|i| z.sample(3, i)).collect();
        assert_eq!(a, b);
    }
}
