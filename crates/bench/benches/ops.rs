//! Criterion micro-benchmarks for the core PAM operations (CI-friendly
//! sizes; the full paper-table sizes live in the `table3` binary).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use pam::{AugMap, NoAug, SumAug};
use std::hint::black_box;

type Sum = AugMap<SumAug<u64, u64>>;
type Plain = AugMap<NoAug<u64, u64>>;

const N: usize = 100_000;

fn setup() -> (Sum, Sum, Vec<u64>) {
    let a = Sum::build(workloads::uniform_pairs(N, 1, N as u64 * 4));
    let b = Sum::build(workloads::uniform_pairs(N, 2, N as u64 * 4));
    let probes: Vec<u64> = (0..10_000u64)
        .map(|i| workloads::hash64(i) % (N as u64 * 4))
        .collect();
    (a, b, probes)
}

fn bench_ops(c: &mut Criterion) {
    let (a, b, probes) = setup();

    c.bench_function("build_100k", |bch| {
        let pairs = workloads::uniform_pairs(N, 3, N as u64 * 4);
        bch.iter_batched(
            || pairs.clone(),
            |p| black_box(Sum::build(p)),
            BatchSize::LargeInput,
        );
    });

    c.bench_function("build_100k_noaug", |bch| {
        let pairs = workloads::uniform_pairs(N, 3, N as u64 * 4);
        bch.iter_batched(
            || pairs.clone(),
            |p| black_box(Plain::build(p)),
            BatchSize::LargeInput,
        );
    });

    c.bench_function("union_100k_100k", |bch| {
        bch.iter_batched(
            || (a.clone(), b.clone()),
            |(x, y)| black_box(x.union_with(y, |p, q| p.wrapping_add(*q))),
            BatchSize::LargeInput,
        );
    });

    c.bench_function("find_10k_probes", |bch| {
        bch.iter(|| {
            let mut hits = 0usize;
            for k in &probes {
                if a.get(k).is_some() {
                    hits += 1;
                }
            }
            black_box(hits)
        });
    });

    c.bench_function("insert_1k_points", |bch| {
        bch.iter_batched(
            || a.clone(),
            |mut m| {
                for i in 0..1000u64 {
                    m.insert(workloads::hash64(i ^ 0xbeef), i);
                }
                black_box(m)
            },
            BatchSize::LargeInput,
        );
    });

    c.bench_function("aug_range_10k_queries", |bch| {
        bch.iter(|| {
            let mut acc = 0u64;
            for &lo in &probes {
                acc = acc.wrapping_add(a.aug_range(&lo, &(lo + 500)));
            }
            black_box(acc)
        });
    });

    c.bench_function("multi_insert_10k_into_100k", |bch| {
        let batch = workloads::uniform_pairs(10_000, 9, N as u64 * 4);
        bch.iter_batched(
            || (a.clone(), batch.clone()),
            |(mut m, bt)| {
                m.multi_insert(bt);
                black_box(m)
            },
            BatchSize::LargeInput,
        );
    });

    c.bench_function("filter_100k", |bch| {
        bch.iter_batched(
            || a.clone(),
            |m| black_box(m.filter(|k, _| k % 3 == 0)),
            BatchSize::LargeInput,
        );
    });

    c.bench_function("map_reduce_sum_100k", |bch| {
        bch.iter(|| black_box(a.map_reduce(|_, &v| v, u64::wrapping_add, 0)));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_ops
}
criterion_main!(benches);
