//! Ablation benchmarks for design choices DESIGN.md calls out:
//!
//! * **granularity sweep** — the sequential-fallback threshold for
//!   fork-join recursion (PAM's "granularity so parallelism is not used
//!   on very small trees");
//! * **aug_filter vs plain filter** — the O(k log(n/k+1)) vs O(n) claim;
//! * **aug_project vs materializing ranges** — range-tree queries with
//!   and without the projection fast path;
//! * **our parallel merge sort vs rayon's pdqsort** — the `build` sort
//!   substrate;
//! * **refcount-1 reuse** — covered by building with
//!   `--features pam/no-reuse` and re-running `ops` (documented in
//!   EXPERIMENTS.md) since features are compile-time.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use pam::{AugMap, MaxAug, SumAug};
use std::hint::black_box;

const N: usize = 100_000;

fn bench_granularity(c: &mut Criterion) {
    let pairs = workloads::uniform_pairs(N, 1, N as u64 * 4);
    let a: AugMap<SumAug<u64, u64>> = AugMap::build(pairs.clone());
    let b: AugMap<SumAug<u64, u64>> = AugMap::build(workloads::uniform_pairs(N, 2, N as u64 * 4));
    for gran in [64usize, 1 << 11, 1 << 16] {
        c.bench_function(&format!("union_granularity_{gran}"), |bch| {
            parlay::set_granularity(gran);
            bch.iter_batched(
                || (a.clone(), b.clone()),
                |(x, y)| black_box(x.union_with(y, |p, q| p.wrapping_add(*q))),
                BatchSize::LargeInput,
            );
        });
    }
    parlay::set_granularity(1 << 11);
}

fn bench_augfilter_vs_filter(c: &mut Criterion) {
    let pairs = workloads::uniform_pairs(N, 3, N as u64 * 4);
    let m: AugMap<MaxAug<u64, u64>> = AugMap::build(pairs.clone());
    let mut vals: Vec<u64> = pairs.iter().map(|&(_, v)| v).collect();
    vals.sort_unstable();
    let theta = vals[vals.len() - 100]; // ~100 survivors
    c.bench_function("aug_filter_k100_of_100k", |bch| {
        bch.iter(|| black_box(m.aug_filter(|&a| a > theta)));
    });
    c.bench_function("plain_filter_k100_of_100k", |bch| {
        bch.iter_batched(
            || m.clone(),
            |mm| black_box(mm.filter(|_, &v| v > theta)),
            BatchSize::LargeInput,
        );
    });
}

fn bench_project_vs_materialize(c: &mut Criterion) {
    let pts = workloads::random_points(50_000, 4, 1 << 20);
    let rt = pam_rangetree::RangeTree::build(pts);
    let wins = workloads::points::query_windows(200, 5, 1 << 20, 0.05);
    c.bench_function("rangetree_aug_project_200q", |bch| {
        bch.iter(|| {
            black_box(
                wins.iter()
                    .map(|&(xl, xr, yl, yr)| rt.query_sum(xl, xr, yl, yr))
                    .fold(0u64, u64::wrapping_add),
            )
        });
    });
    c.bench_function("rangetree_materialize_200q", |bch| {
        // the slow path: list the points and add the weights
        bch.iter(|| {
            black_box(
                wins.iter()
                    .map(|&(xl, xr, yl, yr)| {
                        rt.query_points(xl, xr, yl, yr)
                            .iter()
                            .map(|&(_, _, w)| w)
                            .fold(0u64, u64::wrapping_add)
                    })
                    .fold(0u64, u64::wrapping_add),
            )
        });
    });
}

fn bench_sorts(c: &mut Criterion) {
    let v: Vec<(u64, u64)> = workloads::uniform_pairs(500_000, 9, u64::MAX);
    c.bench_function("parlay_merge_sort_500k", |bch| {
        bch.iter_batched(
            || v.clone(),
            |mut x| {
                parlay::par_merge_sort_by(&mut x, |a, b| a.0.cmp(&b.0));
                black_box(x)
            },
            BatchSize::LargeInput,
        );
    });
    c.bench_function("rayon_pdqsort_500k", |bch| {
        bch.iter_batched(
            || v.clone(),
            |mut x| {
                parlay::par_sort_unstable_by(&mut x, |a, b| a.0.cmp(&b.0));
                black_box(x)
            },
            BatchSize::LargeInput,
        );
    });
}

fn bench_all(c: &mut Criterion) {
    bench_granularity(c);
    bench_augfilter_vs_filter(c);
    bench_project_vs_materialize(c);
    bench_sorts(c);
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_all
}
criterion_main!(benches);
