//! Criterion benchmarks for the three paper applications at CI-friendly
//! sizes (full-size runs: `table1`/`table5`/`table6` binaries).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use pam_index::{top_k, InvertedIndex};
use pam_interval::IntervalMap;
use pam_rangetree::RangeTree;
use std::hint::black_box;

fn bench_interval(c: &mut Criterion) {
    let n = 100_000;
    let universe = n as u64 * 10;
    let ivals = workloads::random_intervals(n, 1, universe, 200);
    let im = IntervalMap::from_intervals(ivals.clone());

    c.bench_function("interval_build_100k", |b| {
        b.iter_batched(
            || ivals.clone(),
            |iv| black_box(IntervalMap::from_intervals(iv)),
            BatchSize::LargeInput,
        );
    });
    c.bench_function("interval_stab_10k", |b| {
        let probes = workloads::intervals::stab_points(10_000, 2, universe);
        b.iter(|| black_box(probes.iter().filter(|&&p| im.stab(p)).count()));
    });
    c.bench_function("interval_report_all_1k", |b| {
        let probes = workloads::intervals::stab_points(1_000, 3, universe);
        b.iter(|| {
            black_box(
                probes
                    .iter()
                    .map(|&p| im.report_all(p).len())
                    .sum::<usize>(),
            )
        });
    });
}

fn bench_rangetree(c: &mut Criterion) {
    let n = 50_000;
    let universe = 1u32 << 20;
    let pts = workloads::random_points(n, 4, universe);
    let rt = RangeTree::build(pts.clone());
    let wins = workloads::points::query_windows(1_000, 5, universe, 0.05);

    c.bench_function("rangetree_build_50k", |b| {
        b.iter_batched(
            || pts.clone(),
            |p| black_box(RangeTree::build(p)),
            BatchSize::LargeInput,
        );
    });
    c.bench_function("rangetree_qsum_1k", |b| {
        b.iter(|| {
            black_box(
                wins.iter()
                    .map(|&(xl, xr, yl, yr)| rt.query_sum(xl, xr, yl, yr))
                    .fold(0u64, u64::wrapping_add),
            )
        });
    });
    c.bench_function("rangetree_baseline_build_50k", |b| {
        b.iter_batched(
            || pts.clone(),
            |p| black_box(baselines::StaticRangeTree::build(p)),
            BatchSize::LargeInput,
        );
    });
}

fn bench_index(c: &mut Criterion) {
    let corpus = workloads::Corpus::generate(workloads::CorpusConfig {
        docs: 2_000,
        vocab: 10_000,
        doc_len: 100,
        zipf_s: 1.0,
        seed: 6,
    });
    let idx = InvertedIndex::build(corpus.triples.clone());
    let queries = corpus.query_pairs(1_000, 7);

    c.bench_function("index_build_200k_tokens", |b| {
        b.iter_batched(
            || corpus.triples.clone(),
            |t| black_box(InvertedIndex::build(t)),
            BatchSize::LargeInput,
        );
    });
    c.bench_function("index_and_top10_1k_queries", |b| {
        b.iter(|| {
            black_box(
                queries
                    .iter()
                    .map(|&(x, y)| top_k(&idx.and_query(x, y), 10).len())
                    .sum::<usize>(),
            )
        });
    });
}

fn bench_all(c: &mut Criterion) {
    bench_interval(c);
    bench_rangetree(c);
    bench_index(c);
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_all
}
criterion_main!(benches);
