//! Ablation: the same join-based algorithms across all four balancing
//! schemes (§4's claim that the balancing criteria are fully abstracted
//! in `join` — the schemes should be within a small factor of each
//! other).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use pam::{AugMap, Avl, Balance, RedBlack, SumAug, Treap, WeightBalanced};
use std::hint::black_box;

const N: usize = 100_000;

fn bench_scheme<B: Balance>(c: &mut Criterion) {
    let pairs = workloads::uniform_pairs(N, 1, N as u64 * 4);
    let pairs2 = workloads::uniform_pairs(N, 2, N as u64 * 4);
    let a: AugMap<SumAug<u64, u64>, B> = AugMap::build(pairs.clone());
    let b: AugMap<SumAug<u64, u64>, B> = AugMap::build(pairs2);

    c.bench_function(&format!("build_{}", B::NAME), |bch| {
        bch.iter_batched(
            || pairs.clone(),
            |p| black_box(AugMap::<SumAug<u64, u64>, B>::build(p)),
            BatchSize::LargeInput,
        );
    });
    c.bench_function(&format!("union_{}", B::NAME), |bch| {
        bch.iter_batched(
            || (a.clone(), b.clone()),
            |(x, y)| black_box(x.union_with(y, |p, q| p.wrapping_add(*q))),
            BatchSize::LargeInput,
        );
    });
    c.bench_function(&format!("find_{}", B::NAME), |bch| {
        bch.iter(|| {
            let mut hits = 0usize;
            for i in 0..10_000u64 {
                if a.get(&(workloads::hash64(i) % (N as u64 * 4))).is_some() {
                    hits += 1;
                }
            }
            black_box(hits)
        });
    });
}

fn bench_all(c: &mut Criterion) {
    bench_scheme::<WeightBalanced>(c);
    bench_scheme::<Avl>(c);
    bench_scheme::<RedBlack>(c);
    bench_scheme::<Treap>(c);
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_all
}
criterion_main!(benches);
