//! Shared harness utilities for the table/figure reproduction binaries.
//!
//! Conventions, mirroring the paper's §6:
//!
//! * **T1** — wall time with a single worker thread;
//! * **Tp** — wall time with all hardware threads;
//! * **Spd.** — T1 / Tp;
//! * sizes are the paper's, scaled down by default to laptop scale and
//!   multipliable via the `PAM_SCALE` environment variable (e.g.
//!   `PAM_SCALE=0.1` for a quick smoke run, `PAM_SCALE=10` for the full
//!   sizes on a big machine).
//!
//! Every binary prints the rows of the corresponding paper table/figure
//! with the same row/series structure, so paper-vs-measured comparisons
//! (EXPERIMENTS.md) are one-to-one.

use std::time::Instant;

/// The global size multiplier (`PAM_SCALE`, default 1.0).
pub fn scale() -> f64 {
    std::env::var("PAM_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0)
}

/// Scale a default input size by `PAM_SCALE` (at least 1).
pub fn scaled(n: usize) -> usize {
    ((n as f64) * scale()).max(1.0) as usize
}

/// Wall-time a closure, returning (result, seconds).
pub fn time<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let start = Instant::now();
    let r = f();
    (r, start.elapsed().as_secs_f64())
}

/// Best (minimum) of `k` timed runs of `f` (each run gets fresh input
/// from `mk`).
pub fn time_best_of<I, R>(k: usize, mut mk: impl FnMut() -> I, mut f: impl FnMut(I) -> R) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..k.max(1) {
        let input = mk();
        let start = Instant::now();
        let r = f(input);
        best = best.min(start.elapsed().as_secs_f64());
        drop(r);
    }
    best
}

/// Run `f` on a pool with `p` threads (1 = the paper's "T1" column).
pub fn with_threads<R: Send>(p: usize, f: impl FnOnce() -> R + Send) -> R {
    parlay::with_threads(p, f)
}

/// All hardware threads.
pub fn max_threads() -> usize {
    std::thread::available_parallelism().map_or(2, |n| n.get())
}

/// The thread counts swept in the figure reproductions (paper: 1..144;
/// here: 1..#cores).
pub fn thread_counts() -> Vec<usize> {
    let mut v = vec![1usize];
    let mut p = 2;
    while p < max_threads() {
        v.push(p);
        p *= 2;
    }
    if *v.last().unwrap() != max_threads() {
        v.push(max_threads());
    }
    v
}

/// Simple fixed-width table printer.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells);
    }

    /// Render to stdout.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let line = |cells: &[String]| {
            let mut s = String::new();
            for (i, c) in cells.iter().enumerate() {
                s.push_str(&format!("{:<width$}  ", c, width = widths[i]));
            }
            println!("{}", s.trim_end());
        };
        line(&self.headers);
        println!(
            "{}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  ")
        );
        for row in &self.rows {
            line(row);
        }
    }
}

/// Format seconds with sensible precision.
pub fn fmt_secs(s: f64) -> String {
    if s < 0.001 {
        format!("{:.1}us", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{:.3}s", s)
    }
}

/// Format a throughput in million elements per second.
pub fn fmt_meps(n: usize, secs: f64) -> String {
    format!("{:.2}", n as f64 / secs / 1e6)
}

/// Format a speedup column.
pub fn fmt_spd(t1: f64, tp: f64) -> String {
    format!("{:.2}", t1 / tp)
}

/// Print the standard experiment banner.
pub fn banner(what: &str, paper_ref: &str) {
    println!("=== {what} ===");
    println!(
        "(reproduces {paper_ref}; PAM_SCALE={}, {} hardware threads)",
        scale(),
        max_threads()
    );
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_respects_minimum() {
        assert!(scaled(10) >= 1);
    }

    #[test]
    fn table_prints() {
        let mut t = Table::new(&["a", "bb"]);
        t.row(vec!["1".into(), "2".into()]);
        t.print();
    }

    #[test]
    fn thread_counts_start_at_one() {
        let tc = thread_counts();
        assert_eq!(tc[0], 1);
        assert_eq!(*tc.last().unwrap(), max_threads());
    }

    #[test]
    fn fmt_helpers() {
        assert!(fmt_secs(0.0000005).ends_with("us"));
        assert!(fmt_secs(0.5).ends_with("ms"));
        assert!(fmt_secs(2.0).ends_with('s'));
        assert_eq!(fmt_meps(2_000_000, 1.0), "2.00");
    }
}
