//! Figure 6(b) reproduction: concurrent read throughput vs thread count
//! (YCSB workload C: read-only), PAM vs skiplist / B+ tree / sharded
//! hash map.
//!
//! Paper: structures pre-loaded with 5e7 keys, 1e7 concurrent reads.
//! Shape to check: every structure scales with threads; PAM's reads
//! (pure tree search on an immutable snapshot) are competitive and
//! scale at least as well as the lock-coupled structures.

use pam::{AugMap, SumAug};
use pam_bench::*;
use rayon::prelude::*;

fn main() {
    banner(
        "Figure 6(b): read throughput vs threads (YCSB-C)",
        "Figure 6(b)",
    );
    let n = scaled(2_000_000);
    let reads = scaled(1_000_000);
    let population = workloads::distinct_shuffled_keys(n, 1, 3);
    let probes = workloads::read_probes(reads, 7, &population);

    // pre-load all structures
    let pam: AugMap<SumAug<u64, u64>> = AugMap::build(population.iter().map(|&k| (k, k)).collect());
    let sl = baselines::SkipList::new();
    let bp = baselines::BPlusTree::new();
    let sh = baselines::ShardedMap::new(8, n / 128);
    population.par_iter().for_each(|&k| {
        sl.insert(k, k);
        bp.insert(k, k);
        sh.insert(k, k);
    });

    let mut t = Table::new(&["threads", "PAM", "SkipList", "B+ tree", "ShardedHash"]);
    for p in thread_counts() {
        let pam_t = with_threads(p, || {
            time(|| probes.par_iter().filter(|k| pam.get(k).is_some()).count()).1
        });
        let sl_t = with_threads(p, || {
            time(|| probes.par_iter().filter(|&&k| sl.get(k).is_some()).count()).1
        });
        let bp_t = with_threads(p, || {
            time(|| probes.par_iter().filter(|&&k| bp.get(k).is_some()).count()).1
        });
        let sh_t = with_threads(p, || {
            time(|| probes.par_iter().filter(|&&k| sh.get(k).is_some()).count()).1
        });
        t.row(vec![
            p.to_string(),
            fmt_meps(reads, pam_t),
            fmt_meps(reads, sl_t),
            fmt_meps(reads, bp_t),
            fmt_meps(reads, sh_t),
        ]);
    }
    t.print();
    println!("\n(values are throughput in millions of reads per second)");
}
