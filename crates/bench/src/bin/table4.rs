//! Table 4 reproduction: space accounting — per-node augmentation
//! overhead, and node sharing from persistence in `union` and in the
//! range tree's inner maps.
//!
//! Paper shape to check: the augmented value adds one word per node
//! (48B vs 40B there); union with a much smaller map shares ~half of the
//! theoretical node count; equal-size interleaved unions share almost
//! nothing; the range tree's inner trees share >10% of their nodes.

use pam::stats::{node_size, shared_with, unique_nodes};
use pam::{AugMap, NoAug, SumAug, WeightBalanced};
use pam_bench::*;
use pam_rangetree::{InnerSpec, OuterSpec, RangeTree};

type M = AugMap<SumAug<u64, u64>>;

fn main() {
    banner(
        "Table 4: space usage and node sharing",
        "Table 4 of the paper",
    );

    // ---- augmentation overhead per node ----
    let with_aug = node_size::<SumAug<u64, u64>, WeightBalanced>();
    let without = node_size::<NoAug<u64, u64>, WeightBalanced>();
    println!("node size (augmented, u64 sum):   {with_aug} B (+16B Arc refcounts)");
    println!("node size (non-augmented):        {without} B (+16B Arc refcounts)");
    println!(
        "augmentation overhead:            {} B/node ({:.0}%)",
        with_aug - without,
        100.0 * (with_aug - without) as f64 / without as f64
    );
    println!();

    // ---- union sharing ----
    let n = scaled(1_000_000);
    let mut t = Table::new(&["Func", "n", "m", "#nodes theory", "actual #nodes", "saving"]);
    for m in [n, n / 1000] {
        let a: M = AugMap::build(
            workloads::uniform_pairs(n, 1, n as u64 * 4)
                .into_iter()
                .map(|(k, v)| (k * 2, v)) // evens
                .collect(),
        );
        let b: M = AugMap::build(
            workloads::uniform_pairs(m, 2, n as u64 * 4)
                .into_iter()
                .map(|(k, v)| (k * 2 + 1, v)) // odds: disjoint keys
                .collect(),
        );
        let (asz, bsz) = (a.len(), b.len());
        let u = a.clone().union_with(b.clone(), |x, y| x.wrapping_add(*y));
        // "theory" = no sharing: every input node surviving into the
        // output would be copied, so inputs + output are all distinct.
        let theory = asz + bsz + u.len();
        let actual = unique_nodes(&[a.root(), b.root(), u.root()]);
        let (_, shared) = shared_with(u.root(), &[a.root(), b.root()]);
        t.row(vec![
            "Union".into(),
            asz.to_string(),
            bsz.to_string(),
            theory.to_string(),
            actual.to_string(),
            format!(
                "{:.1}% ({} output nodes reused)",
                100.0 * (theory - actual) as f64 / theory as f64,
                shared
            ),
        ]);
    }
    t.print();
    println!();

    // ---- range tree inner-node sharing ----
    let n_pts = scaled(100_000);
    let pts = workloads::random_points(n_pts, 3, 1 << 20);
    let rt = RangeTree::build(pts);
    // Collect every inner-map root reachable from outer nodes, then count
    // distinct inner nodes vs the no-sharing total (sum of inner sizes).
    let mut inner_roots: Vec<&pam::Tree<InnerSpec, WeightBalanced>> = Vec::new();
    let mut total_inner_entries = 0usize;
    let mut stack: Vec<&pam::Node<OuterSpec, WeightBalanced>> = Vec::new();
    if let Some(r) = rt.outer().root().as_deref() {
        stack.push(r);
    }
    while let Some(nd) = stack.pop() {
        inner_roots.push(nd.aug().root());
        total_inner_entries += nd.aug().len();
        if let Some((l, r)) = nd.children() {
            if let Some(l) = l.as_deref() {
                stack.push(l);
            }
            if let Some(r) = r.as_deref() {
                stack.push(r);
            }
        }
    }
    let distinct = unique_nodes(&inner_roots);
    let mut t2 = Table::new(&["Structure", "#nodes theory", "actual #nodes", "saving"]);
    t2.row(vec![
        format!("Range tree inner maps (n={n_pts})"),
        total_inner_entries.to_string(),
        distinct.to_string(),
        format!(
            "{:.1}%",
            100.0 * (total_inner_entries - distinct) as f64 / total_inner_entries as f64
        ),
    ]);
    t2.row(vec![
        "Range tree outer map".into(),
        rt.len().to_string(),
        unique_nodes(&[rt.outer().root()]).to_string(),
        "0.0%".into(),
    ]);
    t2.print();
}
