// focused check: union aug vs noaug, interleaved best-of-3
use pam::{AugMap, NoAug, SumAug};
fn main() {
    let n = 1_000_000;
    let pa = workloads::uniform_pairs(n, 1, n as u64 * 4);
    let pb = workloads::uniform_pairs(n, 2, n as u64 * 4);
    let a: AugMap<SumAug<u64, u64>> = AugMap::build(pa.clone());
    let b: AugMap<SumAug<u64, u64>> = AugMap::build(pb.clone());
    let na: AugMap<NoAug<u64, u64>> = AugMap::build(pa);
    let nb: AugMap<NoAug<u64, u64>> = AugMap::build(pb);
    let mut t_aug = f64::INFINITY;
    let mut t_no = f64::INFINITY;
    for _ in 0..4 {
        let s = std::time::Instant::now();
        let u = a.clone().union_with(b.clone(), |x, y| x.wrapping_add(*y));
        t_aug = t_aug.min(s.elapsed().as_secs_f64());
        drop(u);
        let s = std::time::Instant::now();
        let u = na.clone().union_with(nb.clone(), |_x, y| *y);
        t_no = t_no.min(s.elapsed().as_secs_f64());
        drop(u);
    }
    println!("union aug:   {:.1}ms", t_aug * 1e3);
    println!("union noaug: {:.1}ms", t_no * 1e3);
    println!("overhead:    {:.1}%", 100.0 * (t_aug - t_no) / t_no);
}
