//! Table 1 reproduction: the headline construct/query times and speedups
//! of the four applications (range sum, interval tree, 2D range tree,
//! inverted index).
//!
//! Paper sizes: 10^8–10^10 elements on 72 cores. Defaults here are
//! laptop-scale (see each row's n/q columns); the *shape* to check is
//! construct work ~ n log n, query times in the µs range, and parallel
//! speedup > 1 on every row.

use pam::{AugMap, SumAug};
use pam_bench::*;
use pam_index::{top_k, InvertedIndex};
use pam_interval::IntervalMap;
use pam_rangetree::RangeTree;
use rayon::prelude::*;

fn main() {
    banner(
        "Table 1: application construct/query times",
        "Table 1 of the paper",
    );
    let p = max_threads();
    let mut t = Table::new(&[
        "Application",
        "n",
        "q",
        "Con.T1",
        "Con.Tp",
        "Con.Spd",
        "Qry.T1",
        "Qry.Tp",
        "Qry.Spd",
    ]);

    // ---- Range sum (Equation 1) ----
    {
        let n = scaled(2_000_000);
        let q = scaled(1_000_000);
        let pairs = workloads::uniform_pairs(n, 1, n as u64 * 4);
        let build = |()| AugMap::<SumAug<u64, u64>>::build(pairs.clone());
        let _warm = with_threads(p, || time_best_of(1, || (), build));
        let c1 = with_threads(1, || time_best_of(2, || (), build));
        let cp = with_threads(p, || time_best_of(2, || (), build));
        let m = AugMap::<SumAug<u64, u64>>::build(pairs.clone());
        let windows: Vec<(u64, u64)> = (0..q as u64)
            .map(|i| {
                let lo = workloads::hash64(i) % (n as u64 * 4);
                (lo, lo + 1000)
            })
            .collect();
        let run_q = |m: &AugMap<SumAug<u64, u64>>| {
            windows
                .par_iter()
                .map(|&(lo, hi)| m.aug_range(&lo, &hi))
                .fold(|| 0u64, |s, x| s.wrapping_add(x))
                .reduce(|| 0u64, u64::wrapping_add)
        };
        let _warm = with_threads(p, || time(|| run_q(&m)).1);
        let q1 = with_threads(1, || time(|| run_q(&m)).1.min(time(|| run_q(&m)).1));
        let qp = with_threads(p, || time(|| run_q(&m)).1.min(time(|| run_q(&m)).1));
        t.row(vec![
            "Range Sum".into(),
            n.to_string(),
            q.to_string(),
            fmt_secs(c1),
            fmt_secs(cp),
            fmt_spd(c1, cp),
            fmt_secs(q1),
            fmt_secs(qp),
            fmt_spd(q1, qp),
        ]);
    }

    // ---- Interval tree ----
    {
        let n = scaled(1_000_000);
        let q = scaled(1_000_000);
        let universe = n as u64 * 10;
        let ivals = workloads::random_intervals(n, 2, universe, 200);
        let build = |()| IntervalMap::from_intervals(ivals.clone());
        let _warm = with_threads(p, || time_best_of(1, || (), build));
        let c1 = with_threads(1, || time_best_of(2, || (), build));
        let cp = with_threads(p, || time_best_of(2, || (), build));
        let m = IntervalMap::from_intervals(ivals.clone());
        let stabs = workloads::intervals::stab_points(q, 3, universe);
        let run_q = |m: &IntervalMap| stabs.par_iter().filter(|&&x| m.stab(x)).count();
        let _warm = with_threads(p, || time(|| run_q(&m)).1);
        let q1 = with_threads(1, || time(|| run_q(&m)).1.min(time(|| run_q(&m)).1));
        let qp = with_threads(p, || time(|| run_q(&m)).1.min(time(|| run_q(&m)).1));
        t.row(vec![
            "Interval Tree".into(),
            n.to_string(),
            q.to_string(),
            fmt_secs(c1),
            fmt_secs(cp),
            fmt_spd(c1, cp),
            fmt_secs(q1),
            fmt_secs(qp),
            fmt_spd(q1, qp),
        ]);
    }

    // ---- 2D range tree ----
    {
        let n = scaled(200_000);
        let q = scaled(20_000);
        let universe = 1u32 << 20;
        let pts = workloads::random_points(n, 4, universe);
        let build = |()| RangeTree::build(pts.clone());
        let _warm = with_threads(p, || time_best_of(1, || (), build));
        let c1 = with_threads(1, || time_best_of(2, || (), build));
        let cp = with_threads(p, || time_best_of(2, || (), build));
        let rt = RangeTree::build(pts.clone());
        let windows = workloads::points::query_windows(q, 5, universe, 0.1);
        let run_q = |rt: &RangeTree| {
            windows
                .par_iter()
                .map(|&(xl, xr, yl, yr)| rt.query_sum(xl, xr, yl, yr))
                .fold(|| 0u64, |s, x| s.wrapping_add(x))
                .reduce(|| 0u64, u64::wrapping_add)
        };
        let _warm = with_threads(p, || time(|| run_q(&rt)).1);
        let q1 = with_threads(1, || time(|| run_q(&rt)).1.min(time(|| run_q(&rt)).1));
        let qp = with_threads(p, || time(|| run_q(&rt)).1.min(time(|| run_q(&rt)).1));
        t.row(vec![
            "2d Range Tree".into(),
            n.to_string(),
            q.to_string(),
            fmt_secs(c1),
            fmt_secs(cp),
            fmt_spd(c1, cp),
            fmt_secs(q1),
            fmt_secs(qp),
            fmt_spd(q1, qp),
        ]);
    }

    // ---- Inverted index ----
    {
        let docs = scaled(20_000);
        let q = scaled(10_000);
        let corpus = workloads::Corpus::generate(workloads::CorpusConfig {
            docs,
            vocab: 50_000.min(docs * 5),
            doc_len: 100,
            zipf_s: 1.0,
            seed: 6,
        });
        let n = corpus.tokens();
        let build = |()| InvertedIndex::build(corpus.triples.clone());
        let _warm = with_threads(p, || time_best_of(1, || (), build));
        let c1 = with_threads(1, || time_best_of(2, || (), build));
        let cp = with_threads(p, || time_best_of(2, || (), build));
        let idx = InvertedIndex::build(corpus.triples.clone());
        let queries = corpus.query_pairs(q, 7);
        let run_q = |idx: &InvertedIndex| {
            queries
                .par_iter()
                .map(|&(a, b)| top_k(&idx.and_query(a, b), 10).len())
                .sum::<usize>()
        };
        let _warm = with_threads(p, || time(|| run_q(&idx)).1);
        let q1 = with_threads(1, || time(|| run_q(&idx)).1.min(time(|| run_q(&idx)).1));
        let qp = with_threads(p, || time(|| run_q(&idx)).1.min(time(|| run_q(&idx)).1));
        t.row(vec![
            "Inverted Index".into(),
            n.to_string(),
            q.to_string(),
            fmt_secs(c1),
            fmt_secs(cp),
            fmt_spd(c1, cp),
            fmt_secs(q1),
            fmt_secs(qp),
            fmt_spd(q1, qp),
        ]);
    }

    t.print();
}
