//! Table 3 reproduction: timings for the core PAM functions, with and
//! without augmentation, against the STL-equivalent sequential baselines
//! and the MCSTL-equivalent parallel array merge.
//!
//! Paper sizes: n = 10^8 (10^10 for the highlighted rows), m ∈ {10^8,
//! 10^5}. Default here: n = 10^6, m ∈ {10^6, 10^3} (scale with
//! `PAM_SCALE`). Expected *shape*: augmentation costs ≲10% on general
//! map functions; aug-range beats non-aug range-sum by orders of
//! magnitude; aug-filter beats plain filter when the output is small;
//! Union-Array wins at n = m but loses badly at n ≫ m; Union-Tree and
//! repeated insertion lose everywhere.

use pam::{AugMap, MaxAug, NoAug, SumAug};
use pam_bench::*;
use rayon::prelude::*;

type Sum = AugMap<SumAug<u64, u64>>;
type Max = AugMap<MaxAug<u64, u64>>;
type Plain = AugMap<NoAug<u64, u64>>;

/// Time `f` on 1 thread and on all threads; append a row.
fn both(
    t: &mut Table,
    p: usize,
    label: &str,
    n_lbl: usize,
    m_lbl: usize,
    mut f: impl FnMut() -> f64 + Send,
) {
    // warm up caches/allocator at both pool sizes, then take best-of-2
    let _w1 = with_threads(1, &mut f);
    let _wp = with_threads(p, &mut f);
    let t1 = with_threads(1, &mut f).min(with_threads(1, &mut f));
    let tp = with_threads(p, &mut f).min(with_threads(p, f));
    t.row(vec![
        label.into(),
        n_lbl.to_string(),
        if m_lbl == 0 {
            "-".into()
        } else {
            m_lbl.to_string()
        },
        fmt_secs(t1),
        fmt_secs(tp),
        fmt_spd(t1, tp),
    ]);
}

/// Append a sequential-only row.
fn seq_only(t: &mut Table, label: &str, n_lbl: usize, m_lbl: usize, secs: f64) {
    t.row(vec![
        label.into(),
        n_lbl.to_string(),
        if m_lbl == 0 {
            "-".into()
        } else {
            m_lbl.to_string()
        },
        fmt_secs(secs),
        "-".into(),
        "-".into(),
    ]);
}

fn main() {
    banner("Table 3: core function timings", "Table 3 of the paper");
    let n = scaled(1_000_000);
    let m_small = scaled(1_000);
    let key_range = (n as u64) * 4;
    let p = max_threads();
    let tp_hdr = format!("T{p}");

    let pairs_a = workloads::uniform_pairs(n, 1, key_range);
    let pairs_b = workloads::uniform_pairs(n, 2, key_range);
    let pairs_small = workloads::uniform_pairs(m_small, 3, key_range);

    let mut t = Table::new(&["Function", "n", "m", "T1", &tp_hdr, "Spd."]);

    // ---------------- PAM (with augmentation) ----------------
    let a: Sum = AugMap::build(pairs_a.clone());
    let b: Sum = AugMap::build(pairs_b.clone());
    let small: Sum = AugMap::build(pairs_small.clone());

    both(&mut t, p, "Union", n, n, || {
        time(|| a.clone().union_with(b.clone(), |x, y| x.wrapping_add(*y))).1
    });
    both(&mut t, p, "Union", n, m_small, || {
        time(|| {
            a.clone()
                .union_with(small.clone(), |x, y| x.wrapping_add(*y))
        })
        .1
    });

    let probes: Vec<u64> = (0..n as u64)
        .map(|i| workloads::hash64(i ^ 77) % key_range)
        .collect();
    both(&mut t, p, "Find", n, n, || {
        time(|| probes.par_iter().filter(|k| a.get(k).is_some()).count()).1
    });

    let (_, insert_t1) = with_threads(1, || {
        time(|| {
            let mut m = Sum::new();
            for &(k, v) in &pairs_a {
                m.insert(k, v);
            }
            m
        })
    });
    seq_only(&mut t, "Insert", n, 0, insert_t1);

    both(&mut t, p, "Build", n, 0, || {
        time(|| Sum::build(pairs_a.clone())).1
    });
    both(&mut t, p, "Filter", n, 0, || {
        time(|| a.clone().filter(|k, _| k % 2 == 0)).1
    });
    both(&mut t, p, "Multi-Insert", n, n, || {
        time(|| {
            let mut m = a.clone();
            m.multi_insert(pairs_b.clone());
            m
        })
        .1
    });
    both(&mut t, p, "Multi-Insert", n, m_small, || {
        time(|| {
            let mut m = a.clone();
            m.multi_insert(pairs_small.clone());
            m
        })
        .1
    });

    // m extractions / range-sum probes over small windows
    let windows: Vec<(u64, u64)> = (0..n as u64)
        .map(|i| {
            let lo = workloads::hash64(i ^ 0x5e) % key_range;
            (lo, lo + 40)
        })
        .collect();
    both(&mut t, p, "Range", n, n, || {
        time(|| {
            windows
                .par_iter()
                .map(|&(lo, hi)| a.range(&lo, &hi).len())
                .sum::<usize>()
        })
        .1
    });
    both(&mut t, p, "AugLeft", n, n, || {
        time(|| {
            probes
                .par_iter()
                .map(|k| a.aug_left(k))
                .fold(|| 0u64, |s, x| s.wrapping_add(x))
                .reduce(|| 0u64, u64::wrapping_add)
        })
        .1
    });
    both(&mut t, p, "AugRange", n, n, || {
        time(|| {
            windows
                .par_iter()
                .map(|&(lo, hi)| a.aug_range(&lo, &hi))
                .fold(|| 0u64, |s, x| s.wrapping_add(x))
                .reduce(|| 0u64, u64::wrapping_add)
        })
        .1
    });

    // AugFilter on a max-augmented map; output sizes ~ n/100 and ~ n/1000
    let maxmap: Max = AugMap::build(pairs_a.clone());
    let mut sorted_vals: Vec<u64> = pairs_a.iter().map(|&(_, v)| v).collect();
    sorted_vals.sort_unstable();
    for target in [n / 100, n / 1000] {
        let theta = sorted_vals[sorted_vals.len() - target.max(1)];
        both(&mut t, p, "AugFilter", n, target, || {
            time(|| maxmap.aug_filter(|&a| a > theta)).1
        });
    }

    // ---------------- Non-augmented PAM ----------------
    let pa: Plain = AugMap::build(pairs_a.clone());
    let pb: Plain = AugMap::build(pairs_b.clone());
    both(&mut t, p, "Union (noaug)", n, n, || {
        time(|| pa.clone().union_with(pb.clone(), |_x, y| *y)).1
    });
    let (_, insert_t1) = with_threads(1, || {
        time(|| {
            let mut m = Plain::new();
            for &(k, v) in &pairs_a {
                m.insert(k, v);
            }
            m
        })
    });
    seq_only(&mut t, "Insert (noaug)", n, 0, insert_t1);
    both(&mut t, p, "Build (noaug)", n, 0, || {
        time(|| Plain::build(pairs_a.clone())).1
    });
    both(&mut t, p, "Range (noaug)", n, n, || {
        time(|| {
            windows
                .par_iter()
                .map(|&(lo, hi)| pa.range(&lo, &hi).len())
                .sum::<usize>()
        })
        .1
    });

    // non-augmented "AugRange": materialize + scan (linear in range size)
    let m_q = scaled(100).max(1);
    let wide: Vec<(u64, u64)> = (0..m_q as u64)
        .map(|i| {
            let lo = workloads::hash64(i ^ 0xF0) % key_range;
            let hi = lo.saturating_add(workloads::hash64(i ^ 0xF1) % key_range);
            (lo, hi)
        })
        .collect();
    both(&mut t, p, "AugRange (noaug)", n, m_q, || {
        time(|| {
            wide.par_iter()
                .map(|&(lo, hi)| {
                    pa.range(&lo, &hi)
                        .map_reduce(|_, &v| v, u64::wrapping_add, 0)
                })
                .fold(|| 0u64, |s, x| s.wrapping_add(x))
                .reduce(|| 0u64, u64::wrapping_add)
        })
        .1
    });
    // non-augmented "AugFilter": a plain linear filter
    for target in [n / 100, n / 1000] {
        let theta = sorted_vals[sorted_vals.len() - target.max(1)];
        both(&mut t, p, "AugFilter (noaug)", n, target, || {
            time(|| pa.clone().filter(|_, &v| v > theta)).1
        });
    }

    // ---------------- STL-equivalent baselines (sequential) ----------------
    let mut ra = baselines::RbTree::new();
    let mut rb = baselines::RbTree::new();
    let mut rsmall = baselines::RbTree::new();
    for &(k, v) in &pairs_a {
        ra.insert(k, v);
    }
    for &(k, v) in &pairs_b {
        rb.insert(k, v);
    }
    for &(k, v) in &pairs_small {
        rsmall.insert(k, v);
    }
    let (_, t1) =
        time(|| baselines::RbTree::union_by_insertion(&ra, &rb, |x, y| x.wrapping_add(y)));
    seq_only(&mut t, "Union-Tree (STL)", n, n, t1);
    let (_, t1) =
        time(|| baselines::RbTree::union_by_insertion(&ra, &rsmall, |x, y| x.wrapping_add(y)));
    seq_only(&mut t, "Union-Tree (STL)", n, m_small, t1);

    let sa = baselines::SortedVecMap::from_unsorted(pairs_a.clone());
    let sb = baselines::SortedVecMap::from_unsorted(pairs_b.clone());
    let ss = baselines::SortedVecMap::from_unsorted(pairs_small.clone());
    let (_, t1) = time(|| sa.union(&sb, |x, y| x.wrapping_add(y)));
    seq_only(&mut t, "Union-Array (STL)", n, n, t1);
    let (_, t1) = time(|| sa.union(&ss, |x, y| x.wrapping_add(y)));
    seq_only(&mut t, "Union-Array (STL)", n, m_small, t1);

    let (_, t1) = time(|| {
        let mut m = baselines::RbTree::new();
        for &(k, v) in &pairs_a {
            m.insert(k, v);
        }
        m
    });
    seq_only(&mut t, "Insert (STL rbtree)", n, 0, t1);
    let (_, t1) = time(|| {
        let mut m = std::collections::BTreeMap::new();
        for &(k, v) in &pairs_a {
            m.insert(k, v);
        }
        m
    });
    seq_only(&mut t, "Insert (std BTreeMap)", n, 0, t1);

    // MCSTL-equivalent parallel bulk insertion into a sorted array
    both(&mut t, p, "Multi-Insert (MCSTL)", n, n, || {
        time(|| {
            baselines::par_merge::par_union(sa.as_slice(), sb.as_slice(), |x, y| x.wrapping_add(y))
        })
        .1
    });
    both(&mut t, p, "Multi-Insert (MCSTL)", n, m_small, || {
        time(|| {
            baselines::par_merge::par_union(sa.as_slice(), ss.as_slice(), |x, y| x.wrapping_add(y))
        })
        .1
    });

    t.print();
}
