//! Figure 6(c) reproduction: parallel running time of UNION and BUILD as
//! a function of input size.
//!
//! Paper: union of a fixed 10^8-key map with maps of size 10^2..10^8;
//! build of 10^2..10^8 elements. Shape to check: union time grows
//! sub-linearly in m while m ≪ n (the O(m log(n/m+1)) bound) and the
//! curves flatten at small sizes where parallelism runs out.

use pam::{AugMap, SumAug};
use pam_bench::*;

type M = AugMap<SumAug<u64, u64>>;

fn main() {
    banner(
        "Figure 6(c): union & build time vs input size",
        "Figure 6(c)",
    );
    let n = scaled(2_000_000);
    let p = max_threads();
    let big: M = AugMap::build(workloads::uniform_pairs(n, 1, n as u64 * 4));

    let mut t = Table::new(&[
        "m",
        &format!("Union(n={n}, m) T{p}"),
        &format!("Build(m) T{p}"),
    ]);
    let mut m = 100usize;
    while m <= n {
        let pairs = workloads::uniform_pairs(m, 2, n as u64 * 4);
        let small: M = AugMap::build(pairs.clone());
        let ut = with_threads(p, || {
            let mut best = f64::INFINITY;
            for _ in 0..3 {
                let (a, b) = (big.clone(), small.clone());
                best = best.min(time(|| a.union_with(b, |x, y| x.wrapping_add(*y))).1);
            }
            best
        });
        let bt = with_threads(p, || {
            let mut best = f64::INFINITY;
            for _ in 0..3 {
                let ps = pairs.clone();
                best = best.min(time(|| M::build(ps)).1);
            }
            best
        });
        t.row(vec![m.to_string(), fmt_secs(ut), fmt_secs(bt)]);
        m *= 10;
    }
    t.print();
}
