//! Figure 6(d) reproduction: interval tree construction and query
//! speedup vs thread count.
//!
//! Paper: n = 10^8 intervals, speedup up to 63x (build) / 92x (query) on
//! 144 hyperthreads. Shape to check: both curves rise monotonically with
//! the thread count (here capped by the hardware).

use pam_bench::*;
use pam_interval::IntervalMap;
use rayon::prelude::*;

fn main() {
    banner(
        "Figure 6(d): interval tree speedup vs threads",
        "Figure 6(d)",
    );
    let n = scaled(1_000_000);
    let q = scaled(1_000_000);
    let universe = n as u64 * 10;
    let ivals = workloads::random_intervals(n, 1, universe, 200);
    let stabs = workloads::intervals::stab_points(q, 2, universe);
    let im = IntervalMap::from_intervals(ivals.clone());

    let _warm = with_threads(1, || time(|| IntervalMap::from_intervals(ivals.clone())).1);
    let build_t1 = with_threads(1, || {
        time(|| IntervalMap::from_intervals(ivals.clone()))
            .1
            .min(time(|| IntervalMap::from_intervals(ivals.clone())).1)
    });
    let query_t1 = with_threads(1, || {
        time(|| stabs.par_iter().filter(|&&x| im.stab(x)).count()).1
    });

    let mut t = Table::new(&["threads", "Build spd", "Query spd"]);
    for p in thread_counts() {
        let bt = with_threads(p, || time(|| IntervalMap::from_intervals(ivals.clone())).1);
        let qt = with_threads(p, || {
            time(|| stabs.par_iter().filter(|&&x| im.stab(x)).count()).1
        });
        t.row(vec![
            p.to_string(),
            fmt_spd(build_t1, bt),
            fmt_spd(query_t1, qt),
        ]);
    }
    t.print();
}
