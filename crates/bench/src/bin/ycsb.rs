//! YCSB-style mixed read/write benchmark for the `pam-store` versioned
//! snapshot store.
//!
//! Reproduces the shape of the standard YCSB core workloads against
//! `VersionedStore` (reads pin the current version; writes flow through
//! the group-commit pipeline):
//!
//! * **A** — 50% reads / 50% writes (update-heavy),
//! * **B** — 95% reads /  5% writes (read-heavy),
//! * **C** — 100% reads,
//! * plus a **range** mix (90% point reads / 5% range scans / 5% writes)
//!   and a **sum** mix exercising `aug_range` (the augmented O(log n)
//!   range sum — the query classic stores answer with a full scan).
//!
//! For each mix the driver sweeps the group-commit window to expose the
//! batching/latency trade-off: wider windows mean bigger batches, fewer
//! `multi_insert`s, higher write throughput — at the cost of commit
//! latency. Keys are drawn uniformly; `PAM_SCALE` scales the sizes.
//!
//! With `--durability {off,wal,wal-fsync}` the driver instead measures
//! what the write-ahead log costs: workload A against an in-memory
//! store, a WAL'd store (`NoSync`), and/or a per-epoch-fsync store
//! (`SyncEachEpoch`), reporting the commit-latency deltas. (`all` runs
//! the full comparison.)

use pam::SumAug;
use pam_bench::*;
use pam_store::{DurabilityConfig, DurableStore, StoreConfig, SyncPolicy, VersionedStore};
use std::sync::Arc;
use std::time::Duration;
use workloads::hash64;

type Store = VersionedStore<SumAug<u64, u64>>;
type Durable = DurableStore<SumAug<u64, u64>>;

struct Mix {
    name: &'static str,
    read_pct: u32,
    scan_pct: u32,
    sum_pct: u32,
}

const MIXES: &[Mix] = &[
    Mix {
        name: "A (50r/50w)",
        read_pct: 50,
        scan_pct: 0,
        sum_pct: 0,
    },
    Mix {
        name: "B (95r/5w)",
        read_pct: 95,
        scan_pct: 0,
        sum_pct: 0,
    },
    Mix {
        name: "C (100r)",
        read_pct: 100,
        scan_pct: 0,
        sum_pct: 0,
    },
    Mix {
        name: "range (90r/5s/5w)",
        read_pct: 90,
        scan_pct: 5,
        sum_pct: 0,
    },
    Mix {
        name: "augsum (90r/5q/5w)",
        read_pct: 90,
        scan_pct: 0,
        sum_pct: 5,
    },
];

/// Drive `threads × ops_per_thread` mixed operations against a store
/// handle; returns the wall-clock seconds (including the final flush).
fn drive(
    store: &Arc<Store>,
    mix: &Mix,
    threads: usize,
    ops_per_thread: usize,
    key_space: u64,
) -> f64 {
    let (read_pct, scan_pct, sum_pct) = (mix.read_pct, mix.scan_pct, mix.sum_pct);
    let (_, secs) = time(|| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let s = store.clone();
                std::thread::spawn(move || {
                    let mut acc = 0u64;
                    for i in 0..ops_per_thread {
                        let r = hash64((t as u64) << 32 | i as u64);
                        let k = hash64(r) % key_space;
                        let dice = (r % 100) as u32;
                        if dice < read_pct {
                            acc = acc.wrapping_add(s.get(&k).unwrap_or(0));
                        } else if dice < read_pct + scan_pct {
                            acc = acc.wrapping_add(s.range(&k, &(k + 1000)).len() as u64);
                        } else if dice < read_pct + scan_pct + sum_pct {
                            acc = acc.wrapping_add(s.aug_range(&k, &(k + 100_000)));
                        } else {
                            s.put(k, i as u64);
                        }
                    }
                    std::hint::black_box(acc)
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        store.flush();
    });
    secs
}

fn run_mix(
    mix: &Mix,
    window: Duration,
    threads: usize,
    preload: usize,
    ops_per_thread: usize,
    key_space: u64,
) -> (f64, pam_store::StoreStats) {
    let store = Arc::new(Store::from_map(
        pam::AugMap::build(
            (0..preload as u64)
                .map(|i| (hash64(i) % key_space, i))
                .collect(),
        ),
        StoreConfig {
            batch_window: window,
            ..StoreConfig::default()
        },
    ));
    let secs = drive(&store, mix, threads, ops_per_thread, key_space);
    (secs, store.stats())
}

/// The `--durability` comparison: workload A with the WAL off, on
/// without fsync, and on with per-epoch group fsync.
fn run_durability(mode: &str, threads: usize, preload: usize, ops_per_thread: usize) {
    let key_space = (preload as u64) * 4;
    let window = Duration::from_micros(200);
    let mix = &MIXES[0]; // A: 50r/50w — the write-heavy stressor
    let store_config = StoreConfig {
        batch_window: window,
        ..StoreConfig::default()
    };
    let modes: Vec<&str> = match mode {
        "all" => vec!["off", "wal", "wal-fsync"],
        "off" => vec!["off"],
        m => vec!["off", m], // always include the baseline for the delta
    };

    let mut table = Table::new(&[
        "durability",
        "Mops/s",
        "commits",
        "mean commit",
        "max commit",
        "wal KiB",
        "fsyncs",
        "Δ mean commit",
    ]);
    let mut baseline_mean: Option<Duration> = None;
    for m in modes {
        // durable stores live in a scratch dir wiped per run
        let dir = std::env::temp_dir().join(format!("pam-ycsb-wal-{}-{m}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let (durable, store): (Option<Durable>, Arc<Store>) = match m {
            "off" => (None, Arc::new(Store::with_config(store_config.clone()))),
            "wal" | "wal-fsync" => {
                let sync = if m == "wal" {
                    SyncPolicy::NoSync
                } else {
                    SyncPolicy::SyncEachEpoch
                };
                let d = Durable::open(
                    &dir,
                    store_config.clone(),
                    DurabilityConfig {
                        sync,
                        checkpoint_every_bytes: None, // measure the log alone
                        ..DurabilityConfig::default()
                    },
                )
                .expect("open durable store");
                let handle = d.handle();
                (Some(d), handle)
            }
            other => {
                eprintln!("unknown --durability mode {other:?} (want off|wal|wal-fsync|all)");
                std::process::exit(2);
            }
        };
        store
            .put_all((0..preload as u64).map(|i| (hash64(i) % key_space, i)))
            .wait();
        let secs = drive(&store, mix, threads, ops_per_thread, key_space);
        let stats = durable
            .as_ref()
            .map_or_else(|| store.stats(), |d| d.stats());
        let delta = match (m, baseline_mean) {
            ("off", _) => {
                baseline_mean = Some(stats.mean_commit);
                "baseline".to_string()
            }
            (_, Some(base)) => format!(
                "{:+.1} µs",
                (stats.mean_commit.as_secs_f64() - base.as_secs_f64()) * 1e6
            ),
            _ => "-".to_string(),
        };
        table.row(vec![
            m.to_string(),
            fmt_meps(threads * ops_per_thread, secs),
            stats.commits.to_string(),
            format!("{:?}", stats.mean_commit),
            format!("{:?}", stats.max_commit),
            (stats.durability.wal_bytes / 1024).to_string(),
            stats.durability.wal_fsyncs.to_string(),
            delta,
        ]);
        drop(durable);
        let _ = std::fs::remove_dir_all(&dir);
    }
    table.print();
    println!(
        "\n(one WAL record + at most one group fsync per epoch: the cost is \
         amortized over every writer in the {window:?} window)"
    );
}

fn main() {
    banner(
        "YCSB-style mixed workloads on pam-store",
        "the serving-layer extension of §4 (group commit + snapshot reads)",
    );
    let threads = max_threads();
    let preload = scaled(200_000);
    let ops_per_thread = scaled(50_000);
    let key_space = (preload as u64) * 4;

    // `--durability {off,wal,wal-fsync,all}`: measure the WAL instead of
    // sweeping the group-commit window.
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--durability") {
        let mode = args.get(i + 1).map(String::as_str).unwrap_or("all");
        println!(
            "{} threads, {preload} preloaded keys, {ops_per_thread} ops/thread, workload A\n",
            threads
        );
        run_durability(mode, threads, preload, ops_per_thread);
        return;
    }
    let windows = [
        Duration::ZERO,
        Duration::from_micros(50),
        Duration::from_micros(200),
        Duration::from_millis(1),
    ];

    println!(
        "{} threads, {preload} preloaded keys, {ops_per_thread} ops/thread\n",
        threads
    );
    let mut table = Table::new(&[
        "mix",
        "window",
        "Mops/s",
        "commits",
        "mean batch",
        "mean commit",
        "max commit",
    ]);
    for mix in MIXES {
        for &window in &windows {
            let (secs, stats) = run_mix(mix, window, threads, preload, ops_per_thread, key_space);
            let total_ops = threads * ops_per_thread;
            table.row(vec![
                mix.name.to_string(),
                format!("{window:?}"),
                fmt_meps(total_ops, secs),
                stats.commits.to_string(),
                format!("{:.1}", stats.mean_batch()),
                format!("{:?}", stats.mean_commit),
                format!("{:?}", stats.max_commit),
            ]);
            // read-only mixes do not depend on the window; run once
            if mix.read_pct == 100 {
                break;
            }
        }
    }
    table.print();
    println!(
        "\n(wider window => larger batches => fewer multi_inserts; \
         reads always pin the current version and never block)"
    );
}
