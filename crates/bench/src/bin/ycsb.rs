//! YCSB-style mixed read/write benchmark for the `pam-store` versioned
//! snapshot store.
//!
//! Reproduces the shape of the standard YCSB core workloads against
//! `VersionedStore` (reads pin the current version; writes flow through
//! the group-commit pipeline):
//!
//! * **A** — 50% reads / 50% writes (update-heavy),
//! * **B** — 95% reads /  5% writes (read-heavy),
//! * **C** — 100% reads,
//! * plus a **range** mix (90% point reads / 5% range scans / 5% writes)
//!   and a **sum** mix exercising `aug_range` (the augmented O(log n)
//!   range sum — the query classic stores answer with a full scan).
//!
//! For each mix the driver sweeps the group-commit window to expose the
//! batching/latency trade-off: wider windows mean bigger batches, fewer
//! `multi_insert`s, higher write throughput — at the cost of commit
//! latency. Keys are drawn uniformly; `PAM_SCALE` scales the sizes.
//!
//! With `--durability {off,wal,wal-fsync,wal-bytes}` the driver instead
//! measures what the write-ahead log costs: workload A against an
//! in-memory store, a WAL'd store (`NoSync`), a per-epoch-fsync store
//! (`SyncEachEpoch`), and/or a byte-threshold store
//! (`SyncEveryBytes(256 KiB)`), reporting the commit-latency deltas.
//! (`all` runs the full comparison.)
//!
//! With `--shards N[,M,...]` the driver sweeps workload A across sharded
//! stores (`ShardedStore`, N independent group-commit pipelines), making
//! the 1-committer-vs-N-committers delta measurable. Add `--json <path>`
//! to also emit the rows as machine-readable JSON (the CI bench-smoke
//! artifact). `--threads N` pins the client-thread count (default:
//! hardware parallelism) — `--threads 1` vs the default is the scaling
//! comparison for the parallel drivers and sharded pipelines.
//!
//! With `--xbatch` (optionally `--shards N[,M,...]`) the driver instead
//! measures the **cross-shard atomic batch** path: acked single-key put
//! latency vs. acked 16-key `write_batch` latency (global epoch stamp +
//! per-shard sealed epochs + all-slice ack) and the epoch-fenced
//! `snapshot()` cost, per shard count.
//!
//! With `--remote ADDR` the driver leaves the in-process store behind
//! entirely and drives a live `pam-serve` process over TCP: for each
//! connection count in `--conns N[,M,...]` (default 1,2,4) it measures
//! acked-put, read, and 16-key-batch round-trip p50/p99/p999, and the
//! get phase re-reads every acked put as an exact read-back check.
//! `--json <path>` dumps the rows; the server's store metrics live in
//! the server process (scrape its `--obs-addr`), so `--prom` is
//! rejected here.
//!
//! With `--contend` (optionally `--shards N[,M,...]`) the driver
//! measures the **fence-contention tail**: acked put p50/p99/p999 alone
//! vs. under a concurrent epoch-fenced `snapshot()` loop (EXPERIMENTS
//! §7). All latency columns everywhere are histogram percentiles
//! (`pam_obs::Histogram`), not means. `--json <path>` artifacts embed
//! the full `pam_*` metrics-registry dump under `"metrics"`, and
//! `--prom <path>` writes the Prometheus-text exposition.

use pam::SumAug;
use pam_bench::*;
use pam_obs::{
    chrome_trace, FlightRecorder, Histogram, MetricsRegistry, ObsServer, TelemetrySource,
};
use pam_store::{
    DurabilityConfig, DurableStore, Health, ShardedConfig, ShardedStore, StoreConfig, StoreRead,
    StoreStats, StoreWrite, SyncPolicy, VersionedStore,
};
use std::io::Write as _;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;
use workloads::hash64;

/// Render `stats` as the canonical `pam_*` metrics registry dump
/// (embedded under `"metrics"` in every `--json` artifact, so the
/// artifact always carries p50/p99/p999 for commit, fsync, and
/// fence-wait latencies).
fn metrics_json(stats: &StoreStats) -> String {
    let registry = MetricsRegistry::new();
    stats.export_into(&registry);
    registry.render_json()
}

/// Write the Prometheus-text exposition of `stats` to `path` (`--prom`).
fn write_prom(path: &str, stats: &StoreStats) {
    let registry = MetricsRegistry::new();
    stats.export_into(&registry);
    if let Some(parent) = std::path::Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).expect("create prom output dir");
        }
    }
    std::fs::write(path, registry.render_prometheus()).expect("write prom output");
    println!("wrote {path}");
}

/// `p50/p99/p999` of a nanosecond histogram, as microseconds.
fn fmt_quantiles_us(h: &pam_obs::HistogramSnapshot) -> String {
    format!(
        "{:.1}/{:.1}/{:.1}",
        h.p50() as f64 / 1e3,
        h.p99() as f64 / 1e3,
        h.p999() as f64 / 1e3
    )
}

type Store = VersionedStore<SumAug<u64, u64>>;
type Durable = DurableStore<SumAug<u64, u64>>;
type Sharded = ShardedStore<SumAug<u64, u64>>;

/// The operations the mixed-workload driver needs, implemented by both
/// the single store and the sharded store so one `drive` loop measures
/// either.
trait KvTarget: Send + Sync + 'static {
    fn kv_get(&self, k: &u64) -> Option<u64>;
    fn kv_put(&self, k: u64, v: u64);
    fn kv_scan_count(&self, lo: u64, hi: u64) -> usize;
    fn kv_sum(&self, lo: u64, hi: u64) -> u64;
    fn kv_flush(&self);
    fn kv_stats(&self) -> StoreStats;
    fn kv_health(&self) -> Health;
}

/// One blanket impl over the unified store API (`pam_store::api`): every
/// flavor — versioned, sharded, durable, durable-sharded — is drivable by
/// the same loop, with no per-type macro body to keep in sync.
impl<T> KvTarget for T
where
    T: StoreRead<SumAug<u64, u64>> + StoreWrite<SumAug<u64, u64>> + Send + Sync + 'static,
{
    fn kv_get(&self, k: &u64) -> Option<u64> {
        StoreRead::get(self, k)
    }
    fn kv_put(&self, k: u64, v: u64) {
        StoreWrite::put(self, k, v);
    }
    fn kv_scan_count(&self, lo: u64, hi: u64) -> usize {
        let mut n = 0;
        StoreRead::range_for_each(self, &lo, &hi, &mut |_, _| n += 1);
        n
    }
    fn kv_sum(&self, lo: u64, hi: u64) -> u64 {
        StoreRead::aug_range(self, &lo, &hi)
    }
    fn kv_flush(&self) {
        StoreWrite::flush(self);
    }
    fn kv_stats(&self) -> StoreStats {
        StoreRead::stats(self)
    }
    fn kv_health(&self) -> Health {
        StoreRead::health(self)
    }
}

// -- live telemetry (`--obs-addr`) -----------------------------------------

/// What the telemetry endpoint scrapes from whichever store the current
/// run mode is driving.
type StatsProvider = Box<dyn Fn() -> (StoreStats, Health) + Send + Sync>;

/// The slot the active run mode installs its store into: the endpoint
/// outlives any single store (sweeps build one per row), so it reads
/// through this indirection.
fn obs_slot() -> &'static Mutex<Option<StatsProvider>> {
    static SLOT: OnceLock<Mutex<Option<StatsProvider>>> = OnceLock::new();
    SLOT.get_or_init(|| Mutex::new(None))
}

/// Point the live endpoint at `store` (replacing whatever previous row's
/// store it was scraping).
fn obs_install<T: KvTarget>(store: &Arc<T>) {
    let s = store.clone();
    *obs_slot().lock().unwrap() = Some(Box::new(move || (s.kv_stats(), s.kv_health())));
}

/// Bind the live telemetry endpoint (`--obs-addr`). The source reads the
/// slot on every scrape, so it follows the sweep from store to store.
fn obs_bind(addr: &str) -> ObsServer {
    let source = TelemetrySource {
        export: Box::new(|reg| {
            if let Some(provider) = obs_slot().lock().unwrap().as_ref() {
                provider().0.export_into(reg);
            }
        }),
        health: Box::new(|| match obs_slot().lock().unwrap().as_ref() {
            Some(provider) => provider().1,
            None => Health::Healthy,
        }),
    };
    let server = ObsServer::bind(addr, source).expect("bind --obs-addr");
    // CI polls the log for this line to learn the resolved port.
    println!("obs listening on {}", server.local_addr());
    server
}

/// End-of-run duties for the observability flags, as a drop guard so
/// every early-returning run mode pays them: write `--trace-out`, then
/// linger (bounded) until the endpoint has served at least one request —
/// a scraper racing a short run must not find a dead port.
struct ObsFinish {
    obs: Option<ObsServer>,
    trace_out: Option<String>,
}

impl Drop for ObsFinish {
    fn drop(&mut self) {
        if let Some(path) = &self.trace_out {
            let doc = chrome_trace(&FlightRecorder::global().snapshot());
            if let Some(parent) = std::path::Path::new(path).parent() {
                if !parent.as_os_str().is_empty() {
                    std::fs::create_dir_all(parent).expect("create trace output dir");
                }
            }
            std::fs::write(path, doc).expect("write trace output");
            println!("wrote {path}");
        }
        if let Some(obs) = &self.obs {
            let deadline = std::time::Instant::now() + Duration::from_secs(60);
            while obs.request_count() == 0 && std::time::Instant::now() < deadline {
                std::thread::sleep(Duration::from_millis(100));
            }
        }
        // the server itself shuts down when `obs` drops here
    }
}

struct Mix {
    name: &'static str,
    read_pct: u32,
    scan_pct: u32,
    sum_pct: u32,
}

const MIXES: &[Mix] = &[
    Mix {
        name: "A (50r/50w)",
        read_pct: 50,
        scan_pct: 0,
        sum_pct: 0,
    },
    Mix {
        name: "B (95r/5w)",
        read_pct: 95,
        scan_pct: 0,
        sum_pct: 0,
    },
    Mix {
        name: "C (100r)",
        read_pct: 100,
        scan_pct: 0,
        sum_pct: 0,
    },
    Mix {
        name: "range (90r/5s/5w)",
        read_pct: 90,
        scan_pct: 5,
        sum_pct: 0,
    },
    Mix {
        name: "augsum (90r/5q/5w)",
        read_pct: 90,
        scan_pct: 0,
        sum_pct: 5,
    },
];

/// Drive `threads × ops_per_thread` mixed operations against a store
/// handle; returns the wall-clock seconds (including the final flush).
fn drive<T: KvTarget>(
    store: &Arc<T>,
    mix: &Mix,
    threads: usize,
    ops_per_thread: usize,
    key_space: u64,
) -> f64 {
    let (read_pct, scan_pct, sum_pct) = (mix.read_pct, mix.scan_pct, mix.sum_pct);
    obs_install(store); // live scrapes follow the store under test
    let (_, secs) = time(|| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let s = store.clone();
                std::thread::spawn(move || {
                    let mut acc = 0u64;
                    for i in 0..ops_per_thread {
                        let r = hash64((t as u64) << 32 | i as u64);
                        let k = hash64(r) % key_space;
                        let dice = (r % 100) as u32;
                        if dice < read_pct {
                            acc = acc.wrapping_add(s.kv_get(&k).unwrap_or(0));
                        } else if dice < read_pct + scan_pct {
                            acc = acc.wrapping_add(s.kv_scan_count(k, k + 1000) as u64);
                        } else if dice < read_pct + scan_pct + sum_pct {
                            acc = acc.wrapping_add(s.kv_sum(k, k + 100_000));
                        } else {
                            s.kv_put(k, i as u64);
                        }
                    }
                    std::hint::black_box(acc)
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        store.kv_flush();
    });
    secs
}

fn run_mix(
    mix: &Mix,
    window: Duration,
    threads: usize,
    preload: usize,
    ops_per_thread: usize,
    key_space: u64,
) -> (f64, pam_store::StoreStats) {
    let store = Arc::new(Store::from_map(
        pam::AugMap::build(
            (0..preload as u64)
                .map(|i| (hash64(i) % key_space, i))
                .collect(),
        ),
        StoreConfig {
            batch_window: window,
            ..StoreConfig::default()
        },
    ));
    let secs = drive(&store, mix, threads, ops_per_thread, key_space);
    (secs, store.stats())
}

/// The `--durability` comparison: workload A with the WAL off, on
/// without fsync, and on with per-epoch group fsync.
fn run_durability(mode: &str, threads: usize, preload: usize, ops_per_thread: usize) {
    let key_space = (preload as u64) * 4;
    let window = Duration::from_micros(200);
    let mix = &MIXES[0]; // A: 50r/50w — the write-heavy stressor
    let store_config = StoreConfig {
        batch_window: window,
        ..StoreConfig::default()
    };
    let modes: Vec<&str> = match mode {
        "all" => vec!["off", "wal", "wal-fsync", "wal-bytes"],
        "off" => vec!["off"],
        m => vec!["off", m], // always include the baseline for the delta
    };

    let mut table = Table::new(&[
        "durability",
        "Mops/s",
        "commits",
        "commit p50/p99/p999 µs",
        "fsync p99 µs",
        "wal KiB",
        "fsyncs",
        "Δ p99 commit",
    ]);
    let mut baseline_p99: Option<u64> = None;
    for m in modes {
        // durable stores live in a scratch dir wiped per run
        let dir = std::env::temp_dir().join(format!("pam-ycsb-wal-{}-{m}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let (durable, store): (Option<Durable>, Arc<Store>) = match m {
            "off" => (None, Arc::new(Store::with_config(store_config.clone()))),
            "wal" | "wal-fsync" | "wal-bytes" => {
                let sync = match m {
                    "wal" => SyncPolicy::NoSync,
                    "wal-bytes" => SyncPolicy::SyncEveryBytes(256 << 10),
                    _ => SyncPolicy::SyncEachEpoch,
                };
                let d = Durable::open(
                    &dir,
                    store_config.clone(),
                    DurabilityConfig {
                        sync,
                        checkpoint_every_bytes: None, // measure the log alone
                        ..DurabilityConfig::default()
                    },
                )
                .expect("open durable store");
                let handle = d.handle();
                (Some(d), handle)
            }
            other => {
                eprintln!(
                    "unknown --durability mode {other:?} (want off|wal|wal-fsync|wal-bytes|all)"
                );
                std::process::exit(2);
            }
        };
        store
            .put_all((0..preload as u64).map(|i| (hash64(i) % key_space, i)))
            .wait();
        let secs = drive(&store, mix, threads, ops_per_thread, key_space);
        let stats = durable
            .as_ref()
            .map_or_else(|| store.stats(), |d| d.stats());
        let delta = match (m, baseline_p99) {
            ("off", _) => {
                baseline_p99 = Some(stats.commit.p99());
                "baseline".to_string()
            }
            (_, Some(base)) => {
                format!("{:+.1} µs", (stats.commit.p99() as f64 - base as f64) / 1e3)
            }
            _ => "-".to_string(),
        };
        table.row(vec![
            m.to_string(),
            fmt_meps(threads * ops_per_thread, secs),
            stats.commits.to_string(),
            fmt_quantiles_us(&stats.commit),
            format!("{:.1}", stats.durability.wal_fsync.p99() as f64 / 1e3),
            (stats.durability.wal_bytes / 1024).to_string(),
            stats.durability.wal_fsyncs.to_string(),
            delta,
        ]);
        drop(durable);
        let _ = std::fs::remove_dir_all(&dir);
    }
    table.print();
    println!(
        "\n(one WAL record + at most one group fsync per epoch: the cost is \
         amortized over every writer in the {window:?} window)"
    );
}

/// One row of the `--xbatch` sweep (also what `--json` serializes).
struct XbatchRow {
    shards: usize,
    put: pam_obs::HistogramSnapshot,
    xbatch: pam_obs::HistogramSnapshot,
    snapshot_us: f64,
    stamped: u64,
    stats: StoreStats,
}

/// The `--xbatch` comparison: acked single-key put latency vs. acked
/// cross-shard `write_batch` latency (the cost of the global epoch
/// stamp + per-shard sealed epochs + waiting on every slice), plus the
/// epoch-fenced `snapshot()` cost, per shard count. Zero group-commit
/// window: this measures the coordination path, not batching.
fn run_xbatch(counts: &[usize], preload: usize, ops: usize) -> Vec<XbatchRow> {
    const BATCH_KEYS: u64 = 16;
    let key_space = (preload as u64) * 4;
    let batches = (ops / BATCH_KEYS as usize).max(1);
    let mut rows = Vec::new();
    let mut table = Table::new(&[
        "shards",
        "put µs p50/p99/p999",
        "xbatch-16 µs p50/p99/p999",
        "per key p50 µs",
        "snapshot µs",
        "global epochs",
    ]);
    for &n in counts {
        let store = Arc::new(Sharded::with_config(ShardedConfig {
            shards: n,
            store: StoreConfig {
                batch_window: Duration::ZERO,
                ..StoreConfig::default()
            },
        }));
        obs_install(&store);
        store
            .put_all((0..preload as u64).map(|i| (hash64(i) % key_space, i)))
            .wait();

        // each acked latency lands in a log-bucketed histogram so the
        // row reports tail percentiles, not a tail-blind mean
        let timed = |iters: u64, f: &mut dyn FnMut(u64)| {
            let hist = Histogram::new();
            for i in 0..iters {
                let t0 = std::time::Instant::now();
                f(i);
                hist.record_duration(t0.elapsed());
            }
            hist.snapshot()
        };
        let s = store.clone();
        let put = timed(ops as u64, &mut |i| {
            s.put(hash64(i) % key_space, i).wait();
        });
        let stamped_before = store.global_epoch();
        let xbatch = timed(batches as u64, &mut |b| {
            s.put_all((0..BATCH_KEYS).map(|j| (hash64(b * BATCH_KEYS + j) % key_space, b)))
                .wait();
        });
        let stamped = store.global_epoch() - stamped_before;

        let snaps = (ops / 10).max(1);
        let t0 = std::time::Instant::now();
        for _ in 0..snaps {
            let _snap = store.snapshot();
        }
        let snapshot_us = t0.elapsed().as_secs_f64() * 1e6 / snaps as f64;

        table.row(vec![
            n.to_string(),
            fmt_quantiles_us(&put),
            fmt_quantiles_us(&xbatch),
            format!("{:.2}", xbatch.p50() as f64 / 1e3 / BATCH_KEYS as f64),
            format!("{snapshot_us:.1}"),
            stamped.to_string(),
        ]);
        rows.push(XbatchRow {
            shards: n,
            put,
            xbatch,
            snapshot_us,
            stamped,
            stats: store.stats(),
        });
    }
    table.print();
    println!(
        "\n(a cross-shard batch mints a global epoch, submits one sealed \
         epoch per shard under the fence, and acks when every slice \
         commits; single-shard batches skip all of it — \"global \
         epochs\" counts the batches that actually spanned shards)"
    );
    rows
}

/// Write the xbatch rows as JSON (hand-rolled: offline workspace).
fn write_xbatch_json(path: &str, rows: &[XbatchRow], preload: usize, ops: usize) {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"ycsb-xbatch\",\n");
    out.push_str(&format!("  \"pam_scale\": {},\n", scale()));
    out.push_str(&format!("  \"preload\": {preload},\n"));
    out.push_str(&format!("  \"acked_ops\": {ops},\n"));
    out.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"shards\": {}, \"put_p50_us\": {:.3}, \"put_p99_us\": {:.3}, \
             \"put_p999_us\": {:.3}, \"put_max_us\": {:.3}, \
             \"xbatch_p50_us\": {:.3}, \"xbatch_p99_us\": {:.3}, \
             \"xbatch_p999_us\": {:.3}, \"snapshot_us\": {:.3}, \
             \"global_epochs\": {}}}{}\n",
            r.shards,
            r.put.p50() as f64 / 1e3,
            r.put.p99() as f64 / 1e3,
            r.put.p999() as f64 / 1e3,
            r.put.max() as f64 / 1e3,
            r.xbatch.p50() as f64 / 1e3,
            r.xbatch.p99() as f64 / 1e3,
            r.xbatch.p999() as f64 / 1e3,
            r.snapshot_us,
            r.stamped,
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    out.push_str("  ],\n");
    // the registry dump of the last (most sharded) run: p50/p99/p999 for
    // every pam_* histogram, fence-wait and snapshot counters included
    let metrics = rows.last().map(|r| metrics_json(&r.stats));
    out.push_str(&format!(
        "  \"metrics\": {}\n",
        metrics.as_deref().unwrap_or("null")
    ));
    out.push_str("}\n");
    if let Some(parent) = std::path::Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).expect("create json output dir");
        }
    }
    let mut f = std::fs::File::create(path).expect("create json output file");
    f.write_all(out.as_bytes()).expect("write json output");
    println!("\nwrote {path}");
}

/// One row of the `--remote` sweep (also what `--json` serializes).
struct RemoteRow {
    conns: usize,
    put: pam_obs::HistogramSnapshot,
    get: pam_obs::HistogramSnapshot,
    batch: pam_obs::HistogramSnapshot,
    puts_per_sec: f64,
}

/// The `--remote ADDR` sweep: drive a live `pam-serve` process over TCP
/// and measure what the wire adds — acked-put, read, and 16-key-batch
/// round-trip percentiles per connection count. Every connection owns a
/// disjoint key prefix, so the get phase doubles as an exact read-back
/// verification of every acked put.
fn run_remote(addr: &str, conn_counts: &[usize], ops: usize) -> Vec<RemoteRow> {
    const BATCH_KEYS: u64 = 16;
    // disjoint per-connection prefixes: puts under [t], batches under
    // [0x80|t] — read-back checks are exact, not probabilistic
    let key = |t: usize, i: u64| -> Vec<u8> {
        let mut k = vec![t as u8];
        k.extend_from_slice(&i.to_be_bytes());
        k
    };
    let bkey = |t: usize, i: u64| -> Vec<u8> {
        let mut k = vec![0x80 | t as u8];
        k.extend_from_slice(&i.to_be_bytes());
        k
    };
    let value = |t: usize, i: u64| format!("v{t}-{i}").into_bytes();

    let mut rows = Vec::new();
    let mut table = Table::new(&[
        "conns",
        "acked kputs/s",
        "put µs p50/p99/p999",
        "get µs p50/p99/p999",
        "batch-16 µs p50/p99/p999",
    ]);
    for &conns in conn_counts {
        let per_conn = (ops / conns).max(1) as u64;
        let batches = (per_conn / BATCH_KEYS).max(1);

        // phase 1: acked puts. A barrier releases every connection at
        // once so the wall clock spans only overlapping traffic; each
        // recorded latency is a full acked round trip (request → group
        // commit → ack frame).
        let put_hist = Arc::new(Histogram::new());
        let barrier = Arc::new(std::sync::Barrier::new(conns + 1));
        let handles: Vec<_> = (0..conns)
            .map(|t| {
                let addr = addr.to_string();
                let hist = Arc::clone(&put_hist);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    let mut c = pam_serve::Client::connect(addr.as_str()).expect("connect");
                    barrier.wait();
                    for i in 0..per_conn {
                        let t0 = std::time::Instant::now();
                        c.put(&key(t, i), &value(t, i)).expect("acked put");
                        hist.record_duration(t0.elapsed());
                    }
                })
            })
            .collect();
        barrier.wait();
        let t0 = std::time::Instant::now();
        for h in handles {
            h.join().unwrap();
        }
        let put_secs = t0.elapsed().as_secs_f64();

        // phase 2: reads — and the read-back proof that every put the
        // server acked is visible
        let get_hist = Arc::new(Histogram::new());
        let handles: Vec<_> = (0..conns)
            .map(|t| {
                let addr = addr.to_string();
                let hist = Arc::clone(&get_hist);
                std::thread::spawn(move || {
                    let mut c = pam_serve::Client::connect(addr.as_str()).expect("connect");
                    for i in 0..per_conn {
                        let t0 = std::time::Instant::now();
                        let got = c.get(&key(t, i)).expect("remote get");
                        hist.record_duration(t0.elapsed());
                        assert_eq!(got, Some(value(t, i)), "acked put not readable back");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }

        // phase 3: acked 16-key batches (cross-shard on a sharded server:
        // global epoch stamp + all-slice ack, now with a wire round trip)
        let batch_hist = Arc::new(Histogram::new());
        let handles: Vec<_> = (0..conns)
            .map(|t| {
                let addr = addr.to_string();
                let hist = Arc::clone(&batch_hist);
                std::thread::spawn(move || {
                    let mut c = pam_serve::Client::connect(addr.as_str()).expect("connect");
                    for b in 0..batches {
                        let ops: Vec<pam_serve::WireOp> = (0..BATCH_KEYS)
                            .map(|j| {
                                pam_serve::WireOp::Put(bkey(t, b * BATCH_KEYS + j), value(t, b))
                            })
                            .collect();
                        let t0 = std::time::Instant::now();
                        c.batch(ops).expect("acked batch");
                        hist.record_duration(t0.elapsed());
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }

        let (put, get, batch) = (
            put_hist.snapshot(),
            get_hist.snapshot(),
            batch_hist.snapshot(),
        );
        let puts_per_sec = (per_conn * conns as u64) as f64 / put_secs;
        table.row(vec![
            conns.to_string(),
            format!("{:.1}", puts_per_sec / 1e3),
            fmt_quantiles_us(&put),
            fmt_quantiles_us(&get),
            fmt_quantiles_us(&batch),
        ]);
        rows.push(RemoteRow {
            conns,
            put,
            get,
            batch,
            puts_per_sec,
        });
    }
    table.print();
    println!(
        "\n(each put/batch latency is a full wire round trip ending in a \
         group-commit ack; the get phase re-reads every acked put and \
         asserts the value — server-side store metrics are scraped from \
         the server's --obs-addr, not reported here)"
    );
    rows
}

/// Write the remote-sweep rows as JSON (hand-rolled: offline workspace).
/// `"metrics"` is `null` by design: the store lives in the server
/// process, so its registry is scraped from the *server's* `--obs-addr`.
fn write_remote_json(path: &str, rows: &[RemoteRow], ops: usize) {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"ycsb-remote\",\n");
    out.push_str(&format!("  \"pam_scale\": {},\n", scale()));
    out.push_str(&format!("  \"acked_ops\": {ops},\n"));
    out.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"conns\": {}, \"puts_per_sec\": {:.1}, \
             \"put_p50_us\": {:.3}, \"put_p99_us\": {:.3}, \"put_p999_us\": {:.3}, \
             \"get_p50_us\": {:.3}, \"get_p99_us\": {:.3}, \"get_p999_us\": {:.3}, \
             \"batch16_p50_us\": {:.3}, \"batch16_p99_us\": {:.3}, \
             \"batch16_p999_us\": {:.3}}}{}\n",
            r.conns,
            r.puts_per_sec,
            r.put.p50() as f64 / 1e3,
            r.put.p99() as f64 / 1e3,
            r.put.p999() as f64 / 1e3,
            r.get.p50() as f64 / 1e3,
            r.get.p99() as f64 / 1e3,
            r.get.p999() as f64 / 1e3,
            r.batch.p50() as f64 / 1e3,
            r.batch.p99() as f64 / 1e3,
            r.batch.p999() as f64 / 1e3,
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"metrics\": null\n");
    out.push_str("}\n");
    if let Some(parent) = std::path::Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).expect("create json output dir");
        }
    }
    let mut f = std::fs::File::create(path).expect("create json output file");
    f.write_all(out.as_bytes()).expect("write json output");
    println!("\nwrote {path}");
}

/// One row of the `--contend` comparison (also what `--json` serializes).
struct ContendRow {
    shards: usize,
    baseline: pam_obs::HistogramSnapshot,
    contended: pam_obs::HistogramSnapshot,
    snapshots: u64,
    stats: StoreStats,
}

/// The `--contend` comparison (EXPERIMENTS §7): acked single-key put
/// latency on a sharded store, alone vs. under a concurrent
/// epoch-fenced `snapshot()` loop. Every snapshot raises the all-shard
/// submit barrier, so writers park in `admit()` and the put tail
/// stretches — the new histograms make that visible as p99/p999 rather
/// than a tail-blind mean. Zero group-commit window: the barrier, not
/// batching, is the object under test.
fn run_contend(counts: &[usize], preload: usize, ops: usize) -> Vec<ContendRow> {
    let key_space = (preload as u64) * 4;
    let mut rows = Vec::new();
    let mut table = Table::new(&[
        "shards",
        "alone µs p50/p99/p999",
        "contended µs p50/p99/p999",
        "snapshots",
        "fence waits",
        "fence p99 µs",
    ]);
    for &n in counts {
        let store = Arc::new(Sharded::with_config(ShardedConfig {
            shards: n,
            store: StoreConfig {
                batch_window: Duration::ZERO,
                ..StoreConfig::default()
            },
        }));
        obs_install(&store);
        store
            .put_all((0..preload as u64).map(|i| (hash64(i) % key_space, i)))
            .wait();

        let acked_puts = |salt: u64| {
            let hist = Histogram::new();
            for i in 0..ops as u64 {
                let t0 = std::time::Instant::now();
                store.put(hash64(salt ^ i) % key_space, i).wait();
                hist.record_duration(t0.elapsed());
            }
            hist.snapshot()
        };
        let baseline = acked_puts(0);

        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let snapper = {
            let s = store.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                // relaxed: shutdown flag only — seeing it late costs one
                // extra snapshot loop, and join() below synchronizes
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let _snap = s.snapshot();
                }
            })
        };
        let contended = acked_puts(1);
        // relaxed: see the loop above; join() provides the ordering
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        snapper.join().unwrap();

        let stats = store.stats();
        table.row(vec![
            n.to_string(),
            fmt_quantiles_us(&baseline),
            fmt_quantiles_us(&contended),
            stats.snapshots_taken.to_string(),
            stats.fence_waits.to_string(),
            format!(
                "{:.1}",
                stats.barrier_wait.p99().max(stats.fence_wait.p99()) as f64 / 1e3
            ),
        ]);
        rows.push(ContendRow {
            shards: n,
            baseline,
            contended,
            snapshots: stats.snapshots_taken,
            stats,
        });
    }
    table.print();
    println!(
        "\n(each snapshot takes the fence write side and raises a submit \
         barrier on every shard; writers admitted mid-barrier park until \
         it drops — the contended p99/p999 measures that parking)"
    );
    rows
}

/// Write the contend rows as JSON (hand-rolled: offline workspace).
fn write_contend_json(path: &str, rows: &[ContendRow], preload: usize, ops: usize) {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"ycsb-contend\",\n");
    out.push_str(&format!("  \"pam_scale\": {},\n", scale()));
    out.push_str(&format!("  \"preload\": {preload},\n"));
    out.push_str(&format!("  \"acked_ops\": {ops},\n"));
    out.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"shards\": {}, \"alone_p50_us\": {:.3}, \"alone_p99_us\": {:.3}, \
             \"alone_p999_us\": {:.3}, \"contended_p50_us\": {:.3}, \
             \"contended_p99_us\": {:.3}, \"contended_p999_us\": {:.3}, \
             \"snapshots\": {}, \"fence_waits\": {}}}{}\n",
            r.shards,
            r.baseline.p50() as f64 / 1e3,
            r.baseline.p99() as f64 / 1e3,
            r.baseline.p999() as f64 / 1e3,
            r.contended.p50() as f64 / 1e3,
            r.contended.p99() as f64 / 1e3,
            r.contended.p999() as f64 / 1e3,
            r.snapshots,
            r.stats.fence_waits,
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    out.push_str("  ],\n");
    let metrics = rows.last().map(|r| metrics_json(&r.stats));
    out.push_str(&format!(
        "  \"metrics\": {}\n",
        metrics.as_deref().unwrap_or("null")
    ));
    out.push_str("}\n");
    if let Some(parent) = std::path::Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).expect("create json output dir");
        }
    }
    let mut f = std::fs::File::create(path).expect("create json output file");
    f.write_all(out.as_bytes()).expect("write json output");
    println!("\nwrote {path}");
}

/// One row of the `--shards` sweep (also what `--json` serializes).
struct ShardRow {
    shards: usize,
    mops: f64,
    secs: f64,
    stats: StoreStats,
}

/// The `--shards` comparison: workload A against hash-sharded stores,
/// one row per shard count — N independent committers vs. one.
fn run_shards(
    counts: &[usize],
    threads: usize,
    preload: usize,
    ops_per_thread: usize,
) -> Vec<ShardRow> {
    let key_space = (preload as u64) * 4;
    let window = Duration::from_micros(200);
    let mix = &MIXES[0]; // A: 50r/50w — the committer-bound stressor
    let mut rows = Vec::new();
    let mut table = Table::new(&[
        "shards",
        "Mops/s",
        "commits",
        "mean batch",
        "commit p50/p99/p999 µs",
        "max commit",
        "Δ Mops/s",
    ]);
    let mut baseline: Option<f64> = None;
    for &n in counts {
        let store = Arc::new(Sharded::with_config(ShardedConfig {
            shards: n,
            store: StoreConfig {
                batch_window: window,
                ..StoreConfig::default()
            },
        }));
        store
            .put_all((0..preload as u64).map(|i| (hash64(i) % key_space, i)))
            .wait();
        let secs = drive(&store, mix, threads, ops_per_thread, key_space);
        let stats = store.stats();
        let mops = (threads * ops_per_thread) as f64 / secs / 1e6;
        let delta = match baseline {
            None => {
                baseline = Some(mops);
                "baseline".to_string()
            }
            Some(base) => format!("{:+.2}", mops - base),
        };
        table.row(vec![
            n.to_string(),
            format!("{mops:.2}"),
            stats.commits.to_string(),
            format!("{:.1}", stats.mean_batch()),
            fmt_quantiles_us(&stats.commit),
            format!("{:?}", stats.max_commit),
            delta,
        ]);
        rows.push(ShardRow {
            shards: n,
            mops,
            secs,
            stats,
        });
    }
    table.print();
    println!(
        "\n(each shard runs its own group-commit pipeline: N shards batch, \
         normalize, and apply N epochs concurrently — the delta needs \
         multiple hardware threads to show)"
    );
    rows
}

/// Write the shard-sweep rows as JSON (the CI bench-smoke artifact).
/// Hand-rolled: the workspace is offline, so no serde.
fn write_json(path: &str, rows: &[ShardRow], threads: usize, preload: usize, ops: usize) {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"ycsb-shards\",\n");
    out.push_str(&format!("  \"pam_scale\": {},\n", scale()));
    out.push_str(&format!("  \"threads\": {threads},\n"));
    out.push_str(&format!("  \"preload\": {preload},\n"));
    out.push_str(&format!("  \"ops_per_thread\": {ops},\n"));
    out.push_str("  \"workload\": \"A (50r/50w)\",\n");
    out.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"shards\": {}, \"mops\": {:.4}, \"secs\": {:.6}, \"commits\": {}, \
             \"mean_batch\": {:.2}, \"commit_p50_us\": {:.2}, \"commit_p99_us\": {:.2}, \
             \"commit_p999_us\": {:.2}, \"max_commit_us\": {:.2}}}{}\n",
            r.shards,
            r.mops,
            r.secs,
            r.stats.commits,
            r.stats.mean_batch(),
            r.stats.commit.p50() as f64 / 1e3,
            r.stats.commit.p99() as f64 / 1e3,
            r.stats.commit.p999() as f64 / 1e3,
            r.stats.max_commit.as_secs_f64() * 1e6,
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    out.push_str("  ],\n");
    // the registry dump of the last (most sharded) run — gives the CI
    // artifact p50/p99/p999 for commit, fsync, and fence-wait metrics
    let metrics = rows.last().map(|r| metrics_json(&r.stats));
    out.push_str(&format!(
        "  \"metrics\": {}\n",
        metrics.as_deref().unwrap_or("null")
    ));
    out.push_str("}\n");
    if let Some(parent) = std::path::Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).expect("create json output dir");
        }
    }
    let mut f = std::fs::File::create(path).expect("create json output file");
    f.write_all(out.as_bytes()).expect("write json output");
    println!("\nwrote {path}");
}

fn main() {
    banner(
        "YCSB-style mixed workloads on pam-store",
        "the serving-layer extension of §4 (group commit + snapshot reads)",
    );
    let preload = scaled(200_000);
    let ops_per_thread = scaled(50_000);
    let key_space = (preload as u64) * 4;

    let args: Vec<String> = std::env::args().collect();

    // `--threads N`: client-thread count (default: hardware parallelism).
    // Running `--threads 1` vs the default is the scaling comparison the
    // parallel iterator drivers / sharded pipelines are measured by.
    let threads = match args.iter().position(|a| a == "--threads") {
        Some(i) => match args.get(i + 1).and_then(|s| s.parse::<usize>().ok()) {
            Some(n) if n >= 1 => n,
            _ => {
                eprintln!("bad --threads value (want a positive integer)");
                std::process::exit(2);
            }
        },
        None => max_threads(),
    };

    // `--shards N[,M,...]` names the shard counts both the `--shards`
    // sweep and the `--xbatch` latency comparison run over.
    let shard_counts = |args: &[String]| -> Vec<usize> {
        let spec = args
            .iter()
            .position(|a| a == "--shards")
            .and_then(|i| args.get(i + 1).map(String::as_str))
            .unwrap_or("1,4");
        spec.split(',')
            .map(|s| match s.trim().parse() {
                Ok(n) if n >= 1 => n,
                // 0 would be silently clamped to 1 shard by the store,
                // mislabeling the table row and the JSON artifact
                _ => {
                    eprintln!("bad --shards value {s:?} (want positive counts, e.g. 1,4)");
                    std::process::exit(2);
                }
            })
            .collect()
    };
    fn path_arg<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
        args.iter().position(|a| a == flag).map(|j| {
            args.get(j + 1).map(String::as_str).unwrap_or_else(|| {
                eprintln!("{flag} needs a path");
                std::process::exit(2);
            })
        })
    }
    fn json_path(args: &[String]) -> Option<&str> {
        path_arg(args, "--json")
    }
    // `--prom <path>`: Prometheus-text exposition of the final run's
    // metrics registry (the CI bench-smoke parse-check artifact).
    fn prom_path(args: &[String]) -> Option<&str> {
        path_arg(args, "--prom")
    }

    // `--obs-addr ADDR`: serve /metrics, /metrics.json, /events, /health,
    // and /trace live while the benchmark runs (port 0 picks a free port;
    // the resolved address is printed as "obs listening on ..."). The run
    // then lingers — up to 60 s — until at least one request has been
    // served, so a scraper started alongside never races a short run.
    // `--trace-out FILE`: write the epoch flight ring as Chrome
    // trace-event JSON at exit (load it in chrome://tracing or Perfetto).
    // Both work with every run mode.
    let _obs_finish = ObsFinish {
        obs: path_arg(&args, "--obs-addr").map(obs_bind),
        trace_out: path_arg(&args, "--trace-out").map(String::from),
    };

    // `--remote ADDR`: leave the in-process store behind and drive a
    // live `pam-serve` over TCP, sweeping `--conns` connection counts.
    if let Some(addr) = path_arg(&args, "--remote") {
        if args.iter().any(|a| a == "--prom") {
            eprintln!(
                "--prom is not supported with --remote (the store's metrics \
                 live in the server process — scrape its --obs-addr instead)"
            );
            std::process::exit(2);
        }
        let conns: Vec<usize> = {
            let spec = args
                .iter()
                .position(|a| a == "--conns")
                .and_then(|i| args.get(i + 1).map(String::as_str))
                .unwrap_or("1,2,4");
            spec.split(',')
                .map(|s| match s.trim().parse() {
                    Ok(n) if n >= 1 => n,
                    _ => {
                        eprintln!("bad --conns value {s:?} (want positive counts, e.g. 1,2,4)");
                        std::process::exit(2);
                    }
                })
                .collect()
        };
        let acked_ops = scaled(8_000);
        println!(
            "remote target {addr}, {acked_ops} acked ops per phase, \
             connection sweep {conns:?}\n"
        );
        let rows = run_remote(addr, &conns, acked_ops);
        if let Some(path) = json_path(&args) {
            write_remote_json(path, &rows, acked_ops);
        }
        return;
    }

    // `--contend`: acked put latency under a concurrent epoch-fenced
    // snapshot loop — the fence-contention tail (EXPERIMENTS §7).
    if args.iter().any(|a| a == "--contend") {
        let counts = shard_counts(&args);
        let acked_ops = scaled(20_000);
        println!(
            "{preload} preloaded keys, {acked_ops} acked puts per mode, \
             zero group-commit window, snapshot loop on a second thread\n"
        );
        let rows = run_contend(&counts, preload, acked_ops);
        if let Some(path) = json_path(&args) {
            write_contend_json(path, &rows, preload, acked_ops);
        }
        if let Some(path) = prom_path(&args) {
            if let Some(r) = rows.last() {
                write_prom(path, &r.stats);
            }
        }
        return;
    }

    // `--xbatch`: acked single-put vs. cross-shard-batch latency — the
    // measured cost of the global epoch clock + fence (EXPERIMENTS §6).
    if args.iter().any(|a| a == "--xbatch") {
        let counts = shard_counts(&args);
        let acked_ops = scaled(20_000);
        println!(
            "{preload} preloaded keys, {acked_ops} acked ops per mode, \
             zero group-commit window\n"
        );
        let rows = run_xbatch(&counts, preload, acked_ops);
        if let Some(path) = json_path(&args) {
            write_xbatch_json(path, &rows, preload, acked_ops);
        }
        if let Some(path) = prom_path(&args) {
            if let Some(r) = rows.last() {
                write_prom(path, &r.stats);
            }
        }
        return;
    }

    // `--shards N[,M,...]`: sweep shard counts on workload A instead of
    // sweeping the group-commit window; `--json <path>` also dumps the
    // rows machine-readably.
    if args.iter().any(|a| a == "--shards") {
        let counts = shard_counts(&args);
        println!(
            "{} threads, {preload} preloaded keys, {ops_per_thread} ops/thread, workload A\n",
            threads
        );
        let rows = run_shards(&counts, threads, preload, ops_per_thread);
        if let Some(path) = json_path(&args) {
            write_json(path, &rows, threads, preload, ops_per_thread);
        }
        if let Some(path) = prom_path(&args) {
            if let Some(r) = rows.last() {
                write_prom(path, &r.stats);
            }
        }
        return;
    }

    // only the --shards / --xbatch / --contend paths serialize results;
    // silently dropping the flag elsewhere would leave a CI artifact
    // step with no file
    if args.iter().any(|a| a == "--json" || a == "--prom") {
        eprintln!(
            "--json / --prom are only supported with --shards / --xbatch / \
             --contend / --remote (--remote takes --json only)"
        );
        std::process::exit(2);
    }

    // `--durability {off,wal,wal-fsync,wal-bytes,all}`: measure the WAL
    // instead of sweeping the group-commit window.
    if let Some(i) = args.iter().position(|a| a == "--durability") {
        let mode = args.get(i + 1).map(String::as_str).unwrap_or("all");
        println!(
            "{} threads, {preload} preloaded keys, {ops_per_thread} ops/thread, workload A\n",
            threads
        );
        run_durability(mode, threads, preload, ops_per_thread);
        return;
    }
    let windows = [
        Duration::ZERO,
        Duration::from_micros(50),
        Duration::from_micros(200),
        Duration::from_millis(1),
    ];

    println!(
        "{} threads, {preload} preloaded keys, {ops_per_thread} ops/thread\n",
        threads
    );
    let mut table = Table::new(&[
        "mix",
        "window",
        "Mops/s",
        "commits",
        "mean batch",
        "commit p50/p99/p999 µs",
        "max commit",
    ]);
    for mix in MIXES {
        for &window in &windows {
            let (secs, stats) = run_mix(mix, window, threads, preload, ops_per_thread, key_space);
            let total_ops = threads * ops_per_thread;
            table.row(vec![
                mix.name.to_string(),
                format!("{window:?}"),
                fmt_meps(total_ops, secs),
                stats.commits.to_string(),
                format!("{:.1}", stats.mean_batch()),
                fmt_quantiles_us(&stats.commit),
                format!("{:?}", stats.max_commit),
            ]);
            // read-only mixes do not depend on the window; run once
            if mix.read_pct == 100 {
                break;
            }
        }
    }
    table.print();
    println!(
        "\n(wider window => larger batches => fewer multi_inserts; \
         reads always pin the current version and never block)"
    );
}
