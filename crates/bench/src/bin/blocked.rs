//! Blocked-leaf (PaC-tree style) ablation: memory footprint and scan
//! throughput at `LEAF_CAP` = 1 (the pre-blocking one-entry-per-leaf
//! layout) vs the default 32, on the same weight-balanced scheme.
//!
//! The compile-time default block size comes from the `PAM_LEAF_B` env
//! var; this binary instead instantiates `WeightBalancedCap<CAP>`
//! directly so both layouts are measured in one process.

use pam::balance::WeightBalancedCap;
use pam::stats::{node_size, reachable_bytes, unique_nodes};
use pam::{AugMap, SumAug};
use pam_bench::*;

type Spec = SumAug<u64, u64>;

fn measure<const CAP: usize>(n: usize) -> (usize, usize, f64, f64, f64) {
    let pairs: Vec<(u64, u64)> = (0..n as u64).map(|i| (i, i)).collect();
    let m: AugMap<Spec, WeightBalancedCap<CAP>> = AugMap::from_sorted_distinct(&pairs);
    let nodes = unique_nodes(&[m.root()]);
    let bytes = reachable_bytes(&[m.root()]);
    // full scan via cursor-backed iterator
    let scan = time_best_of(
        3,
        || (),
        |()| {
            let mut acc = 0u64;
            for (_, &v) in m.iter() {
                acc = acc.wrapping_add(v);
            }
            std::hint::black_box(acc)
        },
    );
    // streaming for_each (checkpoint writer path)
    let stream = time_best_of(
        3,
        || (),
        |()| {
            let mut acc = 0u64;
            m.for_each(|_, &v| acc = acc.wrapping_add(v));
            std::hint::black_box(acc)
        },
    );
    // random point lookups
    let keys: Vec<u64> = workloads::uniform_pairs(scaled(200_000), 7, n as u64)
        .into_iter()
        .map(|(k, _)| k)
        .collect();
    let get = time_best_of(
        3,
        || (),
        |()| {
            let mut hits = 0usize;
            for k in &keys {
                hits += usize::from(m.get(k).is_some());
            }
            std::hint::black_box(hits)
        },
    );
    (nodes, bytes, scan, stream, get)
}

fn main() {
    banner(
        "Blocked leaves: memory + scan ablation (CAP=1 vs CAP=32)",
        "PaC-trees (arxiv 2204.06077) applied to PAM",
    );
    let n = scaled(100_000);
    let mut t = Table::new(&[
        "layout",
        "nodes",
        "bytes",
        "B/entry",
        "scan",
        "for_each",
        "200k gets",
    ]);
    let (n1, b1, s1, f1, g1) = measure::<1>(n);
    let (n32, b32, s32, f32_, g32) = measure::<32>(n);
    for (label, nodes, bytes, scan, st, get) in [
        ("CAP=1 (per-entry)", n1, b1, s1, f1, g1),
        ("CAP=32 (blocked)", n32, b32, s32, f32_, g32),
    ] {
        t.row(vec![
            label.into(),
            nodes.to_string(),
            bytes.to_string(),
            format!("{:.1}", bytes as f64 / n as f64),
            fmt_secs(scan),
            fmt_secs(st),
            fmt_secs(get),
        ]);
    }
    t.print();
    println!();
    println!(
        "memory ratio (CAP=1 / CAP=32): {:.2}x   (internal node: {} B, n = {n})",
        b1 as f64 / b32 as f64,
        node_size::<Spec, WeightBalancedCap<32>>(),
    );
    println!(
        "scan speedup: {:.2}x   for_each speedup: {:.2}x",
        s1 / s32,
        f1 / f32_,
    );
}
