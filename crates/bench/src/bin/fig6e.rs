//! Figure 6(e) reproduction: *sequential* range tree construction time
//! vs number of points, PAM vs the CGAL-equivalent static range tree.
//!
//! Paper: PAM builds >2x faster than CGAL at every size (both
//! sequential). Shape to check: both curves are ~n log n, PAM's constant
//! is competitive with the array-based static structure despite building
//! a fully persistent nested map.

use pam_bench::*;
use pam_rangetree::RangeTree;

fn main() {
    banner(
        "Figure 6(e): sequential range tree build vs #points",
        "Figure 6(e)",
    );
    let max_n = scaled(200_000);
    let mut t = Table::new(&["#points", "PAM build T1", "CGAL-eq build T1"]);
    let mut n = (max_n / 64).max(1000);
    while n <= max_n {
        let pts = workloads::random_points(n, 5, 1 << 20);
        let pam_t = with_threads(1, || time(|| RangeTree::build(pts.clone())).1);
        let (_, cgal_t) = time(|| baselines::StaticRangeTree::build(pts.clone()));
        t.row(vec![n.to_string(), fmt_secs(pam_t), fmt_secs(cgal_t)]);
        n *= 2;
    }
    t.print();
}
