//! Table 5 reproduction: interval tree and 2D range tree timings, PAM vs
//! the sequential specialized baselines (CGAL-equivalent static range
//! tree; Python-intervaltree-equivalent brute list).
//!
//! Shape to check: PAM builds beat the static baseline sequentially and
//! scale with cores; Q-Sum ≪ Q-All; the brute-force interval baseline is
//! orders of magnitude slower per query.

use pam_bench::*;
use pam_interval::IntervalMap;
use pam_rangetree::RangeTree;
use rayon::prelude::*;

fn main() {
    banner(
        "Table 5: interval & range tree vs specialized baselines",
        "Table 5 of the paper",
    );
    let p = max_threads();
    let mut t = Table::new(&["Lib", "Func", "n", "m", "T1", &format!("T{p}"), "Spd."]);

    // ---------------- interval tree ----------------
    let n = scaled(1_000_000);
    let m = scaled(1_000_000);
    let universe = n as u64 * 10;
    let ivals = workloads::random_intervals(n, 1, universe, 200);
    let stabs = workloads::intervals::stab_points(m, 2, universe);

    let b1 = with_threads(1, || time(|| IntervalMap::from_intervals(ivals.clone())).1);
    let bp = with_threads(p, || time(|| IntervalMap::from_intervals(ivals.clone())).1);
    t.row(vec![
        "PAM (interval)".into(),
        "Build".into(),
        n.to_string(),
        "-".into(),
        fmt_secs(b1),
        fmt_secs(bp),
        fmt_spd(b1, bp),
    ]);
    let im = IntervalMap::from_intervals(ivals.clone());
    let run_q = |im: &IntervalMap| stabs.par_iter().filter(|&&x| im.stab(x)).count();
    let q1 = with_threads(1, || time(|| run_q(&im)).1);
    let qp = with_threads(p, || time(|| run_q(&im)).1);
    t.row(vec![
        "PAM (interval)".into(),
        "Query".into(),
        n.to_string(),
        m.to_string(),
        fmt_secs(q1),
        fmt_secs(qp),
        fmt_spd(q1, qp),
    ]);

    // brute-force baseline (Python intervaltree stand-in): tiny m only
    let small_m = scaled(100).max(1);
    let blist = baselines::IntervalList::from_intervals(ivals.clone());
    let (_, tb) = time(|| {
        stabs[..small_m.min(stabs.len())]
            .iter()
            .filter(|&&x| blist.stab(x))
            .count()
    });
    t.row(vec![
        "Brute list".into(),
        "Query".into(),
        n.to_string(),
        small_m.to_string(),
        fmt_secs(tb),
        "-".into(),
        "-".into(),
    ]);
    let per_pam = q1 / m as f64;
    let per_brute = tb / small_m as f64;
    println!(
        "(per-query: PAM {:.2}us vs brute {:.2}us -> {:.0}x)",
        per_pam * 1e6,
        per_brute * 1e6,
        per_brute / per_pam
    );

    // ---------------- 2D range tree ----------------
    let n = scaled(200_000);
    let m_sum = scaled(100_000);
    let m_all = scaled(1_000);
    let universe = 1u32 << 20;
    let pts = workloads::random_points(n, 3, universe);

    let b1 = with_threads(1, || time(|| RangeTree::build(pts.clone())).1);
    let bp = with_threads(p, || time(|| RangeTree::build(pts.clone())).1);
    t.row(vec![
        "PAM (range)".into(),
        "Build".into(),
        n.to_string(),
        "-".into(),
        fmt_secs(b1),
        fmt_secs(bp),
        fmt_spd(b1, bp),
    ]);
    let rt = RangeTree::build(pts.clone());
    let wins_sum = workloads::points::query_windows(m_sum, 4, universe, 0.05);
    let run_sum = |rt: &RangeTree| {
        wins_sum
            .par_iter()
            .map(|&(xl, xr, yl, yr)| rt.query_sum(xl, xr, yl, yr))
            .fold(|| 0u64, |s, x| s.wrapping_add(x))
            .reduce(|| 0u64, u64::wrapping_add)
    };
    let q1 = with_threads(1, || time(|| run_sum(&rt)).1);
    let qp = with_threads(p, || time(|| run_sum(&rt)).1);
    t.row(vec![
        "PAM (range)".into(),
        "Q-Sum".into(),
        n.to_string(),
        m_sum.to_string(),
        fmt_secs(q1),
        fmt_secs(qp),
        fmt_spd(q1, qp),
    ]);
    // Q-All with ~10% windows (output ~ n/100 per query)
    let wins_all = workloads::points::query_windows(m_all, 5, universe, 0.1);
    let run_all = |rt: &RangeTree| {
        wins_all
            .par_iter()
            .map(|&(xl, xr, yl, yr)| rt.query_points(xl, xr, yl, yr).len())
            .sum::<usize>()
    };
    let qa1 = with_threads(1, || time(|| run_all(&rt)).1);
    let qap = with_threads(p, || time(|| run_all(&rt)).1);
    t.row(vec![
        "PAM (range)".into(),
        "Q-All".into(),
        n.to_string(),
        m_all.to_string(),
        fmt_secs(qa1),
        fmt_secs(qap),
        fmt_spd(qa1, qap),
    ]);

    // CGAL-equivalent static range tree (sequential only, like CGAL)
    let (_, cb) = time(|| baselines::StaticRangeTree::build(pts.clone()));
    t.row(vec![
        "CGAL-eq (static)".into(),
        "Build".into(),
        n.to_string(),
        "-".into(),
        fmt_secs(cb),
        "-".into(),
        "-".into(),
    ]);
    let srt = baselines::StaticRangeTree::build(pts.clone());
    let (_, cs) = time(|| {
        wins_sum
            .iter()
            .map(|&(xl, xr, yl, yr)| srt.query_sum(xl, xr, yl, yr))
            .fold(0u64, u64::wrapping_add)
    });
    t.row(vec![
        "CGAL-eq (static)".into(),
        "Q-Sum".into(),
        n.to_string(),
        m_sum.to_string(),
        fmt_secs(cs),
        "-".into(),
        "-".into(),
    ]);
    let (_, ca) = time(|| {
        wins_all
            .iter()
            .map(|&(xl, xr, yl, yr)| srt.query_points(xl, xr, yl, yr).len())
            .sum::<usize>()
    });
    t.row(vec![
        "CGAL-eq (static)".into(),
        "Q-All".into(),
        n.to_string(),
        m_all.to_string(),
        fmt_secs(ca),
        "-".into(),
        "-".into(),
    ]);

    t.print();
}
