//! Figure 6(a) reproduction: insertion throughput (millions of elements
//! per second) vs thread count — PAM's parallel `multi_insert` against
//! the concurrent comparators (skiplist, B+ tree, sharded hash map; the
//! OpenBw/Masstree roles — see DESIGN.md "Substitutions").
//!
//! Paper: 5e7 insertions, 1..144 threads; PAM's bulk insertion largely
//! outperforms the point-concurrent structures. Shape to check: PAM's
//! line is highest and grows with threads; the lock-based structures
//! scale less steeply.

use pam::{AugMap, SumAug};
use pam_bench::*;
use rayon::prelude::*;

fn main() {
    banner("Figure 6(a): insert throughput vs threads", "Figure 6(a)");
    let n = scaled(2_000_000);
    let keys: Vec<(u64, u64)> = workloads::distinct_shuffled_keys(n, 1, 3)
        .into_iter()
        .map(|k| (k, k))
        .collect();

    let mut t = Table::new(&["threads", "PAM", "SkipList", "B+ tree", "ShardedHash"]);
    for p in thread_counts() {
        // PAM: batched multi-insert in chunks (the paper's model:
        // concurrent updates are accumulated and applied in bulk).
        let pam_t = with_threads(p, || {
            time(|| {
                let mut m: AugMap<SumAug<u64, u64>> = AugMap::new();
                for chunk in keys.chunks(250_000.max(n / 8)) {
                    m.multi_insert(chunk.to_vec());
                }
                m
            })
            .1
        });

        // point-concurrent structures: p threads insert disjoint slices
        let sl = baselines::SkipList::new();
        let (_, sl_t) = time(|| {
            with_threads(p, || {
                keys.par_chunks(keys.len().div_ceil(p).max(1))
                    .for_each(|c| {
                        for &(k, v) in c {
                            sl.insert(k, v);
                        }
                    });
            })
        });
        assert_eq!(sl.len(), n);

        let bp = baselines::BPlusTree::new();
        let (_, bp_t) = time(|| {
            with_threads(p, || {
                keys.par_chunks(keys.len().div_ceil(p).max(1))
                    .for_each(|c| {
                        for &(k, v) in c {
                            bp.insert(k, v);
                        }
                    });
            })
        });
        assert_eq!(bp.len(), n);

        let sh = baselines::ShardedMap::new(8, n / 128);
        let (_, sh_t) = time(|| {
            with_threads(p, || {
                keys.par_chunks(keys.len().div_ceil(p).max(1))
                    .for_each(|c| {
                        for &(k, v) in c {
                            sh.insert(k, v);
                        }
                    });
            })
        });

        t.row(vec![
            p.to_string(),
            fmt_meps(n, pam_t),
            fmt_meps(n, sl_t),
            fmt_meps(n, bp_t),
            fmt_meps(n, sh_t),
        ]);
    }
    t.print();
    println!("\n(values are throughput in millions of inserts per second)");
}
