//! Table 6 reproduction: building and querying the weighted inverted
//! index (the paper used the 2016 Wikipedia dump: 1.96e9 tokens, 5.09e6
//! unique words; we generate a Zipfian corpus with the same shape — see
//! DESIGN.md, "Substitutions").
//!
//! Shape to check: build rate in millions of tokens/sec with >1 parallel
//! speedup; queries (and + top-10) scale with cores; this experiment
//! exercises *concurrent* reads of shared posting lists, each query
//! building its own persistent intersection.

use pam_bench::*;
use pam_index::{top_k, InvertedIndex};
use rayon::prelude::*;

fn main() {
    banner(
        "Table 6: inverted index build & query rates",
        "Table 6 of the paper",
    );
    let p = max_threads();

    let docs = scaled(50_000);
    let corpus = workloads::Corpus::generate(workloads::CorpusConfig {
        docs,
        vocab: 100_000.min(docs * 10).max(100),
        doc_len: 100,
        zipf_s: 1.0,
        seed: 1,
    });
    let n = corpus.tokens();
    println!(
        "corpus: {} docs, {} tokens, vocab {}",
        docs, n, corpus.config.vocab
    );
    println!();

    let b1 = with_threads(1, || {
        time(|| InvertedIndex::build(corpus.triples.clone())).1
    });
    let bp = with_threads(p, || {
        time(|| InvertedIndex::build(corpus.triples.clone())).1
    });

    let idx = InvertedIndex::build(corpus.triples.clone());
    let nq = scaled(10_000);
    let queries = corpus.query_pairs(nq, 9);
    // total posting-list entries touched across all queries ("docs across
    // the queries" in the paper's Table 6 terms)
    let touched: usize = queries
        .par_iter()
        .map(|&(a, b)| idx.posting(a).len() + idx.posting(b).len())
        .sum();
    let run_q = |idx: &InvertedIndex| {
        queries
            .par_iter()
            .map(|&(a, b)| top_k(&idx.and_query(a, b), 10).len())
            .sum::<usize>()
    };
    let q1 = with_threads(1, || time(|| run_q(&idx)).1);
    let qp = with_threads(p, || time(|| run_q(&idx)).1);

    let mut t = Table::new(&[
        "Phase",
        "n",
        "T1",
        "Melts/s (1)",
        &format!("T{p}"),
        &format!("Melts/s ({p})"),
        "Spd.",
    ]);
    t.row(vec![
        "Build".into(),
        n.to_string(),
        fmt_secs(b1),
        fmt_meps(n, b1),
        fmt_secs(bp),
        fmt_meps(n, bp),
        fmt_spd(b1, bp),
    ]);
    t.row(vec![
        format!("Queries ({nq} and+top10)"),
        touched.to_string(),
        fmt_secs(q1),
        fmt_meps(touched, q1),
        fmt_secs(qp),
        fmt_meps(touched, qp),
        fmt_spd(q1, qp),
    ]);
    t.print();
}
