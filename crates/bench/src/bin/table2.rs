//! Table 2 reproduction: empirical validation of the asymptotic cost
//! claims.
//!
//! Table 2 of the paper is analytic; here we validate it by measurement:
//! for each function we time a doubling series of input sizes and report
//! the observed growth ratio next to the predicted one (e.g. T(2n)/T(n)
//! ≈ 2·log(2n)/log(n) ≈ 2.2 for an O(n log n) build, ≈ 1 for O(log n)
//! point operations, and union(n, m) growing with m log(n/m + 1)).

use pam::{AugMap, SumAug};
use pam_bench::*;

type M = AugMap<SumAug<u64, u64>>;

fn build_of(n: usize, seed: u64) -> M {
    AugMap::build(workloads::uniform_pairs(n, seed, n as u64 * 4))
}

fn main() {
    banner(
        "Table 2: empirical asymptotics of the core functions",
        "Table 2 of the paper",
    );
    let base = scaled(250_000);
    let sizes = [base, base * 2, base * 4];
    let p = max_threads();

    let mut t = Table::new(&[
        "Function",
        "bound",
        &format!("T(n={})", sizes[0]),
        &format!("T({})", sizes[1]),
        &format!("T({})", sizes[2]),
        "growth 4n/n",
        "predicted",
    ]);

    // helper: time f at each size with all threads
    let mut series =
        |label: &str, bound: &str, predicted: &str, f: &mut (dyn FnMut(usize) -> f64 + Send)| {
            let times: Vec<f64> = sizes.iter().map(|&n| with_threads(p, || f(n))).collect();
            t.row(vec![
                label.into(),
                bound.into(),
                fmt_secs(times[0]),
                fmt_secs(times[1]),
                fmt_secs(times[2]),
                format!("{:.2}x", times[2] / times[0]),
                predicted.into(),
            ]);
        };

    series("build", "O(n log n)", "~4.4x", &mut |n| {
        let pairs = workloads::uniform_pairs(n, 1, n as u64 * 4);
        time(|| M::build(pairs)).1
    });

    series("union (m = n)", "O(n)", "~4x", &mut |n| {
        let a = build_of(n, 1);
        let b = build_of(n, 2);
        time(|| a.union_with(b, |x, y| x.wrapping_add(*y))).1
    });

    series("union (m = 1000)", "O(m log(n/m))", "~1.2x", &mut |n| {
        let a = build_of(n, 1);
        let b = build_of(1000, 2);
        // average several runs: the op is microseconds
        let mut best = f64::INFINITY;
        for _ in 0..5 {
            let (aa, bb) = (a.clone(), b.clone());
            best = best.min(time(|| aa.union_with(bb, |x, y| x.wrapping_add(*y))).1);
        }
        best
    });

    series("find x n", "O(log n) each", "~4.4x", &mut |n| {
        let a = build_of(n, 1);
        let probes: Vec<u64> = (0..n as u64)
            .map(|i| workloads::hash64(i) % (n as u64 * 4))
            .collect();
        time(|| probes.iter().filter(|k| a.get(k).is_some()).count()).1
    });

    series("aug_range x n", "O(log n) each", "~4.4x", &mut |n| {
        let a = build_of(n, 1);
        let probes: Vec<u64> = (0..n as u64)
            .map(|i| workloads::hash64(i) % (n as u64 * 4))
            .collect();
        time(|| {
            probes
                .iter()
                .map(|&lo| a.aug_range(&lo, &(lo + 500)))
                .fold(0u64, u64::wrapping_add)
        })
        .1
    });

    series("filter", "O(n)", "~4x", &mut |n| {
        let a = build_of(n, 1);
        time(|| a.filter(|k, _| k % 2 == 0)).1
    });

    series("range x n", "O(log n) each", "~4.4x", &mut |n| {
        let a = build_of(n, 1);
        let probes: Vec<u64> = (0..n as u64)
            .map(|i| workloads::hash64(i) % (n as u64 * 4))
            .collect();
        time(|| {
            probes
                .iter()
                .map(|&lo| a.range(&lo, &(lo + 50)).len())
                .sum::<usize>()
        })
        .1
    });

    t.print();
    println!();
    println!("Note: 'growth 4n/n' is the measured T(4n)/T(n); 'predicted' is the");
    println!("bound's prediction. O(log n)-per-op rows time n operations, so both");
    println!("grow ~4.4x; constants and cache effects add noise at small scales.");
}
