//! Text front end: build the index straight from document strings.
//!
//! The paper's preprocessing pipeline for the Wikipedia experiment —
//! *"removed all XML markup, treated everything other than alphanumeric
//! characters as separators, and converted all upper case to lower case
//! to make searches case-insensitive"* — followed by term-frequency
//! weighting. A term dictionary (itself a PAM ordered map) translates
//! words to the dense term ids the core index uses.

use crate::{Doc, InvertedIndex, Term, Weight};
use pam::OrdMap;
use rayon::prelude::*;

/// A searchable text index: term dictionary + weighted inverted index.
pub struct TextIndex {
    dict: OrdMap<String, Term>,
    index: InvertedIndex,
    docs: usize,
}

/// Lowercased alphanumeric tokens of `s` (everything else separates).
pub fn tokenize(s: &str) -> Vec<String> {
    s.split(|c: char| !c.is_alphanumeric())
        .filter(|w| !w.is_empty())
        .map(|w| w.to_lowercase())
        .collect()
}

impl TextIndex {
    /// Build from documents (doc id = position in the slice). The weight
    /// of a (term, doc) pair is the term's occurrence count in that
    /// document (raw term frequency).
    pub fn build(documents: &[&str]) -> Self {
        // tokenize in parallel
        let token_lists: Vec<Vec<String>> = documents.par_iter().map(|d| tokenize(d)).collect();
        // term dictionary: sorted unique words -> dense ids
        let mut vocab: Vec<String> = token_lists.iter().flatten().cloned().collect();
        vocab.par_sort_unstable();
        vocab.dedup();
        let dict: OrdMap<String, Term> = OrdMap::from_sorted_distinct(
            &vocab
                .iter()
                .enumerate()
                .map(|(i, w)| (w.clone(), i as Term))
                .collect::<Vec<_>>(),
        );
        // (term, doc, count) triples; InvertedIndex::build keeps the max
        // weight per (term, doc), so pre-aggregate counts here.
        let triples: Vec<(Term, Doc, Weight)> = token_lists
            .par_iter()
            .enumerate()
            .flat_map_iter(|(d, words)| {
                let mut counts: std::collections::HashMap<Term, Weight> =
                    std::collections::HashMap::with_capacity(words.len());
                for w in words {
                    let t = *dict.get(w).expect("word is in the dictionary");
                    *counts.entry(t).or_insert(0) += 1;
                }
                counts.into_iter().map(move |(t, c)| (t, d as Doc, c))
            })
            .collect();
        TextIndex {
            dict,
            index: InvertedIndex::build(triples),
            docs: documents.len(),
        }
    }

    /// Number of indexed documents.
    pub fn num_docs(&self) -> usize {
        self.docs
    }

    /// Vocabulary size.
    pub fn num_terms(&self) -> usize {
        self.dict.len()
    }

    /// The dense id of `word`, if it occurs anywhere.
    pub fn term_id(&self, word: &str) -> Option<Term> {
        self.dict.get(&word.to_lowercase()).copied()
    }

    /// Top-`k` documents containing *both* words (weights added).
    pub fn search_and(&self, w1: &str, w2: &str, k: usize) -> Vec<(Doc, Weight)> {
        match (self.term_id(w1), self.term_id(w2)) {
            (Some(a), Some(b)) => crate::top_k(&self.index.and_query(a, b), k),
            _ => Vec::new(),
        }
    }

    /// Top-`k` documents containing *either* word.
    pub fn search_or(&self, w1: &str, w2: &str, k: usize) -> Vec<(Doc, Weight)> {
        match (self.term_id(w1), self.term_id(w2)) {
            (Some(a), Some(b)) => crate::top_k(&self.index.or_query(a, b), k),
            (Some(a), None) | (None, Some(a)) => crate::top_k(&self.index.posting(a), k),
            (None, None) => Vec::new(),
        }
    }

    /// Borrow the underlying weighted inverted index.
    pub fn inner(&self) -> &InvertedIndex {
        &self.index
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizer_lowercases_and_splits() {
        assert_eq!(
            tokenize("Hello, World! x86-64 <b>tags</b>"),
            vec!["hello", "world", "x86", "64", "b", "tags", "b"]
        );
        assert!(tokenize("  ...  ").is_empty());
    }

    #[test]
    fn searches_find_expected_docs() {
        let docs = [
            "the quick brown fox jumps over the lazy dog",
            "the quick red fox",
            "a lazy dog sleeps",
            "quick quick quick dog",
        ];
        let idx = TextIndex::build(&docs);
        assert_eq!(idx.num_docs(), 4);

        // "quick AND dog": docs 0 and 3; doc 3 has quick x3 -> higher weight
        let hits = idx.search_and("quick", "dog", 10);
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].0, 3);
        assert!(hits[0].1 > hits[1].1);

        // OR covers all docs containing either word
        let hits = idx.search_or("lazy", "red", 10);
        let ids: Vec<Doc> = hits.iter().map(|&(d, _)| d).collect();
        assert_eq!(ids.len(), 3); // docs 0, 1, 2

        // unknown words
        assert!(idx.search_and("quick", "zebra", 10).is_empty());
        assert_eq!(idx.search_or("zebra", "red", 10).len(), 1);
    }

    #[test]
    fn case_insensitive() {
        let docs = ["Rust IS Fast", "rust is safe"];
        let idx = TextIndex::build(&docs);
        assert_eq!(idx.search_and("RUST", "is", 10).len(), 2);
    }

    #[test]
    fn term_frequency_is_the_weight() {
        let docs = ["a a a b", "a b b"];
        let idx = TextIndex::build(&docs);
        let a = idx.term_id("a").unwrap();
        let posting = idx.inner().posting(a);
        assert_eq!(posting.get(&0), Some(&3));
        assert_eq!(posting.get(&1), Some(&1));
    }
}
