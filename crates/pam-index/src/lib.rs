//! # Weighted inverted index (paper §5.3)
//!
//! A search-engine style index: each *term* maps to a *posting list* — an
//! augmented map from document id to weight, augmented with the **maximum
//! weight** so the best documents can be found without scanning.
//!
//! The paper's formulation:
//!
//! ```text
//! M_I = AM(doc, <, weight, weight, (k,v) → v, max, 0)   // posting list
//! M_O = M(term, <, M_I)                                  // plain outer map
//! ```
//!
//! * `and` queries intersect posting lists, `or` queries union them —
//!   combining weights — in time that can be *much less* than the output
//!   size (the join-based set operations);
//! * the max augmentation drives an O(k log n)-ish `top_k` (best-first
//!   search over subtree maxima), far cheaper than scoring every result;
//! * persistence gives snapshot isolation: every query works on its own
//!   O(1) snapshot while the index is rebuilt or extended concurrently.

#![warn(missing_docs)]

pub mod text;

use pam::{AugMap, MaxAug, NoAug};

/// Document identifier.
pub type Doc = u32;
/// Term identifier (our corpora pre-hash words to dense ids).
pub type Term = u32;
/// Relevance weight.
pub type Weight = u64;

/// A posting list: documents → weights, augmented with the max weight.
pub type PostingList = AugMap<MaxAug<Doc, Weight>>;

/// The outer map: terms → posting lists (plain, un-augmented).
pub type TermMap = AugMap<NoAug<Term, PostingList>>;

/// A weighted inverted index supporting and/or/and-not queries with
/// top-k selection.
pub struct InvertedIndex {
    terms: TermMap,
}

impl Clone for InvertedIndex {
    /// O(1) snapshot of the entire index.
    fn clone(&self) -> Self {
        InvertedIndex {
            terms: self.terms.clone(),
        }
    }
}

impl Default for InvertedIndex {
    fn default() -> Self {
        InvertedIndex {
            terms: AugMap::new(),
        }
    }
}

impl InvertedIndex {
    /// Build from `(term, doc, weight)` triples, in parallel.
    ///
    /// Duplicate `(term, doc)` occurrences keep the **maximum** weight
    /// (any associative rule works; max matches the augmentation).
    /// Work O(n log n): a parallel sort of the triples, then each term's
    /// posting list is built from its contiguous slice.
    pub fn build(triples: Vec<(Term, Doc, Weight)>) -> Self {
        let mut items: Vec<((Term, Doc), Weight)> =
            triples.into_iter().map(|(t, d, w)| ((t, d), w)).collect();
        parlay::par_sort_by(&mut items, |a, b| a.0.cmp(&b.0));
        let items =
            parlay::combine_duplicates_by(items, |a, b| a.0 == b.0, |a, b| (a.0, a.1.max(b.1)));
        // group boundaries per term
        let flags: Vec<bool> = (0..items.len())
            .map(|i| i == 0 || items[i - 1].0 .0 != items[i].0 .0)
            .collect();
        let mut starts = parlay::pack_index(&flags);
        starts.push(items.len());
        use rayon::prelude::*;
        let term_lists: Vec<(Term, PostingList)> = starts
            .par_windows(2)
            .map(|w| {
                let group = &items[w[0]..w[1]];
                let term = group[0].0 .0;
                let docs: Vec<(Doc, Weight)> = group.iter().map(|&((_, d), w)| (d, w)).collect();
                (term, PostingList::from_sorted_distinct(&docs))
            })
            .collect();
        InvertedIndex {
            terms: TermMap::from_sorted_distinct(&term_lists),
        }
    }

    /// Number of distinct terms.
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// The posting list for `term` (empty if unseen). O(log |terms|) and
    /// O(1) space — the returned list shares all nodes with the index.
    pub fn posting(&self, term: Term) -> PostingList {
        self.terms.get(&term).cloned().unwrap_or_default()
    }

    /// Documents containing *both* terms; weights are added
    /// ("Weights are combined when taking unions and intersections").
    pub fn and_query(&self, a: Term, b: Term) -> PostingList {
        self.posting(a)
            .intersect_with(self.posting(b), |x, y| x + y)
    }

    /// Documents containing *either* term; weights added on overlap.
    pub fn or_query(&self, a: Term, b: Term) -> PostingList {
        self.posting(a).union_with(self.posting(b), |x, y| x + y)
    }

    /// Documents containing `a` but not `b`.
    pub fn and_not_query(&self, a: Term, b: Term) -> PostingList {
        self.posting(a).difference(self.posting(b))
    }

    /// Documents containing *all* of `terms` (weights added). The
    /// intersection is folded smallest-posting-first, so the running
    /// result never grows — each step costs O(m log(n/m + 1)) with m the
    /// current (shrinking) result size.
    pub fn and_query_multi(&self, terms: &[Term]) -> PostingList {
        let mut lists: Vec<PostingList> = terms.iter().map(|&t| self.posting(t)).collect();
        lists.sort_by_key(|l| l.len());
        let mut it = lists.into_iter();
        let mut acc = match it.next() {
            Some(first) => first,
            None => return PostingList::default(),
        };
        for l in it {
            if acc.is_empty() {
                return acc;
            }
            acc = acc.intersect_with(l, |x, y| x + y);
        }
        acc
    }

    /// Documents containing *any* of `terms` (weights added on overlap).
    pub fn or_query_multi(&self, terms: &[Term]) -> PostingList {
        terms
            .iter()
            .map(|&t| self.posting(t))
            .fold(PostingList::default(), |acc, l| {
                acc.union_with(l, |x, y| x + y)
            })
    }

    /// Merge another batch of `(term, doc, weight)` triples into the
    /// index (persistent: old snapshots are unaffected). Posting lists of
    /// shared terms are unioned.
    pub fn merge(&mut self, triples: Vec<(Term, Doc, Weight)>) {
        let other = InvertedIndex::build(triples);
        let terms = std::mem::take(&mut self.terms);
        self.terms = terms.union_with(other.terms, |p1, p2| {
            p1.clone().union_with(p2.clone(), |w1, w2| *w1.max(w2))
        });
    }
}

/// The `k` highest-weight documents of a posting list, best-first.
///
/// Classic priority-search over the max augmentation, delegated to the
/// generic [`pam::ops::top_k_by`]: a heap holds subtrees keyed by their
/// max weight and entries keyed by their own weight. O((k + log n)
/// log k) heap operations — independent of the posting list size for
/// small `k`, which is why the paper stores the max weight in the first
/// place.
pub fn top_k(list: &PostingList, k: usize) -> Vec<(Doc, Weight)> {
    pam::ops::top_k_by(list.root(), k, |&a| a, |_, &v| v)
        .into_iter()
        .map(|(&d, &w)| (d, w))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn tiny_index() -> InvertedIndex {
        InvertedIndex::build(vec![
            (1, 100, 5),
            (1, 101, 9),
            (1, 102, 2),
            (2, 101, 4),
            (2, 103, 7),
            (3, 100, 1),
        ])
    }

    #[test]
    fn postings_and_queries() {
        let idx = tiny_index();
        assert_eq!(idx.num_terms(), 3);
        assert_eq!(idx.posting(1).len(), 3);
        assert_eq!(idx.posting(99).len(), 0);

        let and = idx.and_query(1, 2);
        assert_eq!(and.to_vec(), vec![(101, 13)]); // 9 + 4

        let or = idx.or_query(1, 2);
        assert_eq!(or.to_vec(), vec![(100, 5), (101, 13), (102, 2), (103, 7)]);

        let not = idx.and_not_query(1, 2);
        assert_eq!(not.to_vec(), vec![(100, 5), (102, 2)]);
    }

    #[test]
    fn top_k_is_sorted_by_weight() {
        let idx = tiny_index();
        let or = idx.or_query(1, 2);
        let top = top_k(&or, 2);
        assert_eq!(top, vec![(101, 13), (103, 7)]);
        // k larger than the list: everything, best first
        let all = top_k(&or, 100);
        assert_eq!(all.len(), 4);
        assert!(all.windows(2).all(|w| w[0].1 >= w[1].1));
    }

    #[test]
    fn duplicate_term_doc_keeps_max_weight() {
        let idx = InvertedIndex::build(vec![(7, 1, 3), (7, 1, 9), (7, 1, 6)]);
        assert_eq!(idx.posting(7).to_vec(), vec![(1, 9)]);
    }

    #[test]
    fn matches_bruteforce_on_corpus() {
        let corpus = workloads::Corpus::generate(workloads::CorpusConfig {
            docs: 300,
            vocab: 500,
            doc_len: 60,
            zipf_s: 1.0,
            seed: 77,
        });
        let idx = InvertedIndex::build(corpus.triples.clone());

        // oracle: term -> doc -> max weight
        let mut oracle: BTreeMap<Term, BTreeMap<Doc, Weight>> = BTreeMap::new();
        for &(t, d, w) in &corpus.triples {
            let e = oracle.entry(t).or_default().entry(d).or_insert(0);
            *e = (*e).max(w);
        }
        assert_eq!(idx.num_terms(), oracle.len());

        for (a, b) in corpus.query_pairs(50, 123) {
            let got = idx.and_query(a, b).to_vec();
            let (oa, ob) = (oracle.get(&a), oracle.get(&b));
            let want: Vec<(Doc, Weight)> = match (oa, ob) {
                (Some(ma), Some(mb)) => ma
                    .iter()
                    .filter_map(|(d, w1)| mb.get(d).map(|w2| (*d, w1 + w2)))
                    .collect(),
                _ => vec![],
            };
            assert_eq!(got, want, "and({a},{b})");

            // top-10 agrees with sorting the full result
            let top = top_k(&idx.and_query(a, b), 10);
            let mut sorted = want.clone();
            sorted.sort_by(|x, y| y.1.cmp(&x.1).then(x.0.cmp(&y.0)));
            sorted.truncate(10);
            let top_weights: Vec<Weight> = top.iter().map(|&(_, w)| w).collect();
            let want_weights: Vec<Weight> = sorted.iter().map(|&(_, w)| w).collect();
            assert_eq!(top_weights, want_weights, "top10({a},{b})");
        }
    }

    #[test]
    fn merge_extends_the_index_persistently() {
        let mut idx = tiny_index();
        let snap = idx.clone();
        idx.merge(vec![(1, 200, 42), (9, 300, 1)]);
        assert_eq!(idx.posting(1).len(), 4);
        assert_eq!(idx.num_terms(), 4);
        // the snapshot still sees the old state
        assert_eq!(snap.posting(1).len(), 3);
        assert_eq!(snap.num_terms(), 3);
    }

    #[test]
    fn concurrent_queries_on_shared_snapshots() {
        let corpus = workloads::Corpus::generate(workloads::CorpusConfig {
            docs: 100,
            vocab: 200,
            doc_len: 40,
            zipf_s: 1.0,
            seed: 5,
        });
        let idx = std::sync::Arc::new(InvertedIndex::build(corpus.triples.clone()));
        let queries = corpus.query_pairs(200, 11);
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let idx = idx.clone();
                let qs = queries.clone();
                std::thread::spawn(move || {
                    // each "user" intersects over the shared posting lists
                    let mut total = 0usize;
                    for &(a, b) in qs.iter().skip(t).step_by(4) {
                        total += top_k(&idx.and_query(a, b), 10).len();
                    }
                    total
                })
            })
            .collect();
        let sum: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert!(sum > 0);
    }
}

#[cfg(test)]
mod multi_tests {
    use super::*;

    #[test]
    fn multi_term_and_or() {
        let idx = InvertedIndex::build(vec![
            (1, 10, 1),
            (1, 11, 1),
            (1, 12, 1),
            (2, 11, 2),
            (2, 12, 2),
            (3, 12, 3),
            (3, 99, 3),
        ]);
        let and = idx.and_query_multi(&[1, 2, 3]);
        assert_eq!(and.to_vec(), vec![(12, 6)]); // 1+2+3
        let or = idx.or_query_multi(&[1, 2, 3]);
        assert_eq!(or.len(), 4); // docs 10, 11, 12, 99

        // degenerate arities
        assert!(idx.and_query_multi(&[]).is_empty());
        assert_eq!(idx.and_query_multi(&[2]).len(), 2);
        assert!(idx.or_query_multi(&[]).is_empty());
        // unknown term kills the conjunction
        assert!(idx.and_query_multi(&[1, 999]).is_empty());
    }

    #[test]
    fn multi_and_matches_pairwise_fold() {
        let corpus = workloads::Corpus::generate(workloads::CorpusConfig {
            docs: 200,
            vocab: 300,
            doc_len: 50,
            zipf_s: 1.0,
            seed: 31,
        });
        let idx = InvertedIndex::build(corpus.triples.clone());
        for q in 0..20u64 {
            let terms: Vec<Term> = (0..3)
                .map(|j| corpus.zipf.sample(q * 3 + j, 77) as Term)
                .collect();
            let multi = idx.and_query_multi(&terms);
            // pairwise fold in term order must give the same *keys*
            let fold = idx
                .posting(terms[0])
                .intersect_with(idx.posting(terms[1]), |x, y| x + y)
                .intersect_with(idx.posting(terms[2]), |x, y| x + y);
            assert_eq!(multi.keys(), fold.keys());
            // ... and the same weights (addition is order-insensitive)
            assert_eq!(multi.to_vec(), fold.to_vec());
        }
    }
}
