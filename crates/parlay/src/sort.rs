//! Parallel comparison sorting.
//!
//! PAM's `build` starts by sorting the input sequence; the paper assumes a
//! work-efficient parallel sort with O(log n) span (PBBS sample sort). We
//! provide a from-scratch parallel merge sort ([`par_merge_sort_by`]) built
//! on [`crate::par_merge_into`], plus thin wrappers choosing between it and
//! rayon's pdqsort so benchmarks can compare the two (see the `sort`
//! ablation bench).

use crate::merge::par_merge_into;
use crate::par::{granularity, par2_if};
use crate::uninit::par_fill;
use rayon::prelude::*;
use std::cmp::Ordering;

/// Sort `v` with a from-scratch parallel merge sort (stable).
///
/// Work O(n log n), span O(log^2 n · log gran) — the divide-and-conquer
/// recursion forks both halves and merges them with the parallel merge.
pub fn par_merge_sort_by<T, F>(v: &mut Vec<T>, cmp: F)
where
    T: Clone + Send + Sync,
    F: Fn(&T, &T) -> Ordering + Sync,
{
    let sorted = sort_rec(v.as_slice(), &cmp);
    *v = sorted;
}

fn sort_rec<T, F>(s: &[T], cmp: &F) -> Vec<T>
where
    T: Clone + Send + Sync,
    F: Fn(&T, &T) -> Ordering + Sync,
{
    if s.len() <= granularity().max(64) {
        let mut v = s.to_vec();
        v.sort_by(|a, b| cmp(a, b));
        return v;
    }
    let (left, right) = s.split_at(s.len() / 2);
    let (a, b) = par2_if(true, || sort_rec(left, cmp), || sort_rec(right, cmp));
    par_fill(s.len(), |out| par_merge_into(&a, &b, out, cmp))
}

/// Default parallel sort used by PAM's `build`: the from-scratch merge sort.
pub fn par_sort_by<T, F>(v: &mut Vec<T>, cmp: F)
where
    T: Clone + Send + Sync,
    F: Fn(&T, &T) -> Ordering + Sync,
{
    par_merge_sort_by(v, cmp);
}

/// Rayon's parallel unstable sort (chunked pdqsort runs + parallel move
/// merge in the shim), exposed for the sort ablation benchmark and for
/// callers that do not need stability.
pub fn par_sort_unstable_by<T, F>(v: &mut [T], cmp: F)
where
    T: Send,
    F: Fn(&T, &T) -> Ordering + Sync,
{
    v.par_sort_unstable_by(cmp);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xorshift(mut x: u64) -> u64 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    }

    #[test]
    fn sorts_random() {
        let mut v: Vec<u64> = (0..100_000u64)
            .map(|i| xorshift(i.wrapping_add(0x9e3779b97f4a7c15)))
            .collect();
        let mut expect = v.clone();
        expect.sort();
        par_merge_sort_by(&mut v, |a, b| a.cmp(b));
        assert_eq!(v, expect);
    }

    #[test]
    fn sorts_empty_and_single() {
        let mut v: Vec<u32> = vec![];
        par_merge_sort_by(&mut v, |a, b| a.cmp(b));
        assert!(v.is_empty());
        let mut v = vec![9];
        par_merge_sort_by(&mut v, |a, b| a.cmp(b));
        assert_eq!(v, vec![9]);
    }

    #[test]
    fn stable_on_equal_keys() {
        // (key, original index): after a stable sort by key, indices within
        // each key group must stay increasing.
        let mut v: Vec<(u8, u32)> = (0..50_000u32).map(|i| ((i % 7) as u8, i)).collect();
        par_merge_sort_by(&mut v, |a, b| a.0.cmp(&b.0));
        for w in v.windows(2) {
            if w[0].0 == w[1].0 {
                assert!(w[0].1 < w[1].1, "stability violated");
            }
        }
    }

    #[test]
    fn rayon_wrapper_sorts() {
        let mut v: Vec<u64> = (0..10_000u64).rev().collect();
        par_sort_unstable_by(&mut v, |a, b| a.cmp(b));
        assert!(v.windows(2).all(|w| w[0] <= w[1]));
    }
}
