//! Combining duplicate keys in a sorted sequence.
//!
//! PAM's `build(S, combine)` sorts the input and then merges entries with
//! equal keys using a user combine function (the paper's "remove the
//! duplicates, which are contiguous in sorted order"). This module performs
//! that group-combine step in parallel: mark group boundaries, pack the
//! boundary indices, and reduce each group independently.

use crate::par::granularity;
use crate::scan::pack_index;
use rayon::prelude::*;

/// Collapse runs of "same" elements in (sorted) `v`, combining each run
/// left-to-right with `combine` (so `combine(combine(x0, x1), x2)` for a
/// run of three). Order of surviving elements is preserved.
pub fn combine_duplicates_by<T, S, C>(v: Vec<T>, same: S, combine: C) -> Vec<T>
where
    T: Clone + Send + Sync,
    S: Fn(&T, &T) -> bool + Sync,
    C: Fn(&T, &T) -> T + Sync,
{
    let n = v.len();
    if n <= 1 {
        return v;
    }
    if n <= granularity() {
        let mut out: Vec<T> = Vec::with_capacity(n);
        for x in &v {
            match out.last_mut() {
                Some(last) if same(last, x) => *last = combine(last, x),
                _ => out.push(x.clone()),
            }
        }
        return out;
    }
    // flags[i] = "i starts a new group"
    let flags: Vec<bool> = (0..n)
        .into_par_iter()
        .map(|i| i == 0 || !same(&v[i - 1], &v[i]))
        .collect();
    let mut starts = pack_index(&flags);
    starts.push(n);
    starts
        .par_windows(2)
        .map(|w| {
            let group = &v[w[0]..w[1]];
            let mut acc = group[0].clone();
            for x in &group[1..] {
                acc = combine(&acc, x);
            }
            acc
        })
        .collect()
}

/// Specialization for key-value pairs: combine the *values* of equal keys.
pub fn combine_duplicates<K, V, C>(v: Vec<(K, V)>, combine: C) -> Vec<(K, V)>
where
    K: PartialEq + Clone + Send + Sync,
    V: Clone + Send + Sync,
    C: Fn(&V, &V) -> V + Sync,
{
    combine_duplicates_by(
        v,
        |a, b| a.0 == b.0,
        |a, b| (a.0.clone(), combine(&a.1, &b.1)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_duplicates_is_identity() {
        let v: Vec<(u64, u64)> = (0..100).map(|i| (i, i * 2)).collect();
        let got = combine_duplicates(v.clone(), |a, b| a + b);
        assert_eq!(got, v);
    }

    #[test]
    fn sums_within_groups() {
        let v = vec![(1u64, 1u64), (1, 2), (2, 5), (3, 1), (3, 1), (3, 1)];
        let got = combine_duplicates(v, |a, b| a + b);
        assert_eq!(got, vec![(1, 3), (2, 5), (3, 3)]);
    }

    #[test]
    fn combine_is_left_to_right() {
        // Use a non-commutative combine (string concat) to pin the order.
        let v = vec![
            (1u8, "a".to_string()),
            (1, "b".to_string()),
            (1, "c".to_string()),
        ];
        let got = combine_duplicates(v, |a, b| format!("{a}{b}"));
        assert_eq!(got, vec![(1, "abc".to_string())]);
    }

    #[test]
    fn large_parallel_matches_sequential() {
        let v: Vec<(u64, u64)> = (0..200_000u64).map(|i| (i / 3, 1)).collect();
        let got = combine_duplicates(v.clone(), |a, b| a + b);
        // every key 0..66666 appears 3 times except possibly the tail
        assert_eq!(got.len(), 200_000_usize.div_ceil(3));
        assert!(got[..got.len() - 1].iter().all(|&(_, c)| c == 3));
        let total: u64 = got.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, 200_000);
    }

    #[test]
    fn empty_and_single() {
        let e: Vec<(u8, u8)> = vec![];
        assert!(combine_duplicates(e, |a, _| *a).is_empty());
        let s = vec![(1u8, 9u8)];
        assert_eq!(combine_duplicates(s.clone(), |a, _| *a), s);
    }
}
