//! # parlay — parallel primitives substrate
//!
//! This crate is the stand-in for the runtime substrate that the PAM paper
//! takes as given: the Cilk Plus fork-join runtime plus the PBBS-style
//! utility library (parallel sorting, duplicate removal, prefix sums).
//!
//! The fork-join *scheduler* itself is provided by [`rayon`] (the idiomatic
//! Rust equivalent of Cilk's work-stealing scheduler); everything
//! *algorithmic* — the parallel merge sort, the parallel merge, prefix
//! sums, packing, and combining duplicates in sorted runs — is implemented
//! here from scratch, exactly the pieces PAM's `build` and `multi_insert`
//! rely on.
//!
//! All entry points degrade gracefully to their sequential counterparts
//! below a tunable granularity threshold (see [`granularity`] /
//! [`set_granularity`]), mirroring PAM's "granularity set so parallelism is
//! not used on very small trees".

mod dedup;
mod merge;
mod par;
mod scan;
mod sort;
mod uninit;

pub use dedup::{combine_duplicates, combine_duplicates_by};
pub use merge::{merge_by, par_merge_into};
pub use par::{granularity, par2, par2_if, set_granularity, with_threads};
pub use scan::{pack, pack_index, scan_inclusive, sum_u64};
pub use sort::{par_merge_sort_by, par_sort_by, par_sort_unstable_by};
pub use uninit::par_fill;
