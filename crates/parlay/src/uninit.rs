//! Helper for building a `Vec<T>` by filling an uninitialized buffer in
//! parallel.
//!
//! Parallel algorithms that know the exact size of their output (merges,
//! tree flattening) want to write disjoint sub-slices from different
//! threads. Safe Rust cannot hand out `&mut [T]` over uninitialized memory,
//! so this module provides the one small, well-contained `unsafe` escape
//! hatch used throughout the workspace.

use std::mem::MaybeUninit;

/// Allocate a buffer of `len` uninitialized slots, let `fill` initialize
/// *every* slot, and return the finished `Vec<T>`.
///
/// # Contract
///
/// `fill` must initialize every element of the slice it is given. All
/// callers in this workspace satisfy this by construction (they write
/// exactly `len` elements, partitioned by `split_at_mut`).
pub fn par_fill<T: Send>(len: usize, fill: impl FnOnce(&mut [MaybeUninit<T>])) -> Vec<T> {
    let mut buf: Vec<MaybeUninit<T>> = Vec::with_capacity(len);
    // SAFETY: MaybeUninit<T> is always "initialized enough"; the contract
    // requires `fill` to initialize every slot before we transmute below.
    unsafe { buf.set_len(len) };
    fill(&mut buf);
    // SAFETY: every slot was initialized by `fill`; Vec<MaybeUninit<T>> and
    // Vec<T> have identical layout.
    unsafe {
        let mut buf = std::mem::ManuallyDrop::new(buf);
        Vec::from_raw_parts(buf.as_mut_ptr() as *mut T, buf.len(), buf.capacity())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_sequentially() {
        let v = par_fill(5, |s| {
            for (i, slot) in s.iter_mut().enumerate() {
                *slot = MaybeUninit::new(i * 10);
            }
        });
        assert_eq!(v, vec![0, 10, 20, 30, 40]);
    }

    #[test]
    fn fills_in_parallel_halves() {
        let n = 100_000;
        let v = par_fill(n, |s| {
            let (a, b) = s.split_at_mut(n / 2);
            rayon::join(
                || {
                    for (i, slot) in a.iter_mut().enumerate() {
                        *slot = MaybeUninit::new(i as u64);
                    }
                },
                || {
                    for (i, slot) in b.iter_mut().enumerate() {
                        *slot = MaybeUninit::new((n / 2 + i) as u64);
                    }
                },
            );
        });
        assert!(v.iter().enumerate().all(|(i, &x)| x == i as u64));
    }

    #[test]
    fn empty_fill() {
        let v: Vec<u32> = par_fill(0, |_| {});
        assert!(v.is_empty());
    }

    #[test]
    fn drops_elements_exactly_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct D;
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        let v = par_fill(10, |s| {
            for slot in s.iter_mut() {
                *slot = MaybeUninit::new(D);
            }
        });
        drop(v);
        assert_eq!(DROPS.load(Ordering::SeqCst), 10);
    }
}
