//! Fork-join helpers and granularity control.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Default sequential-fallback threshold (number of elements / tree nodes).
///
/// PAM sets "a granularity so parallelism is not used on very small trees";
/// 2^11 is a good default for ~100ns-per-element workloads.
const DEFAULT_GRANULARITY: usize = 1 << 11;

static GRANULARITY: AtomicUsize = AtomicUsize::new(DEFAULT_GRANULARITY);

/// Current fork-join granularity: recursive algorithms run sequentially on
/// inputs smaller than this.
#[inline]
pub fn granularity() -> usize {
    // relaxed: a tuning knob — a stale read only shifts the
    // sequential cutoff, never correctness
    GRANULARITY.load(Ordering::Relaxed)
}

/// Set the fork-join granularity (used by the granularity-sweep ablation
/// bench). Affects all subsequent parallel calls process-wide.
pub fn set_granularity(g: usize) {
    // relaxed: see granularity() — no data is published via this knob
    GRANULARITY.store(g.max(1), Ordering::Relaxed);
}

/// Run two closures, in parallel via `rayon::join`.
///
/// This is the `s1 || s2` of the paper's pseudocode.
#[inline]
pub fn par2<RA, RB>(fa: impl FnOnce() -> RA + Send, fb: impl FnOnce() -> RB + Send) -> (RA, RB)
where
    RA: Send,
    RB: Send,
{
    rayon::join(fa, fb)
}

/// Run two closures in parallel when `do_par` holds, sequentially otherwise.
///
/// Callers pass `size > granularity()` (or a similar test) so that small
/// subproblems do not pay fork-join overhead.
#[inline]
pub fn par2_if<RA, RB>(
    do_par: bool,
    fa: impl FnOnce() -> RA + Send,
    fb: impl FnOnce() -> RB + Send,
) -> (RA, RB)
where
    RA: Send,
    RB: Send,
{
    if do_par {
        rayon::join(fa, fb)
    } else {
        (fa(), fb())
    }
}

/// Run `f` on a dedicated rayon pool with `n` worker threads.
///
/// The experiment harness uses this for thread-count sweeps ("T1" vs "Tp"
/// columns of the paper's tables).
pub fn with_threads<R: Send>(n: usize, f: impl FnOnce() -> R + Send) -> R {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(n.max(1))
        .build()
        .expect("failed to build rayon pool");
    pool.install(f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par2_returns_both() {
        let (a, b) = par2(|| 1 + 1, || "x".to_string());
        assert_eq!(a, 2);
        assert_eq!(b, "x");
    }

    #[test]
    fn par2_if_sequential_path() {
        let (a, b) = par2_if(false, || 40, || 2);
        assert_eq!(a + b, 42);
    }

    #[test]
    fn granularity_roundtrip() {
        let old = granularity();
        set_granularity(123);
        assert_eq!(granularity(), 123);
        set_granularity(old);
    }

    #[test]
    fn with_threads_runs_on_pool() {
        let n = with_threads(2, rayon::current_num_threads);
        assert_eq!(n, 2);
    }

    #[test]
    fn set_granularity_clamps_to_one() {
        let old = granularity();
        set_granularity(0);
        assert_eq!(granularity(), 1);
        set_granularity(old);
    }
}
