//! Parallel merge of sorted sequences.
//!
//! The classic divide-and-conquer merge: split the larger input at its
//! midpoint, binary-search the split key in the smaller input, and merge
//! the two halves in parallel. Work O(n + m), span O(log n · log m).

use crate::par::{granularity, par2_if};
use std::cmp::Ordering;
use std::mem::MaybeUninit;

/// Sequentially merge two sorted slices into a `Vec` (stable: ties taken
/// from `a` first).
pub fn merge_by<T: Clone, F: Fn(&T, &T) -> Ordering>(a: &[T], b: &[T], cmp: F) -> Vec<T> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if cmp(&b[j], &a[i]) == Ordering::Less {
            out.push(b[j].clone());
            j += 1;
        } else {
            out.push(a[i].clone());
            i += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// Index of the first element of `s` that is `>= key` (lower bound).
fn lower_bound<T, F: Fn(&T, &T) -> Ordering>(s: &[T], key: &T, cmp: &F) -> usize {
    let mut lo = 0;
    let mut hi = s.len();
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if cmp(&s[mid], key) == Ordering::Less {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

/// Merge sorted `a` and `b` into the uninitialized destination `out`
/// (which must have length `a.len() + b.len()`), in parallel.
///
/// Stable with respect to `a` before `b` on ties. Every slot of `out` is
/// initialized on return.
pub fn par_merge_into<T, F>(a: &[T], b: &[T], out: &mut [MaybeUninit<T>], cmp: &F)
where
    T: Clone + Send + Sync,
    F: Fn(&T, &T) -> Ordering + Sync,
{
    debug_assert_eq!(a.len() + b.len(), out.len());
    if out.len() <= granularity() {
        let (mut i, mut j, mut k) = (0, 0, 0);
        while i < a.len() && j < b.len() {
            if cmp(&b[j], &a[i]) == Ordering::Less {
                out[k] = MaybeUninit::new(b[j].clone());
                j += 1;
            } else {
                out[k] = MaybeUninit::new(a[i].clone());
                i += 1;
            }
            k += 1;
        }
        for x in &a[i..] {
            out[k] = MaybeUninit::new(x.clone());
            k += 1;
        }
        for x in &b[j..] {
            out[k] = MaybeUninit::new(x.clone());
            k += 1;
        }
        return;
    }
    // Split the larger side at its midpoint; ties go to `a` so stability holds.
    if a.len() >= b.len() {
        let am = a.len() / 2;
        let bm = lower_bound(b, &a[am], cmp);
        let (out_l, out_r) = out.split_at_mut(am + bm);
        par2_if(
            true,
            || par_merge_into(&a[..am], &b[..bm], out_l, cmp),
            || par_merge_into(&a[am..], &b[bm..], out_r, cmp),
        );
    } else {
        let bm = b.len() / 2;
        // Elements of `a` equal to b[bm] must land *before* it: use the
        // first index of `a` strictly greater than b[bm].
        let am = upper_bound(a, &b[bm], cmp);
        let (out_l, out_r) = out.split_at_mut(am + bm);
        par2_if(
            true,
            || par_merge_into(&a[..am], &b[..bm], out_l, cmp),
            || par_merge_into(&a[am..], &b[bm..], out_r, cmp),
        );
    }
}

/// Index of the first element of `s` that is `> key` (upper bound).
fn upper_bound<T, F: Fn(&T, &T) -> Ordering>(s: &[T], key: &T, cmp: &F) -> usize {
    let mut lo = 0;
    let mut hi = s.len();
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if cmp(&s[mid], key) == Ordering::Greater {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uninit::par_fill;

    fn check_merge(a: Vec<u64>, b: Vec<u64>) {
        let mut expect = [a.clone(), b.clone()].concat();
        expect.sort();
        let got = merge_by(&a, &b, |x, y| x.cmp(y));
        assert_eq!(got, expect);
        let n = a.len() + b.len();
        let got2: Vec<u64> = par_fill(n, |out| par_merge_into(&a, &b, out, &|x, y| x.cmp(y)));
        assert_eq!(got2, expect);
    }

    #[test]
    fn merges_small() {
        check_merge(vec![1, 3, 5], vec![2, 4, 6]);
        check_merge(vec![], vec![1, 2]);
        check_merge(vec![1, 2], vec![]);
        check_merge(vec![], vec![]);
        check_merge(vec![1, 1, 1], vec![1, 1]);
    }

    #[test]
    fn merges_large_parallel() {
        let a: Vec<u64> = (0..50_000).map(|i| i * 2).collect();
        let b: Vec<u64> = (0..30_000).map(|i| i * 3 + 1).collect();
        check_merge(a, b);
    }

    #[test]
    fn merge_is_stable() {
        // pairs (key, origin); all keys equal -- `a` elements must come first.
        let a: Vec<(u64, u8)> = (0..10).map(|_| (7, 0)).collect();
        let b: Vec<(u64, u8)> = (0..10).map(|_| (7, 1)).collect();
        let got = merge_by(&a, &b, |x, y| x.0.cmp(&y.0));
        assert!(got[..10].iter().all(|e| e.1 == 0));
        assert!(got[10..].iter().all(|e| e.1 == 1));
    }
}
