//! Parallel prefix sums and packing (the PBBS `scan` / `pack` utilities).

use crate::par::granularity;
use crate::uninit::par_fill;
use rayon::prelude::*;
use std::mem::MaybeUninit;

fn chunk_len(n: usize) -> usize {
    let target = n / (4 * rayon::current_num_threads().max(1));
    target.max(granularity()).max(1)
}

/// Parallel sum of a `u64` slice.
pub fn sum_u64(v: &[u64]) -> u64 {
    if v.len() <= granularity() {
        return v.iter().sum();
    }
    v.par_chunks(chunk_len(v.len()))
        .map(|c| c.iter().sum::<u64>())
        .sum()
}

/// Inclusive prefix sums of `v` (`out[i] = v[0] + ... + v[i]`), computed with
/// the classic two-pass blocked algorithm. Work O(n), span O(n / P + P).
pub fn scan_inclusive(v: &[u64]) -> Vec<u64> {
    let n = v.len();
    if n <= granularity() {
        let mut out = Vec::with_capacity(n);
        let mut acc = 0u64;
        for &x in v {
            acc += x;
            out.push(acc);
        }
        return out;
    }
    let cl = chunk_len(n);
    // Pass 1: per-chunk totals.
    let totals: Vec<u64> = v.par_chunks(cl).map(|c| c.iter().sum()).collect();
    // Exclusive scan over the (few) chunk totals.
    let mut offsets = Vec::with_capacity(totals.len());
    let mut acc = 0u64;
    for t in &totals {
        offsets.push(acc);
        acc += t;
    }
    // Pass 2: per-chunk inclusive scans seeded with the chunk offset.
    par_fill(n, |out| {
        out.par_chunks_mut(cl)
            .zip(v.par_chunks(cl))
            .zip(offsets.par_iter())
            .for_each(|((oc, vc), &off)| {
                let mut acc = off;
                for (slot, &x) in oc.iter_mut().zip(vc) {
                    acc += x;
                    *slot = MaybeUninit::new(acc);
                }
            });
    })
}

/// Indices `i` with `flags[i] == true`, in order (PBBS `pack_index`).
pub fn pack_index(flags: &[bool]) -> Vec<usize> {
    let n = flags.len();
    if n <= granularity() {
        return flags
            .iter()
            .enumerate()
            .filter_map(|(i, &f)| f.then_some(i))
            .collect();
    }
    let cl = chunk_len(n);
    let counts: Vec<usize> = flags
        .par_chunks(cl)
        .map(|c| c.iter().filter(|&&f| f).count())
        .collect();
    let mut offsets = Vec::with_capacity(counts.len());
    let mut acc = 0usize;
    for c in &counts {
        offsets.push(acc);
        acc += c;
    }
    let total = acc;
    par_fill(total, |out| {
        rayon::scope(|s| {
            let mut rest = out;
            for (ci, chunk) in flags.chunks(cl).enumerate() {
                let (cur, r) = rest.split_at_mut(counts[ci]);
                rest = r;
                let base = ci * cl;
                s.spawn(move |_| {
                    let mut k = 0;
                    for (i, &f) in chunk.iter().enumerate() {
                        if f {
                            cur[k] = MaybeUninit::new(base + i);
                            k += 1;
                        }
                    }
                });
            }
        });
    })
}

/// Keep the elements of `v` whose flag is set, preserving order
/// (PBBS `pack`).
pub fn pack<T: Clone + Send + Sync>(v: &[T], flags: &[bool]) -> Vec<T> {
    assert_eq!(v.len(), flags.len());
    // the parallel driver chunks (and degrades to a sequential loop on
    // small inputs / one thread) on its own — no explicit fallback needed
    let idx = pack_index(flags);
    idx.par_iter().map(|&i| v[i].clone()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_matches_sequential() {
        let v: Vec<u64> = (0..100_000).map(|i| (i % 13) as u64).collect();
        let got = scan_inclusive(&v);
        let mut acc = 0;
        for (i, &x) in v.iter().enumerate() {
            acc += x;
            assert_eq!(got[i], acc);
        }
    }

    #[test]
    fn scan_empty() {
        assert!(scan_inclusive(&[]).is_empty());
    }

    #[test]
    fn sum_matches() {
        let v: Vec<u64> = (0..50_000).collect();
        assert_eq!(sum_u64(&v), v.iter().sum::<u64>());
    }

    #[test]
    fn pack_index_small_and_large() {
        let flags = vec![true, false, true, true, false];
        assert_eq!(pack_index(&flags), vec![0, 2, 3]);

        let big: Vec<bool> = (0..100_000).map(|i| i % 3 == 0).collect();
        let got = pack_index(&big);
        let expect: Vec<usize> = (0..100_000).filter(|i| i % 3 == 0).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn pack_keeps_order() {
        let v: Vec<u32> = (0..10_000).collect();
        let flags: Vec<bool> = v.iter().map(|x| x % 2 == 1).collect();
        let got = pack(&v, &flags);
        let expect: Vec<u32> = v.iter().copied().filter(|x| x % 2 == 1).collect();
        assert_eq!(got, expect);
    }
}
