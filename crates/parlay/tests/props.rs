//! Property tests for the parallel primitives: every parallel routine
//! agrees with its obvious sequential counterpart on arbitrary inputs.

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn par_sort_matches_std_stable_sort(mut v in proptest::collection::vec((0u8..16, 0u32..1000), 0..3000)) {
        let mut expect = v.clone();
        expect.sort_by_key(|a| a.0); // stable
        parlay::par_merge_sort_by(&mut v, |a, b| a.0.cmp(&b.0));
        prop_assert_eq!(v, expect);
    }

    #[test]
    fn merge_matches_concat_sort(a in proptest::collection::vec(0u64..500, 0..500),
                                 b in proptest::collection::vec(0u64..500, 0..500)) {
        let mut sa = a.clone();
        sa.sort();
        let mut sb = b.clone();
        sb.sort();
        let got = parlay::merge_by(&sa, &sb, |x, y| x.cmp(y));
        let mut expect = [sa, sb].concat();
        expect.sort();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn scan_matches_running_sum(v in proptest::collection::vec(0u64..1000, 0..3000)) {
        let got = parlay::scan_inclusive(&v);
        let mut acc = 0u64;
        let expect: Vec<u64> = v.iter().map(|&x| { acc += x; acc }).collect();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn pack_matches_filter(v in proptest::collection::vec(0u32..100, 0..2000),
                           seed in 0u32..100) {
        let flags: Vec<bool> = v.iter().map(|&x| (x + seed) % 3 == 0).collect();
        let got = parlay::pack(&v, &flags);
        let expect: Vec<u32> = v.iter().zip(&flags).filter(|(_, &f)| f).map(|(&x, _)| x).collect();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn combine_duplicates_matches_fold(mut v in proptest::collection::vec((0u16..50, 1u64..10), 0..2000)) {
        v.sort_by_key(|&(k, _)| k);
        let got = parlay::combine_duplicates(v.clone(), |a, b| a + b);
        let mut expect: Vec<(u16, u64)> = Vec::new();
        for (k, x) in v {
            match expect.last_mut() {
                Some(last) if last.0 == k => last.1 += x,
                _ => expect.push((k, x)),
            }
        }
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn sum_matches(v in proptest::collection::vec(0u64..1_000_000, 0..5000)) {
        prop_assert_eq!(parlay::sum_u64(&v), v.iter().sum::<u64>());
    }
}
