// Fixture: FAILS panic-path — bare unwrap in non-test code.

pub fn brittle(v: Option<u32>) -> u32 {
    v.unwrap()
}
