// Fixture: PASSES uncapped-read-frame — uses the capped reader; bare
// read_frame only appears in masked positions (comments, strings).

use pam_wal::frame;

const CAP: usize = 1 << 20;

/// Drains every frame from `r`, rejecting frames larger than `CAP`.
/// The uncapped read_frame(..) helper is mentioned here only in prose.
///
/// # Errors
///
/// Propagates I/O and framing errors.
pub fn read_all(r: &mut impl std::io::Read) -> std::io::Result<Vec<Vec<u8>>> {
    let _doc = "read_frame( inside a string is not a call site";
    let mut out = Vec::new();
    while let Some(p) = frame::read_frame_capped(r, CAP)? {
        out.push(p);
    }
    Ok(out)
}
