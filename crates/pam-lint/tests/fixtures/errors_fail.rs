// Fixture: FAILS errors-doc — public fallible API lacking the
// required rustdoc failure-modes section. (This header must not spell
// the marker itself: the walk-up would find it.)

/// Parses a widget id.
pub fn parse_id(s: &str) -> Result<u32, String> {
    s.parse().map_err(|_| "bad id".to_string())
}
