// Fixture: FAILS uncapped-read-frame — calls read_frame outside
// pam-wal instead of read_frame_capped.

use pam_wal::frame;

/// Drains every frame from `r`.
///
/// # Errors
///
/// Propagates I/O and framing errors.
pub fn read_all(r: &mut impl std::io::Read) -> std::io::Result<Vec<Vec<u8>>> {
    let mut out = Vec::new();
    while let Some(p) = frame::read_frame(r)? {
        out.push(p);
    }
    Ok(out)
}
