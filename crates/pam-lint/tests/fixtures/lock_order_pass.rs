// Fixture: PASSES lock-order — ascending acquisition, an allow-comment
// escape, and a rustfmt-wrapped chain the scanner must reassemble.

pub struct Pair {
    outer: std::sync::Mutex<()>,
    inner: std::sync::Mutex<()>,
}

impl Pair {
    pub fn ordered(&self) {
        let _o = self.outer.lock();
        let _i = self.inner.lock();
    }

    pub fn wrapped(&self) {
        let _o = self
            .outer
            .lock();
        let _i = self
            .inner
            .lock();
    }

    pub fn justified(&self) {
        {
            let _i = self.inner.lock();
        }
        // lint: allow(lock-order) the inner guard is scoped above and
        // already dropped before outer is taken
        let _o = self.outer.lock();
    }
}
