// Fixture: FAILS unsafe-block — no SAFETY comment anywhere near.

pub fn undocumented(p: *const u8) -> u8 {
    unsafe { *p }
}
