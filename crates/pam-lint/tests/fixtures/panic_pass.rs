// Fixture: PASSES panic-path — allow-comment escape, test-module
// exemption, and decoys (strings, comments, unwrap_or-family).

pub fn resilient(v: Option<u32>) -> u32 {
    let _s = "call .unwrap() and panic!(now)"; // only prose
    let _r = r"and .expect(the spanish inquisition)";
    let or = v.unwrap_or(7); // unwrap_or is not unwrap
    let or2 = v.unwrap_or_else(|| 9);
    // lint: allow(panic) fixture demonstrating a justified invariant
    let n = v.expect("fixture invariant");
    or + or2 + n
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap_and_panic() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
        if v.is_none() {
            panic!("unreachable");
        }
    }
}
