// Fixture: PASSES unsafe-block — documented unsafes plus lexer decoys
// that must not be mistaken for code.

/// Mentions of unsafe inside strings and comments are masked out.
pub fn decoys() -> u8 {
    let _block = "unsafe { not_code() }";
    let _raw = r#"unsafe " still the same string "#;
    let _byte_raw = br##"unsafe { nor this } "# nor here "##;
    let _nested = 1; /* outer /* inner unsafe */ still one comment */
    let _char = 'u';
    let _quote_char = '\'';
    let _lifetime: &'static str = "x";
    0
}

// SAFETY: the pointer comes from a live reference below; alignment and
// validity hold by construction.
pub unsafe fn documented(p: *const u8) -> u8 {
    unsafe { *p } // SAFETY: caller upholds the contract above
}

/// Reads a byte.
///
/// # Safety
///
/// `p` must be valid for reads.
pub unsafe fn doc_safety(p: *const u8) -> u8 {
    // SAFETY: contract documented on the fn.
    unsafe { *p }
}
