// Fixture: PASSES errors-doc — documented public API; infallible and
// crate-private fns need no section.

/// Parses a widget id.
///
/// # Errors
///
/// Fails when `s` is not a decimal integer.
pub fn parse_id(s: &str) -> Result<u32, String> {
    s.parse().map_err(|_| "bad id".to_string())
}

/// Infallible: no section required.
pub fn double(x: u32) -> u32 {
    x * 2
}

// Not public API: `pub(crate)` is out of scope for the rule.
pub(crate) fn internal(s: &str) -> Result<u32, String> {
    parse_id(s)
}
