// Fixture: FAILS lock-order — acquires `outer` (rank 10) while the
// higher-ranked `inner` (rank 20) acquisition site precedes it.

pub struct Pair {
    outer: std::sync::Mutex<()>,
    inner: std::sync::Mutex<()>,
}

impl Pair {
    pub fn inverted(&self) {
        let _i = self.inner.lock();
        let _o = self.outer.lock();
    }
}
