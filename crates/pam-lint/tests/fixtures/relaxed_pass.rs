// Fixture: PASSES relaxed-ordering — justified in real code, exempt in
// a #[cfg(test)] module.

use std::sync::atomic::{AtomicU64, Ordering};

pub fn bump(c: &AtomicU64) {
    // relaxed: monitoring counter; nothing synchronizes through it
    c.fetch_add(1, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tests_need_no_justification() {
        let c = AtomicU64::new(0);
        c.fetch_add(1, Ordering::Relaxed);
        assert_eq!(c.load(Ordering::Relaxed), 1);
    }
}
