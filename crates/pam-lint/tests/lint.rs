//! Fixture tests for the pam-lint binary and library.
//!
//! Each rule class has a failing and a passing fixture under
//! `tests/fixtures/`; the fail fixtures must make `--deny` exit
//! non-zero with the rule's tag in the output, the pass fixtures must
//! come back clean even though they are stuffed with lexer decoys
//! (raw strings, nested block comments, `#[cfg(test)]` modules,
//! rustfmt-wrapped lock chains). A final test runs the binary against
//! the live workspace and requires it to be clean.

use std::path::Path;
use std::process::{Command, Output};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_pam-lint")
}

/// Runs the binary from the crate root (cargo's test cwd), so fixture
/// paths are relative to `crates/pam-lint/`.
fn run(args: &[&str]) -> Output {
    Command::new(bin())
        .args(args)
        .output()
        .expect("spawn pam-lint")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn assert_fails_with(fixture: &str, rule: &str, extra: &[&str]) {
    let mut args = vec!["--deny"];
    args.extend_from_slice(extra);
    args.push(fixture);
    let out = run(&args);
    let text = stdout(&out);
    assert_eq!(
        out.status.code(),
        Some(1),
        "{fixture}: expected exit 1, got {:?}\n{text}",
        out.status.code()
    );
    let tag = format!("[{rule}]");
    assert!(
        text.contains(&tag),
        "{fixture}: expected a {tag} finding, got:\n{text}"
    );
}

fn assert_clean(fixture: &str, extra: &[&str]) {
    let mut args = vec!["--deny"];
    args.extend_from_slice(extra);
    args.push(fixture);
    let out = run(&args);
    let text = stdout(&out);
    assert_eq!(
        out.status.code(),
        Some(0),
        "{fixture}: expected exit 0, got {:?}\n{text}",
        out.status.code()
    );
    assert!(
        text.contains("pam-lint: clean"),
        "{fixture}: expected clean trailer, got:\n{text}"
    );
}

const FIXTURE_LOCKS: &[&str] = &["--locks", "tests/fixtures/LOCKS.toml"];

#[test]
fn unsafe_block_rule() {
    assert_fails_with("tests/fixtures/unsafe_fail.rs", "unsafe-block", &[]);
    assert_clean("tests/fixtures/unsafe_pass.rs", &[]);
}

#[test]
fn relaxed_ordering_rule() {
    assert_fails_with("tests/fixtures/relaxed_fail.rs", "relaxed-ordering", &[]);
    assert_clean("tests/fixtures/relaxed_pass.rs", &[]);
}

#[test]
fn panic_path_rule() {
    assert_fails_with("tests/fixtures/panic_fail.rs", "panic-path", &[]);
    assert_clean("tests/fixtures/panic_pass.rs", &[]);
}

#[test]
fn errors_doc_rule() {
    assert_fails_with("tests/fixtures/errors_fail.rs", "errors-doc", &[]);
    assert_clean("tests/fixtures/errors_pass.rs", &[]);
}

#[test]
fn lock_order_rule() {
    assert_fails_with(
        "tests/fixtures/lock_order_fail.rs",
        "lock-order",
        FIXTURE_LOCKS,
    );
    assert_clean("tests/fixtures/lock_order_pass.rs", FIXTURE_LOCKS);
}

#[test]
fn uncapped_read_frame_rule() {
    assert_fails_with(
        "tests/fixtures/read_frame_fail.rs",
        "uncapped-read-frame",
        &[],
    );
    assert_clean("tests/fixtures/read_frame_pass.rs", &[]);
}

#[test]
fn fail_fixtures_trip_exactly_their_own_rule() {
    // Keeps fixtures honest: a fail fixture that also trips an
    // unrelated rule would mask regressions in the rule under test.
    let cases = [
        ("tests/fixtures/unsafe_fail.rs", "unsafe-block"),
        ("tests/fixtures/relaxed_fail.rs", "relaxed-ordering"),
        ("tests/fixtures/panic_fail.rs", "panic-path"),
        ("tests/fixtures/errors_fail.rs", "errors-doc"),
        ("tests/fixtures/read_frame_fail.rs", "uncapped-read-frame"),
    ];
    let config = {
        let mut c = pam_lint::Config::workspace(pam_lint::DEFAULT_LOCKS_TOML).expect("config");
        c.all_files_in_scope = true;
        c
    };
    for (fixture, rule) in cases {
        let source = std::fs::read_to_string(fixture).expect("read fixture");
        let findings = pam_lint::lint_file(Path::new(fixture), &source, &config);
        assert!(
            !findings.is_empty() && findings.iter().all(|f| f.rule == rule),
            "{fixture}: expected only [{rule}] findings, got {findings:?}"
        );
    }
}

#[test]
fn report_flag_writes_the_rendered_findings() {
    let report = std::env::temp_dir().join(format!("pam-lint-report-{}.txt", std::process::id()));
    let report_str = report.to_string_lossy().into_owned();
    let out = run(&["--report", &report_str, "tests/fixtures/panic_fail.rs"]);
    // Without --deny findings are reported but do not fail the run.
    assert_eq!(out.status.code(), Some(0), "{}", stdout(&out));
    let written = std::fs::read_to_string(&report).expect("report file");
    assert!(written.contains("[panic-path]"), "report was:\n{written}");
    assert!(written.contains("pam-lint: 1 finding(s)"));
    let _ = std::fs::remove_file(&report);
}

#[test]
fn unknown_flags_are_usage_errors() {
    let out = run(&["--frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn workspace_self_check_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let out = Command::new(bin())
        .arg("--deny")
        .current_dir(&root)
        .output()
        .expect("spawn pam-lint");
    let text = stdout(&out);
    assert_eq!(
        out.status.code(),
        Some(0),
        "workspace lint must stay clean:\n{text}"
    );
    assert!(text.contains("pam-lint: clean"), "got:\n{text}");
}

// ── library-level lexer checks on the tricky constructs ─────────────────

#[test]
fn lexer_masks_strings_comments_and_chars() {
    let map = pam_lint::SourceMap::new(concat!(
        "let a = \"unsafe { x }\";\n",
        "let b = r#\"unsafe \" more\"#;\n",
        "let c = br##\"unsafe \"# nope\"##;\n",
        "/* outer /* unsafe */ still comment */ let d = 1;\n",
        "let e = 'u'; let f: &'static str = \"x\"; // unsafe trailing\n",
        "unsafe { real() }\n",
    ));
    let hits = map.word_occurrences("unsafe");
    assert_eq!(hits, vec![(5, 0)], "masked:\n{:#?}", map.masked);
}

#[test]
fn lexer_marks_cfg_test_spans() {
    let map = pam_lint::SourceMap::new(concat!(
        "pub fn live() {}\n",
        "#[cfg(test)]\n",
        "mod tests {\n",
        "    fn helper() {}\n",
        "}\n",
        "pub fn also_live() {}\n",
    ));
    assert!(!map.is_test[0]);
    assert!(map.is_test[3]);
    assert!(!map.is_test[5]);
}

#[test]
fn marker_walkup_stops_at_code() {
    let map = pam_lint::SourceMap::new(concat!(
        "// SAFETY: documented\n",
        "#[inline]\n",
        "unsafe fn a() {}\n",
        "let x = 1;\n",
        "unsafe fn b() {}\n",
    ));
    assert!(map.has_marker(2, "SAFETY:"));
    assert!(!map.has_marker(4, "SAFETY:"), "walk-up must stop at code");
}
