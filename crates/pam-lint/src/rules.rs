//! The six lint rules, each a scan over a [`SourceMap`].

use std::path::Path;

use crate::lexer::SourceMap;
use crate::{in_scope, Config, Finding};

/// Integration tests and benches live outside `src/`; like
/// `#[cfg(test)]` mods, they're exempt from the justification rules.
fn is_test_path(p: &str) -> bool {
    ["tests/", "benches/", "examples/"]
        .iter()
        .any(|d| p.starts_with(d) || p.contains(&format!("/{d}")))
}

fn finding(path: &Path, line: usize, rule: &'static str, msg: String) -> Finding {
    Finding {
        file: path.to_path_buf(),
        line: line + 1,
        rule,
        msg,
    }
}

/// Rule 1: every `unsafe` (block, fn, impl, trait) carries a
/// `// SAFETY:` comment or a `# Safety` rustdoc section. Applies to
/// test code too — a test's transmute needs the same argument.
pub fn unsafe_blocks(path: &Path, _p: &str, map: &SourceMap, out: &mut Vec<Finding>) {
    for (ln, _col) in map.word_occurrences("unsafe") {
        if map.has_marker(ln, "SAFETY:") || map.has_marker(ln, "# Safety") {
            continue;
        }
        out.push(finding(
            path,
            ln,
            "unsafe-block",
            "`unsafe` without a `// SAFETY:` comment; state the invariant that makes this sound"
                .into(),
        ));
    }
}

/// Rule 2: `Ordering::Relaxed` needs a `// relaxed:` justification
/// outside the allowlisted hot-path counter files. Test code is exempt
/// (tests assert on counters; they don't publish data via them).
pub fn relaxed_orderings(
    path: &Path,
    p: &str,
    map: &SourceMap,
    config: &Config,
    out: &mut Vec<Finding>,
) {
    if in_scope(p, &config.relaxed_allowlist) || (!config.all_files_in_scope && is_test_path(p)) {
        return;
    }
    for (ln, _col) in map.word_occurrences("Relaxed") {
        if map.is_test[ln] || map.has_marker(ln, "relaxed:") {
            continue;
        }
        out.push(finding(
            path,
            ln,
            "relaxed-ordering",
            "`Ordering::Relaxed` without a `// relaxed:` comment; say why no ordering is needed"
                .into(),
        ));
    }
}

/// Rule 3: no `.unwrap()` / `.expect(…)` / `panic!` in the serving
/// path's non-test code. `// lint: allow(panic) <reason>` marks the
/// deliberate invariant panics.
pub fn panic_paths(path: &Path, p: &str, map: &SourceMap, config: &Config, out: &mut Vec<Finding>) {
    if !config.all_files_in_scope && !in_scope(p, &config.panic_scope) {
        return;
    }
    let mut check = |word: &str, needs_dot: bool, needs_paren: bool| {
        for (ln, col) in map.word_occurrences(word) {
            if map.is_test[ln] || map.has_marker(ln, "lint: allow(panic)") {
                continue;
            }
            let bytes = map.masked[ln].as_bytes();
            if needs_dot && (col == 0 || bytes[col - 1] != b'.') {
                continue;
            }
            if needs_paren && !map.next_char_is(ln, col + word.len(), b'(') {
                continue;
            }
            out.push(finding(
                path,
                ln,
                "panic-path",
                format!(
                    "`{word}` in serving-path code; return an error, or add \
                     `// lint: allow(panic) <why this is an invariant>`"
                ),
            ));
        }
    };
    check("unwrap", true, true);
    check("expect", true, true);
    // `panic!` — the word match stops before `!`, so check it by hand.
    for (ln, col) in map.word_occurrences("panic") {
        if map.is_test[ln] || map.has_marker(ln, "lint: allow(panic)") {
            continue;
        }
        if !map.next_char_is(ln, col + "panic".len(), b'!') {
            continue;
        }
        out.push(finding(
            path,
            ln,
            "panic-path",
            "`panic!` in serving-path code; return an error, or add \
             `// lint: allow(panic) <why this is an invariant>`"
                .into(),
        ));
    }
}

/// Rule 4: `pub fn … -> Result` in the storage crates documents its
/// failure modes under an `# Errors` rustdoc heading.
pub fn errors_docs(path: &Path, p: &str, map: &SourceMap, config: &Config, out: &mut Vec<Finding>) {
    if !config.all_files_in_scope && !in_scope(p, &config.errors_doc_scope) {
        return;
    }
    for (ln, col) in map.word_occurrences("pub") {
        if map.is_test[ln] {
            continue;
        }
        // `pub fn` only: `pub(crate)`/`pub(super)` aren't public API.
        let Some((fn_ln, fn_col)) = next_word_at(map, ln, col + 3, "fn") else {
            continue;
        };
        let Some(sig) = signature_text(map, fn_ln, fn_col) else {
            continue;
        };
        let returns_result = sig
            .split_once("->")
            .is_some_and(|(_, ret)| ret.contains("Result"));
        if !returns_result || map.has_marker(ln, "# Errors") {
            continue;
        }
        out.push(finding(
            path,
            ln,
            "errors-doc",
            "public fallible API without an `# Errors` rustdoc section".into(),
        ));
    }
}

/// The next token after `(ln, col)` if it is exactly `word` (skipping
/// whitespace, staying on the same logical item).
fn next_word_at(map: &SourceMap, ln: usize, col: usize, word: &str) -> Option<(usize, usize)> {
    let mut line = ln;
    let mut start = col;
    while line < map.masked.len() {
        let s = &map.masked[line];
        let rest = &s[start.min(s.len())..];
        let trimmed = rest.trim_start();
        if !trimmed.is_empty() {
            let at = start + (rest.len() - trimmed.len());
            let matches = trimmed.starts_with(word)
                && trimmed[word.len()..]
                    .bytes()
                    .next()
                    .is_none_or(|b| !(b == b'_' || b.is_ascii_alphanumeric()));
            return matches.then_some((line, at));
        }
        line += 1;
        start = 0;
    }
    None
}

/// The signature text from an `fn` token to its body `{` or `;`.
fn signature_text(map: &SourceMap, ln: usize, col: usize) -> Option<String> {
    let mut sig = String::new();
    let mut line = ln;
    let mut start = col;
    while line < map.masked.len() {
        let s = &map.masked[line];
        for (i, ch) in s[start.min(s.len())..].char_indices() {
            let _ = i;
            if ch == '{' || ch == ';' {
                return Some(sig);
            }
            sig.push(ch);
        }
        sig.push(' ');
        line += 1;
        start = 0;
    }
    None
}

/// Rule 5: within one function, locks named in LOCKS.toml must be
/// acquired in ascending rank order. The check is textual — it sees
/// acquisition *sites*, not guard lifetimes — so a later low-rank
/// acquisition after an earlier-dropped high-rank guard is a false
/// positive by design, silenced with `// lint: allow(lock-order)
/// <why the earlier guard is gone>`.
pub fn lock_order(path: &Path, p: &str, map: &SourceMap, config: &Config, out: &mut Vec<Finding>) {
    let locks: Vec<_> = config
        .locks
        .iter()
        .filter(|l| p.contains(l.file.as_str()))
        .collect();
    if locks.is_empty() {
        return;
    }
    for (start, end) in map.fn_spans() {
        // rustfmt wraps chains (`self.persist_mutex\n.lock()`), so
        // match against a whitespace-condensed view of the body with a
        // char→line side table.
        let mut condensed = String::new();
        let mut line_of = Vec::new();
        for ln in start..=end.min(map.masked.len().saturating_sub(1)) {
            for ch in map.masked[ln].chars().filter(|c| !c.is_whitespace()) {
                condensed.push(ch);
                line_of.push(ln);
            }
        }
        // Ordered acquisitions in this function.
        let mut hits: Vec<(usize, u32, &str)> = Vec::new();
        for lock in &locks {
            for method in ["lock", "read", "write"] {
                let pat = format!(".{}.{}(", lock.name, method);
                let mut from = 0;
                while let Some(off) = condensed[from..].find(&pat) {
                    hits.push((from + off, lock.rank, lock.name.as_str()));
                    from += off + pat.len();
                }
            }
        }
        hits.sort_by_key(|h| h.0);
        // Highest-ranked acquisition seen so far in this function.
        let mut high: Option<(u32, &str, usize)> = None;
        for (pos, rank, name) in hits {
            let ln = line_of[pos];
            if let Some((hrank, hname, hline)) = high {
                if rank < hrank && !allow_lock_order(map, ln, line_of[pos + name.len() + 1]) {
                    out.push(finding(
                        path,
                        ln,
                        "lock-order",
                        format!(
                            "`{name}` (rank {rank}) acquired after `{hname}` (rank {hrank}, \
                             line {}); acquire in LOCKS.toml order, or add `// lint: \
                             allow(lock-order) <why the {hname} guard is already dropped>`",
                            hline + 1
                        ),
                    ));
                }
            }
            if high.is_none_or(|(hrank, _, _)| rank > hrank) {
                high = Some((rank, name, ln));
            }
        }
    }
}

/// The allow comment may sit above the line naming the lock field or on
/// any line of the wrapped acquisition chain.
fn allow_lock_order(map: &SourceMap, first: usize, last: usize) -> bool {
    if map.has_marker(first, "lint: allow(lock-order)") {
        return true;
    }
    (first..=last).any(|ln| {
        map.comments
            .get(ln)
            .is_some_and(|c| c.contains("lint: allow(lock-order)"))
    })
}

/// Rule 6: the uncapped `read_frame` stays inside pam-wal; everything
/// else bounds allocation with `read_frame_capped`.
pub fn uncapped_read_frame(
    path: &Path,
    p: &str,
    map: &SourceMap,
    config: &Config,
    out: &mut Vec<Finding>,
) {
    if in_scope(p, &config.read_frame_exempt) {
        return;
    }
    for (ln, col) in map.word_occurrences("read_frame") {
        if !map.next_char_is(ln, col + "read_frame".len(), b'(') {
            continue;
        }
        out.push(finding(
            path,
            ln,
            "uncapped-read-frame",
            "`read_frame` trusts length fields up to 1 GiB; outside pam-wal use \
             `read_frame_capped` with a cap sized to the input's provenance"
                .into(),
        ));
    }
}
