//! Zero-dependency static lint pass for this workspace.
//!
//! `pam-lint` enforces the concurrency and error-handling discipline
//! documented in ARCHITECTURE.md §11 without pulling `syn`/`quote` into
//! an offline build: a hand-rolled lexer *masks* the source (blanks out
//! comments, strings, and char literals while preserving byte offsets
//! and line structure), and line-oriented rules then scan the masked
//! text where every remaining token is real code. Comment text is kept
//! per line on the side, because most rules are of the form "this
//! construct needs a justifying comment".
//!
//! Rules:
//!
//! 1. `unsafe-block` — every `unsafe` needs a `// SAFETY:` comment (or
//!    a `# Safety` rustdoc section) on the same line or the contiguous
//!    comment/attribute block above it.
//! 2. `relaxed-ordering` — every `Ordering::Relaxed` outside the
//!    pam-obs histogram hot path needs a `// relaxed:` justification.
//! 3. `panic-path` — no `.unwrap()` / `.expect(..)` / `panic!` in
//!    non-test code of pam-serve, pam-wal, pam-store; escape hatch is
//!    `// lint: allow(panic) <reason>`.
//! 4. `errors-doc` — `pub fn … -> Result` in pam-store/pam-wal needs an
//!    `# Errors` rustdoc section.
//! 5. `lock-order` — within one function, named locks from LOCKS.toml
//!    must be acquired in ascending rank order (textually — guards may
//!    be dropped early, hence `// lint: allow(lock-order) <reason>`).
//! 6. `uncapped-read-frame` — direct `read_frame(..)` calls outside
//!    pam-wal must be `read_frame_capped` (bounded allocation against
//!    hostile length fields).

use std::fmt;
use std::path::{Path, PathBuf};

pub mod lexer;
pub mod locks;
pub mod rules;

pub use lexer::SourceMap;
pub use locks::LockEntry;

/// One lint violation.
#[derive(Debug, Clone)]
pub struct Finding {
    /// File the violation is in (as given to the linter).
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// Stable rule identifier, e.g. `lock-order`.
    pub rule: &'static str,
    /// Human-readable description including the fix.
    pub msg: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.msg
        )
    }
}

/// Rule scoping. Paths are matched as `/`-normalized substrings, so the
/// linter behaves identically from the workspace root or a crate dir.
pub struct Config {
    /// Lock ranking table (see `LOCKS.toml`).
    pub locks: Vec<LockEntry>,
    /// Files where bare `Ordering::Relaxed` is expected (hot-path
    /// counters whose slots are independent by construction).
    pub relaxed_allowlist: Vec<String>,
    /// Crates whose non-test code must not panic.
    pub panic_scope: Vec<String>,
    /// Crates whose `pub fn … -> Result` APIs need `# Errors` docs.
    pub errors_doc_scope: Vec<String>,
    /// Paths allowed to call the uncapped `read_frame` (its home crate).
    pub read_frame_exempt: Vec<String>,
    /// When set (explicit file arguments, fixture tests), the
    /// crate-scoped rules apply to *every* given file instead of only
    /// files under their scope paths.
    pub all_files_in_scope: bool,
}

impl Config {
    /// The workspace's shipped configuration, with `locks` parsed from
    /// the given LOCKS.toml text.
    ///
    /// # Errors
    ///
    /// Returns the LOCKS.toml parse error, if any.
    pub fn workspace(locks_toml: &str) -> Result<Self, String> {
        Ok(Self {
            locks: locks::parse(locks_toml)?,
            relaxed_allowlist: vec![
                "crates/pam-obs/src/hist.rs".into(),
                "crates/pam-obs/src/metrics.rs".into(),
            ],
            panic_scope: vec![
                "crates/pam-serve/src/".into(),
                "crates/pam-wal/src/".into(),
                "crates/pam-store/src/".into(),
            ],
            errors_doc_scope: vec!["crates/pam-store/src/".into(), "crates/pam-wal/src/".into()],
            read_frame_exempt: vec!["crates/pam-wal/src/".into()],
            all_files_in_scope: false,
        })
    }
}

/// The LOCKS.toml shipped with the linter (the workspace lock table).
pub const DEFAULT_LOCKS_TOML: &str = include_str!("../LOCKS.toml");

fn norm(path: &Path) -> String {
    let s = path.to_string_lossy().replace('\\', "/");
    s
}

pub(crate) fn in_scope(path: &str, scopes: &[String]) -> bool {
    scopes.iter().any(|s| path.contains(s.as_str()))
}

/// Lint one file's contents. `path` is used for findings and scoping.
pub fn lint_file(path: &Path, source: &str, config: &Config) -> Vec<Finding> {
    let map = lexer::SourceMap::new(source);
    let p = norm(path);
    let mut out = Vec::new();
    rules::unsafe_blocks(path, &p, &map, &mut out);
    rules::relaxed_orderings(path, &p, &map, config, &mut out);
    rules::panic_paths(path, &p, &map, config, &mut out);
    rules::errors_docs(path, &p, &map, config, &mut out);
    rules::lock_order(path, &p, &map, config, &mut out);
    rules::uncapped_read_frame(path, &p, &map, config, &mut out);
    out.sort_by_key(|f| f.line);
    out
}

/// Recursively collect the `.rs` files under `root` that the workspace
/// pass lints: skips build output (`target/`), VCS metadata, and the
/// linter's own deliberately-violating fixtures.
pub fn collect_workspace_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if entry.file_type()?.is_dir() {
                if name == "target" || name == "fixtures" || name.starts_with('.') {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Lint every workspace file under `root` with the shipped config.
///
/// # Errors
///
/// Propagates file-read errors as displayable strings (missing files,
/// permission problems); lint findings are the `Ok` payload.
pub fn lint_workspace(root: &Path, config: &Config) -> Result<Vec<Finding>, String> {
    let mut out = Vec::new();
    let files =
        collect_workspace_files(root).map_err(|e| format!("walk {}: {e}", root.display()))?;
    for file in files {
        let source =
            std::fs::read_to_string(&file).map_err(|e| format!("read {}: {e}", file.display()))?;
        let rel = file.strip_prefix(root).unwrap_or(&file);
        out.extend(lint_file(rel, &source, config));
    }
    Ok(out)
}
