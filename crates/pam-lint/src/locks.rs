//! LOCKS.toml: the workspace's global lock-ordering table.
//!
//! The file is a list of `[[lock]]` tables with three keys — `name`
//! (the field the lock lives in), `file` (a path substring scoping the
//! name, since `state` means different locks in pipeline.rs and
//! durable.rs), and `rank` (lower = outer: a lock may only be acquired
//! while holding locks of *lower* rank). Parsed by hand — the subset of
//! TOML used is one table header and `key = value` lines — because the
//! linter is zero-dependency by design.

/// One row of the lock table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockEntry {
    /// Field name the lock is acquired through (`.name.lock()` etc.).
    pub name: String,
    /// Path substring the name is scoped to.
    pub file: String,
    /// Global rank; acquire in ascending order.
    pub rank: u32,
}

/// Parse the LOCKS.toml subset.
///
/// # Errors
///
/// A displayable message naming the offending line for anything outside
/// the `[[lock]]` / `key = value` / comment grammar, and for entries
/// missing one of the three required keys.
pub fn parse(text: &str) -> Result<Vec<LockEntry>, String> {
    let mut entries = Vec::new();
    let mut current: Option<(Option<String>, Option<String>, Option<u32>)> = None;
    for (ln, raw) in text.lines().enumerate() {
        let line = raw.trim();
        let err = |msg: &str| format!("LOCKS.toml line {}: {msg}", ln + 1);
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[[lock]]" {
            finish(&mut current, &mut entries).map_err(|m| err(&m))?;
            current = Some((None, None, None));
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(err("expected `[[lock]]` or `key = value`"));
        };
        let Some(entry) = current.as_mut() else {
            return Err(err("key outside a [[lock]] table"));
        };
        let value = value.split('#').next().unwrap_or(value).trim();
        match key.trim() {
            "name" => entry.0 = Some(unquote(value).map_err(|m| err(&m))?),
            "file" => entry.1 = Some(unquote(value).map_err(|m| err(&m))?),
            "rank" => {
                entry.2 = Some(value.parse().map_err(|_| err("rank must be an integer"))?);
            }
            other => return Err(err(&format!("unknown key `{other}`"))),
        }
    }
    finish(&mut current, &mut entries)?;
    Ok(entries)
}

fn finish(
    current: &mut Option<(Option<String>, Option<String>, Option<u32>)>,
    entries: &mut Vec<LockEntry>,
) -> Result<(), String> {
    if let Some((name, file, rank)) = current.take() {
        entries.push(LockEntry {
            name: name.ok_or("lock entry missing `name`")?,
            file: file.ok_or("lock entry missing `file`")?,
            rank: rank.ok_or("lock entry missing `rank`")?,
        });
    }
    Ok(())
}

fn unquote(value: &str) -> Result<String, String> {
    let inner = value
        .strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .ok_or_else(|| format!("expected a quoted string, got `{value}`"))?;
    Ok(inner.to_owned())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_shipped_table() {
        let entries = parse(crate::DEFAULT_LOCKS_TOML).expect("shipped LOCKS.toml parses");
        assert!(entries.len() >= 10, "expected a real table");
        // names are unique per file
        for (i, a) in entries.iter().enumerate() {
            for b in &entries[i + 1..] {
                assert!(
                    !(a.name == b.name && a.file == b.file),
                    "duplicate lock {}@{}",
                    a.name,
                    a.file
                );
            }
        }
    }

    #[test]
    fn rejects_malformed_tables() {
        assert!(parse("name = \"x\"").is_err(), "key outside table");
        assert!(parse("[[lock]]\nname = \"x\"").is_err(), "missing keys");
        assert!(
            parse("[[lock]]\nname = \"x\"\nfile = \"f\"\nrank = \"ten\"").is_err(),
            "non-integer rank"
        );
        let ok = parse("# comment\n[[lock]]\nname = \"a\"\nfile = \"f.rs\"\nrank = 10 # outer\n")
            .expect("minimal table");
        assert_eq!(
            ok,
            vec![LockEntry {
                name: "a".into(),
                file: "f.rs".into(),
                rank: 10
            }]
        );
    }
}
