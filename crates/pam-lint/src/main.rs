//! `pam-lint [--deny] [--report PATH] [--locks PATH] [paths…]`
//!
//! With no paths: walks the workspace from the current directory and
//! applies each rule in its shipped scope (LOCKS.toml files, the
//! serving-path crates, …). With explicit file paths: lints exactly
//! those files with *every* rule in scope — this is what the fixture
//! tests drive.
//!
//! Exit status: 0 when clean (or when only reporting), 1 on findings
//! under `--deny`, 2 on usage/config errors.

use std::io::Write;
use std::path::PathBuf;
use std::process::ExitCode;

use pam_lint::{lint_file, lint_workspace, Config, Finding, DEFAULT_LOCKS_TOML};

struct Args {
    deny: bool,
    report: Option<PathBuf>,
    locks: Option<PathBuf>,
    paths: Vec<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        deny: false,
        report: None,
        locks: None,
        paths: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--deny" => args.deny = true,
            "--report" => {
                args.report = Some(it.next().ok_or("--report needs a path")?.into());
            }
            "--locks" => {
                args.locks = Some(it.next().ok_or("--locks needs a path")?.into());
            }
            "--help" | "-h" => {
                return Err(
                    "usage: pam-lint [--deny] [--report PATH] [--locks PATH] [paths…]".to_string(),
                );
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown flag `{other}` (see --help)"));
            }
            other => args.paths.push(other.into()),
        }
    }
    Ok(args)
}

fn run() -> Result<Vec<Finding>, String> {
    let args = parse_args()?;
    let locks_toml = match &args.locks {
        Some(path) => {
            std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?
        }
        None => DEFAULT_LOCKS_TOML.to_string(),
    };
    let mut config = Config::workspace(&locks_toml)?;
    let findings = if args.paths.is_empty() {
        let root = std::env::current_dir().map_err(|e| format!("current dir: {e}"))?;
        lint_workspace(&root, &config)?
    } else {
        config.all_files_in_scope = true;
        let mut out = Vec::new();
        for path in &args.paths {
            let source = std::fs::read_to_string(path)
                .map_err(|e| format!("read {}: {e}", path.display()))?;
            out.extend(lint_file(path, &source, &config));
        }
        out
    };
    let mut rendered = String::new();
    for f in &findings {
        rendered.push_str(&f.to_string());
        rendered.push('\n');
    }
    if findings.is_empty() {
        rendered.push_str("pam-lint: clean\n");
    } else {
        rendered.push_str(&format!("pam-lint: {} finding(s)\n", findings.len()));
    }
    print!("{rendered}");
    if let Some(report) = &args.report {
        let mut file = std::fs::File::create(report)
            .map_err(|e| format!("create {}: {e}", report.display()))?;
        file.write_all(rendered.as_bytes())
            .map_err(|e| format!("write {}: {e}", report.display()))?;
    }
    if args.deny {
        Ok(findings)
    } else {
        Ok(Vec::new())
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(findings) if findings.is_empty() => ExitCode::SUCCESS,
        Ok(_) => ExitCode::FAILURE,
        Err(msg) => {
            eprintln!("pam-lint: {msg}");
            ExitCode::from(2)
        }
    }
}
