//! Masking lexer: the 20% of a Rust lexer the rules need.
//!
//! [`SourceMap::new`] walks the source once with a small state machine
//! and produces, per line, (a) the *masked* code — every comment, string
//! literal, and char literal replaced by spaces, byte-for-byte, so
//! column positions survive — and (b) the concatenated comment text.
//! Rules then scan the masked lines, where any `unsafe` or `.unwrap(`
//! they find is guaranteed to be a real token and not prose inside a
//! string, and look up justifications in the comment side-table.
//!
//! The fiddly cases this gets right (and the fixture tests pin down):
//! raw strings `r"…"` / `r#"…"#` with arbitrary `#` depth and `b`/`br`
//! prefixes, *nested* block comments, char literals vs lifetimes
//! (`'a'` vs `<'a>`), and `#[cfg(test)] mod … { … }` spans, which are
//! excluded from the panic/relaxed/errors rules by brace tracking.

/// Per-line view of a masked source file. Lines are 0-indexed here;
/// findings add 1 at the edge.
pub struct SourceMap {
    /// Code with comments/strings/chars blanked to spaces.
    pub masked: Vec<String>,
    /// Comment text on each line (`//`, `///`, `/* … */` content,
    /// including the markers), empty if none.
    pub comments: Vec<String>,
    /// Whether the line sits inside a `#[cfg(test)] mod … { … }` span.
    pub is_test: Vec<bool>,
}

#[derive(Clone, Copy, PartialEq)]
enum State {
    Code,
    LineComment,
    /// Block comments nest in Rust; the depth rides along.
    BlockComment(u32),
    Str,
    /// Raw string, closing delimiter is `"` followed by this many `#`.
    RawStr(u32),
    Char,
}

impl SourceMap {
    pub fn new(source: &str) -> Self {
        let (masked_flat, comments_flat) = mask(source);
        let masked: Vec<String> = masked_flat.lines().map(str::to_owned).collect();
        let comments: Vec<String> = comments_flat.lines().map(str::to_owned).collect();
        // `str::lines` drops a trailing empty line inconsistently with
        // our per-line tables; pad the shorter to the longer.
        let n = masked.len().max(comments.len());
        let mut map = SourceMap {
            is_test: vec![false; n],
            masked: pad(masked, n),
            comments: pad(comments, n),
        };
        map.mark_cfg_test_spans();
        map
    }

    /// True if `marker` appears in the comments on `line` or in the
    /// contiguous run of comment-only / attribute-only / blank lines
    /// immediately above it — the "justification block" every
    /// comment-driven rule shares.
    pub fn has_marker(&self, line: usize, marker: &str) -> bool {
        if self.comments.get(line).is_some_and(|c| c.contains(marker)) {
            return true;
        }
        let mut i = line;
        while i > 0 {
            i -= 1;
            let code = self.masked[i].trim();
            let annotation_only = code.is_empty() || code.starts_with('#') || code == ")]";
            if !annotation_only {
                return false;
            }
            if self.comments[i].contains(marker) {
                return true;
            }
        }
        false
    }

    /// Byte span scanning on the masked text: every `(line, col)` where
    /// `word` occurs as a whole identifier.
    pub fn word_occurrences(&self, word: &str) -> Vec<(usize, usize)> {
        let mut hits = Vec::new();
        for (ln, line) in self.masked.iter().enumerate() {
            let bytes = line.as_bytes();
            let mut from = 0;
            while let Some(off) = line[from..].find(word) {
                let start = from + off;
                let end = start + word.len();
                let pre_ok = start == 0 || !is_ident(bytes[start - 1]);
                let post_ok = end >= bytes.len() || !is_ident(bytes[end]);
                if pre_ok && post_ok {
                    hits.push((ln, start));
                }
                from = end;
            }
        }
        hits
    }

    /// After `col` on `line`, is the next non-space char `want`? Used to
    /// tell `read_frame(` from a bare path mention.
    pub fn next_char_is(&self, line: usize, col: usize, want: u8) -> bool {
        let bytes = self.masked[line].as_bytes();
        let mut i = col;
        while i < bytes.len() && bytes[i] == b' ' {
            i += 1;
        }
        i < bytes.len() && bytes[i] == want
    }

    /// `(start_line, end_line)` spans (inclusive) of every `fn` body,
    /// found by brace matching on the masked text. Nested items stay
    /// inside their parent's span, which is what the lock-order rule
    /// wants: a closure acquiring locks still runs "in" the function.
    pub fn fn_spans(&self) -> Vec<(usize, usize)> {
        let mut spans = Vec::new();
        for (ln, col) in self.word_occurrences("fn") {
            // An item fn is `fn name…`; a bare `fn(` / `fn()` is a
            // function-pointer *type* (e.g. `PhantomData<fn(S)>`).
            let after = self.masked[ln][col + 2..].trim_start();
            if !after
                .bytes()
                .next()
                .is_some_and(|b| b == b'_' || b.is_ascii_alphabetic())
            {
                continue;
            }
            if let Some(end) = self.body_end(ln, col) {
                spans.push((ln, end));
            }
        }
        spans
    }

    /// From the token at `(line, col)`, find the `{` that opens the
    /// following body and return the line of its matching `}`. `None`
    /// for bodiless declarations (trait methods ending in `;`).
    fn body_end(&self, line: usize, col: usize) -> Option<usize> {
        let mut depth = 0usize;
        let mut opened = false;
        let mut ln = line;
        let mut start = col;
        while ln < self.masked.len() {
            for &b in &self.masked[ln].as_bytes()[start.min(self.masked[ln].len())..] {
                match b {
                    b';' if !opened => return None,
                    b'{' => {
                        opened = true;
                        depth += 1;
                    }
                    // A `}` before the body opened closes the item's
                    // *enclosing* scope — there is no body here.
                    b'}' if !opened => return None,
                    b'}' => {
                        depth -= 1;
                        if depth == 0 {
                            return Some(ln);
                        }
                    }
                    _ => {}
                }
            }
            ln += 1;
            start = 0;
        }
        None
    }

    fn mark_cfg_test_spans(&mut self) {
        // Find `#[cfg(test)]` on its own (attributes survive masking),
        // then the `mod` it decorates, then that mod's brace span.
        let flat: Vec<String> = self.masked.clone();
        for (ln, text) in flat.iter().enumerate() {
            let Some(col) = text.find("#[cfg(test)]") else {
                continue;
            };
            // Scan forward for the next `mod` token; give up at the
            // first non-attribute code in between (the cfg guards
            // something else, e.g. a single fn — still test code, so
            // span it too).
            if let Some((mod_ln, mod_col)) = self.next_item_token(ln, col) {
                if let Some(end) = self.body_end(mod_ln, mod_col) {
                    for t in &mut self.is_test[ln..=end] {
                        *t = true;
                    }
                }
            }
        }
    }

    /// The `(line, col)` of the first item keyword after an attribute at
    /// `(ln, col)` — skipping further attributes and blank lines.
    fn next_item_token(&self, ln: usize, col: usize) -> Option<(usize, usize)> {
        let mut line = ln;
        let mut start = col + "#[cfg(test)]".len();
        while line < self.masked.len() {
            let rest = &self.masked[line][start.min(self.masked[line].len())..];
            let trimmed = rest.trim_start();
            if !trimmed.is_empty() && !trimmed.starts_with("#[") {
                let col = start + (rest.len() - trimmed.len());
                return Some((line, col));
            }
            line += 1;
            start = 0;
        }
        None
    }
}

fn pad(mut v: Vec<String>, n: usize) -> Vec<String> {
    while v.len() < n {
        v.push(String::new());
    }
    v
}

fn is_ident(b: u8) -> bool {
    b == b'_' || b.is_ascii_alphanumeric()
}

/// Count the `#`s after `r`/`br` and confirm a `"` follows: the raw
/// string's hash depth, or `None` if this `r` isn't a raw string.
fn raw_hashes(bytes: &[u8], after_r: usize) -> Option<u32> {
    let mut i = after_r;
    let mut hashes = 0;
    while bytes.get(i) == Some(&b'#') {
        hashes += 1;
        i += 1;
    }
    (bytes.get(i) == Some(&b'"')).then_some(hashes)
}

/// One pass over `source`: returns (masked code, comment text), both
/// the same length as the input with newlines preserved.
fn mask(source: &str) -> (String, String) {
    let bytes = source.as_bytes();
    let mut code = Vec::with_capacity(bytes.len());
    let mut comments = Vec::with_capacity(bytes.len());
    let mut state = State::Code;
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        if b == b'\n' {
            // Newlines land in both streams whatever the state, so the
            // line tables stay aligned. A line comment also ends here.
            if state == State::LineComment {
                state = State::Code;
            }
            code.push(b'\n');
            comments.push(b'\n');
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                let next = bytes.get(i + 1).copied();
                match b {
                    b'/' if next == Some(b'/') => {
                        state = State::LineComment;
                        code.push(b' ');
                        comments.push(b'/');
                    }
                    b'/' if next == Some(b'*') => {
                        state = State::BlockComment(1);
                        code.push(b' ');
                        code.push(b' ');
                        comments.push(b'/');
                        comments.push(b'*');
                        i += 1;
                    }
                    b'"' => {
                        state = State::Str;
                        code.push(b' ');
                        comments.push(b' ');
                    }
                    b'r' | b'b' if !prev_ident(bytes, i) => {
                        // r"…", r#"…"#, b"…", br#"…"#, b'…'
                        let (skip, next_state) = raw_or_byte(bytes, i);
                        for _ in 0..skip {
                            code.push(b' ');
                            comments.push(b' ');
                        }
                        if skip == 0 {
                            code.push(b);
                            comments.push(b' ');
                            i += 1;
                            continue;
                        }
                        state = next_state;
                        i += skip;
                        continue;
                    }
                    b'\'' => {
                        if is_char_literal(bytes, i) {
                            state = State::Char;
                        }
                        // else: a lifetime — keep the quote masked out
                        // either way, it's never part of a rule token.
                        code.push(b' ');
                        comments.push(b' ');
                    }
                    _ => {
                        code.push(b);
                        comments.push(b' ');
                    }
                }
            }
            State::LineComment => {
                code.push(b' ');
                comments.push(b);
            }
            State::BlockComment(depth) => {
                let next = bytes.get(i + 1).copied();
                if b == b'*' && next == Some(b'/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    code.push(b' ');
                    code.push(b' ');
                    comments.push(b'*');
                    comments.push(b'/');
                    i += 2;
                    continue;
                }
                if b == b'/' && next == Some(b'*') {
                    state = State::BlockComment(depth + 1);
                    code.push(b' ');
                    code.push(b' ');
                    comments.push(b'/');
                    comments.push(b'*');
                    i += 2;
                    continue;
                }
                code.push(b' ');
                comments.push(b);
            }
            State::Str => {
                if b == b'\\' {
                    code.push(b' ');
                    comments.push(b' ');
                    if i + 1 < bytes.len() && bytes[i + 1] != b'\n' {
                        code.push(b' ');
                        comments.push(b' ');
                        i += 2;
                        continue;
                    }
                } else {
                    if b == b'"' {
                        state = State::Code;
                    }
                    code.push(b' ');
                    comments.push(b' ');
                }
            }
            State::RawStr(hashes) => {
                if b == b'"' {
                    let mut ok = true;
                    for k in 0..hashes as usize {
                        if bytes.get(i + 1 + k) != Some(&b'#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        state = State::Code;
                        for _ in 0..=hashes as usize {
                            code.push(b' ');
                            comments.push(b' ');
                        }
                        i += 1 + hashes as usize;
                        continue;
                    }
                }
                code.push(b' ');
                comments.push(b' ');
            }
            State::Char => {
                if b == b'\\' {
                    code.push(b' ');
                    comments.push(b' ');
                    if i + 1 < bytes.len() && bytes[i + 1] != b'\n' {
                        code.push(b' ');
                        comments.push(b' ');
                        i += 2;
                        continue;
                    }
                } else {
                    if b == b'\'' {
                        state = State::Code;
                    }
                    code.push(b' ');
                    comments.push(b' ');
                }
            }
        }
        i += 1;
    }
    // SourceMap padding handles ragged tails; safety of from_utf8 is by
    // construction (we only ever emit ASCII or bytes copied from valid
    // UTF-8 at character boundaries — multibyte chars only occur inside
    // strings/comments, where each byte maps to itself or a space...
    // except a multibyte char in masked *code* position can't occur:
    // Rust identifiers here are ASCII, and non-ASCII in code would be
    // copied verbatim keeping the original byte sequence intact).
    (
        String::from_utf8(code).expect("mask preserves UTF-8"),
        String::from_utf8(comments).expect("mask preserves UTF-8"),
    )
}

fn prev_ident(bytes: &[u8], i: usize) -> bool {
    i > 0 && is_ident(bytes[i - 1])
}

/// At a `r`/`b` in code position: how many bytes to swallow into the
/// literal prefix, and the state to enter. `(0, _)` means "just an
/// identifier char, not a literal prefix".
fn raw_or_byte(bytes: &[u8], i: usize) -> (usize, State) {
    match bytes[i] {
        b'r' => {
            if let Some(h) = raw_hashes(bytes, i + 1) {
                // r##" → consume r, hashes, and the opening quote
                (1 + h as usize + 1, State::RawStr(h))
            } else {
                (0, State::Code)
            }
        }
        b'b' => match bytes.get(i + 1) {
            Some(b'"') => (2, State::Str),
            Some(b'\'') => (2, State::Char),
            Some(b'r') => {
                if let Some(h) = raw_hashes(bytes, i + 2) {
                    (2 + h as usize + 1, State::RawStr(h))
                } else {
                    (0, State::Code)
                }
            }
            _ => (0, State::Code),
        },
        _ => (0, State::Code),
    }
}

/// Disambiguate `'x'` / `'\n'` (char literal) from `'a` (lifetime) at a
/// quote in code position.
fn is_char_literal(bytes: &[u8], i: usize) -> bool {
    match bytes.get(i + 1) {
        Some(b'\\') => true,
        Some(_) => bytes.get(i + 2) == Some(&b'\''),
        None => false,
    }
}
