//! # 2D range trees as nested augmented maps (paper §5.2)
//!
//! A range tree answers 2D *range-sum* queries ("total weight of points
//! inside an axis-aligned rectangle") in O(log² n) and reporting queries
//! in O(k + log² n), after O(n log n) construction.
//!
//! The paper's formulation, reproduced exactly:
//!
//! * the **outer map** `R_O` keys points by `(x, y)` and its *augmented
//!   value is itself an inner augmented map*;
//! * the **inner map** `R_I` keys the same points by `(y, x)` and is
//!   augmented with the sum of weights;
//! * the outer **base** function is `singleton`, the outer **combine** is
//!   `union` — so every outer subtree's augmented value is an inner map
//!   of all points below it, sorted by `y`.
//!
//! Because PAM maps are persistent, the `union` used as a combine
//! function shares structure with the child maps instead of mutating them
//! — the paper calls this out as "important in guaranteeing the
//! correctness of the algorithm". A window query is `aug_project` on the
//! outer tree, projecting each of the O(log n) canonical inner maps to a
//! y-range weight sum (`aug_range`) and adding them up.

#![warn(missing_docs)]

use pam::{AugMap, AugSpec, SumAug};
use std::cmp::Ordering;

/// Coordinate type (fixed to `u32` as in our workloads; the weight is `u64`).
pub type Coord = u32;
/// Weight type.
pub type Weight = u64;

/// Inner map: points keyed `(y, x)`, augmented with the weight sum.
pub type InnerSpec = SumAug<(Coord, Coord), Weight>;
/// The inner augmented map type (one per outer subtree).
pub type InnerMap = AugMap<InnerSpec>;

/// Outer map specification: keys `(x, y)`, values are weights, augmented
/// value is the inner map of the whole subtree.
pub struct OuterSpec;

impl AugSpec for OuterSpec {
    type K = (Coord, Coord);
    type V = Weight;
    type A = InnerMap;
    #[inline]
    fn compare(a: &(Coord, Coord), b: &(Coord, Coord)) -> Ordering {
        a.cmp(b)
    }
    fn identity() -> InnerMap {
        AugMap::new()
    }
    fn base(k: &(Coord, Coord), v: &Weight) -> InnerMap {
        // store the point keyed by (y, x) with its weight
        AugMap::singleton((k.1, k.0), *v)
    }
    fn combine(a: &InnerMap, b: &InnerMap) -> InnerMap {
        // persistent union: neither input is modified (O(1) root clones)
        a.clone().union_with(b.clone(), |x, y| x + y)
    }
}

/// A static-build, persistent 2D range tree.
///
/// Build once (in parallel), query many times (possibly from many
/// threads: `clone()` is an O(1) snapshot). Point insertions are
/// intentionally not offered: maintaining the nested augmentation on a
/// single insertion costs Θ(n) (the paper likewise evaluates construction
/// and queries).
pub struct RangeTree {
    outer: AugMap<OuterSpec>,
}

impl Clone for RangeTree {
    /// O(1) snapshot.
    fn clone(&self) -> Self {
        RangeTree {
            outer: self.outer.clone(),
        }
    }
}

impl RangeTree {
    /// Build from weighted points `(x, y, w)`; duplicate `(x, y)` points
    /// have their weights summed. O(n log n) work.
    pub fn build(points: Vec<(Coord, Coord, Weight)>) -> Self {
        let items: Vec<((Coord, Coord), Weight)> =
            points.into_iter().map(|(x, y, w)| ((x, y), w)).collect();
        RangeTree {
            outer: AugMap::build_with(items, |a, b| a + b),
        }
    }

    /// Number of distinct points.
    pub fn len(&self) -> usize {
        self.outer.len()
    }

    /// Is the tree empty?
    pub fn is_empty(&self) -> bool {
        self.outer.is_empty()
    }

    /// Sum of weights of points with `xl <= x <= xr` and `yl <= y <= yr`
    /// — the paper's QUERY: `augProject(g', +, r_O, x_l, x_r)` with
    /// `g'(r_I) = augRange(r_I, y_l, y_r)`. O(log² n).
    pub fn query_sum(&self, xl: Coord, xr: Coord, yl: Coord, yr: Coord) -> Weight {
        if xl > xr || yl > yr {
            return 0;
        }
        self.outer.aug_project(
            &(xl, Coord::MIN),
            &(xr, Coord::MAX),
            |inner| inner.aug_range(&(yl, Coord::MIN), &(yr, Coord::MAX)),
            |a, b| a + b,
            0,
        )
    }

    /// Number of points inside the window (weights ignored). O(log² n).
    pub fn query_count(&self, xl: Coord, xr: Coord, yl: Coord, yr: Coord) -> usize {
        if xl > xr || yl > yr {
            return 0;
        }
        self.outer.aug_project(
            &(xl, Coord::MIN),
            &(xr, Coord::MAX),
            |inner| inner.range(&(yl, Coord::MIN), &(yr, Coord::MAX)).len(),
            |a, b| a + b,
            0,
        )
    }

    /// All points inside the window, as `(x, y, w)` — the paper's "Q-All"
    /// (O(k + log² n)): extract the y-range of each canonical inner map.
    pub fn query_points(
        &self,
        xl: Coord,
        xr: Coord,
        yl: Coord,
        yr: Coord,
    ) -> Vec<(Coord, Coord, Weight)> {
        if xl > xr || yl > yr {
            return Vec::new();
        }
        let mut pts: Vec<(Coord, Coord, Weight)> = self.outer.aug_project(
            &(xl, Coord::MIN),
            &(xr, Coord::MAX),
            |inner| {
                inner
                    .range(&(yl, Coord::MIN), &(yr, Coord::MAX))
                    .to_vec()
                    .into_iter()
                    .map(|((y, x), w)| (x, y, w))
                    .collect::<Vec<_>>()
            },
            |mut a, mut b| {
                a.append(&mut b);
                a
            },
            Vec::new(),
        );
        pts.sort_unstable();
        pts
    }

    /// Borrow the outer augmented map (stats/tests).
    pub fn outer(&self) -> &AugMap<OuterSpec> {
        &self.outer
    }

    /// Validate invariants of the outer tree *and* every inner map
    /// (expensive; testing helper).
    pub fn check_invariants(&self) -> Result<(), String> {
        check_outer(self.outer.root())
    }
}

fn check_outer(t: &pam::Tree<OuterSpec, pam::WeightBalanced>) -> Result<(), String> {
    // The generic checker recomputes outer augmented values (inner maps)
    // and compares them entry-wise via PartialEq on AugMap.
    pam::validate::check_tree(t)?;
    // Additionally validate each inner map's own invariants.
    fn rec(t: &pam::Tree<OuterSpec, pam::WeightBalanced>) -> Result<(), String> {
        if let Some(n) = t.as_deref() {
            n.aug().check_invariants()?;
            if let Some((l, r)) = n.children() {
                rec(l)?;
                rec(r)?;
            }
        }
        Ok(())
    }
    rec(t)
}

impl std::fmt::Debug for RangeTree {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "RangeTree {{ points: {} }}", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute_sum(
        pts: &[(Coord, Coord, Weight)],
        xl: Coord,
        xr: Coord,
        yl: Coord,
        yr: Coord,
    ) -> Weight {
        pts.iter()
            .filter(|&&(x, y, _)| xl <= x && x <= xr && yl <= y && y <= yr)
            .map(|&(_, _, w)| w)
            .sum()
    }

    #[test]
    fn tiny_example() {
        let t = RangeTree::build(vec![(1, 1, 10), (2, 5, 20), (5, 2, 30), (7, 7, 40)]);
        assert_eq!(t.query_sum(0, 10, 0, 10), 100);
        assert_eq!(t.query_sum(1, 2, 1, 5), 30);
        assert_eq!(t.query_sum(3, 8, 0, 3), 30);
        assert_eq!(t.query_count(1, 2, 1, 5), 2);
        assert_eq!(t.query_points(1, 2, 1, 5), vec![(1, 1, 10), (2, 5, 20)]);
        assert_eq!(t.query_sum(4, 3, 0, 10), 0); // inverted window
    }

    #[test]
    fn duplicate_points_sum_weights() {
        let t = RangeTree::build(vec![(3, 3, 5), (3, 3, 7)]);
        assert_eq!(t.len(), 1);
        assert_eq!(t.query_sum(3, 3, 3, 3), 12);
    }

    #[test]
    fn matches_bruteforce() {
        let pts = workloads::random_points(3000, 13, 1 << 10);
        // dedup points the same way build does (sum weights)
        let mut dedup = std::collections::BTreeMap::new();
        for &(x, y, w) in &pts {
            *dedup.entry((x, y)).or_insert(0u64) += w;
        }
        let flat: Vec<(Coord, Coord, Weight)> =
            dedup.iter().map(|(&(x, y), &w)| (x, y, w)).collect();
        let t = RangeTree::build(pts.clone());
        t.check_invariants().unwrap();
        assert_eq!(t.len(), flat.len());
        for (i, &(xl, xr, yl, yr)) in workloads::points::query_windows(40, 5, 1 << 10, 0.2)
            .iter()
            .enumerate()
        {
            assert_eq!(
                t.query_sum(xl, xr, yl, yr),
                brute_sum(&flat, xl, xr, yl, yr),
                "window {i}"
            );
            let want: Vec<(Coord, Coord, Weight)> = flat
                .iter()
                .copied()
                .filter(|&(x, y, _)| xl <= x && x <= xr && yl <= y && y <= yr)
                .collect();
            assert_eq!(t.query_count(xl, xr, yl, yr), want.len());
            assert_eq!(t.query_points(xl, xr, yl, yr), want);
        }
    }

    #[test]
    fn snapshots_are_independent() {
        let t = RangeTree::build(vec![(1, 1, 1), (2, 2, 2)]);
        let snap = t.clone();
        drop(t);
        assert_eq!(snap.query_sum(0, 5, 0, 5), 3);
    }

    #[test]
    fn empty_tree_queries() {
        let t = RangeTree::build(vec![]);
        assert!(t.is_empty());
        assert_eq!(t.query_sum(0, 100, 0, 100), 0);
        assert_eq!(t.query_points(0, 100, 0, 100), vec![]);
    }
}
