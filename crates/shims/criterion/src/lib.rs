//! Offline shim for [criterion](https://docs.rs/criterion) (see
//! `crates/shims/README.md`): the `criterion_group!`/`criterion_main!`
//! surface over a plain best/mean-of-N timing loop. One line is printed
//! per benchmark; there are no statistics, plots, or saved baselines.

use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup cost. The shim runs one routine
/// call per batch regardless, so the variants only document intent.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small inputs: many per batch in real criterion.
    SmallInput,
    /// Large inputs: one per batch.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// The benchmark harness handle.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Define and immediately run a benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: self.sample_size,
            times: Vec::new(),
        };
        f(&mut b);
        b.report(name);
        self
    }
}

/// Times a closure `sample_size` times.
pub struct Bencher {
    samples: usize,
    times: Vec<Duration>,
}

impl Bencher {
    /// Time `routine` (called once per sample).
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        // one warmup call
        std::hint::black_box(routine());
        for _ in 0..self.samples {
            let t = Instant::now();
            std::hint::black_box(routine());
            self.times.push(t.elapsed());
        }
    }

    /// Time `routine` on fresh input from `setup`; setup time is excluded.
    pub fn iter_batched<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
        _size: BatchSize,
    ) {
        std::hint::black_box(routine(setup()));
        for _ in 0..self.samples {
            let input = setup();
            let t = Instant::now();
            std::hint::black_box(routine(input));
            self.times.push(t.elapsed());
        }
    }

    fn report(&self, name: &str) {
        if self.times.is_empty() {
            println!("{name:<40} (no samples)");
            return;
        }
        let total: Duration = self.times.iter().sum();
        let mean = total / self.times.len() as u32;
        let best = self.times.iter().min().expect("non-empty");
        println!(
            "{name:<40} mean {:>12?}   best {:>12?}   ({} samples)",
            mean,
            best,
            self.times.len()
        );
    }
}

/// Define a benchmark group function (both criterion forms).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut calls = 0usize;
        Criterion::default()
            .sample_size(3)
            .bench_function("shim_smoke", |b| {
                b.iter(|| {
                    calls += 1;
                })
            });
        assert_eq!(calls, 4); // 1 warmup + 3 samples
    }

    #[test]
    fn iter_batched_gets_fresh_input() {
        let mut next = 0u32;
        Criterion::default()
            .sample_size(2)
            .bench_function("shim_batched", |b| {
                b.iter_batched(
                    || {
                        next += 1;
                        next
                    },
                    |x| assert!(x > 0),
                    BatchSize::LargeInput,
                )
            });
        assert_eq!(next, 3);
    }
}
