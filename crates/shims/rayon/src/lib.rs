//! Offline shim for [rayon](https://docs.rs/rayon) (see `crates/shims/README.md`).
//!
//! Fork-join (`join`, `scope`) forks real OS threads through a global
//! permit budget sized to the hardware parallelism: a fork that finds no
//! permit free runs inline, which is exactly the steady-state behavior of
//! a saturated work-stealing pool (all workers busy ⇒ the "stolen" half is
//! executed by the forking worker itself). Because callers gate forks by a
//! granularity threshold (see `parlay::par2_if`), the spawn rate stays far
//! below the permit cap and thread-creation overhead is hidden behind the
//! actual parallel work.
//!
//! The parallel *iterator* layer drives real chunked parallelism through
//! the same machinery: `ParIter` wraps an index-splittable producer
//! (slices, vectors, integer ranges, chunk/window views, and the adapter
//! stack over them), and every driver (`for_each`, `collect`, `sum`,
//! `fold`/`reduce`, ...) recursively halves the producer down to a
//! `len / (4 · current_num_threads())` chunk threshold, forks the halves
//! via `join`, and merges per-chunk results in order — sequential
//! results, parallel execution. `par_sort_unstable{,_by}` is a parallel
//! merge sort (std pdqsort leaves + a divide-and-conquer move merge).
//! Under `ThreadPool::install(1)` everything degenerates to the plain
//! sequential schedule.

mod iter;
mod pool;
mod slice;

pub use pool::{
    current_num_threads, join, scope, Scope, ThreadPool, ThreadPoolBuildError, ThreadPoolBuilder,
};

/// The traits and types imported by `use rayon::prelude::*`.
pub mod prelude {
    pub use crate::iter::{
        IndexedProducer, IntoParallelIterator, IntoParallelRefIterator, ParIter, Producer,
    };
    pub use crate::slice::{ParallelSlice, ParallelSliceMut};
}
