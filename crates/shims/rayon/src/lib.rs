//! Offline shim for [rayon](https://docs.rs/rayon) (see `crates/shims/README.md`).
//!
//! Fork-join (`join`, `scope`) forks real OS threads through a global
//! permit budget sized to the hardware parallelism: a fork that finds no
//! permit free runs inline, which is exactly the steady-state behavior of
//! a saturated work-stealing pool (all workers busy ⇒ the "stolen" half is
//! executed by the forking worker itself). Because callers gate forks by a
//! granularity threshold (see `parlay::par2_if`), the spawn rate stays far
//! below the permit cap and thread-creation overhead is hidden behind the
//! actual parallel work.
//!
//! The parallel *iterator* adapters execute sequentially; PAM's
//! parallelism flows through `join`, so the tree operations that the paper
//! measures still scale.

mod iter;
mod pool;
mod slice;

pub use pool::{
    current_num_threads, join, scope, Scope, ThreadPool, ThreadPoolBuildError, ThreadPoolBuilder,
};

/// The traits and types imported by `use rayon::prelude::*`.
pub mod prelude {
    pub use crate::iter::{IntoParallelIterator, IntoParallelRefIterator, ParIter};
    pub use crate::slice::{ParallelSlice, ParallelSliceMut};
}
