//! Fork-join over capped scoped threads.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Hardware parallelism (the size of the implicit global pool).
fn hardware_threads() -> usize {
    static N: OnceLock<usize> = OnceLock::new();
    *N.get_or_init(|| std::thread::available_parallelism().map_or(2, |n| n.get()))
}

thread_local! {
    /// Pool-size override installed by `ThreadPool::install`, inherited by
    /// threads forked from inside the pool.
    static POOL_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Number of worker threads in the current pool scope.
pub fn current_num_threads() -> usize {
    POOL_THREADS
        .with(|p| p.get())
        .unwrap_or_else(hardware_threads)
}

/// Live forked threads across the process. A fork only spawns while this
/// is below the hardware parallelism; otherwise it runs inline.
static ACTIVE_FORKS: AtomicUsize = AtomicUsize::new(0);

struct Permit;

impl Permit {
    fn try_acquire() -> Option<Permit> {
        let cap = hardware_threads().saturating_sub(1);
        ACTIVE_FORKS
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |cur| {
                (cur < cap).then_some(cur + 1)
            })
            .ok()
            .map(|_| Permit)
    }
}

impl Drop for Permit {
    fn drop(&mut self) {
        ACTIVE_FORKS.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Run both closures, in parallel when a thread permit is available.
pub fn join<A, B, RA, RB>(fa: A, fb: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let pool = current_num_threads();
    if pool <= 1 {
        let ra = fa();
        let rb = fb();
        return (ra, rb);
    }
    let Some(permit) = Permit::try_acquire() else {
        let ra = fa();
        let rb = fb();
        return (ra, rb);
    };
    std::thread::scope(|s| {
        let ha = s.spawn(move || {
            POOL_THREADS.with(|p| p.set(Some(pool)));
            let ra = fa();
            drop(permit);
            ra
        });
        let rb = fb();
        match ha.join() {
            Ok(ra) => (ra, rb),
            Err(panic) => std::panic::resume_unwind(panic),
        }
    })
}

/// A fork scope: tasks spawned on it may borrow from the enclosing stack
/// frame and are all joined before [`scope`] returns.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
    pool: usize,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn `body` into the scope (inline if no thread permit is free).
    pub fn spawn<F>(&self, body: F)
    where
        F: for<'a> FnOnce(&'a Scope<'scope, 'env>) + Send + 'scope,
    {
        let pool = self.pool;
        let spawned = pool > 1;
        if let Some(permit) = spawned.then(Permit::try_acquire).flatten() {
            let inner = self.inner;
            self.inner.spawn(move || {
                POOL_THREADS.with(|p| p.set(Some(pool)));
                let sc = Scope { inner, pool };
                body(&sc);
                drop(permit);
            });
        } else {
            body(self);
        }
    }
}

/// Create a fork scope, run `f` in it, and join every spawned task.
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    let pool = current_num_threads();
    std::thread::scope(|s| {
        let sc = Scope { inner: s, pool };
        f(&sc)
    })
}

/// Error from [`ThreadPoolBuilder::build`] (never produced by this shim).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a [`ThreadPool`].
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Start building.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the pool size (0 = hardware parallelism).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Build the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads == 0 {
            hardware_threads()
        } else {
            self.num_threads
        };
        Ok(ThreadPool { threads: n })
    }
}

/// A scoped pool-size override: forks inside [`ThreadPool::install`] see
/// (and are gated by) the pool's thread count.
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// Run `f` "inside" the pool. The previous pool size is restored even
    /// if `f` unwinds (a leaked override would permanently mis-size every
    /// later fork on this thread).
    pub fn install<R: Send>(&self, f: impl FnOnce() -> R + Send) -> R {
        struct Restore(Option<usize>);
        impl Drop for Restore {
            fn drop(&mut self) {
                POOL_THREADS.with(|p| p.set(self.0));
            }
        }
        let _restore = Restore(POOL_THREADS.with(|p| p.replace(Some(self.threads))));
        f()
    }

    /// The pool size.
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_runs_both_in_some_order() {
        let (a, b) = join(|| 1 + 1, || 2 + 2);
        assert_eq!((a, b), (2, 4));
    }

    #[test]
    fn join_nests() {
        fn sum(lo: u64, hi: u64) -> u64 {
            if hi - lo < 1000 {
                (lo..hi).sum()
            } else {
                let mid = lo + (hi - lo) / 2;
                let (a, b) = join(|| sum(lo, mid), || sum(mid, hi));
                a + b
            }
        }
        assert_eq!(sum(0, 100_000), (0..100_000u64).sum());
    }

    #[test]
    fn install_overrides_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.install(current_num_threads), 3);
        assert_eq!(current_num_threads(), hardware_threads());
    }

    #[test]
    fn single_thread_pool_is_sequential() {
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        pool.install(|| {
            let before = ACTIVE_FORKS.load(Ordering::SeqCst);
            let tid = std::thread::current().id();
            let ((), ()) = join(
                || assert_eq!(std::thread::current().id(), tid),
                || assert_eq!(std::thread::current().id(), tid),
            );
            assert_eq!(ACTIVE_FORKS.load(Ordering::SeqCst), before);
        });
    }

    #[test]
    fn scope_joins_all_tasks() {
        let mut parts = [0u64; 8];
        scope(|s| {
            for (i, slot) in parts.iter_mut().enumerate() {
                s.spawn(move |_| *slot = i as u64 + 1);
            }
        });
        assert_eq!(parts.iter().sum::<u64>(), 36);
    }

    #[test]
    fn install_restores_pool_size_after_panic() {
        // Regression: a panic inside install() used to leak the override,
        // permanently mis-sizing this thread's pool.
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.install(|| -> () { panic!("boom") })
        }));
        assert!(caught.is_err());
        assert_eq!(
            current_num_threads(),
            hardware_threads(),
            "pool override must be dropped when install() unwinds"
        );
        // nested installs restore the *outer* override, not the default
        let outer = ThreadPoolBuilder::new().num_threads(5).build().unwrap();
        outer.install(|| {
            let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                pool.install(|| -> () { panic!("inner") })
            }));
            assert!(caught.is_err());
            assert_eq!(current_num_threads(), 5);
        });
    }

    #[test]
    fn nested_joins_survive_permit_exhaustion() {
        // A join tree far wider than the permit budget: excess forks must
        // run inline, results must merge correctly, and every permit must
        // be returned.
        fn sum(lo: u64, hi: u64) -> u64 {
            if hi - lo <= 4 {
                (lo..hi).sum()
            } else {
                let mid = lo + (hi - lo) / 2;
                let (a, b) = join(|| sum(lo, mid), || sum(mid, hi));
                a + b
            }
        }
        let before = ACTIVE_FORKS.load(Ordering::SeqCst);
        // pretend the pool is huge so every level *tries* to fork
        let pool = ThreadPoolBuilder::new().num_threads(64).build().unwrap();
        let got = pool.install(|| sum(0, 1 << 16));
        assert_eq!(got, (0..1u64 << 16).sum());
        // ACTIVE_FORKS is process-global, so concurrently running tests
        // may hold permits of their own for a while (the CI par-stress
        // leg runs the suite with test threads unpinned); give them a
        // generous window to drain before calling it a leak.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
        let drained = loop {
            if ACTIVE_FORKS.load(Ordering::SeqCst) <= before {
                break true;
            }
            if std::time::Instant::now() > deadline {
                break false;
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        };
        assert!(drained, "permits leaked by the nested join storm");
    }

    #[test]
    fn permits_are_released_on_panic() {
        let before = ACTIVE_FORKS.load(Ordering::SeqCst);
        let caught = std::panic::catch_unwind(|| {
            join(|| panic!("boom"), || 1);
        });
        assert!(caught.is_err());
        assert_eq!(ACTIVE_FORKS.load(Ordering::SeqCst), before);
    }
}
