//! Parallel-slice traits (`par_chunks`, `par_sort_unstable`, ...).
//!
//! The chunk/window views are index-splittable [`Producer`]s (splitting
//! happens on chunk boundaries, so a leaf never sees a partial chunk),
//! and `par_sort_unstable{,_by}` is a real parallel merge sort: leaf runs
//! are sorted with std's pdqsort, then merged pairwise with a
//! divide-and-conquer *move* merge (split the larger run at its midpoint,
//! binary-search the split key in the smaller — the same scheme as
//! `parlay::merge`, but moving elements through a `MaybeUninit` scratch
//! buffer instead of cloning, so only `T: Send` is required).

use crate::iter::{IndexedProducer, ParIter, Producer};
use std::cmp::Ordering;
use std::mem::MaybeUninit;

/// Producer of `&[T]` chunks (`par_chunks`).
pub struct Chunks<'a, T> {
    slice: &'a [T],
    size: usize,
}

impl<'a, T: Sync> Producer for Chunks<'a, T> {
    type Item = &'a [T];
    type IntoIter = std::slice::Chunks<'a, T>;
    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let at = (index * self.size).min(self.slice.len());
        let (a, b) = self.slice.split_at(at);
        (
            Chunks {
                slice: a,
                size: self.size,
            },
            Chunks {
                slice: b,
                size: self.size,
            },
        )
    }
    fn into_iter(self) -> Self::IntoIter {
        self.slice.chunks(self.size)
    }
}

impl<'a, T: Sync> IndexedProducer for Chunks<'a, T> {}

/// Producer of `&mut [T]` chunks (`par_chunks_mut`).
pub struct ChunksMut<'a, T> {
    slice: &'a mut [T],
    size: usize,
}

impl<'a, T: Send> Producer for ChunksMut<'a, T> {
    type Item = &'a mut [T];
    type IntoIter = std::slice::ChunksMut<'a, T>;
    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let at = (index * self.size).min(self.slice.len());
        let (a, b) = self.slice.split_at_mut(at);
        (
            ChunksMut {
                slice: a,
                size: self.size,
            },
            ChunksMut {
                slice: b,
                size: self.size,
            },
        )
    }
    fn into_iter(self) -> Self::IntoIter {
        self.slice.chunks_mut(self.size)
    }
}

impl<'a, T: Send> IndexedProducer for ChunksMut<'a, T> {}

/// Producer of overlapping `&[T]` windows (`par_windows`).
pub struct Windows<'a, T> {
    slice: &'a [T],
    size: usize,
}

impl<'a, T: Sync> Producer for Windows<'a, T> {
    type Item = &'a [T];
    type IntoIter = std::slice::Windows<'a, T>;
    fn len(&self) -> usize {
        self.slice.len().saturating_sub(self.size - 1)
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        // window i covers slice[i..i + size]; the left half keeps windows
        // 0..index, which need slice[..index + size - 1]
        let left_end = (index + self.size - 1).min(self.slice.len());
        (
            Windows {
                slice: &self.slice[..left_end],
                size: self.size,
            },
            Windows {
                slice: &self.slice[index..],
                size: self.size,
            },
        )
    }
    fn into_iter(self) -> Self::IntoIter {
        self.slice.windows(self.size)
    }
}

impl<'a, T: Sync> IndexedProducer for Windows<'a, T> {}

/// Shared-slice operations.
pub trait ParallelSlice<T: Sync> {
    /// Chunks of at most `size` elements (`size > 0`).
    fn par_chunks(&self, size: usize) -> ParIter<Chunks<'_, T>>;
    /// Overlapping windows of `size` elements (`size > 0`).
    fn par_windows(&self, size: usize) -> ParIter<Windows<'_, T>>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, size: usize) -> ParIter<Chunks<'_, T>> {
        assert!(size > 0, "chunk size must be non-zero");
        ParIter(Chunks { slice: self, size })
    }
    fn par_windows(&self, size: usize) -> ParIter<Windows<'_, T>> {
        assert!(size > 0, "window size must be non-zero");
        ParIter(Windows { slice: self, size })
    }
}

/// Mutable-slice operations.
pub trait ParallelSliceMut<T: Send> {
    /// Mutable chunks of at most `size` elements (`size > 0`).
    fn par_chunks_mut(&mut self, size: usize) -> ParIter<ChunksMut<'_, T>>;
    /// Parallel unstable sort.
    fn par_sort_unstable(&mut self)
    where
        T: Ord;
    /// Parallel unstable sort by comparator.
    fn par_sort_unstable_by<F: Fn(&T, &T) -> Ordering + Sync>(&mut self, cmp: F);
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, size: usize) -> ParIter<ChunksMut<'_, T>> {
        assert!(size > 0, "chunk size must be non-zero");
        ParIter(ChunksMut { slice: self, size })
    }
    fn par_sort_unstable(&mut self)
    where
        T: Ord,
    {
        par_sort_impl(self, &T::cmp);
    }
    fn par_sort_unstable_by<F: Fn(&T, &T) -> Ordering + Sync>(&mut self, cmp: F) {
        par_sort_impl(self, &cmp);
    }
}

// ---------------------------------------------------------------------------
// Parallel merge sort
// ---------------------------------------------------------------------------

/// Below this length the parallel machinery costs more than it saves.
const MIN_PAR_SORT: usize = 4096;
/// Smallest leaf run handed to std's pdqsort.
const MIN_SORTED_RUN: usize = 1024;

fn par_sort_impl<T: Send, F: Fn(&T, &T) -> Ordering + Sync>(v: &mut [T], cmp: &F) {
    let n = v.len();
    let threads = crate::pool::current_num_threads();
    if threads <= 1 || n <= MIN_PAR_SORT {
        v.sort_unstable_by(|a, b| cmp(a, b));
        return;
    }
    let chunk = n.div_ceil(4 * threads).max(MIN_SORTED_RUN);
    let mut scratch: Vec<MaybeUninit<T>> = Vec::with_capacity(n);
    // SAFETY: MaybeUninit slots need no initialization, and the Vec is
    // never read as `T` (it is a move-through buffer; its Drop drops
    // nothing).
    unsafe { scratch.set_len(n) };
    sort_rec(v, &mut scratch, chunk, cmp);
}

fn sort_rec<T: Send, F: Fn(&T, &T) -> Ordering + Sync>(
    v: &mut [T],
    scratch: &mut [MaybeUninit<T>],
    chunk: usize,
    cmp: &F,
) {
    let n = v.len();
    if n <= chunk {
        v.sort_unstable_by(|a, b| cmp(a, b));
        return;
    }
    let mid = n / 2;
    {
        let (vl, vr) = v.split_at_mut(mid);
        let (sl, sr) = scratch.split_at_mut(mid);
        crate::pool::join(
            || sort_rec(vl, sl, chunk, cmp),
            || sort_rec(vr, sr, chunk, cmp),
        );
    }
    // SAFETY: the two sorted halves are moved bitwise into `scratch`,
    // after which `v`'s slots are logically uninitialized; `merge_move`
    // re-initializes every one of them with each source element exactly
    // once — on success *and* on unwind — so `v` is always a valid
    // permutation of its original elements when this frame exits.
    unsafe {
        std::ptr::copy_nonoverlapping(v.as_ptr(), scratch.as_mut_ptr().cast::<T>(), n);
        let (sa, sb) = scratch.split_at_mut(mid);
        let dst = std::slice::from_raw_parts_mut(v.as_mut_ptr().cast::<MaybeUninit<T>>(), n);
        merge_move(sa, sb, dst, chunk, cmp);
    }
}

/// First index of `s` whose element fails `pred` (all-`pred` prefix
/// length).
///
/// # Safety
///
/// Every element of `s` must be initialized.
unsafe fn partition_point<T>(s: &[MaybeUninit<T>], pred: impl Fn(&T) -> bool) -> usize {
    let mut lo = 0;
    let mut hi = s.len();
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if pred(s[mid].assume_init_ref()) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

/// Bitwise-move the remaining `a[i..]` then `b[j..]` into `dst[k..]` —
/// the shared tail path of a finished merge and the backfill path of a
/// panicking one (order no longer matters, only exactly-once ownership).
///
/// # Safety
///
/// `a[i..]` and `b[j..]` must be initialized, owned exactly once, and
/// `dst[k..]` must have room for both; the sources are dead after this.
unsafe fn backfill<T>(
    a: &[MaybeUninit<T>],
    b: &[MaybeUninit<T>],
    dst: &mut [MaybeUninit<T>],
    i: usize,
    j: usize,
    k: usize,
) {
    let a_rem = a.len() - i;
    let b_rem = b.len() - j;
    debug_assert_eq!(a_rem + b_rem, dst.len() - k);
    std::ptr::copy_nonoverlapping(a.as_ptr().add(i), dst.as_mut_ptr().add(k), a_rem);
    std::ptr::copy_nonoverlapping(b.as_ptr().add(j), dst.as_mut_ptr().add(k + a_rem), b_rem);
}

/// Move-merge two sorted initialized runs into `dst`
/// (`dst.len() == a.len() + b.len()`), in parallel. Ties take from `a`
/// first.
///
/// # Safety
///
/// Ownership of every element of `a` and `b` transfers into `dst`: on
/// return **and on unwind** (a panicking comparator) every `dst` slot
/// holds exactly one source element, so the caller can treat `dst` as
/// initialized and `a`/`b` as moved-out either way.
unsafe fn merge_move<T: Send, F: Fn(&T, &T) -> Ordering + Sync>(
    a: &mut [MaybeUninit<T>],
    b: &mut [MaybeUninit<T>],
    dst: &mut [MaybeUninit<T>],
    chunk: usize,
    cmp: &F,
) {
    debug_assert_eq!(a.len() + b.len(), dst.len());
    if dst.len() <= chunk.max(1) {
        return merge_move_seq(a, b, dst, cmp);
    }
    // Split the larger run at its midpoint and binary-search the split
    // key in the smaller (ties routed so `a`-before-`b` order holds).
    // The searches run the user comparator, so catch an unwind and
    // backfill `dst` before rethrowing.
    let split = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        if a.len() >= b.len() {
            let am = a.len() / 2;
            let key = a[am].assume_init_ref();
            (am, partition_point(b, |x| cmp(x, key) == Ordering::Less))
        } else {
            let bm = b.len() / 2;
            let key = b[bm].assume_init_ref();
            (partition_point(a, |x| cmp(x, key) != Ordering::Greater), bm)
        }
    }));
    let (am, bm) = match split {
        Ok(x) => x,
        Err(payload) => {
            backfill(a, b, dst, 0, 0, 0);
            std::panic::resume_unwind(payload);
        }
    };
    let (al, ar) = a.split_at_mut(am);
    let (bl, br) = b.split_at_mut(bm);
    let (dl, dr) = dst.split_at_mut(am + bm);
    crate::pool::join(
        // SAFETY: disjoint source/destination sub-ranges; each recursive
        // call upholds the exactly-once contract for its own range.
        || unsafe { merge_move(al, bl, dl, chunk, cmp) },
        // SAFETY: the right halves are disjoint from the left ones by
        // the split_at_muts above; same exactly-once contract.
        || unsafe { merge_move(ar, br, dr, chunk, cmp) },
    );
}

/// Sequential leaf of [`merge_move`]; same safety contract.
///
/// # Safety
///
/// As for [`merge_move`]: `a` and `b` fully initialized and owned
/// exactly once, `dst` disjoint from both with `a.len() + b.len()`
/// slots; on return the sources are moved-out.
unsafe fn merge_move_seq<T, F: Fn(&T, &T) -> Ordering>(
    a: &mut [MaybeUninit<T>],
    b: &mut [MaybeUninit<T>],
    dst: &mut [MaybeUninit<T>],
    cmp: &F,
) {
    let (mut i, mut j, mut k) = (0, 0, 0);
    // Only `cmp` can panic, and it runs *before* the move + increments of
    // an iteration, so (i, j, k) always name exactly the elements still
    // owned by the sources — what `backfill` relocates on either exit.
    let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        while i < a.len() && j < b.len() {
            if cmp(b[j].assume_init_ref(), a[i].assume_init_ref()) == Ordering::Less {
                dst[k].write(b[j].assume_init_read());
                j += 1;
            } else {
                dst[k].write(a[i].assume_init_read());
                i += 1;
            }
            k += 1;
        }
    }));
    backfill(a, b, dst, i, j, k);
    if let Err(payload) = run {
        std::panic::resume_unwind(payload);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_cover_slice() {
        let v: Vec<u32> = (0..10).collect();
        let lens: Vec<usize> = v.par_chunks(4).map(|c| c.len()).collect();
        assert_eq!(lens, vec![4, 4, 2]);
    }

    #[test]
    fn sort_unstable_by_sorts() {
        let mut v = vec![3u8, 1, 2];
        v.par_sort_unstable_by(|a, b| b.cmp(a));
        assert_eq!(v, vec![3, 2, 1]);
    }

    #[test]
    fn par_sort_matches_std_at_scale() {
        let mut v: Vec<u64> = (0..200_000u64)
            .map(|i| i.wrapping_mul(0x9e3779b97f4a7c15) >> 7)
            .collect();
        let mut expect = v.clone();
        expect.sort_unstable();
        v.par_sort_unstable();
        assert_eq!(v, expect);
    }

    #[test]
    fn par_sort_non_copy_keys() {
        let mut v: Vec<String> = (0..50_000).map(|i| format!("k{:06}", 99_999 - i)).collect();
        let mut expect = v.clone();
        expect.sort_unstable();
        v.par_sort_unstable();
        assert_eq!(v, expect);
    }

    #[test]
    fn windows_split_keeps_overlap() {
        let v: Vec<u32> = (0..10_000).collect();
        let sums: Vec<u32> = v.par_windows(2).map(|w| w[0] + w[1]).collect();
        assert_eq!(sums.len(), 9999);
        assert!(sums.iter().enumerate().all(|(i, &s)| s == 2 * i as u32 + 1));
    }

    #[test]
    fn chunks_mut_writes_disjoint() {
        let mut v = vec![0u64; 10_000];
        v.par_chunks_mut(64).enumerate().for_each(|(ci, c)| {
            for x in c.iter_mut() {
                *x = ci as u64;
            }
        });
        assert!(v.iter().enumerate().all(|(i, &x)| x == (i / 64) as u64));
    }

    #[test]
    fn panicking_comparator_drops_each_element_exactly_once() {
        use std::sync::atomic::{AtomicUsize, Ordering as AOrd};
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct D(u64);
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, AOrd::SeqCst);
            }
        }
        let n = 50_000;
        // install(8) forces the split/merge path even on a 1-core host
        let pool = crate::pool::ThreadPoolBuilder::new()
            .num_threads(8)
            .build()
            .unwrap();
        for panic_at in [0usize, 1_000, 400_000, 600_000, 700_000] {
            let v: Vec<D> = (0..n as u64).rev().map(D).collect();
            DROPS.store(0, AOrd::SeqCst);
            let calls = AtomicUsize::new(0);
            let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let mut v = v;
                pool.install(|| {
                    v.par_sort_unstable_by(|a, b| {
                        // early values panic in leaf sorts, late ones in
                        // the move-merge phase
                        if calls.fetch_add(1, AOrd::SeqCst) == panic_at {
                            panic!("boom");
                        }
                        a.0.cmp(&b.0)
                    })
                });
                v
            }));
            if let Ok(v) = res {
                drop(v); // comparator ran fewer than panic_at times
            } // on Err the vector was dropped during unwind
            assert_eq!(
                DROPS.load(AOrd::SeqCst),
                n,
                "every element must be dropped exactly once (panic_at {panic_at})"
            );
        }
    }
}
