//! Parallel-slice traits (`par_chunks`, `par_sort_unstable`, ...).

use crate::iter::ParIter;
use std::cmp::Ordering;

/// Shared-slice operations.
pub trait ParallelSlice<T: Sync> {
    /// Chunks of at most `size` elements.
    fn par_chunks(&self, size: usize) -> ParIter<std::slice::Chunks<'_, T>>;
    /// Overlapping windows of `size` elements.
    fn par_windows(&self, size: usize) -> ParIter<std::slice::Windows<'_, T>>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, size: usize) -> ParIter<std::slice::Chunks<'_, T>> {
        ParIter(self.chunks(size))
    }
    fn par_windows(&self, size: usize) -> ParIter<std::slice::Windows<'_, T>> {
        ParIter(self.windows(size))
    }
}

/// Mutable-slice operations.
pub trait ParallelSliceMut<T: Send> {
    /// Mutable chunks of at most `size` elements.
    fn par_chunks_mut(&mut self, size: usize) -> ParIter<std::slice::ChunksMut<'_, T>>;
    /// Unstable sort (sequential pdqsort under this shim).
    fn par_sort_unstable(&mut self)
    where
        T: Ord;
    /// Unstable sort by comparator.
    fn par_sort_unstable_by<F: FnMut(&T, &T) -> Ordering>(&mut self, cmp: F);
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, size: usize) -> ParIter<std::slice::ChunksMut<'_, T>> {
        ParIter(self.chunks_mut(size))
    }
    fn par_sort_unstable(&mut self)
    where
        T: Ord,
    {
        self.sort_unstable();
    }
    fn par_sort_unstable_by<F: FnMut(&T, &T) -> Ordering>(&mut self, cmp: F) {
        self.sort_unstable_by(cmp);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_cover_slice() {
        let v: Vec<u32> = (0..10).collect();
        let lens: Vec<usize> = v.par_chunks(4).map(|c| c.len()).collect();
        assert_eq!(lens, vec![4, 4, 2]);
    }

    #[test]
    fn sort_unstable_by_sorts() {
        let mut v = vec![3u8, 1, 2];
        v.par_sort_unstable_by(|a, b| b.cmp(a));
        assert_eq!(v, vec![3, 2, 1]);
    }
}
