//! Chunked parallel iterator drivers over index-splittable producers.
//!
//! A [`ParIter`] wraps a [`Producer`]: a length-aware source that can be
//! split at an index into two independent halves (slices, owned vectors,
//! integer ranges, chunk/window views, and the adapter stack built on
//! them). Driver methods (`for_each`, `collect`, `sum`, `fold`, ...)
//! split the producer in half recursively down to a sequential chunk
//! threshold of roughly `len / (4 · current_num_threads())`, fork the
//! halves through the permit-gated [`crate::join`], run each leaf chunk
//! with ordinary sequential iteration, and merge per-chunk results **in
//! order** — so order-sensitive drivers (`collect`, `fold` + `reduce`)
//! observe exactly the sequential result while the work actually runs on
//! multiple cores. Under `ThreadPool::install(1)` (or on a single
//! hardware thread) every driver degenerates to the plain sequential
//! loop, with no chunking at all.

use std::sync::Arc;

/// A splittable, length-aware source of items — the parallel analogue of
/// [`IntoIterator`].
pub trait Producer: Sized + Send {
    /// Element type.
    type Item: Send;
    /// Sequential iterator driving one leaf chunk.
    type IntoIter: Iterator<Item = Self::Item>;
    /// Number of splittable positions (an upper bound on items for
    /// filtering adapters).
    fn len(&self) -> usize;
    /// No splittable positions left?
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Split into `[0, index)` and `[index, len)`.
    fn split_at(self, index: usize) -> (Self, Self);
    /// Sequentially iterate this chunk.
    fn into_iter(self) -> Self::IntoIter;
}

/// Marker for producers whose `len` is the *exact* item count and whose
/// split positions correspond one-to-one with items — rayon's
/// `IndexedParallelIterator`. Filtering adapters (`filter`,
/// `filter_map`, `flat_map_iter`) are *not* indexed: their split index
/// counts pre-filter positions, so index-sensitive adapters
/// (`enumerate`, `zip`) built on them would number or pair items
/// differently across splits than sequentially. Gating those adapters
/// on this trait turns that silent divergence into a compile error,
/// exactly like real rayon.
pub trait IndexedProducer: Producer {}

impl<'a, T: Sync> IndexedProducer for SliceProducer<'a, T> {}
impl<T: Send> IndexedProducer for VecProducer<T> {}
impl<T: RangeIndex> IndexedProducer for RangeProducer<T> where std::ops::Range<T>: Iterator<Item = T>
{}
impl<P, U, F> IndexedProducer for Map<P, F>
where
    P: IndexedProducer,
    U: Send,
    F: Fn(P::Item) -> U + Send + Sync,
{
}
impl<P: IndexedProducer> IndexedProducer for Enumerate<P> {}
impl<A: IndexedProducer, B: IndexedProducer> IndexedProducer for Zip<A, B> {}

/// A parallel iterator: a [`Producer`] plus the driver methods.
pub struct ParIter<P>(pub(crate) P);

// ---------------------------------------------------------------------------
// The drive loop
// ---------------------------------------------------------------------------

/// Split `p` down to `chunk`-sized leaves, consume each leaf
/// sequentially, and merge sibling results in order via `join`.
fn drive_rec<P, R, C, M>(p: P, chunk: usize, consume: &C, merge: &M) -> R
where
    P: Producer,
    R: Send,
    C: Fn(P) -> R + Sync,
    M: Fn(R, R) -> R + Sync,
{
    let len = p.len();
    if len <= chunk {
        return consume(p);
    }
    let (a, b) = p.split_at(len / 2);
    let (ra, rb) = crate::pool::join(
        || drive_rec(a, chunk, consume, merge),
        || drive_rec(b, chunk, consume, merge),
    );
    merge(ra, rb)
}

/// Entry point: pick the chunk threshold from the current pool size (one
/// thread ⇒ no splitting, the sequential schedule).
fn drive<P, R, C, M>(p: P, consume: C, merge: M) -> R
where
    P: Producer,
    R: Send,
    C: Fn(P) -> R + Sync,
    M: Fn(R, R) -> R + Sync,
{
    let len = p.len();
    let threads = crate::pool::current_num_threads();
    if threads <= 1 || len <= 1 {
        return consume(p);
    }
    let chunk = len.div_ceil(4 * threads).max(1);
    drive_rec(p, chunk, &consume, &merge)
}

// ---------------------------------------------------------------------------
// Base producers
// ---------------------------------------------------------------------------

/// Producer over a shared slice (`par_iter`).
pub struct SliceProducer<'a, T>(pub(crate) &'a [T]);

impl<'a, T: Sync> Producer for SliceProducer<'a, T> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;
    fn len(&self) -> usize {
        self.0.len()
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (a, b) = self.0.split_at(index);
        (SliceProducer(a), SliceProducer(b))
    }
    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

/// Producer over an owned vector (`into_par_iter`).
pub struct VecProducer<T>(pub(crate) Vec<T>);

impl<T: Send> Producer for VecProducer<T> {
    type Item = T;
    type IntoIter = std::vec::IntoIter<T>;
    fn len(&self) -> usize {
        self.0.len()
    }
    fn split_at(mut self, index: usize) -> (Self, Self) {
        let tail = self.0.split_off(index);
        (self, VecProducer(tail))
    }
    fn into_iter(self) -> Self::IntoIter {
        self.0.into_iter()
    }
}

/// Integer types usable as splittable range endpoints.
pub trait RangeIndex: Copy + Send {
    /// `max(0, b - a)` as a count.
    fn steps_between(a: Self, b: Self) -> usize;
    /// `a + n`.
    fn advance(a: Self, n: usize) -> Self;
}

macro_rules! impl_range_index {
    ($($t:ty),*) => {$(
        impl RangeIndex for $t {
            fn steps_between(a: Self, b: Self) -> usize {
                ((b as i128) - (a as i128)).max(0) as usize
            }
            fn advance(a: Self, n: usize) -> Self {
                ((a as i128) + (n as i128)) as $t
            }
        }
    )*};
}
impl_range_index!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Producer over an integer range (`(0..n).into_par_iter()`).
pub struct RangeProducer<T> {
    start: T,
    end: T,
}

impl<T: RangeIndex> Producer for RangeProducer<T>
where
    std::ops::Range<T>: Iterator<Item = T>,
{
    type Item = T;
    type IntoIter = std::ops::Range<T>;
    fn len(&self) -> usize {
        T::steps_between(self.start, self.end)
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let mid = T::advance(self.start, index);
        (
            RangeProducer {
                start: self.start,
                end: mid,
            },
            RangeProducer {
                start: mid,
                end: self.end,
            },
        )
    }
    fn into_iter(self) -> Self::IntoIter {
        self.start..self.end
    }
}

// ---------------------------------------------------------------------------
// Conversions
// ---------------------------------------------------------------------------

/// Conversion into a [`ParIter`] by value (`into_par_iter`).
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;
    /// Underlying producer.
    type Producer: Producer<Item = Self::Item>;
    /// Convert.
    fn into_par_iter(self) -> ParIter<Self::Producer>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Producer = VecProducer<T>;
    fn into_par_iter(self) -> ParIter<Self::Producer> {
        ParIter(VecProducer(self))
    }
}

impl<T: RangeIndex> IntoParallelIterator for std::ops::Range<T>
where
    std::ops::Range<T>: Iterator<Item = T>,
{
    type Item = T;
    type Producer = RangeProducer<T>;
    fn into_par_iter(self) -> ParIter<Self::Producer> {
        ParIter(RangeProducer {
            start: self.start,
            end: self.end,
        })
    }
}

/// Conversion into a borrowing [`ParIter`] (`par_iter`).
pub trait IntoParallelRefIterator<'a> {
    /// Borrowed element type.
    type Item: Send + 'a;
    /// Underlying producer.
    type Producer: Producer<Item = Self::Item>;
    /// Convert.
    fn par_iter(&'a self) -> ParIter<Self::Producer>;
}

impl<'a, T: 'a + Sync> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Producer = SliceProducer<'a, T>;
    fn par_iter(&'a self) -> ParIter<Self::Producer> {
        ParIter(SliceProducer(self))
    }
}

impl<'a, T: 'a + Sync> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Producer = SliceProducer<'a, T>;
    fn par_iter(&'a self) -> ParIter<Self::Producer> {
        ParIter(SliceProducer(self))
    }
}

// ---------------------------------------------------------------------------
// Adapter producers
// ---------------------------------------------------------------------------

/// `map` adapter. The closure is shared across splits via `Arc`.
pub struct Map<P, F> {
    base: P,
    f: Arc<F>,
}

/// Sequential iterator for one [`Map`] chunk.
pub struct MapIter<I, F> {
    inner: I,
    f: Arc<F>,
}

impl<U, I: Iterator, F: Fn(I::Item) -> U> Iterator for MapIter<I, F> {
    type Item = U;
    fn next(&mut self) -> Option<U> {
        self.inner.next().map(|x| (self.f)(x))
    }
}

impl<P, U, F> Producer for Map<P, F>
where
    P: Producer,
    U: Send,
    F: Fn(P::Item) -> U + Send + Sync,
{
    type Item = U;
    type IntoIter = MapIter<P::IntoIter, F>;
    fn len(&self) -> usize {
        self.base.len()
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (a, b) = self.base.split_at(index);
        (
            Map {
                base: a,
                f: self.f.clone(),
            },
            Map { base: b, f: self.f },
        )
    }
    fn into_iter(self) -> Self::IntoIter {
        MapIter {
            inner: self.base.into_iter(),
            f: self.f,
        }
    }
}

/// `filter` adapter (its `len` is the pre-filter upper bound — only used
/// for splitting, never as an item count).
pub struct Filter<P, F> {
    base: P,
    f: Arc<F>,
}

/// Sequential iterator for one [`Filter`] chunk.
pub struct FilterIter<I, F> {
    inner: I,
    f: Arc<F>,
}

impl<I: Iterator, F: Fn(&I::Item) -> bool> Iterator for FilterIter<I, F> {
    type Item = I::Item;
    fn next(&mut self) -> Option<I::Item> {
        self.inner.by_ref().find(|x| (self.f)(x))
    }
}

impl<P, F> Producer for Filter<P, F>
where
    P: Producer,
    F: Fn(&P::Item) -> bool + Send + Sync,
{
    type Item = P::Item;
    type IntoIter = FilterIter<P::IntoIter, F>;
    fn len(&self) -> usize {
        self.base.len()
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (a, b) = self.base.split_at(index);
        (
            Filter {
                base: a,
                f: self.f.clone(),
            },
            Filter { base: b, f: self.f },
        )
    }
    fn into_iter(self) -> Self::IntoIter {
        FilterIter {
            inner: self.base.into_iter(),
            f: self.f,
        }
    }
}

/// `filter_map` adapter.
pub struct FilterMap<P, F> {
    base: P,
    f: Arc<F>,
}

/// Sequential iterator for one [`FilterMap`] chunk.
pub struct FilterMapIter<I, F> {
    inner: I,
    f: Arc<F>,
}

impl<U, I: Iterator, F: Fn(I::Item) -> Option<U>> Iterator for FilterMapIter<I, F> {
    type Item = U;
    fn next(&mut self) -> Option<U> {
        for x in self.inner.by_ref() {
            if let Some(y) = (self.f)(x) {
                return Some(y);
            }
        }
        None
    }
}

impl<P, U, F> Producer for FilterMap<P, F>
where
    P: Producer,
    U: Send,
    F: Fn(P::Item) -> Option<U> + Send + Sync,
{
    type Item = U;
    type IntoIter = FilterMapIter<P::IntoIter, F>;
    fn len(&self) -> usize {
        self.base.len()
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (a, b) = self.base.split_at(index);
        (
            FilterMap {
                base: a,
                f: self.f.clone(),
            },
            FilterMap { base: b, f: self.f },
        )
    }
    fn into_iter(self) -> Self::IntoIter {
        FilterMapIter {
            inner: self.base.into_iter(),
            f: self.f,
        }
    }
}

/// `flat_map_iter` adapter: splits on the *outer* items; each item's
/// sub-iterator runs sequentially inside its chunk.
pub struct FlatMapIter<P, F> {
    base: P,
    f: Arc<F>,
}

/// Sequential iterator for one [`FlatMapIter`] chunk.
pub struct FlatMapIterIter<I: Iterator, U: IntoIterator, F> {
    inner: I,
    cur: Option<U::IntoIter>,
    f: Arc<F>,
}

impl<I, U, F> Iterator for FlatMapIterIter<I, U, F>
where
    I: Iterator,
    U: IntoIterator,
    F: Fn(I::Item) -> U,
{
    type Item = U::Item;
    fn next(&mut self) -> Option<U::Item> {
        loop {
            if let Some(cur) = &mut self.cur {
                if let Some(x) = cur.next() {
                    return Some(x);
                }
            }
            self.cur = Some((self.f)(self.inner.next()?).into_iter());
        }
    }
}

impl<P, U, F> Producer for FlatMapIter<P, F>
where
    P: Producer,
    U: IntoIterator,
    U::Item: Send,
    F: Fn(P::Item) -> U + Send + Sync,
{
    type Item = U::Item;
    type IntoIter = FlatMapIterIter<P::IntoIter, U, F>;
    fn len(&self) -> usize {
        self.base.len()
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (a, b) = self.base.split_at(index);
        (
            FlatMapIter {
                base: a,
                f: self.f.clone(),
            },
            FlatMapIter { base: b, f: self.f },
        )
    }
    fn into_iter(self) -> Self::IntoIter {
        FlatMapIterIter {
            inner: self.base.into_iter(),
            cur: None,
            f: self.f,
        }
    }
}

/// `enumerate` adapter: carries the split-point offset so indices stay
/// global.
pub struct Enumerate<P> {
    base: P,
    offset: usize,
}

/// Sequential iterator for one [`Enumerate`] chunk.
pub struct EnumerateIter<I> {
    inner: I,
    next_index: usize,
}

impl<I: Iterator> Iterator for EnumerateIter<I> {
    type Item = (usize, I::Item);
    fn next(&mut self) -> Option<Self::Item> {
        let x = self.inner.next()?;
        let i = self.next_index;
        self.next_index += 1;
        Some((i, x))
    }
}

impl<P: Producer> Producer for Enumerate<P> {
    type Item = (usize, P::Item);
    type IntoIter = EnumerateIter<P::IntoIter>;
    fn len(&self) -> usize {
        self.base.len()
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (a, b) = self.base.split_at(index);
        (
            Enumerate {
                base: a,
                offset: self.offset,
            },
            Enumerate {
                base: b,
                offset: self.offset + index,
            },
        )
    }
    fn into_iter(self) -> Self::IntoIter {
        EnumerateIter {
            inner: self.base.into_iter(),
            next_index: self.offset,
        }
    }
}

/// `zip` adapter: both sides split at the same index, so pairs stay
/// aligned across chunks.
pub struct Zip<A, B> {
    a: A,
    b: B,
}

impl<A: Producer, B: Producer> Producer for Zip<A, B> {
    type Item = (A::Item, B::Item);
    type IntoIter = std::iter::Zip<A::IntoIter, B::IntoIter>;
    fn len(&self) -> usize {
        self.a.len().min(self.b.len())
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (al, ar) = self.a.split_at(index);
        let (bl, br) = self.b.split_at(index);
        (Zip { a: al, b: bl }, Zip { a: ar, b: br })
    }
    fn into_iter(self) -> Self::IntoIter {
        self.a.into_iter().zip(self.b.into_iter())
    }
}

// ---------------------------------------------------------------------------
// Adapters + drivers
// ---------------------------------------------------------------------------

impl<P: Producer> ParIter<P> {
    /// Transform every element.
    pub fn map<U, F>(self, f: F) -> ParIter<Map<P, F>>
    where
        U: Send,
        F: Fn(P::Item) -> U + Send + Sync,
    {
        ParIter(Map {
            base: self.0,
            f: Arc::new(f),
        })
    }

    /// Keep elements satisfying the predicate.
    pub fn filter<F>(self, f: F) -> ParIter<Filter<P, F>>
    where
        F: Fn(&P::Item) -> bool + Send + Sync,
    {
        ParIter(Filter {
            base: self.0,
            f: Arc::new(f),
        })
    }

    /// Map-and-filter in one pass.
    pub fn filter_map<U, F>(self, f: F) -> ParIter<FilterMap<P, F>>
    where
        U: Send,
        F: Fn(P::Item) -> Option<U> + Send + Sync,
    {
        ParIter(FilterMap {
            base: self.0,
            f: Arc::new(f),
        })
    }

    /// Map each element to a *sequential* iterator and flatten.
    pub fn flat_map_iter<U, F>(self, f: F) -> ParIter<FlatMapIter<P, F>>
    where
        U: IntoIterator,
        U::Item: Send,
        F: Fn(P::Item) -> U + Send + Sync,
    {
        ParIter(FlatMapIter {
            base: self.0,
            f: Arc::new(f),
        })
    }

    /// Pair every element with its index (indexed producers only —
    /// filtered iterators cannot be enumerated, as in real rayon).
    pub fn enumerate(self) -> ParIter<Enumerate<P>>
    where
        P: IndexedProducer,
    {
        ParIter(Enumerate {
            base: self.0,
            offset: 0,
        })
    }

    /// Zip with another parallel iterator (length = the shorter side;
    /// both sides must be indexed so pairs stay aligned across splits).
    pub fn zip<Q: IndexedProducer>(self, other: ParIter<Q>) -> ParIter<Zip<P, Q>>
    where
        P: IndexedProducer,
    {
        ParIter(Zip {
            a: self.0,
            b: other.0,
        })
    }

    /// Run `f` on every element (chunks in parallel, each chunk in
    /// order).
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(P::Item) + Send + Sync,
    {
        drive(
            self.0,
            |p| {
                for x in p.into_iter() {
                    f(x);
                }
            },
            |(), ()| (),
        );
    }

    /// Collect into any `FromIterator` collection, preserving order.
    pub fn collect<C: FromIterator<P::Item>>(self) -> C {
        let parts = drive(
            self.0,
            |p| p.into_iter().collect::<Vec<_>>(),
            |mut a, mut b| {
                a.append(&mut b);
                a
            },
        );
        parts.into_iter().collect()
    }

    /// Sum the elements (per-chunk sums, then a sum of sums — the same
    /// two-level bound rayon documents).
    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<P::Item> + std::iter::Sum<S> + Send,
    {
        drive(
            self.0,
            |p| p.into_iter().sum::<S>(),
            |a, b| std::iter::once(a).chain(std::iter::once(b)).sum(),
        )
    }

    /// Count the elements.
    pub fn count(self) -> usize {
        drive(self.0, |p| p.into_iter().count(), |a, b| a + b)
    }

    /// Parallel fold: one partial accumulator per leaf chunk, exposed as
    /// a new parallel iterator to be combined with [`ParIter::reduce`].
    pub fn fold<T, ID, F>(self, identity: ID, fold_op: F) -> ParIter<VecProducer<T>>
    where
        T: Send,
        ID: Fn() -> T + Send + Sync,
        F: Fn(T, P::Item) -> T + Send + Sync,
    {
        let parts = drive(
            self.0,
            |p| vec![p.into_iter().fold(identity(), &fold_op)],
            |mut a, mut b| {
                a.append(&mut b);
                a
            },
        );
        ParIter(VecProducer(parts))
    }

    /// Fold with `identity` / `op`, rayon-style (`op` must be
    /// associative, `identity()` its neutral element).
    pub fn reduce<ID, F>(self, identity: ID, op: F) -> P::Item
    where
        ID: Fn() -> P::Item + Send + Sync,
        F: Fn(P::Item, P::Item) -> P::Item + Send + Sync,
    {
        drive(self.0, |p| p.into_iter().fold(identity(), &op), &op)
    }

    /// Smallest element.
    pub fn min(self) -> Option<P::Item>
    where
        P::Item: Ord,
    {
        drive(
            self.0,
            |p| p.into_iter().min(),
            |a, b| match (a, b) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (x, None) => x,
                (None, y) => y,
            },
        )
    }

    /// Largest element.
    pub fn max(self) -> Option<P::Item>
    where
        P::Item: Ord,
    {
        drive(
            self.0,
            |p| p.into_iter().max(),
            |a, b| match (a, b) {
                (Some(a), Some(b)) => Some(a.max(b)),
                (x, None) => x,
                (None, y) => y,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_collect_roundtrip() {
        let v: Vec<u64> = (0..10u64).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(v, (0..10u64).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn zip_and_sum() {
        let a = vec![1u64, 2, 3];
        let b = vec![10u64, 20, 30];
        let s: u64 = a.par_iter().zip(b.par_iter()).map(|(x, y)| x * y).sum();
        assert_eq!(s, 10 + 40 + 90);
    }

    #[test]
    fn filter_count() {
        assert_eq!(
            (0..100u32).into_par_iter().filter(|x| x % 3 == 0).count(),
            34
        );
    }

    #[test]
    fn collect_preserves_order_at_scale() {
        let v: Vec<usize> = (0..100_000usize).into_par_iter().map(|x| x + 1).collect();
        assert!(v.iter().enumerate().all(|(i, &x)| x == i + 1));
    }

    #[test]
    fn enumerate_indices_are_global() {
        let data: Vec<u32> = (0..50_000).map(|i| i * 2).collect();
        let pairs: Vec<(usize, u32)> = data.par_iter().enumerate().map(|(i, &x)| (i, x)).collect();
        assert!(pairs.iter().all(|&(i, x)| x == 2 * i as u32));
    }

    #[test]
    fn fold_reduce_matches_sequential() {
        let got: u64 = (0..100_000u64)
            .into_par_iter()
            .fold(|| 0u64, |s, x| s.wrapping_add(x))
            .reduce(|| 0u64, u64::wrapping_add);
        assert_eq!(got, (0..100_000u64).sum::<u64>());
    }

    #[test]
    fn min_max_and_empty() {
        assert_eq!((0..10_000u32).into_par_iter().min(), Some(0));
        assert_eq!((0..10_000u32).into_par_iter().max(), Some(9999));
        assert_eq!((0..0u32).into_par_iter().min(), None);
        let empty: Vec<u32> = (0..0u32).into_par_iter().collect();
        assert!(empty.is_empty());
    }

    #[test]
    fn flat_map_iter_flattens_in_order() {
        let got: Vec<u32> = (0..1000u32)
            .into_par_iter()
            .flat_map_iter(|x| (0..3).map(move |j| x * 3 + j))
            .collect();
        let expect: Vec<u32> = (0..3000).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn vec_into_par_iter_owns_elements() {
        let v: Vec<String> = (0..5000).map(|i| i.to_string()).collect();
        let lens: Vec<usize> = v.into_par_iter().map(|s| s.len()).collect();
        assert_eq!(lens.len(), 5000);
        assert_eq!(lens[0], 1);
        assert_eq!(lens[4999], 4);
    }
}
