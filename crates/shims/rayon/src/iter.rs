//! Sequentially-executing stand-ins for rayon's parallel iterators.
//!
//! [`ParIter`] wraps an ordinary [`Iterator`] and re-exposes the adapter
//! and driver methods the workspace uses. Execution order matches the
//! sequential iterator, which is a legal (and deterministic) schedule of
//! the corresponding parallel computation.

/// A "parallel" iterator: a thin wrapper over a sequential one.
pub struct ParIter<I>(pub(crate) I);

/// Conversion into a [`ParIter`] by value (`into_par_iter`).
pub trait IntoParallelIterator {
    /// Element type.
    type Item;
    /// Underlying sequential iterator.
    type Iter: Iterator<Item = Self::Item>;
    /// Convert.
    fn into_par_iter(self) -> ParIter<Self::Iter>;
}

impl<T> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = std::vec::IntoIter<T>;
    fn into_par_iter(self) -> ParIter<Self::Iter> {
        ParIter(self.into_iter())
    }
}

impl<T> IntoParallelIterator for std::ops::Range<T>
where
    std::ops::Range<T>: Iterator<Item = T>,
{
    type Item = T;
    type Iter = std::ops::Range<T>;
    fn into_par_iter(self) -> ParIter<Self::Iter> {
        ParIter(self)
    }
}

/// Conversion into a borrowing [`ParIter`] (`par_iter`).
pub trait IntoParallelRefIterator<'a> {
    /// Borrowed element type.
    type Item: 'a;
    /// Underlying sequential iterator.
    type Iter: Iterator<Item = Self::Item>;
    /// Convert.
    fn par_iter(&'a self) -> ParIter<Self::Iter>;
}

impl<'a, T: 'a + Sync> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = std::slice::Iter<'a, T>;
    fn par_iter(&'a self) -> ParIter<Self::Iter> {
        ParIter(self.iter())
    }
}

impl<'a, T: 'a + Sync> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = std::slice::Iter<'a, T>;
    fn par_iter(&'a self) -> ParIter<Self::Iter> {
        ParIter(self.iter())
    }
}

impl<I: Iterator> ParIter<I> {
    /// Transform every element.
    pub fn map<U, F: FnMut(I::Item) -> U>(self, f: F) -> ParIter<std::iter::Map<I, F>> {
        ParIter(self.0.map(f))
    }

    /// Keep elements satisfying the predicate.
    pub fn filter<F: FnMut(&I::Item) -> bool>(self, f: F) -> ParIter<std::iter::Filter<I, F>> {
        ParIter(self.0.filter(f))
    }

    /// Map-and-filter in one pass.
    pub fn filter_map<U, F: FnMut(I::Item) -> Option<U>>(
        self,
        f: F,
    ) -> ParIter<std::iter::FilterMap<I, F>> {
        ParIter(self.0.filter_map(f))
    }

    /// Map each element to a *sequential* iterator and flatten.
    pub fn flat_map_iter<U: IntoIterator, F: FnMut(I::Item) -> U>(
        self,
        f: F,
    ) -> ParIter<std::iter::FlatMap<I, U, F>> {
        ParIter(self.0.flat_map(f))
    }

    /// Pair every element with its index.
    pub fn enumerate(self) -> ParIter<std::iter::Enumerate<I>> {
        ParIter(self.0.enumerate())
    }

    /// Zip with another parallel iterator.
    pub fn zip<J: Iterator>(self, other: ParIter<J>) -> ParIter<std::iter::Zip<I, J>> {
        ParIter(self.0.zip(other.0))
    }

    /// Run `f` on every element.
    pub fn for_each<F: FnMut(I::Item)>(self, f: F) {
        self.0.for_each(f)
    }

    /// Collect into any `FromIterator` collection.
    pub fn collect<C: FromIterator<I::Item>>(self) -> C {
        self.0.collect()
    }

    /// Sum the elements.
    pub fn sum<S: std::iter::Sum<I::Item>>(self) -> S {
        self.0.sum()
    }

    /// Count the elements.
    pub fn count(self) -> usize {
        self.0.count()
    }

    /// Parallel fold: produces per-"split" partial accumulators (a single
    /// one under this sequential shim), to be combined with [`ParIter::reduce`].
    pub fn fold<T, ID, F>(self, identity: ID, fold_op: F) -> ParIter<std::iter::Once<T>>
    where
        ID: Fn() -> T,
        F: FnMut(T, I::Item) -> T,
    {
        ParIter(std::iter::once(self.0.fold(identity(), fold_op)))
    }

    /// Fold with `identity` / `op`, rayon-style (associative reduction).
    pub fn reduce<F>(self, identity: impl Fn() -> I::Item, op: F) -> I::Item
    where
        F: FnMut(I::Item, I::Item) -> I::Item,
    {
        self.0.fold(identity(), op)
    }

    /// Smallest element.
    pub fn min(self) -> Option<I::Item>
    where
        I::Item: Ord,
    {
        self.0.min()
    }

    /// Largest element.
    pub fn max(self) -> Option<I::Item>
    where
        I::Item: Ord,
    {
        self.0.max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_collect_roundtrip() {
        let v: Vec<u64> = (0..10u64).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(v, (0..10u64).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn zip_and_sum() {
        let a = vec![1u64, 2, 3];
        let b = vec![10u64, 20, 30];
        let s: u64 = a.par_iter().zip(b.par_iter()).map(|(x, y)| x * y).sum();
        assert_eq!(s, 10 + 40 + 90);
    }

    #[test]
    fn filter_count() {
        assert_eq!(
            (0..100u32).into_par_iter().filter(|x| x % 3 == 0).count(),
            34
        );
    }
}
