//! Black-box tests for the chunked parallel iterator drivers.
//!
//! Three families:
//!
//! 1. **Parity** — property tests asserting every driver produces exactly
//!    the result of its sequential `std::iter` equivalent across input
//!    lengths 0..~10k (chunked fork/merge must be invisible in results).
//! 2. **Forking** — on a multi-core host the drivers must actually run on
//!    more than one thread; on a single hardware thread they must fall
//!    back to pure inline execution.
//! 3. **Determinism** — under `ThreadPool::install(1)` every driver runs
//!    on the calling thread only.

use proptest::prelude::*;
use rayon::prelude::*;
use std::collections::HashSet;
use std::sync::Mutex;
use std::thread::ThreadId;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn collect_matches_sequential(v in proptest::collection::vec(0u64..1_000_000, 0..10_000)) {
        let par: Vec<u64> = v.par_iter().map(|&x| x.wrapping_mul(31).wrapping_add(7)).collect();
        let seq: Vec<u64> = v.iter().map(|&x| x.wrapping_mul(31).wrapping_add(7)).collect();
        prop_assert_eq!(par, seq);
    }

    #[test]
    fn sum_matches_sequential(v in proptest::collection::vec(0u64..1_000_000, 0..10_000)) {
        let par: u64 = v.par_iter().map(|&x| x).sum();
        let seq: u64 = v.iter().sum();
        prop_assert_eq!(par, seq);
    }

    #[test]
    fn count_and_filter_match_sequential(v in proptest::collection::vec(0u32..100, 0..10_000)) {
        let par = v.par_iter().filter(|&&x| x % 3 == 0).count();
        let seq = v.iter().filter(|&&x| x % 3 == 0).count();
        prop_assert_eq!(par, seq);
    }

    #[test]
    fn fold_reduce_matches_sequential(v in proptest::collection::vec(0u64..1_000_000, 0..10_000)) {
        let par: u64 = v
            .par_iter()
            .map(|&x| x)
            .fold(|| 0u64, |s, x| s.wrapping_add(x))
            .reduce(|| 0u64, u64::wrapping_add);
        let seq: u64 = v.iter().fold(0u64, |s, &x| s.wrapping_add(x));
        prop_assert_eq!(par, seq);
    }

    #[test]
    fn reduce_matches_sequential(v in proptest::collection::vec(1u64..1_000, 0..10_000)) {
        let par: u64 = v.par_iter().map(|&x| x).reduce(|| 0u64, u64::wrapping_add);
        let seq: u64 = v.iter().sum();
        prop_assert_eq!(par, seq);
    }

    #[test]
    fn min_max_match_sequential(v in proptest::collection::vec(0i64..1_000_000, 0..10_000)) {
        prop_assert_eq!(v.par_iter().map(|&x| x).min(), v.iter().copied().min());
        prop_assert_eq!(v.par_iter().map(|&x| x).max(), v.iter().copied().max());
    }

    #[test]
    fn par_sort_unstable_matches_std(mut v in proptest::collection::vec(0u64..50_000, 0..10_000)) {
        let mut expect = v.clone();
        expect.sort_unstable();
        v.par_sort_unstable();
        prop_assert_eq!(v, expect);
    }

    #[test]
    fn par_sort_unstable_by_sorts_and_permutes(v in proptest::collection::vec((0u8..8, 0u32..100_000), 0..10_000)) {
        // unstable sorts may order equal keys differently, so assert the
        // two things an unstable sort owes us: sorted by the comparator,
        // and a permutation of the input.
        let mut got = v.clone();
        got.par_sort_unstable_by(|a, b| a.0.cmp(&b.0));
        prop_assert!(got.windows(2).all(|w| w[0].0 <= w[1].0));
        let mut got_full = got.clone();
        let mut expect_full = v.clone();
        got_full.sort_unstable();
        expect_full.sort_unstable();
        prop_assert_eq!(got_full, expect_full);
    }

    #[test]
    fn enumerate_zip_flat_map_match_sequential(v in proptest::collection::vec(0u32..1_000, 0..5_000)) {
        let par: Vec<(usize, u32)> = v.par_iter().enumerate().map(|(i, &x)| (i, x)).collect();
        let seq: Vec<(usize, u32)> = v.iter().enumerate().map(|(i, &x)| (i, x)).collect();
        prop_assert_eq!(par, seq);

        let par: Vec<u32> = v.par_iter().zip(v.par_iter()).map(|(&a, &b)| a + b).collect();
        let seq: Vec<u32> = v.iter().zip(v.iter()).map(|(&a, &b)| a + b).collect();
        prop_assert_eq!(par, seq);

        let par: Vec<u32> = v.par_iter().flat_map_iter(|&x| 0..(x % 4)).collect();
        let seq: Vec<u32> = v.iter().flat_map(|&x| 0..(x % 4)).collect();
        prop_assert_eq!(par, seq);
    }
}

fn hardware_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Run `body` (which records the threads it executes on into the set)
/// until it is observed on >1 thread, retrying a few times because the
/// fork permit budget is process-global and may be transiently held by
/// concurrently running tests. On a single hardware thread, assert the
/// inline fallback instead: exactly the calling thread.
fn assert_forks(name: &str, body: impl Fn(&Mutex<HashSet<ThreadId>>)) {
    if hardware_threads() <= 1 {
        let ids = Mutex::new(HashSet::new());
        body(&ids);
        let ids = ids.into_inner().unwrap();
        assert_eq!(
            ids.into_iter().collect::<Vec<_>>(),
            vec![std::thread::current().id()],
            "{name}: on 1 hardware thread everything must run inline"
        );
        return;
    }
    for _ in 0..25 {
        let ids = Mutex::new(HashSet::new());
        body(&ids);
        if ids.into_inner().unwrap().len() > 1 {
            return;
        }
    }
    panic!(
        "{name} never ran on more than one thread on a {}-core host",
        hardware_threads()
    );
}

fn record(ids: &Mutex<HashSet<ThreadId>>) {
    ids.lock().unwrap().insert(std::thread::current().id());
}

#[test]
fn for_each_forks_on_multicore() {
    assert_forks("for_each", |ids| {
        (0..1_000_000u64).into_par_iter().for_each(|i| {
            std::hint::black_box(i.wrapping_mul(0x9e3779b97f4a7c15));
            if i % 4096 == 0 {
                record(ids);
            }
        });
    });
}

#[test]
fn collect_forks_on_multicore() {
    assert_forks("collect", |ids| {
        let v: Vec<u64> = (0..1_000_000u64)
            .into_par_iter()
            .map(|i| {
                if i % 4096 == 0 {
                    record(ids);
                }
                i.wrapping_mul(3)
            })
            .collect();
        assert_eq!(v.len(), 1_000_000);
        assert_eq!(v[999_999], 999_999 * 3);
    });
}

#[test]
fn sum_forks_on_multicore() {
    assert_forks("sum", |ids| {
        let s: u64 = (0..1_000_000u64)
            .into_par_iter()
            .map(|i| {
                if i % 4096 == 0 {
                    record(ids);
                }
                i
            })
            .sum();
        assert_eq!(s, 999_999 * 1_000_000 / 2);
    });
}

#[test]
fn par_sort_forks_on_multicore() {
    let base: Vec<u64> = (0..300_000u64)
        .map(|i| i.wrapping_mul(0x9e3779b97f4a7c15) >> 3)
        .collect();
    let mut expect = base.clone();
    expect.sort_unstable();
    assert_forks("par_sort_unstable_by", |ids| {
        let mut v = base.clone();
        v.par_sort_unstable_by(|a, b| {
            // sample sparsely: the comparator runs millions of times
            if (a.wrapping_add(*b)) % 8192 == 0 {
                record(ids);
            }
            a.cmp(b)
        });
        assert_eq!(v, expect);
    });
}

#[test]
fn install_one_runs_inline_and_deterministic() {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .unwrap();
    let me = std::thread::current().id();
    let (a, b) = pool.install(|| {
        let ids = Mutex::new(HashSet::new());
        let v: Vec<u64> = (0..200_000u64)
            .into_par_iter()
            .map(|x| {
                if x % 1024 == 0 {
                    record(&ids);
                }
                x.wrapping_mul(7)
            })
            .collect();
        let s: u64 = v.par_iter().map(|&x| x).sum();
        let mut sorted: Vec<u64> = v.iter().rev().copied().collect();
        sorted.par_sort_unstable_by(|a, b| {
            if a.wrapping_add(*b) % 512 == 0 {
                record(&ids);
            }
            a.cmp(b)
        });
        assert!(sorted.windows(2).all(|w| w[0] <= w[1]));
        let ids = ids.into_inner().unwrap();
        assert_eq!(
            ids.into_iter().collect::<Vec<_>>(),
            vec![me],
            "install(1) must keep every driver on the calling thread"
        );
        (v[123_456], s)
    });
    // byte-for-byte the sequential result
    assert_eq!(a, 123_456 * 7);
    assert_eq!(b, (0..200_000u64).map(|x| x.wrapping_mul(7)).sum::<u64>());
}

#[test]
fn chunked_path_matches_sequential_even_without_spare_cores() {
    // install(8) forces the drivers to *split* regardless of the real
    // core count (forks without a free permit just run inline), so this
    // exercises the chunk/merge machinery even on a 1-core host.
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(8)
        .build()
        .unwrap();
    pool.install(|| {
        for n in [0usize, 1, 2, 3, 7, 31, 100, 1_023, 4_096, 9_999] {
            let v: Vec<u64> = (0..n as u64).map(|i| i.wrapping_mul(0x9e37) >> 2).collect();

            let par: Vec<u64> = v.par_iter().map(|&x| x ^ 1).collect();
            let seq: Vec<u64> = v.iter().map(|&x| x ^ 1).collect();
            assert_eq!(par, seq, "collect, n={n}");

            assert_eq!(
                v.par_iter().map(|&x| x).sum::<u64>(),
                v.iter().sum::<u64>(),
                "sum, n={n}"
            );
            assert_eq!(
                v.par_iter().filter(|&&x| x % 5 == 0).count(),
                v.iter().filter(|&&x| x % 5 == 0).count(),
                "count, n={n}"
            );
            assert_eq!(
                v.par_iter().map(|&x| x).min(),
                v.iter().copied().min(),
                "min, n={n}"
            );
            assert_eq!(
                v.par_iter()
                    .map(|&x| x)
                    .fold(|| 0u64, |s, x| s.wrapping_add(x))
                    .reduce(|| 0u64, u64::wrapping_add),
                v.iter().fold(0u64, |s, &x| s.wrapping_add(x)),
                "fold+reduce, n={n}"
            );

            let par: Vec<(usize, u64)> = v.par_iter().enumerate().map(|(i, &x)| (i, x)).collect();
            let seq: Vec<(usize, u64)> = v.iter().enumerate().map(|(i, &x)| (i, x)).collect();
            assert_eq!(par, seq, "enumerate, n={n}");

            let par: Vec<u64> = v.par_iter().flat_map_iter(|&x| 0..(x % 3)).collect();
            let seq: Vec<u64> = v.iter().flat_map(|&x| 0..(x % 3)).collect();
            assert_eq!(par, seq, "flat_map_iter, n={n}");

            if n > 0 {
                let par: Vec<u64> = v.par_windows(3).map(|w| w.iter().sum()).collect();
                let seq: Vec<u64> = v.windows(3).map(|w| w.iter().sum()).collect();
                assert_eq!(par, seq, "windows, n={n}");

                let par: Vec<usize> = v.par_chunks(7).map(|c| c.len()).collect();
                let seq: Vec<usize> = v.chunks(7).map(|c| c.len()).collect();
                assert_eq!(par, seq, "chunks, n={n}");
            }

            let mut got = v.clone();
            got.par_sort_unstable();
            let mut expect = v.clone();
            expect.sort_unstable();
            assert_eq!(got, expect, "sort, n={n}");
        }
        // sort sizes big enough to cross MIN_PAR_SORT and split runs
        for n in [5_000usize, 50_000, 123_457] {
            let mut got: Vec<u64> = (0..n as u64)
                .map(|i| i.wrapping_mul(0x9e3779b97f4a7c15) >> 7)
                .collect();
            let mut expect = got.clone();
            expect.sort_unstable();
            got.par_sort_unstable();
            assert_eq!(got, expect, "large sort, n={n}");
        }
    });
}

#[test]
fn chunked_zip_scan_shape_is_consistent() {
    // the scan-style composition parlay uses: chunks_mut zip chunks zip
    // per-chunk offsets, driven in parallel
    let n = 100_000;
    let cl = 1 + n / 64;
    let v: Vec<u64> = (0..n as u64).collect();
    let offsets: Vec<u64> = v
        .chunks(cl)
        .scan(0u64, |acc, c| {
            let out = *acc;
            *acc += c.iter().sum::<u64>();
            Some(out)
        })
        .collect();
    let mut out = vec![0u64; n];
    out.par_chunks_mut(cl)
        .zip(v.par_chunks(cl))
        .zip(offsets.par_iter())
        .for_each(|((oc, vc), &off)| {
            let mut acc = off;
            for (slot, &x) in oc.iter_mut().zip(vc) {
                acc += x;
                *slot = acc;
            }
        });
    let mut acc = 0u64;
    for (i, &x) in v.iter().enumerate() {
        acc += x;
        assert_eq!(out[i], acc);
    }
}
