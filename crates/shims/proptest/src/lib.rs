//! Offline shim for [proptest](https://docs.rs/proptest) (see
//! `crates/shims/README.md`).
//!
//! Supports the subset this workspace uses: the [`proptest!`] macro with
//! an optional `#![proptest_config(...)]` attribute, range / tuple /
//! [`collection::vec`] strategies, [`Strategy::prop_map`], [`prop_oneof!`],
//! and the `prop_assert*` macros.
//!
//! Generation is **deterministic**: the RNG is seeded from the test
//! function's name, so every run explores the same cases. There is no
//! shrinking — a failing case panics with the case index for replay.

use std::ops::Range;

pub mod test_runner {
    //! Deterministic RNG driving the strategies.

    /// SplitMix64: tiny, fast, and plenty random for test generation.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from an arbitrary string (the test name).
        pub fn from_name(name: &str) -> TestRng {
            let mut h = 0xcbf29ce484222325u64; // FNV-1a
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            TestRng { state: h }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)` (`bound > 0`).
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }
}

use test_runner::TestRng;

/// A value generator. The real crate's `Strategy` also carries shrinking
/// machinery; here it is just "generate one value from the RNG".
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erase the strategy (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among boxed alternatives (see [`prop_oneof!`]).
pub struct Union<T>(pub Vec<BoxedStrategy<T>>);

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.0.len() as u64) as usize;
        self.0[i].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}
impl_tuple_strategy!((A.0), (A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3),);

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `Vec` of values from `element`, length uniform in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Per-test configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Everything a proptest-based test file needs.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy,
    };
}

/// Assert inside a property (panics on failure, like a failed case).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// The main macro: each `fn name(pat in strategy, ...) { body }` becomes a
/// `#[test]` running `body` over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    (@run ($cfg:expr) $(
        #[test]
        fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
            for case in 0..cfg.cases {
                let run = || {
                    $(let $pat = $crate::Strategy::generate(&$strat, &mut rng);)+
                    $body
                };
                if let Err(panic) = std::panic::catch_unwind(std::panic::AssertUnwindSafe(run)) {
                    eprintln!(
                        "proptest shim: {} failed on case {case}/{} (deterministic; rerun reproduces)",
                        stringify!($name),
                        cfg.cases,
                    );
                    std::panic::resume_unwind(panic);
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_name("ranges");
        for _ in 0..1000 {
            let x = (5u32..17).generate(&mut rng);
            assert!((5..17).contains(&x));
            let y = (-4i64..9).generate(&mut rng);
            assert!((-4..9).contains(&y));
        }
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut rng = TestRng::from_name("vecs");
        let s = collection::vec(0u8..10, 2..6);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let mut rng = TestRng::from_name("oneof");
        let s = prop_oneof![
            (0u32..1).prop_map(|_| "a"),
            (0u32..1).prop_map(|_| "b"),
            (0u32..1).prop_map(|_| "c"),
        ];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(s.generate(&mut rng));
        }
        assert_eq!(seen.len(), 3);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_binds_patterns(mut v in collection::vec(0u64..100, 0..20), (a, b) in (0u8..4, 0u8..4)) {
            v.push(a as u64 + b as u64);
            prop_assert!(v.last().copied().unwrap_or(0) <= 6 + 100);
        }
    }

    proptest! {
        #[test]
        fn macro_default_config(x in 0u16..50) {
            prop_assert!(x < 50);
        }
    }
}
