//! The dynamic lock-order / deadlock detector (compiled under
//! `debug_assertions` or the `lock-order` feature).
//!
//! Every shim lock ([`crate::Mutex`], [`crate::RwLock`]) is labeled with
//! its **creation site** (`#[track_caller]` + `Location::caller()` in the
//! const constructor), so all locks born at one source line form a *lock
//! class* — per-shard pipeline mutexes, for example, are one class. Each
//! thread keeps a stack of the classes it currently holds; acquiring a
//! lock while holding others records an *acquired-before* edge
//! `held → next` (with a witness: thread name + full held stack) into a
//! process-global graph. A new edge that closes a cycle is a lock-order
//! inversion — two threads could interleave into a deadlock — and the
//! detector panics **before blocking** on the underlying lock, printing
//! both witness stacks: the current thread's, and the recorded witness of
//! every edge along the conflicting path.
//!
//! Deliberate scope limits, documented in ARCHITECTURE.md §11:
//!
//! * **Self-edges are suppressed.** Same-class nesting (B+-tree lock
//!   coupling parent→child, two shards' pipelines) is ordered by an
//!   intra-class protocol the class graph cannot see; flagging it would
//!   make every tree traversal a false positive.
//! * **Condvar waits keep the class on the held stack.** The lock is
//!   released while waiting, but the waiting thread acquires nothing
//!   else, so the conservative bookkeeping records no extra edges.
//! * Edges are recorded first-witness-wins and never expire: the graph
//!   accumulates the union of all orders any test in the process ever
//!   exercised, which is exactly what makes stress suites double as
//!   ordering checks.

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::panic::Location;
use std::sync::{Mutex, OnceLock, PoisonError};

/// A lock class: the `Location` of the `Mutex::new` / `RwLock::new` call
/// that created the lock.
pub(crate) type Label = &'static Location<'static>;

/// Class identity by source coordinates (pointer identity of the
/// `Location` statics is not guaranteed across codegen units).
type Key = (&'static str, u32, u32);

fn key(l: Label) -> Key {
    (l.file(), l.line(), l.column())
}

/// Who recorded an edge, and what they held at the time.
struct Witness {
    thread: String,
    /// Formatted held stack, outermost first.
    held: Vec<String>,
}

#[derive(Default)]
struct Graph {
    /// `from` class → (`to` class → first witness of the edge).
    edges: HashMap<Key, HashMap<Key, Witness>>,
}

fn graph() -> &'static Mutex<Graph> {
    static G: OnceLock<Mutex<Graph>> = OnceLock::new();
    G.get_or_init(|| Mutex::new(Graph::default()))
}

thread_local! {
    /// Lock classes this thread currently holds, outermost first.
    static HELD: RefCell<Vec<Label>> = const { RefCell::new(Vec::new()) };
}

fn fmt_label(l: Label) -> String {
    format!("{}:{}:{}", l.file(), l.line(), l.column())
}

fn fmt_key(k: &Key) -> String {
    format!("{}:{}:{}", k.0, k.1, k.2)
}

fn current_thread() -> String {
    std::thread::current()
        .name()
        .unwrap_or("<unnamed>")
        .to_string()
}

/// DFS for a path `from ⇒* to` in the edge graph.
fn find_path(edges: &HashMap<Key, HashMap<Key, Witness>>, from: Key, to: Key) -> Option<Vec<Key>> {
    let mut stack = vec![vec![from]];
    let mut seen = std::collections::HashSet::new();
    seen.insert(from);
    while let Some(path) = stack.pop() {
        let last = *path.last().expect("path never empty");
        if last == to {
            return Some(path);
        }
        if let Some(next) = edges.get(&last) {
            for &n in next.keys() {
                if seen.insert(n) {
                    let mut p = path.clone();
                    p.push(n);
                    stack.push(p);
                }
            }
        }
    }
    None
}

/// Record edges `held → next` for every held class, then check for a
/// cycle. Called **before** blocking on the underlying lock, so a true
/// inversion panics instead of deadlocking. `try_*` acquisitions skip
/// this (they fail instead of deadlocking) and only push on success.
pub(crate) fn before_acquire(next: Label) {
    let held: Vec<Label> = match HELD.try_with(|h| h.borrow().clone()) {
        Ok(v) => v,
        Err(_) => return, // thread is being torn down
    };
    let nk = key(next);
    if held.iter().all(|h| key(h) == nk) {
        return; // nothing held, or only same-class (hierarchical) nesting
    }
    let held_fmt: Vec<String> = held.iter().map(|l| fmt_label(l)).collect();
    let mut g = graph().lock().unwrap_or_else(PoisonError::into_inner);
    let mut report: Option<String> = None;
    for &h in &held {
        let hk = key(h);
        if hk == nk {
            continue;
        }
        let known = g.edges.get(&hk).is_some_and(|m| m.contains_key(&nk));
        if known {
            continue;
        }
        g.edges.entry(hk).or_default().insert(
            nk,
            Witness {
                thread: current_thread(),
                held: held_fmt.clone(),
            },
        );
        // Does the reverse direction already exist (possibly transitively)?
        if let Some(path) = find_path(&g.edges, nk, hk) {
            report = Some(render_violation(&g, h, next, &held_fmt, &path));
            break;
        }
    }
    drop(g);
    if let Some(msg) = report {
        panic!("{msg}");
    }
}

fn render_violation(
    g: &Graph,
    held: Label,
    next: Label,
    held_fmt: &[String],
    path: &[Key],
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "lock-order violation (potential deadlock):");
    let _ = writeln!(
        out,
        "  thread '{}' is acquiring lock class {}",
        current_thread(),
        fmt_label(next)
    );
    let _ = writeln!(
        out,
        "  while holding {} (witness stack, outermost first):",
        fmt_label(held)
    );
    for l in held_fmt {
        let _ = writeln!(out, "    - {l}");
    }
    let _ = writeln!(
        out,
        "  which records the edge {} -> {}, but the reverse path is already known:",
        fmt_label(held),
        fmt_label(next)
    );
    for pair in path.windows(2) {
        let (from, to) = (pair[0], pair[1]);
        let _ = writeln!(out, "  edge {} -> {}:", fmt_key(&from), fmt_key(&to));
        if let Some(w) = g.edges.get(&from).and_then(|m| m.get(&to)) {
            let _ = writeln!(
                out,
                "    recorded by thread '{}' (witness stack, outermost first):",
                w.thread
            );
            for l in &w.held {
                let _ = writeln!(out, "      - {l}");
            }
        }
    }
    let _ = write!(
        out,
        "  fix: acquire these lock classes in one global order (see LOCKS.toml \
         in crates/pam-lint and ARCHITECTURE.md §11)"
    );
    out
}

/// The lock is now held: push its class onto this thread's stack.
pub(crate) fn acquired(l: Label) {
    let _ = HELD.try_with(|h| h.borrow_mut().push(l));
}

/// A guard dropped: pop the innermost occurrence of its class.
pub(crate) fn released(l: Label) {
    let lk = key(l);
    let _ = HELD.try_with(|h| {
        let mut v = h.borrow_mut();
        if let Some(pos) = v.iter().rposition(|x| key(x) == lk) {
            v.remove(pos);
        }
    });
}
