//! Offline shim for [parking_lot](https://docs.rs/parking_lot) (see
//! `crates/shims/README.md`): `Mutex` / `RwLock` / `Condvar` with the
//! parking_lot API (no poisoning, guards returned directly) implemented
//! over `std::sync`, plus the owned Arc guards from `lock_api` that the
//! B+-tree baseline uses for lock coupling.
//!
//! Unlike the real crate, every lock here is **instrumented for dynamic
//! lock-order checking** when `debug_assertions` is on (or the
//! `lock-order` feature is enabled): locks are grouped into classes by
//! creation site, and an acquisition that closes a cycle in the global
//! acquired-before graph panics with both witness stacks instead of
//! deadlocking. See [`order`] and ARCHITECTURE.md §11. Release builds
//! compile the hooks to no-ops; the only residue is one `&'static
//! Location` per lock.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{Arc, PoisonError};
use std::time::Duration;

#[cfg(any(debug_assertions, feature = "lock-order"))]
pub mod order;

#[cfg(any(debug_assertions, feature = "lock-order"))]
use order as hooks;

#[cfg(not(any(debug_assertions, feature = "lock-order")))]
mod hooks {
    #[inline(always)]
    pub(crate) fn before_acquire(_l: crate::Site) {}
    #[inline(always)]
    pub(crate) fn acquired(_l: crate::Site) {}
    #[inline(always)]
    pub(crate) fn released(_l: crate::Site) {}
}

/// A lock's class label: the source location of its `new()` call.
pub(crate) type Site = &'static std::panic::Location<'static>;

/// Marker standing in for parking_lot's raw lock type parameter.
pub struct RawRwLock;

/// A mutex that hands out its guard directly (panics in a critical
/// section simply release the lock; there is no poisoning).
pub struct Mutex<T: ?Sized> {
    site: Site,
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
///
/// `inner` is only `None` transiently while a [`Condvar`] wait has
/// temporarily surrendered the underlying std guard.
pub struct MutexGuard<'a, T: ?Sized> {
    site: Site,
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Create a new mutex. The caller's location becomes the lock's
    /// class label for the lock-order detector.
    #[track_caller]
    pub const fn new(t: T) -> Self {
        Mutex {
            site: std::panic::Location::caller(),
            inner: std::sync::Mutex::new(t),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking. Under the lock-order detector this
    /// records acquired-before edges (and panics on a cycle) *before*
    /// blocking, so a real inversion reports instead of deadlocking.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        hooks::before_acquire(self.site);
        let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        hooks::acquired(self.site);
        MutexGuard {
            site: self.site,
            inner: Some(inner),
        }
    }

    /// Try to acquire the lock without blocking. Never consulted by the
    /// cycle check (a failed try is not a deadlock), but a successful
    /// try still lands on the held stack.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let inner = match self.inner.try_lock() {
            Ok(g) => g,
            Err(std::sync::TryLockError::Poisoned(p)) => p.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => return None,
        };
        hooks::acquired(self.site);
        Some(MutexGuard {
            site: self.site,
            inner: Some(inner),
        })
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    #[track_caller]
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard holds the lock")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard holds the lock")
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        if self.inner.take().is_some() {
            hooks::released(self.site);
        }
    }
}

/// Condition variable with the parking_lot calling convention: `wait`
/// borrows the guard mutably instead of consuming it.
pub struct Condvar(std::sync::Condvar);

/// Result of [`Condvar::wait_timeout`].
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True if the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Block until notified. The lock is released while waiting, but the
    /// lock's class stays on this thread's held stack — the waiter
    /// acquires nothing else, so the detector's bookkeeping is
    /// conservative but sound.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard holds the lock");
        let inner = self.0.wait(inner).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(inner);
    }

    /// Block until notified or `dur` elapses.
    pub fn wait_timeout<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        dur: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard holds the lock");
        let (inner, res) = self
            .0
            .wait_timeout(inner, dur)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(inner);
        WaitTimeoutResult(res.timed_out())
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

/// A reader-writer lock with the parking_lot API.
pub struct RwLock<T: ?Sized> {
    site: Site,
    inner: std::sync::RwLock<T>,
}

/// RAII shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    site: Site,
    inner: Option<std::sync::RwLockReadGuard<'a, T>>,
}

/// RAII exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    site: Site,
    inner: Option<std::sync::RwLockWriteGuard<'a, T>>,
}

impl<T> RwLock<T> {
    /// Create a new lock. The caller's location becomes the lock's
    /// class label for the lock-order detector.
    #[track_caller]
    pub const fn new(t: T) -> Self {
        RwLock {
            site: std::panic::Location::caller(),
            inner: std::sync::RwLock::new(t),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an *owned* read guard through an `Arc` (the
    /// `lock_api::ArcRwLockReadGuard` of the real crate).
    pub fn read_arc(this: &Arc<Self>) -> lock_api::ArcRwLockReadGuard<RawRwLock, T> {
        lock_api::ArcRwLockReadGuard::lock(Arc::clone(this))
    }

    /// Acquire an *owned* write guard through an `Arc`.
    pub fn write_arc(this: &Arc<Self>) -> lock_api::ArcRwLockWriteGuard<RawRwLock, T> {
        lock_api::ArcRwLockWriteGuard::lock(Arc::clone(this))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock, blocking. Read and write sides share
    /// one lock class: the detector tracks ordering between *locks*, not
    /// reader/writer roles.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        hooks::before_acquire(self.site);
        let inner = self.inner.read().unwrap_or_else(PoisonError::into_inner);
        hooks::acquired(self.site);
        RwLockReadGuard {
            site: self.site,
            inner: Some(inner),
        }
    }

    /// Acquire an exclusive write lock, blocking.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        hooks::before_acquire(self.site);
        let inner = self.inner.write().unwrap_or_else(PoisonError::into_inner);
        hooks::acquired(self.site);
        RwLockWriteGuard {
            site: self.site,
            inner: Some(inner),
        }
    }

    /// Try to acquire a shared read lock without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        let inner = match self.inner.try_read() {
            Ok(g) => g,
            Err(std::sync::TryLockError::Poisoned(p)) => p.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => return None,
        };
        hooks::acquired(self.site);
        Some(RwLockReadGuard {
            site: self.site,
            inner: Some(inner),
        })
    }

    /// Try to acquire an exclusive write lock without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        let inner = match self.inner.try_write() {
            Ok(g) => g,
            Err(std::sync::TryLockError::Poisoned(p)) => p.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => return None,
        };
        hooks::acquired(self.site);
        Some(RwLockWriteGuard {
            site: self.site,
            inner: Some(inner),
        })
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    #[track_caller]
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard holds the lock")
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        if self.inner.take().is_some() {
            hooks::released(self.site);
        }
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard holds the lock")
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard holds the lock")
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        if self.inner.take().is_some() {
            hooks::released(self.site);
        }
    }
}

/// Owned (Arc-holding) guards, mirroring `parking_lot::lock_api`.
pub mod lock_api {
    use super::{hooks, RawRwLock, RwLock, Site};
    use std::marker::PhantomData;
    use std::ops::{Deref, DerefMut};
    use std::sync::{Arc, PoisonError};

    /// An owned read guard: keeps the `Arc<RwLock<T>>` alive while held.
    ///
    /// Field order matters: the borrow-erased guard must drop before the
    /// `Arc` that owns the lock it points into.
    pub struct ArcRwLockReadGuard<R, T: ?Sized + 'static> {
        site: Site,
        guard: Option<std::sync::RwLockReadGuard<'static, T>>,
        _lock: Arc<RwLock<T>>,
        _raw: PhantomData<R>,
    }

    /// An owned write guard: keeps the `Arc<RwLock<T>>` alive while held.
    pub struct ArcRwLockWriteGuard<R, T: ?Sized + 'static> {
        site: Site,
        guard: Option<std::sync::RwLockWriteGuard<'static, T>>,
        _lock: Arc<RwLock<T>>,
        _raw: PhantomData<R>,
    }

    impl<T: 'static> ArcRwLockReadGuard<RawRwLock, T> {
        pub(super) fn lock(lock: Arc<RwLock<T>>) -> Self {
            let site = lock.site;
            hooks::before_acquire(site);
            let short = lock.inner.read().unwrap_or_else(PoisonError::into_inner);
            hooks::acquired(site);
            // SAFETY: the guard points into the RwLock owned by `lock`,
            // which this struct keeps alive (and never moves: the RwLock
            // lives on the Arc's heap allocation) for as long as the
            // erased-lifetime guard exists; `guard` is dropped first.
            let guard = unsafe {
                std::mem::transmute::<
                    std::sync::RwLockReadGuard<'_, T>,
                    std::sync::RwLockReadGuard<'static, T>,
                >(short)
            };
            ArcRwLockReadGuard {
                site,
                guard: Some(guard),
                _lock: lock,
                _raw: PhantomData,
            }
        }
    }

    impl<T: 'static> ArcRwLockWriteGuard<RawRwLock, T> {
        pub(super) fn lock(lock: Arc<RwLock<T>>) -> Self {
            let site = lock.site;
            hooks::before_acquire(site);
            let short = lock.inner.write().unwrap_or_else(PoisonError::into_inner);
            hooks::acquired(site);
            // SAFETY: as for `ArcRwLockReadGuard::lock`.
            let guard = unsafe {
                std::mem::transmute::<
                    std::sync::RwLockWriteGuard<'_, T>,
                    std::sync::RwLockWriteGuard<'static, T>,
                >(short)
            };
            ArcRwLockWriteGuard {
                site,
                guard: Some(guard),
                _lock: lock,
                _raw: PhantomData,
            }
        }
    }

    impl<R, T: ?Sized + 'static> Deref for ArcRwLockReadGuard<R, T> {
        type Target = T;
        fn deref(&self) -> &T {
            self.guard.as_ref().expect("guard present until drop")
        }
    }

    impl<R, T: ?Sized + 'static> Deref for ArcRwLockWriteGuard<R, T> {
        type Target = T;
        fn deref(&self) -> &T {
            self.guard.as_ref().expect("guard present until drop")
        }
    }

    impl<R, T: ?Sized + 'static> DerefMut for ArcRwLockWriteGuard<R, T> {
        fn deref_mut(&mut self) -> &mut T {
            self.guard.as_mut().expect("guard present until drop")
        }
    }

    impl<R, T: ?Sized + 'static> Drop for ArcRwLockReadGuard<R, T> {
        fn drop(&mut self) {
            if self.guard.take().is_some() {
                hooks::released(self.site);
            }
        }
    }

    impl<R, T: ?Sized + 'static> Drop for ArcRwLockWriteGuard<R, T> {
        fn drop(&mut self) {
            if self.guard.take().is_some() {
                hooks::released(self.site);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
    }

    #[test]
    fn rwlock_many_readers() {
        let l = RwLock::new(7);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 14);
    }

    #[test]
    fn arc_guards_hold_the_lock() {
        let l = Arc::new(RwLock::new(1));
        let mut w = RwLock::write_arc(&l);
        *w = 2;
        assert!(
            l.inner.try_read().is_err(),
            "write guard must exclude readers"
        );
        drop(w);
        let r1 = RwLock::read_arc(&l);
        let r2 = RwLock::read_arc(&l);
        assert_eq!(*r1 + *r2, 4);
    }

    #[test]
    fn arc_guard_outlives_original_handle() {
        let l = Arc::new(RwLock::new(String::from("alive")));
        let r = RwLock::read_arc(&l);
        drop(l);
        assert_eq!(&*r, "alive");
    }

    #[test]
    fn condvar_wait_timeout_and_notify() {
        let m = Arc::new(Mutex::new(false));
        let cv = Arc::new(Condvar::new());
        let mut g = m.lock();
        let res = cv.wait_timeout(&mut g, Duration::from_millis(5));
        assert!(res.timed_out());
        assert!(!*g);
        drop(g);

        let (m2, cv2) = (Arc::clone(&m), Arc::clone(&cv));
        let t = std::thread::spawn(move || {
            *m2.lock() = true;
            cv2.notify_all();
        });
        let mut g = m.lock();
        while !*g {
            let res = cv.wait_timeout(&mut g, Duration::from_millis(50));
            if res.timed_out() {
                // Writer may not have run yet on a 1-core box; keep waiting.
                continue;
            }
        }
        assert!(*g);
        drop(g);
        t.join().expect("notifier thread");
    }

    /// Consistent nesting in one direction must not trip the detector.
    #[test]
    fn consistent_lock_order_is_clean() {
        let outer = Mutex::new(0u32);
        let inner = Mutex::new(0u32);
        for _ in 0..3 {
            let _o = outer.lock();
            let _i = inner.lock();
        }
    }

    /// The acceptance-criterion test: an intentionally inverted lock
    /// acquisition is caught by the dynamic detector, and the panic
    /// message carries **both** witness stacks (the current thread's and
    /// the recorded first witness of the contradicting edge).
    #[cfg(any(debug_assertions, feature = "lock-order"))]
    #[test]
    fn lock_order_inversion_panics_with_both_witness_stacks() {
        let a = Mutex::new(0u32);
        let b = Mutex::new(0u32);
        {
            let _ga = a.lock();
            let _gb = b.lock(); // records the edge a -> b
        }
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _gb = b.lock();
            let _ga = a.lock(); // b -> a closes the cycle: must panic
        }));
        let err = res.expect_err("inverted acquisition must panic");
        let msg = err
            .downcast_ref::<String>()
            .expect("detector panics with a String payload")
            .clone();
        assert!(msg.contains("lock-order violation"), "message was: {msg}");
        assert!(
            msg.matches("witness stack").count() >= 2,
            "expected both witness stacks in: {msg}"
        );
        // Both lock classes are named by creation site in this file.
        assert!(msg.contains("lib.rs"), "message was: {msg}");
    }

    /// Same-class nesting (lock coupling, per-shard arrays) is exempt.
    #[cfg(any(debug_assertions, feature = "lock-order"))]
    #[test]
    fn same_class_nesting_is_exempt() {
        let locks: Vec<Mutex<u32>> = (0..2).map(Mutex::new).collect();
        let _a = locks[0].lock();
        let _b = locks[1].lock();
        // Reverse order on a later iteration: still one class, no panic.
        drop(_b);
        drop(_a);
        let _b = locks[1].lock();
        let _a = locks[0].lock();
    }
}
