//! Offline shim for [parking_lot](https://docs.rs/parking_lot) (see
//! `crates/shims/README.md`): `Mutex` / `RwLock` with the parking_lot API
//! (no poisoning, guards returned directly) implemented over `std::sync`,
//! plus the owned Arc guards from `lock_api` that the B+-tree baseline
//! uses for lock coupling.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{Arc, PoisonError};

/// Marker standing in for parking_lot's raw lock type parameter.
pub struct RawRwLock;

/// A mutex that hands out its guard directly (panics in a critical
/// section simply release the lock; there is no poisoning).
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized>(std::sync::MutexGuard<'a, T>);

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(t: T) -> Self {
        Mutex(std::sync::Mutex::new(t))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(PoisonError::into_inner))
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard(p.into_inner())),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// A reader-writer lock with the parking_lot API.
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// RAII shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

/// RAII exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Create a new lock.
    pub const fn new(t: T) -> Self {
        RwLock(std::sync::RwLock::new(t))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an *owned* read guard through an `Arc` (the
    /// `lock_api::ArcRwLockReadGuard` of the real crate).
    pub fn read_arc(this: &Arc<Self>) -> lock_api::ArcRwLockReadGuard<RawRwLock, T> {
        lock_api::ArcRwLockReadGuard::lock(Arc::clone(this))
    }

    /// Acquire an *owned* write guard through an `Arc`.
    pub fn write_arc(this: &Arc<Self>) -> lock_api::ArcRwLockWriteGuard<RawRwLock, T> {
        lock_api::ArcRwLockWriteGuard::lock(Arc::clone(this))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock, blocking.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// Acquire an exclusive write lock, blocking.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(PoisonError::into_inner))
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// Owned (Arc-holding) guards, mirroring `parking_lot::lock_api`.
pub mod lock_api {
    use super::{RawRwLock, RwLock};
    use std::marker::PhantomData;
    use std::ops::{Deref, DerefMut};
    use std::sync::{Arc, PoisonError};

    /// An owned read guard: keeps the `Arc<RwLock<T>>` alive while held.
    ///
    /// Field order matters: the borrow-erased guard must drop before the
    /// `Arc` that owns the lock it points into.
    pub struct ArcRwLockReadGuard<R, T: ?Sized + 'static> {
        guard: Option<std::sync::RwLockReadGuard<'static, T>>,
        _lock: Arc<RwLock<T>>,
        _raw: PhantomData<R>,
    }

    /// An owned write guard: keeps the `Arc<RwLock<T>>` alive while held.
    pub struct ArcRwLockWriteGuard<R, T: ?Sized + 'static> {
        guard: Option<std::sync::RwLockWriteGuard<'static, T>>,
        _lock: Arc<RwLock<T>>,
        _raw: PhantomData<R>,
    }

    impl<T: 'static> ArcRwLockReadGuard<RawRwLock, T> {
        pub(super) fn lock(lock: Arc<RwLock<T>>) -> Self {
            let short = lock.0.read().unwrap_or_else(PoisonError::into_inner);
            // SAFETY: the guard points into the RwLock owned by `lock`,
            // which this struct keeps alive (and never moves: the RwLock
            // lives on the Arc's heap allocation) for as long as the
            // erased-lifetime guard exists; `guard` is dropped first.
            let guard = unsafe {
                std::mem::transmute::<
                    std::sync::RwLockReadGuard<'_, T>,
                    std::sync::RwLockReadGuard<'static, T>,
                >(short)
            };
            ArcRwLockReadGuard {
                guard: Some(guard),
                _lock: lock,
                _raw: PhantomData,
            }
        }
    }

    impl<T: 'static> ArcRwLockWriteGuard<RawRwLock, T> {
        pub(super) fn lock(lock: Arc<RwLock<T>>) -> Self {
            let short = lock.0.write().unwrap_or_else(PoisonError::into_inner);
            // SAFETY: as for `ArcRwLockReadGuard::lock`.
            let guard = unsafe {
                std::mem::transmute::<
                    std::sync::RwLockWriteGuard<'_, T>,
                    std::sync::RwLockWriteGuard<'static, T>,
                >(short)
            };
            ArcRwLockWriteGuard {
                guard: Some(guard),
                _lock: lock,
                _raw: PhantomData,
            }
        }
    }

    impl<R, T: ?Sized + 'static> Deref for ArcRwLockReadGuard<R, T> {
        type Target = T;
        fn deref(&self) -> &T {
            self.guard.as_ref().expect("guard present until drop")
        }
    }

    impl<R, T: ?Sized + 'static> Deref for ArcRwLockWriteGuard<R, T> {
        type Target = T;
        fn deref(&self) -> &T {
            self.guard.as_ref().expect("guard present until drop")
        }
    }

    impl<R, T: ?Sized + 'static> DerefMut for ArcRwLockWriteGuard<R, T> {
        fn deref_mut(&mut self) -> &mut T {
            self.guard.as_mut().expect("guard present until drop")
        }
    }

    impl<R, T: ?Sized + 'static> Drop for ArcRwLockReadGuard<R, T> {
        fn drop(&mut self) {
            self.guard.take();
        }
    }

    impl<R, T: ?Sized + 'static> Drop for ArcRwLockWriteGuard<R, T> {
        fn drop(&mut self) {
            self.guard.take();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
    }

    #[test]
    fn rwlock_many_readers() {
        let l = RwLock::new(7);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 14);
    }

    #[test]
    fn arc_guards_hold_the_lock() {
        let l = Arc::new(RwLock::new(1));
        let mut w = RwLock::write_arc(&l);
        *w = 2;
        assert!(l.0.try_read().is_err(), "write guard must exclude readers");
        drop(w);
        let r1 = RwLock::read_arc(&l);
        let r2 = RwLock::read_arc(&l);
        assert_eq!(*r1 + *r2, 4);
    }

    #[test]
    fn arc_guard_outlives_original_handle() {
        let l = Arc::new(RwLock::new(String::from("alive")));
        let r = RwLock::read_arc(&l);
        drop(l);
        assert_eq!(&*r, "alive");
    }
}
