//! `pam-obs` — zero-dependency observability for the PAM store stack.
//!
//! Three pieces, each usable on its own:
//!
//! * [`hist`] — lock-free **log-bucketed latency histograms**
//!   ([`Histogram`] / [`HistogramSnapshot`]): wait-free recording from
//!   any number of threads, snapshot-on-demand, percentiles
//!   (p50/p90/p99/p999) within ~6.25% relative error, and bucket-wise
//!   [`HistogramSnapshot::merge`] so per-shard histograms fold into one
//!   store-wide view.
//! * [`metrics`] — a [`MetricsRegistry`] of named counters, gauges, and
//!   histograms with **Prometheus-text** and **JSON** exposition. Hot
//!   paths keep their recorders embedded in their own structs; the
//!   registry is the exposition surface they export into.
//! * [`trace`] — a minimal tracing facade: [`event!`] and [`span!`]
//!   macros behind one relaxed-atomic level gate, a pluggable
//!   [`Subscriber`], and a default subscriber combining a ring buffer
//!   of recent events (level via `PAM_LOG_RING`) with a
//!   `PAM_LOG`-filtered stderr writer.
//! * [`server`] — a **live telemetry endpoint**: a hand-rolled HTTP/1.0
//!   listener ([`ObsServer`]) serving `/metrics`, `/metrics.json`,
//!   `/events`, `/health`, and `/trace` from a [`TelemetrySource`].
//! * [`flight`] — the **epoch flight recorder**: a fixed ring of
//!   per-epoch stage timelines ([`EpochTrace`]) plus crash dumps
//!   (`flight-<pid>.json`) into registered WAL directories on poison or
//!   panic.
//! * [`chrome`] — renders the flight ring as Chrome trace-event JSON
//!   ([`chrome_trace`]) for `chrome://tracing` / Perfetto.
//! * [`json`] — the zero-dependency JSON reader the tests and CI checks
//!   validate all of the above with.
//!
//! Everything is hand-rolled (no registry access in this workspace, by
//! design — see the `crates/shims` pattern) and cheap enough to stay
//! compiled into release builds.

#![warn(missing_docs)]

pub mod chrome;
pub mod flight;
pub mod hist;
pub mod json;
pub mod metrics;
pub mod server;
pub mod trace;

pub use chrome::chrome_trace;
pub use flight::{EpochTrace, FlightRecorder};
pub use hist::{Histogram, HistogramSnapshot};
pub use metrics::{Counter, Gauge, MetricsRegistry};
pub use server::{Health, ObsServer, TelemetrySource};
pub use trace::{recent_events, set_subscriber, Level, Span, Subscriber};
