//! `pam-obs` — zero-dependency observability for the PAM store stack.
//!
//! Three pieces, each usable on its own:
//!
//! * [`hist`] — lock-free **log-bucketed latency histograms**
//!   ([`Histogram`] / [`HistogramSnapshot`]): wait-free recording from
//!   any number of threads, snapshot-on-demand, percentiles
//!   (p50/p90/p99/p999) within ~6.25% relative error, and bucket-wise
//!   [`HistogramSnapshot::merge`] so per-shard histograms fold into one
//!   store-wide view.
//! * [`metrics`] — a [`MetricsRegistry`] of named counters, gauges, and
//!   histograms with **Prometheus-text** and **JSON** exposition. Hot
//!   paths keep their recorders embedded in their own structs; the
//!   registry is the exposition surface they export into.
//! * [`trace`] — a minimal tracing facade: [`event!`] and [`span!`]
//!   macros behind one relaxed-atomic level gate, a pluggable
//!   [`Subscriber`], and a default subscriber combining a ring buffer
//!   of recent events with a `PAM_LOG`-filtered stderr writer.
//!
//! Everything is hand-rolled (no registry access in this workspace, by
//! design — see the `crates/shims` pattern) and cheap enough to stay
//! compiled into release builds.

#![warn(missing_docs)]

pub mod hist;
pub mod metrics;
pub mod trace;

pub use hist::{Histogram, HistogramSnapshot};
pub use metrics::{Counter, Gauge, MetricsRegistry};
pub use trace::{recent_events, set_subscriber, Level, Span, Subscriber};
