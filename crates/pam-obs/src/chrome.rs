//! Chrome trace-event export of the epoch flight recorder.
//!
//! [`chrome_trace`] renders a set of [`EpochTrace`]s as the JSON object
//! format of the [Trace Event spec] — loadable in `chrome://tracing`
//! and [Perfetto](https://ui.perfetto.dev). The mapping:
//!
//! * one **track (tid)** per shard, named `shard-<i>` via thread-name
//!   metadata events;
//! * per epoch, a `window` slice (segment open → committer drain: the
//!   group-commit window occupancy) followed by an enclosing
//!   `epoch <n>` slice whose children are the four committer stages —
//!   `normalize`, `wal_log`, `apply`, `publish` — laid back to back, so
//!   nesting falls out of timestamp containment;
//! * batch sizes and the cross-shard stamp ride in `args`.
//!
//! All slices are complete (`"ph": "X"`) events; timestamps are
//! microseconds since the process [`crate::flight::anchor`] with
//! nanosecond precision kept in the fraction.
//!
//! [Trace Event spec]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use crate::flight::EpochTrace;

/// Microseconds with the nanosecond remainder as the fraction.
fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

fn complete_event(name: &str, tid: u32, ts_ns: u64, dur_ns: u64, args: &str) -> String {
    format!(
        "{{\"name\": \"{name}\", \"ph\": \"X\", \"pid\": {pid}, \"tid\": {tid}, \
         \"ts\": {ts}, \"dur\": {dur}{args}}}",
        pid = std::process::id(),
        ts = us(ts_ns),
        dur = us(dur_ns),
        args = if args.is_empty() {
            String::new()
        } else {
            format!(", \"args\": {{{args}}}")
        },
    )
}

/// Render `traces` as one Chrome trace-event JSON document (the
/// `{"traceEvents": [...]}` object form).
pub fn chrome_trace(traces: &[EpochTrace]) -> String {
    let mut events = Vec::with_capacity(traces.len() * 6 + 8);
    // Thread-name metadata: one per distinct shard, emitted in tid order
    // so Perfetto's track list is stable.
    let mut shards: Vec<u32> = traces.iter().map(|t| t.shard).collect();
    shards.sort_unstable();
    shards.dedup();
    for shard in &shards {
        events.push(format!(
            "{{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": {}, \"tid\": {shard}, \
             \"args\": {{\"name\": \"shard-{shard}\"}}}}",
            std::process::id(),
        ));
    }
    for t in traces {
        let base_args = format!(
            "\"epoch\": {}, \"raw_ops\": {}, \"applied_ops\": {}, \"global_epoch\": {}",
            t.epoch,
            t.raw_ops,
            t.applied_ops,
            match t.global_epoch {
                Some(g) => g.to_string(),
                None => "null".to_string(),
            },
        );
        // The group-commit window: segment open → drained by the
        // committer. Clamped defensively — a trace recorded before the
        // anchor settled could invert the pair.
        if t.drain_ns >= t.open_ns {
            events.push(complete_event(
                "window",
                t.shard,
                t.open_ns,
                t.drain_ns - t.open_ns,
                &base_args,
            ));
        }
        // Enclosing epoch slice, then the four stages tiled inside it.
        let commit_dur = t.normalize_ns + t.wal_log_ns + t.apply_ns + t.publish_ns;
        events.push(complete_event(
            &format!("epoch {}", t.epoch),
            t.shard,
            t.drain_ns,
            commit_dur,
            &base_args,
        ));
        let mut at = t.drain_ns;
        for (stage, dur) in [
            ("normalize", t.normalize_ns),
            ("wal_log", t.wal_log_ns),
            ("apply", t.apply_ns),
            ("publish", t.publish_ns),
        ] {
            events.push(complete_event(stage, t.shard, at, dur, &base_args));
            at += dur;
        }
    }
    format!(
        "{{\"traceEvents\": [{}], \"displayTimeUnit\": \"ms\"}}",
        events.join(",\n")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;

    fn trace(shard: u32, epoch: u64) -> EpochTrace {
        EpochTrace {
            shard,
            epoch,
            global_epoch: epoch.is_multiple_of(2).then_some(epoch * 10),
            raw_ops: 100,
            applied_ops: 90,
            open_ns: 1_000 * epoch,
            drain_ns: 1_000 * epoch + 500,
            normalize_ns: 100,
            wal_log_ns: 200,
            apply_ns: 300,
            publish_ns: 50,
        }
    }

    #[test]
    fn export_parses_and_has_one_timeline_per_epoch() {
        let traces: Vec<EpochTrace> = (1..=4u64)
            .flat_map(|e| (0..4u32).map(move |s| trace(s, e)))
            .collect();
        let doc = chrome_trace(&traces);
        let v = Json::parse(&doc).expect("trace JSON parses");
        let events = v.get("traceEvents").unwrap().as_arr().unwrap();
        // 4 metadata + 16 epochs × (window + epoch + 4 stages)
        assert_eq!(events.len(), 4 + 16 * 6);
        for ev in events {
            for key in ["name", "ph", "pid", "tid"] {
                assert!(ev.get(key).is_some(), "event missing {key}: {ev:?}");
            }
            if ev.get("ph").unwrap().as_str() == Some("X") {
                assert!(ev.get("ts").unwrap().as_f64().is_some());
                assert!(ev.get("dur").unwrap().as_f64().is_some());
            }
        }
        // one track per shard
        let mut tids: Vec<f64> = events
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("X"))
            .map(|e| e.get("tid").unwrap().as_f64().unwrap())
            .collect();
        tids.sort_by(f64::total_cmp);
        tids.dedup();
        assert_eq!(tids, vec![0.0, 1.0, 2.0, 3.0]);
        // each epoch has all four stages on each shard
        for stage in ["normalize", "wal_log", "apply", "publish"] {
            let n = events
                .iter()
                .filter(|e| e.get("name").unwrap().as_str() == Some(stage))
                .count();
            assert_eq!(n, 16, "{stage} slices");
        }
        // stages tile: normalize starts at the drain timestamp
        let norm = events
            .iter()
            .find(|e| {
                e.get("name").unwrap().as_str() == Some("normalize")
                    && e.get("tid").unwrap().as_f64() == Some(0.0)
                    && e.get("args").unwrap().get("epoch").unwrap().as_f64() == Some(1.0)
            })
            .unwrap();
        assert_eq!(norm.get("ts").unwrap().as_f64(), Some(1.5)); // 1500 ns
        assert_eq!(norm.get("dur").unwrap().as_f64(), Some(0.1)); // 100 ns
    }

    #[test]
    fn empty_ring_renders_an_empty_but_valid_document() {
        let v = Json::parse(&chrome_trace(&[])).unwrap();
        assert_eq!(v.get("traceEvents").unwrap().as_arr().unwrap().len(), 0);
    }
}
