//! Lock-free log-bucketed latency histograms.
//!
//! The bucket layout is the classic log-linear scheme (HdrHistogram,
//! Prometheus native histograms): values below 16 get one bucket each
//! (exact), and every power-of-two octave above that is split into 16
//! linear sub-buckets. A bucket's width is therefore at most 1/16 of its
//! lower bound, so any reconstructed statistic (percentiles, in
//! particular) carries **at most ~6.25% relative error** while the whole
//! `u64` range fits in [`NUM_BUCKETS`] = 976 counters.
//!
//! [`Histogram`] is the hot-path recorder: one relaxed `fetch_add` on the
//! bucket plus count/sum/max updates — safe to hammer from any number of
//! threads with no locks and no false sharing beyond the array itself.
//! [`HistogramSnapshot`] is the cold-path view: taken on demand, cheap to
//! clone, mergeable across shards (bucket-wise addition), and the thing
//! percentiles are computed from.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Sub-bucket resolution: each power-of-two octave splits into
/// `2^SUB_BITS` = 16 linear buckets.
const SUB_BITS: u32 = 4;
/// Buckets per octave (and the threshold below which values are exact).
const SUB_COUNT: usize = 1 << SUB_BITS;

/// Total bucket count covering the whole `u64` range: 16 exact buckets
/// for values `0..16`, then 16 per octave for the 60 octaves above.
pub const NUM_BUCKETS: usize = SUB_COUNT + (64 - SUB_BITS as usize) * SUB_COUNT;

/// The bucket index `value` lands in (total order preserving).
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value < SUB_COUNT as u64 {
        value as usize
    } else {
        let exp = 63 - value.leading_zeros() as usize; // >= SUB_BITS
        let sub = ((value >> (exp - SUB_BITS as usize)) & (SUB_COUNT as u64 - 1)) as usize;
        (exp - SUB_BITS as usize + 1) * SUB_COUNT + sub
    }
}

/// The inclusive `(lo, hi)` value range of bucket `index`.
///
/// # Panics
///
/// If `index >= NUM_BUCKETS`.
#[inline]
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    assert!(index < NUM_BUCKETS, "bucket index out of range");
    if index < SUB_COUNT {
        (index as u64, index as u64)
    } else {
        let exp = index / SUB_COUNT - 1 + SUB_BITS as usize;
        let sub = (index % SUB_COUNT) as u64;
        let width = 1u64 << (exp - SUB_BITS as usize);
        let lo = (SUB_COUNT as u64 + sub) * width;
        (lo, lo + (width - 1)) // hi of the last bucket is exactly u64::MAX
    }
}

/// A bucket's representative value: its midpoint (the estimate
/// percentile queries report for ranks that land in it).
#[inline]
fn bucket_mid(index: usize) -> u64 {
    let (lo, hi) = bucket_bounds(index);
    lo + (hi - lo) / 2
}

/// A lock-free log-bucketed histogram of `u64` values (by convention:
/// nanoseconds).
///
/// Recording is wait-free (relaxed atomics); reading goes through
/// [`Histogram::snapshot`]. A snapshot taken while recorders are active
/// is *per-field* consistent (each counter is read once) — good enough
/// for monitoring, which is the point.
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Histogram {
    /// An empty histogram (allocates the 976-bucket array).
    pub fn new() -> Self {
        Histogram {
            buckets: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Record one value.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Record a duration as nanoseconds (saturating at `u64::MAX`).
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Values recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy suitable for percentiles and merging.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        while buckets.last() == Some(&0) {
            buckets.pop();
        }
        HistogramSnapshot {
            buckets,
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Histogram({:?})", self.snapshot())
    }
}

/// A frozen copy of a [`Histogram`]: mergeable, cloneable, and the input
/// to percentile queries. Trailing empty buckets are trimmed, so an
/// all-zero histogram is a few dozen bytes, not 8 KiB.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl HistogramSnapshot {
    /// Values recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded values (exact, not reconstructed).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded value (exact, not reconstructed).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Were any values recorded?
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact mean of the recorded values (0 when empty).
    pub fn mean(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            ((self.sum as u128) / (self.count as u128)) as u64
        }
    }

    /// The value at quantile `q` in `[0, 1]`: the bucket midpoint at that
    /// rank, clamped to the exact observed maximum — so the estimate is
    /// within one bucket's width (≤ ~6.25% relative error) of the true
    /// order statistic. Returns 0 for an empty histogram; `q` outside
    /// `[0, 1]` clamps.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            cum += n;
            if cum >= rank {
                return bucket_mid(i).min(self.max);
            }
        }
        self.max // unreachable unless counters raced; max is always safe
    }

    /// Median (see [`Self::quantile`]).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// Fold `other` into `self` (bucket-wise addition). Merging is
    /// commutative and associative, so per-shard snapshots can be folded
    /// in any order into one store-wide view.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if other.buckets.len() > self.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        // the recorder's fetch_add wraps on overflow, so merging wraps
        // identically rather than panicking in debug builds
        self.sum = self.sum.wrapping_add(other.sum);
        self.max = self.max.max(other.max);
    }
}

impl std::fmt::Debug for HistogramSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{{n={} mean={} p50={} p99={} p999={} max={}}}",
            self.count,
            self.mean(),
            self.p50(),
            self.p99(),
            self.p999(),
            self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout_is_total_and_ordered() {
        // every bucket's bounds invert its index, and bounds tile the
        // u64 range contiguously
        let mut expected_lo = 0u64;
        for i in 0..NUM_BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(
                lo,
                expected_lo,
                "bucket {i} must start where {} ended",
                i - 1
            );
            assert_eq!(bucket_index(lo), i);
            assert_eq!(bucket_index(hi), i);
            expected_lo = hi.wrapping_add(1);
        }
        assert_eq!(expected_lo, 0, "last bucket must end at u64::MAX");
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn bucket_relative_error_is_bounded() {
        for i in SUB_COUNT..NUM_BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            let width = hi - lo + 1;
            assert!(width <= lo / 16, "bucket {i}: width {width} vs lo {lo}");
        }
    }

    #[test]
    fn small_values_are_exact() {
        let h = Histogram::new();
        for v in 0..16u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 16);
        assert_eq!(s.sum(), (0..16).sum::<u64>());
        assert_eq!(s.max(), 15);
        assert_eq!(s.quantile(0.0), 0);
        assert_eq!(s.quantile(1.0), 15);
    }

    #[test]
    fn quantiles_track_a_known_distribution() {
        let h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        for (q, exact) in [(0.5, 5_000u64), (0.9, 9_000), (0.99, 9_900), (0.999, 9_990)] {
            let est = s.quantile(q);
            let err = est.abs_diff(exact);
            assert!(
                err as f64 <= exact as f64 / 16.0 + 1.0,
                "q={q}: est {est} vs exact {exact}"
            );
        }
        assert_eq!(s.max(), 10_000);
        assert_eq!(s.mean(), (1..=10_000u64).sum::<u64>() / 10_000);
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let s = Histogram::new().snapshot();
        assert!(s.is_empty());
        assert_eq!(s.p50(), 0);
        assert_eq!(s.p999(), 0);
        assert_eq!(s.max(), 0);
        assert_eq!(s.mean(), 0);
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let (a, b, all) = (Histogram::new(), Histogram::new(), Histogram::new());
        for v in 0..1000u64 {
            let v = v * v % 7919;
            if v % 2 == 0 {
                a.record(v)
            } else {
                b.record(v)
            }
            all.record(v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, all.snapshot());
    }

    #[test]
    fn record_duration_saturates() {
        let h = Histogram::new();
        h.record_duration(Duration::from_nanos(1500));
        h.record_duration(Duration::MAX);
        let s = h.snapshot();
        assert_eq!(s.count(), 2);
        assert_eq!(s.max(), u64::MAX);
    }
}
