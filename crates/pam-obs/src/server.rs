//! The live telemetry server: a hand-rolled, zero-dependency HTTP/1.0
//! endpoint over [`std::net::TcpListener`].
//!
//! A store is only observable in production if it can be scraped *while
//! it runs*; this module turns the pull-at-exit surfaces (metrics
//! registry, event ring, flight recorder) into live endpoints:
//!
//! | Endpoint        | Body                                              |
//! |-----------------|---------------------------------------------------|
//! | `/metrics`      | Prometheus text exposition of the global registry |
//! | `/metrics.json` | The same registry as JSON                         |
//! | `/events`       | The subscriber's recent-event ring as JSON        |
//! | `/health`       | `healthy` / `degraded` / `poisoned` (+ reason); HTTP 503 when poisoned |
//! | `/trace`        | The epoch flight ring as Chrome trace-event JSON  |
//!
//! The shape is deliberate: a **threaded accept loop** (one acceptor
//! thread, one short-lived thread per connection) — the same pattern the
//! future `pam-serve` front end will use, built only on `std::net`
//! because the workspace has no registry access. Telemetry traffic is a
//! handful of scrapes per second, so thread-per-connection is the right
//! amount of machinery.
//!
//! The server pulls store state through a [`TelemetrySource`]: an
//! `export` closure that refreshes the global [`MetricsRegistry`] on
//! each scrape (the store stack keeps hot-path recorders in its own
//! structs and exports on demand — see `StoreStats::export_into`) and a
//! `health` closure threaded out of the pipeline's fail-stop path.

use crate::chrome::chrome_trace;
use crate::flight::{anchor, FlightRecorder};
use crate::json::escape;
use crate::metrics::MetricsRegistry;
use crate::trace::recent_events;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A store's liveness verdict, served at `/health`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Health {
    /// Serving normally.
    Healthy,
    /// Serving, but something non-fatal is wrong (e.g. the background
    /// checkpointer keeps failing): scrape-visible before it escalates.
    Degraded(String),
    /// The store fail-stopped: a commit hook (WAL) failure poisoned the
    /// pipeline. The string is the original error, preserved verbatim.
    Poisoned(String),
}

impl Health {
    /// The status word (`healthy` / `degraded` / `poisoned`).
    pub fn status(&self) -> &'static str {
        match self {
            Health::Healthy => "healthy",
            Health::Degraded(_) => "degraded",
            Health::Poisoned(_) => "poisoned",
        }
    }

    /// The reason, when not healthy.
    pub fn reason(&self) -> Option<&str> {
        match self {
            Health::Healthy => None,
            Health::Degraded(r) | Health::Poisoned(r) => Some(r),
        }
    }

    /// `{"status": "...", "reason": ...}` — the `/health` body.
    pub fn to_json(&self) -> String {
        match self.reason() {
            Some(r) => format!(
                "{{\"status\": \"{}\", \"reason\": \"{}\"}}",
                self.status(),
                escape(r)
            ),
            None => format!("{{\"status\": \"{}\", \"reason\": null}}", self.status()),
        }
    }

    /// The worse of two verdicts (poisoned > degraded > healthy); the
    /// sharded layer folds per-shard health with this.
    pub fn worse(self, other: Health) -> Health {
        fn rank(h: &Health) -> u8 {
            match h {
                Health::Healthy => 0,
                Health::Degraded(_) => 1,
                Health::Poisoned(_) => 2,
            }
        }
        if rank(&other) > rank(&self) {
            other
        } else {
            self
        }
    }
}

/// What the server scrapes: both closures are called per request, on the
/// connection's thread.
pub struct TelemetrySource {
    /// Refresh the registry with current store state (called with
    /// [`MetricsRegistry::global`] before `/metrics` renders).
    pub export: Box<dyn Fn(&MetricsRegistry) + Send + Sync>,
    /// Current liveness verdict (called by `/health`).
    pub health: Box<dyn Fn() -> Health + Send + Sync>,
}

impl TelemetrySource {
    /// A source that exports nothing and always reports healthy — for
    /// processes that only populate the global registry directly.
    pub fn empty() -> Self {
        TelemetrySource {
            export: Box::new(|_| {}),
            health: Box::new(|| Health::Healthy),
        }
    }
}

/// The live telemetry endpoint. Binding spawns the acceptor thread;
/// dropping shuts it down and waits (bounded) for in-flight responses.
pub struct ObsServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    requests: Arc<AtomicU64>,
    active: Arc<AtomicUsize>,
    acceptor: Option<std::thread::JoinHandle<()>>,
}

impl ObsServer {
    /// Bind `addr` (e.g. `"127.0.0.1:9184"`; port 0 picks a free port —
    /// read it back with [`Self::local_addr`]) and start serving.
    ///
    /// # Errors
    ///
    /// Address resolution / bind errors pass through.
    pub fn bind(addr: impl ToSocketAddrs, source: TelemetrySource) -> io::Result<ObsServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        // Settle the flight anchor before any trace timestamps are taken
        // relative to it (see `flight::anchor`).
        let _ = anchor();
        let shutdown = Arc::new(AtomicBool::new(false));
        let requests = Arc::new(AtomicU64::new(0));
        let active = Arc::new(AtomicUsize::new(0));
        let source = Arc::new(source);
        let (sd, rq, ac) = (shutdown.clone(), requests.clone(), active.clone());
        let acceptor = std::thread::Builder::new()
            .name("pam-obs-server".into())
            .spawn(move || loop {
                let (stream, _) = match listener.accept() {
                    Ok(conn) => conn,
                    Err(_) if sd.load(Ordering::Acquire) => return,
                    Err(_) => continue,
                };
                if sd.load(Ordering::Acquire) {
                    return; // the Drop wake-up connection
                }
                let (source, rq) = (source.clone(), rq.clone());
                let conn_ac = ac.clone();
                ac.fetch_add(1, Ordering::AcqRel);
                let spawned = std::thread::Builder::new()
                    .name("pam-obs-conn".into())
                    .spawn(move || {
                        handle_connection(stream, &source, &rq);
                        conn_ac.fetch_sub(1, Ordering::AcqRel);
                    });
                if let Err(e) = spawned {
                    ac.fetch_sub(1, Ordering::AcqRel);
                    eprintln!("pam-obs: failed to spawn connection thread: {e}");
                }
            })
            .expect("spawn pam-obs-server thread");
        Ok(ObsServer {
            addr,
            shutdown,
            requests,
            active,
            acceptor: Some(acceptor),
        })
    }

    /// The address actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests served so far (any endpoint, including 404s). Lets a
    /// benchmark linger until its metrics have been scraped at least
    /// once.
    pub fn request_count(&self) -> u64 {
        self.requests.load(Ordering::Acquire)
    }
}

impl Drop for ObsServer {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        // Unblock the acceptor with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        // Connection threads hold clones of the telemetry source (which
        // may capture store handles): give in-flight responses a bounded
        // window to finish so the source drops before the caller's store
        // teardown proceeds.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while self.active.load(Ordering::Acquire) > 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
    }
}

impl std::fmt::Debug for ObsServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ObsServer({})", self.addr)
    }
}

fn handle_connection(mut stream: TcpStream, source: &TelemetrySource, requests: &AtomicU64) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
    // Read until the end of the request head (we ignore bodies: every
    // endpoint is a GET), capped so a misbehaving client cannot balloon
    // memory.
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 1024];
    while !buf.windows(4).any(|w| w == b"\r\n\r\n") {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(_) => return,
        }
        if buf.len() > 16 * 1024 {
            respond(
                &mut stream,
                431,
                "Request Header Fields Too Large",
                "text/plain",
                "",
            );
            return;
        }
    }
    let head = String::from_utf8_lossy(&buf);
    let mut parts = head.lines().next().unwrap_or_default().split_whitespace();
    let (method, target) = match (parts.next(), parts.next()) {
        (Some(m), Some(t)) => (m, t),
        _ => return, // not even a request line; drop silently
    };
    requests.fetch_add(1, Ordering::AcqRel);
    if method != "GET" {
        respond(
            &mut stream,
            405,
            "Method Not Allowed",
            "text/plain",
            "GET only\n",
        );
        return;
    }
    let path = target.split('?').next().unwrap_or(target);
    match path {
        "/metrics" => {
            let registry = MetricsRegistry::global();
            (source.export)(registry);
            respond(
                &mut stream,
                200,
                "OK",
                "text/plain; version=0.0.4",
                &registry.render_prometheus(),
            );
        }
        "/metrics.json" => {
            let registry = MetricsRegistry::global();
            (source.export)(registry);
            respond(
                &mut stream,
                200,
                "OK",
                "application/json",
                &registry.render_json(),
            );
        }
        "/events" => {
            let events: Vec<String> = recent_events()
                .iter()
                .map(|e| {
                    format!(
                        "{{\"level\": \"{}\", \"target\": \"{}\", \"message\": \"{}\"}}",
                        e.level,
                        escape(&e.target),
                        escape(&e.message)
                    )
                })
                .collect();
            let body = format!("[{}]", events.join(", "));
            respond(&mut stream, 200, "OK", "application/json", &body);
        }
        "/health" => {
            let health = (source.health)();
            let (code, text) = match health {
                Health::Poisoned(_) => (503, "Service Unavailable"),
                _ => (200, "OK"),
            };
            respond(
                &mut stream,
                code,
                text,
                "application/json",
                &health.to_json(),
            );
        }
        "/trace" => {
            let body = chrome_trace(&FlightRecorder::global().snapshot());
            respond(&mut stream, 200, "OK", "application/json", &body);
        }
        "/" => respond(
            &mut stream,
            200,
            "OK",
            "text/plain",
            "pam-obs live telemetry\n\n/metrics\n/metrics.json\n/events\n/health\n/trace\n",
        ),
        _ => respond(
            &mut stream,
            404,
            "Not Found",
            "text/plain",
            "unknown endpoint\n",
        ),
    }
}

fn respond(stream: &mut TcpStream, code: u16, text: &str, content_type: &str, body: &str) {
    let head = format!(
        "HTTP/1.0 {code} {text}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;

    fn http_get(addr: SocketAddr, path: &str) -> (u16, String) {
        let mut s = TcpStream::connect(addr).unwrap();
        write!(s, "GET {path} HTTP/1.0\r\nHost: test\r\n\r\n").unwrap();
        let mut raw = String::new();
        s.read_to_string(&mut raw).unwrap();
        let status: u16 = raw
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .expect("status code");
        let body = raw
            .split_once("\r\n\r\n")
            .map(|(_, b)| b)
            .unwrap_or("")
            .to_string();
        (status, body)
    }

    #[test]
    fn endpoints_serve_and_count_requests() {
        let source = TelemetrySource {
            export: Box::new(|reg| reg.export_counter("pam_server_test_total", 42)),
            health: Box::new(|| Health::Degraded("ckpt lagging".into())),
        };
        let server = ObsServer::bind("127.0.0.1:0", source).unwrap();
        let addr = server.local_addr();

        let (code, prom) = http_get(addr, "/metrics");
        assert_eq!(code, 200);
        assert!(prom.contains("pam_server_test_total 42"));

        let (code, mj) = http_get(addr, "/metrics.json");
        assert_eq!(code, 200);
        let v = Json::parse(&mj).unwrap();
        assert_eq!(
            v.get("counters")
                .unwrap()
                .get("pam_server_test_total")
                .unwrap()
                .as_f64(),
            Some(42.0)
        );

        let (code, hj) = http_get(addr, "/health");
        assert_eq!(code, 200, "degraded still serves 200");
        let v = Json::parse(&hj).unwrap();
        assert_eq!(v.get("status").unwrap().as_str(), Some("degraded"));
        assert_eq!(v.get("reason").unwrap().as_str(), Some("ckpt lagging"));

        let (code, tj) = http_get(addr, "/trace");
        assert_eq!(code, 200);
        assert!(Json::parse(&tj).unwrap().get("traceEvents").is_some());

        let (code, ev) = http_get(addr, "/events");
        assert_eq!(code, 200);
        assert!(Json::parse(&ev).unwrap().as_arr().is_some());

        let (code, _) = http_get(addr, "/nope");
        assert_eq!(code, 404);

        assert_eq!(server.request_count(), 6);
    }

    #[test]
    fn poisoned_health_is_503_with_the_reason() {
        let source = TelemetrySource {
            export: Box::new(|_| {}),
            health: Box::new(|| Health::Poisoned("disk gone: No space left".into())),
        };
        let server = ObsServer::bind("127.0.0.1:0", source).unwrap();
        let (code, body) = http_get(server.local_addr(), "/health");
        assert_eq!(code, 503);
        let v = Json::parse(&body).unwrap();
        assert_eq!(v.get("status").unwrap().as_str(), Some("poisoned"));
        assert!(v
            .get("reason")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("No space left"));
    }

    #[test]
    fn non_get_methods_are_rejected() {
        let server = ObsServer::bind("127.0.0.1:0", TelemetrySource::empty()).unwrap();
        let mut s = TcpStream::connect(server.local_addr()).unwrap();
        write!(s, "POST /metrics HTTP/1.0\r\n\r\n").unwrap();
        let mut raw = String::new();
        s.read_to_string(&mut raw).unwrap();
        assert!(raw.starts_with("HTTP/1.0 405"));
    }

    #[test]
    fn health_worse_ranks_poisoned_over_degraded_over_healthy() {
        let p = Health::Poisoned("p".into());
        let d = Health::Degraded("d".into());
        assert_eq!(Health::Healthy.worse(d.clone()), d);
        assert_eq!(d.clone().worse(p.clone()), p);
        assert_eq!(p.clone().worse(d.clone()), p);
        assert_eq!(Health::Healthy.worse(Health::Healthy), Health::Healthy);
    }

    #[test]
    fn drop_shuts_the_listener_down() {
        let server = ObsServer::bind("127.0.0.1:0", TelemetrySource::empty()).unwrap();
        let addr = server.local_addr();
        drop(server);
        // The port is closed (or at least no longer serving): a fresh
        // bind to the same port must succeed.
        let rebind = TcpListener::bind(addr);
        assert!(rebind.is_ok(), "port still held after drop: {rebind:?}");
    }
}
