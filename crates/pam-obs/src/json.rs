//! A minimal, zero-dependency JSON reader (and the escape helper the
//! writers share).
//!
//! The observability surface *emits* JSON in three places (the metrics
//! registry, the flight recorder, the Chrome-trace exporter) and the
//! test suite must *check* those documents without pulling in a JSON
//! crate — the workspace has no registry access, by design. This module
//! is the `Codec`-free checker: a recursive-descent parser over the full
//! JSON grammar (objects, arrays, strings with escapes, numbers, bools,
//! null) into a [`Json`] tree, strict about trailing garbage.
//!
//! It is a *validator first*: built for test assertions and for the CI
//! contract "every artifact this stack writes is `json.load`-able", not
//! for hot paths. Parsing is O(input) with one allocation per node.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`, like `JSON.parse`).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Keys are unescaped; duplicate keys keep the last value
    /// (matching every mainstream parser).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Parse `input` as one complete JSON document.
    ///
    /// # Errors
    ///
    /// A [`ParseError`] naming the byte offset and what went wrong —
    /// including trailing non-whitespace after the document.
    pub fn parse(input: &str) -> Result<Json, ParseError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the JSON document"));
        }
        Ok(v)
    }

    /// The value at `key`, if this is an object that has it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The key → value map, if this is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }
}

/// Why a document failed to parse: a message plus the byte offset it
/// failed at.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// What the parser expected or rejected.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for ParseError {}

/// Escape `s` for embedding inside a JSON string literal (quotes not
/// included). Shared by every JSON writer in this crate.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected {word:?}")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("expected a JSON value")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(out));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pair: a high surrogate must be
                            // followed by `\uDC00..DFFF`.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(c)
                                        .ok_or_else(|| self.err("invalid surrogate pair"))?
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else {
                                char::from_u32(cp).ok_or_else(|| self.err("invalid codepoint"))?
                            };
                            out.push(c);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(b) if b < 0x20 => return Err(self.err("raw control byte in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so slicing
                    // at char boundaries is guaranteed to succeed).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("non-ASCII in \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII digits");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_value_kind() {
        let doc = r#"{"a": [1, -2.5, 1e3], "b": {"nested": true}, "c": null,
                      "d": "q\"uo\\te\n\u0041\ud83d\ude00"}"#;
        let v = Json::parse(doc).unwrap();
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].as_f64(), Some(-2.5));
        assert_eq!(arr[2].as_f64(), Some(1000.0));
        assert_eq!(v.get("b").unwrap().get("nested"), Some(&Json::Bool(true)));
        assert_eq!(v.get("c"), Some(&Json::Null));
        assert_eq!(v.get("d").unwrap().as_str(), Some("q\"uo\\te\nA😀"));
    }

    #[test]
    fn rejects_garbage() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "tru",
            "1 2",
            "\"unterminated",
            "{\"a\":1,}",
            "\"\\uD800\"",
            "nan",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let nasty = "line1\nline2\t\"quoted\" back\\slash \u{1} emoji😀";
        let doc = format!("\"{}\"", escape(nasty));
        assert_eq!(Json::parse(&doc).unwrap().as_str(), Some(nasty));
    }

    #[test]
    fn registry_json_parses() {
        let reg = crate::MetricsRegistry::new();
        reg.counter("pam_x_total").add(3);
        let h = reg.histogram("pam_lat_nanos{shard=\"0\"}");
        h.record(500);
        let v = Json::parse(&reg.render_json()).expect("registry JSON is valid");
        assert_eq!(
            v.get("counters")
                .unwrap()
                .get("pam_x_total")
                .unwrap()
                .as_f64(),
            Some(3.0)
        );
        assert!(v
            .get("histograms")
            .unwrap()
            .get("pam_lat_nanos{shard=\"0\"}")
            .unwrap()
            .get("p99")
            .is_some());
    }
}
