//! The metrics registry and its exposition formats.
//!
//! A [`MetricsRegistry`] is a named collection of counters, gauges, and
//! histograms. Metrics come in two flavours:
//!
//! * **live** — created with [`MetricsRegistry::counter`] /
//!   [`MetricsRegistry::gauge`] / [`MetricsRegistry::histogram`] and
//!   updated from hot paths (all lock-free once created);
//! * **exported** — point-in-time values pushed in with the `export_*`
//!   methods. The store stack keeps its hot-path recorders embedded in
//!   its own stats structs (no registry lookup per commit) and exports
//!   them here at exposition time; each `export_*` call overwrites the
//!   previous value under the same name.
//!
//! Exposition: [`MetricsRegistry::render_prometheus`] (text format —
//! histograms become summaries with `{quantile="..."}` series) and
//! [`MetricsRegistry::render_json`].
//!
//! Metric names follow Prometheus rules — `[a-zA-Z_:][a-zA-Z0-9_:]*`,
//! optionally followed by one `{key="value",...}` label block baked into
//! the name (e.g. `pam_commit_nanos{shard="3"}`).

use crate::hist::{Histogram, HistogramSnapshot};
use crate::json::escape as json_escape;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

/// A monotonically increasing counter (cloneable handle; all clones
/// share the value).
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down (cloneable handle).
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Set the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

enum Slot {
    Counter(Counter),
    Gauge(Gauge),
    Hist(Arc<Histogram>),
    FrozenCounter(u64),
    FrozenGauge(i64),
    FrozenHist(HistogramSnapshot),
}

/// A named collection of metrics with Prometheus-text and JSON
/// exposition. See the module docs for the live vs exported split.
#[derive(Default)]
pub struct MetricsRegistry {
    slots: Mutex<BTreeMap<String, Slot>>,
}

/// Is `name` a valid metric name: `[a-zA-Z_:][a-zA-Z0-9_:]*` plus an
/// optional trailing `{...}` label block?
fn valid_name(name: &str) -> bool {
    let base = name.split_once('{').map_or(name, |(b, rest)| {
        if !rest.ends_with('}') {
            return "";
        }
        b
    });
    let mut chars = base.chars();
    matches!(chars.next(), Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Split `name` into its base and an optional `key="v",...` label body.
fn split_name(name: &str) -> (&str, Option<&str>) {
    match name.split_once('{') {
        Some((base, rest)) => (base, rest.strip_suffix('}')),
        None => (name, None),
    }
}

/// `name` with one more label appended (handles both labelled and plain
/// names).
fn with_label(name: &str, key: &str, value: &str) -> String {
    let (base, labels) = split_name(name);
    match labels {
        Some(l) if !l.is_empty() => format!("{base}{{{l},{key}=\"{value}\"}}"),
        _ => format!("{base}{{{key}=\"{value}\"}}"),
    }
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The process-wide registry (created on first use).
    pub fn global() -> &'static MetricsRegistry {
        static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
        GLOBAL.get_or_init(MetricsRegistry::new)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, Slot>> {
        self.slots.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Get or create the live counter `name`.
    ///
    /// # Panics
    ///
    /// If `name` is not a valid metric name, or is already registered as
    /// a different kind of metric.
    pub fn counter(&self, name: &str) -> Counter {
        assert!(valid_name(name), "invalid metric name {name:?}");
        let mut slots = self.lock();
        match slots
            .entry(name.to_string())
            .or_insert_with(|| Slot::Counter(Counter::default()))
        {
            Slot::Counter(c) => c.clone(),
            _ => panic!("metric {name:?} already registered as a non-counter"),
        }
    }

    /// Get or create the live gauge `name`.
    ///
    /// # Panics
    ///
    /// If `name` is not a valid metric name, or is already registered as
    /// a different kind of metric.
    pub fn gauge(&self, name: &str) -> Gauge {
        assert!(valid_name(name), "invalid metric name {name:?}");
        let mut slots = self.lock();
        match slots
            .entry(name.to_string())
            .or_insert_with(|| Slot::Gauge(Gauge::default()))
        {
            Slot::Gauge(g) => g.clone(),
            _ => panic!("metric {name:?} already registered as a non-gauge"),
        }
    }

    /// Get or create the live histogram `name`.
    ///
    /// # Panics
    ///
    /// If `name` is not a valid metric name, or is already registered as
    /// a different kind of metric.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        assert!(valid_name(name), "invalid metric name {name:?}");
        let mut slots = self.lock();
        match slots
            .entry(name.to_string())
            .or_insert_with(|| Slot::Hist(Arc::new(Histogram::new())))
        {
            Slot::Hist(h) => h.clone(),
            _ => panic!("metric {name:?} already registered as a non-histogram"),
        }
    }

    /// Publish a point-in-time counter value under `name` (overwrites a
    /// previous export of the same name).
    ///
    /// # Panics
    ///
    /// If `name` is not a valid metric name.
    pub fn export_counter(&self, name: &str, value: u64) {
        assert!(valid_name(name), "invalid metric name {name:?}");
        self.lock()
            .insert(name.to_string(), Slot::FrozenCounter(value));
    }

    /// Publish a point-in-time gauge value under `name`.
    ///
    /// # Panics
    ///
    /// If `name` is not a valid metric name.
    pub fn export_gauge(&self, name: &str, value: i64) {
        assert!(valid_name(name), "invalid metric name {name:?}");
        self.lock()
            .insert(name.to_string(), Slot::FrozenGauge(value));
    }

    /// Publish a histogram snapshot under `name`.
    ///
    /// # Panics
    ///
    /// If `name` is not a valid metric name.
    pub fn export_histogram(&self, name: &str, snapshot: HistogramSnapshot) {
        assert!(valid_name(name), "invalid metric name {name:?}");
        self.lock()
            .insert(name.to_string(), Slot::FrozenHist(snapshot));
    }

    /// Render every metric in the Prometheus text exposition format.
    /// Histograms render as summaries: `{quantile="..."}` series plus
    /// `_count`, `_sum`, and `_max` samples. Every non-comment line is
    /// `name value` or `name{labels} value`.
    pub fn render_prometheus(&self) -> String {
        let slots = self.lock();
        let mut out = String::new();
        let mut typed: std::collections::BTreeSet<&str> = Default::default();
        for (name, slot) in slots.iter() {
            let (base, _) = split_name(name);
            let kind = match slot {
                Slot::Counter(_) | Slot::FrozenCounter(_) => "counter",
                Slot::Gauge(_) | Slot::FrozenGauge(_) => "gauge",
                Slot::Hist(_) | Slot::FrozenHist(_) => "summary",
            };
            if typed.insert(base) {
                out.push_str(&format!("# TYPE {base} {kind}\n"));
            }
            match slot {
                Slot::Counter(c) => out.push_str(&format!("{name} {}\n", c.get())),
                Slot::FrozenCounter(v) => out.push_str(&format!("{name} {v}\n")),
                Slot::Gauge(g) => out.push_str(&format!("{name} {}\n", g.get())),
                Slot::FrozenGauge(v) => out.push_str(&format!("{name} {v}\n")),
                Slot::Hist(h) => render_prom_hist(&mut out, name, &h.snapshot()),
                Slot::FrozenHist(s) => render_prom_hist(&mut out, name, s),
            }
        }
        out
    }

    /// Render every metric as one JSON object:
    /// `{"counters": {...}, "gauges": {...}, "histograms": {name:
    /// {"count", "sum", "max", "mean", "p50", "p90", "p99", "p999"}}}`.
    pub fn render_json(&self) -> String {
        let slots = self.lock();
        let mut counters = Vec::new();
        let mut gauges = Vec::new();
        let mut hists = Vec::new();
        for (name, slot) in slots.iter() {
            let name = json_escape(name);
            match slot {
                Slot::Counter(c) => counters.push(format!("\"{name}\": {}", c.get())),
                Slot::FrozenCounter(v) => counters.push(format!("\"{name}\": {v}")),
                Slot::Gauge(g) => gauges.push(format!("\"{name}\": {}", g.get())),
                Slot::FrozenGauge(v) => gauges.push(format!("\"{name}\": {v}")),
                Slot::Hist(h) => hists.push(json_hist(&name, &h.snapshot())),
                Slot::FrozenHist(s) => hists.push(json_hist(&name, s)),
            }
        }
        format!(
            "{{\"counters\": {{{}}}, \"gauges\": {{{}}}, \"histograms\": {{{}}}}}",
            counters.join(", "),
            gauges.join(", "),
            hists.join(", ")
        )
    }
}

fn render_prom_hist(out: &mut String, name: &str, s: &HistogramSnapshot) {
    for (q, v) in [
        ("0.5", s.p50()),
        ("0.9", s.p90()),
        ("0.99", s.p99()),
        ("0.999", s.p999()),
    ] {
        out.push_str(&format!("{} {v}\n", with_label(name, "quantile", q)));
    }
    let (base, labels) = split_name(name);
    let suffixed = |suffix: &str| match labels {
        Some(l) if !l.is_empty() => format!("{base}{suffix}{{{l}}}"),
        _ => format!("{base}{suffix}"),
    };
    out.push_str(&format!("{} {}\n", suffixed("_count"), s.count()));
    out.push_str(&format!("{} {}\n", suffixed("_sum"), s.sum()));
    out.push_str(&format!("{} {}\n", suffixed("_max"), s.max()));
}

fn json_hist(escaped_name: &str, s: &HistogramSnapshot) -> String {
    format!(
        "\"{escaped_name}\": {{\"count\": {}, \"sum\": {}, \"max\": {}, \"mean\": {}, \
         \"p50\": {}, \"p90\": {}, \"p99\": {}, \"p999\": {}}}",
        s.count(),
        s.sum(),
        s.max(),
        s.mean(),
        s.p50(),
        s.p90(),
        s.p99(),
        s.p999()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn live_metrics_share_state_across_clones() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("pam_test_total");
        c.inc();
        reg.counter("pam_test_total").add(2);
        assert_eq!(c.get(), 3);
        let g = reg.gauge("pam_test_gauge");
        g.set(5);
        g.add(-2);
        assert_eq!(reg.gauge("pam_test_gauge").get(), 3);
        let h = reg.histogram("pam_test_nanos");
        h.record(100);
        assert_eq!(reg.histogram("pam_test_nanos").snapshot().count(), 1);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let reg = MetricsRegistry::new();
        reg.counter("pam_thing");
        reg.gauge("pam_thing");
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn invalid_names_panic() {
        MetricsRegistry::new().counter("0bad name");
    }

    #[test]
    fn prometheus_exposition_parses_line_by_line() {
        let reg = MetricsRegistry::new();
        reg.counter("pam_ops_total").add(7);
        reg.gauge("pam_depth").set(-2);
        let h = reg.histogram("pam_lat_nanos{shard=\"0\"}");
        for v in 1..=100u64 {
            h.record(v);
        }
        reg.export_counter("pam_frozen_total", 9);
        let text = reg.render_prometheus();
        // the CI contract: every line is a comment or `name[{labels}] value`
        for line in text.lines() {
            if line.starts_with('#') {
                continue;
            }
            let (name, value) = line.rsplit_once(' ').expect("name value");
            assert!(valid_name(name), "bad sample name {name:?}");
            value.parse::<i64>().expect("numeric value");
        }
        assert!(text.contains("# TYPE pam_lat_nanos summary"));
        assert!(text.contains("pam_lat_nanos{shard=\"0\",quantile=\"0.99\"}"));
        assert!(text.contains("pam_lat_nanos_count{shard=\"0\"} 100"));
        assert!(text.contains("pam_ops_total 7"));
        assert!(text.contains("pam_depth -2"));
        assert!(text.contains("pam_frozen_total 9"));
    }

    #[test]
    fn json_exposition_has_all_sections() {
        let reg = MetricsRegistry::new();
        reg.counter("c").inc();
        reg.gauge("g").set(1);
        let mut snap = crate::hist::Histogram::new().snapshot();
        let live = crate::hist::Histogram::new();
        live.record(50);
        snap.merge(&live.snapshot());
        reg.export_histogram("h", snap);
        let json = reg.render_json();
        assert!(json.contains("\"counters\": {\"c\": 1}"));
        assert!(json.contains("\"gauges\": {\"g\": 1}"));
        assert!(json.contains("\"p999\": 50"));
        assert!(json.contains("\"count\": 1"));
    }

    #[test]
    fn exports_overwrite_previous_values() {
        let reg = MetricsRegistry::new();
        reg.export_counter("x_total", 1);
        reg.export_counter("x_total", 5);
        assert!(reg.render_prometheus().contains("x_total 5"));
        reg.export_gauge("x_g", -3);
        assert!(reg.render_prometheus().contains("x_g -3"));
    }
}
