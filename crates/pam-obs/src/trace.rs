//! A minimal tracing facade: [`event!`](crate::event) and
//! [`span!`](crate::span) macros dispatching to a pluggable
//! [`Subscriber`].
//!
//! Design constraints, in order:
//!
//! 1. **Cheap enough to leave compiled in.** The macros check one
//!    relaxed atomic (the level gate) before touching any arguments, so
//!    a disabled `event!(Level::Trace, ...)` costs one load and a
//!    predictable branch — no formatting, no allocation.
//! 2. **Zero dependencies.** The default subscriber is a fixed-size
//!    ring buffer of recent events (always on; `Info` and above by
//!    default, overridable via `PAM_LOG_RING`) plus a stderr writer
//!    filtered by the `PAM_LOG` environment variable
//!    (`error|warn|info|debug|trace`, default off).
//! 3. **Pluggable.** [`set_subscriber`] installs a custom [`Subscriber`]
//!    once per process (tests use this to capture events).
//!
//! Spans are scope guards: `let _s = span!("checkpoint");` records the
//! elapsed wall time into the subscriber on drop. Spans only arm when
//! the `Debug` level is enabled, so they are free in production mode.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};
use std::time::{Duration, Instant};

/// Event severity, most severe first.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Something failed and was (at best) degraded around.
    Error = 1,
    /// Something surprising that is not yet a failure.
    Warn = 2,
    /// Lifecycle landmarks: recovery phases, checkpoints, rotations.
    Info = 3,
    /// Per-operation detail; also arms `span!` timing.
    Debug = 4,
    /// Firehose.
    Trace = 5,
}

impl Level {
    fn parse(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "error" => Some(Level::Error),
            "warn" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            "trace" => Some(Level::Trace),
            _ => None,
        }
    }

    fn as_str(self) -> &'static str {
        match self {
            Level::Error => "ERROR",
            Level::Warn => "WARN",
            Level::Info => "INFO",
            Level::Debug => "DEBUG",
            Level::Trace => "TRACE",
        }
    }
}

impl std::fmt::Display for Level {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Receives events and closed spans. Implementations must be cheap and
/// must not call back into the tracing macros (no re-entrancy guard is
/// provided).
pub trait Subscriber: Send + Sync {
    /// Is `level` worth formatting at all? The macros consult this (via
    /// the cached gate) *before* building the message.
    fn enabled(&self, level: Level) -> bool;

    /// An event fired at `level` from `target` (a static component name
    /// like `"pam_wal"`).
    fn event(&self, level: Level, target: &str, message: &str);

    /// A [`Span`] closed after `elapsed`. Default: forwarded as a
    /// `Debug` event.
    fn span_close(&self, target: &str, elapsed: Duration) {
        self.event(
            Level::Debug,
            target,
            &format!("span closed after {elapsed:?}"),
        );
    }
}

/// One captured event in the default subscriber's ring buffer.
#[derive(Clone, Debug)]
pub struct CapturedEvent {
    /// Severity it fired at.
    pub level: Level,
    /// Component that fired it.
    pub target: String,
    /// The formatted message.
    pub message: String,
}

/// The default [`Subscriber`]: keeps the last [`RING_CAPACITY`] events
/// in a ring buffer (inspectable via [`recent_events`], served at
/// `/events`, and captured into flight dumps) and writes to stderr when
/// `PAM_LOG` enables the event's level.
///
/// The ring captures `Info` and above by default; the `PAM_LOG_RING`
/// environment variable (`error|warn|info|debug|trace`) overrides that
/// cutoff, so `Debug`-level span closes become capturable without
/// recompiling.
pub struct DefaultSubscriber {
    stderr_level: Option<Level>,
    ring_level: Level,
    ring: Mutex<VecDeque<CapturedEvent>>,
}

/// How many events the default subscriber's ring buffer retains.
pub const RING_CAPACITY: usize = 256;

impl DefaultSubscriber {
    fn from_env() -> Self {
        DefaultSubscriber {
            stderr_level: std::env::var("PAM_LOG").ok().and_then(|s| Level::parse(&s)),
            ring_level: std::env::var("PAM_LOG_RING")
                .ok()
                .and_then(|s| Level::parse(&s))
                .unwrap_or(Level::Info),
            ring: Mutex::new(VecDeque::with_capacity(RING_CAPACITY)),
        }
    }

    fn recent(&self) -> Vec<CapturedEvent> {
        self.ring
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .cloned()
            .collect()
    }
}

impl Subscriber for DefaultSubscriber {
    fn enabled(&self, level: Level) -> bool {
        level <= self.ring_level || self.stderr_level.is_some_and(|max| level <= max)
    }

    fn event(&self, level: Level, target: &str, message: &str) {
        if self.stderr_level.is_some_and(|max| level <= max) {
            eprintln!("[{level:5} {target}] {message}");
        }
        if level <= self.ring_level {
            let mut ring = self.ring.lock().unwrap_or_else(PoisonError::into_inner);
            if ring.len() == RING_CAPACITY {
                ring.pop_front();
            }
            ring.push_back(CapturedEvent {
                level,
                target: target.to_string(),
                message: message.to_string(),
            });
        }
    }
}

/// The installed subscriber plus the cached maximum enabled level
/// (0 = not yet computed).
static SUBSCRIBER: OnceLock<Arc<dyn Subscriber>> = OnceLock::new();
static GATE: AtomicU8 = AtomicU8::new(0);
/// Typed handle to the default subscriber, set only when it (and not a
/// custom one) won the installation race — lets [`recent_events`] read
/// the ring without downcasting through the trait object.
static DEFAULT: OnceLock<Arc<DefaultSubscriber>> = OnceLock::new();

fn subscriber() -> &'static Arc<dyn Subscriber> {
    SUBSCRIBER.get_or_init(|| {
        let d = Arc::new(DefaultSubscriber::from_env());
        let _ = DEFAULT.set(d.clone());
        d
    })
}

fn compute_gate() -> u8 {
    let sub = subscriber();
    let mut gate = 0u8;
    for l in [
        Level::Error,
        Level::Warn,
        Level::Info,
        Level::Debug,
        Level::Trace,
    ] {
        if sub.enabled(l) {
            gate = l as u8;
        }
    }
    // relaxed: the gate is a monotone cache — a racing reader at worst
    // recomputes or formats one event it could have skipped
    GATE.store(gate.max(1), Ordering::Relaxed); // 1 = "computed, all off" floor
    gate.max(1)
}

/// Is `level` enabled on the installed subscriber? One relaxed atomic
/// load on the fast path; the macros call this before formatting.
#[inline]
pub fn enabled(level: Level) -> bool {
    // relaxed: hot-path hint only; see compute_gate — a stale value
    // never produces wrong output, only a skippable recompute
    let gate = GATE.load(Ordering::Relaxed);
    let gate = if gate == 0 { compute_gate() } else { gate };
    level as u8 <= gate
}

/// Install `sub` as the process-wide subscriber.
///
/// # Errors
///
/// Returns `Err(sub)` if a subscriber is already installed (including
/// the default one, which installs lazily on first use).
pub fn set_subscriber(sub: Arc<dyn Subscriber>) -> Result<(), Arc<dyn Subscriber>> {
    match SUBSCRIBER.set(sub) {
        Ok(()) => {
            // relaxed: 0 just invalidates the cache; readers recompute
            // through the OnceLock, which supplies the ordering
            GATE.store(0, Ordering::Relaxed);
            Ok(())
        }
        Err(sub) => Err(sub),
    }
}

/// Dispatch one event to the installed subscriber (the
/// [`event!`](crate::event) macro's slow path — prefer the macro,
/// which checks [`enabled`] first).
pub fn dispatch(level: Level, target: &str, message: &str) {
    subscriber().event(level, target, message);
}

/// The last events captured by the default subscriber's ring buffer
/// (level via `PAM_LOG_RING`, `Info` and above by default), oldest
/// first. Empty if a custom subscriber was installed instead of the
/// default one, or if no subscriber has been installed yet — before
/// installation no event can have been captured, so there is nothing
/// to report (and forcing installation here would steal the slot from
/// a custom subscriber about to be registered).
pub fn recent_events() -> Vec<CapturedEvent> {
    if SUBSCRIBER.get().is_none() {
        return Vec::new();
    }
    DEFAULT.get().map(|d| d.recent()).unwrap_or_default()
}

/// A timing scope guard created by [`span!`](crate::span): records its
/// elapsed wall time into the subscriber when dropped. Unarmed (free)
/// unless `Debug` is enabled at creation time.
#[must_use = "a span measures the scope it is bound to; binding it to _ drops it immediately"]
pub struct Span {
    target: &'static str,
    start: Option<Instant>,
}

impl Span {
    /// Open a span for `target` (armed only if `Debug` is enabled).
    pub fn new(target: &'static str) -> Span {
        Span {
            target,
            start: enabled(Level::Debug).then(Instant::now),
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            subscriber().span_close(self.target, start.elapsed());
        }
    }
}

/// Fire an event: `event!(Level::Info, "pam_wal", "rotated to {}", n)`.
/// The level gate is checked before the message formats, so disabled
/// events cost one atomic load.
#[macro_export]
macro_rules! event {
    ($level:expr, $target:expr, $($arg:tt)+) => {
        if $crate::trace::enabled($level) {
            $crate::trace::dispatch($level, $target, &format!($($arg)+));
        }
    };
}

/// Open a timing [`Span`]: `let _span = span!("pam_wal::checkpoint");`.
/// Elapsed time reaches [`Subscriber::span_close`] when the guard drops.
#[macro_export]
macro_rules! span {
    ($target:expr) => {
        $crate::trace::Span::new($target)
    };
}

/// Shared across this crate's unit-test modules: subscriber state is
/// process-global, so *every* test that touches it (directly or via
/// [`recent_events`]) must route through one capture subscriber,
/// installed exactly once before any event fires.
#[cfg(test)]
pub(crate) mod testsupport {
    use super::*;

    pub(crate) struct Capture(
        pub(crate) Mutex<Vec<(Level, String, String)>>,
        pub(crate) Mutex<Vec<String>>,
    );

    impl Subscriber for Capture {
        fn enabled(&self, level: Level) -> bool {
            level <= Level::Debug
        }
        fn event(&self, level: Level, target: &str, message: &str) {
            self.0
                .lock()
                .unwrap()
                .push((level, target.to_string(), message.to_string()));
        }
        fn span_close(&self, target: &str, _elapsed: Duration) {
            self.1.lock().unwrap().push(target.to_string());
        }
    }

    pub(crate) fn capture() -> &'static Capture {
        static CAP: OnceLock<&'static Capture> = OnceLock::new();
        CAP.get_or_init(|| {
            let cap: &'static Capture = Box::leak(Box::new(Capture(
                Mutex::new(Vec::new()),
                Mutex::new(Vec::new()),
            )));
            struct Fwd(&'static Capture);
            impl Subscriber for Fwd {
                fn enabled(&self, level: Level) -> bool {
                    self.0.enabled(level)
                }
                fn event(&self, level: Level, target: &str, message: &str) {
                    self.0.event(level, target, message)
                }
                fn span_close(&self, target: &str, elapsed: Duration) {
                    self.0.span_close(target, elapsed)
                }
            }
            // Ignore the error: another test binary path may have
            // installed first; in this test binary every subscriber
            //-touching test calls capture() before any event fires.
            let _ = set_subscriber(Arc::new(Fwd(cap)));
            cap
        })
    }
}

#[cfg(test)]
mod tests {
    use super::testsupport::capture;
    use super::*;

    #[test]
    fn events_respect_the_gate_and_format_lazily() {
        let cap = capture();
        let mut evaluated = false;
        event!(Level::Trace, "t", "{}", {
            evaluated = true;
            "never"
        });
        assert!(!evaluated, "disabled event must not format");
        event!(Level::Info, "pam_test", "hello {}", 42);
        let events = cap.0.lock().unwrap();
        assert!(events
            .iter()
            .any(|(l, t, m)| *l == Level::Info && t == "pam_test" && m == "hello 42"));
    }

    #[test]
    fn spans_report_to_span_close() {
        let cap = capture();
        {
            let _s = span!("pam_test::scope");
        }
        assert!(cap.1.lock().unwrap().iter().any(|t| t == "pam_test::scope"));
    }

    #[test]
    fn pam_log_ring_overrides_the_ring_cutoff() {
        // Construct the subscriber directly (not via the global
        // installer) so the env override is observable regardless of
        // which subscriber won the process-wide installation race.
        std::env::set_var("PAM_LOG_RING", "debug");
        let sub = DefaultSubscriber::from_env();
        std::env::remove_var("PAM_LOG_RING");
        assert!(sub.enabled(Level::Debug), "debug must pass the ring gate");
        sub.event(Level::Debug, "pam_test", "span closed after 1ms");
        sub.event(Level::Trace, "pam_test", "below the cutoff");
        let recent = sub.recent();
        assert!(recent.iter().any(|e| e.level == Level::Debug));
        assert!(!recent.iter().any(|e| e.level == Level::Trace));

        // Without the override the ring stays Info+.
        let sub = DefaultSubscriber::from_env();
        sub.event(Level::Debug, "pam_test", "filtered");
        assert!(sub.recent().is_empty());
    }

    #[test]
    fn level_parsing_and_order() {
        assert_eq!(Level::parse("WARN"), Some(Level::Warn));
        assert_eq!(Level::parse(" trace "), Some(Level::Trace));
        assert_eq!(Level::parse("nope"), None);
        assert!(Level::Error < Level::Trace);
        assert_eq!(Level::Warn.to_string(), "WARN");
    }
}
