//! The epoch flight recorder: a black box for the commit pipeline.
//!
//! The committer records one [`EpochTrace`] per committed epoch — the
//! monotonic start of each pipeline stage (group-commit window, submit
//! seal/drain, normalize, WAL log, apply, publish) plus batch sizes and
//! the cross-shard stamp — into a process-global fixed ring
//! ([`FlightRecorder`]). Three consumers read the ring:
//!
//! * the live telemetry server's `/trace` endpoint (see
//!   [`crate::server`]) renders it as Chrome trace-event JSON via
//!   [`crate::chrome::chrome_trace`];
//! * `ycsb --trace-out FILE` writes the same document at exit;
//! * **crash dumps** — a store that poisons (commit hook failure) or a
//!   process that panics writes `flight-<pid>.json` into every
//!   registered WAL directory ([`register_dump_dir`]), capturing the
//!   ring, the full global metrics registry, and the recent-event ring:
//!   a crashed store leaves a black box next to its `LOCK.pid`.
//!
//! Timestamps are nanoseconds since a process-wide [`anchor`] `Instant`.
//! The anchor is created lazily but **must** be touched before the first
//! instant it will be compared against (the pipeline does this in its
//! constructor) — otherwise `saturating_duration_since` clamps earlier
//! instants to 0 and the window slices collapse.
//!
//! Dumps are first-wins per registered directory: the first failure is
//! the interesting one, and a cascade of waiter panics after a poison
//! must not overwrite the dump that named the root cause.

use crate::json::escape;
use crate::metrics::MetricsRegistry;
use crate::trace::recent_events;
use std::collections::VecDeque;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Mutex, OnceLock, PoisonError};
use std::time::Instant;

/// How many epoch traces the global ring retains (oldest evicted first).
pub const FLIGHT_CAPACITY: usize = 1024;

/// Per-stage timeline of one committed epoch, in nanoseconds relative to
/// the process [`anchor`]. The stages tile: the epoch segment opens at
/// `open_ns`, drains (is popped by the committer) at `drain_ns`, then
/// normalize → wal_log → apply → publish run back to back (`wal_log_ns`
/// covers the commit hook end to end — WAL append *and* its fsync; the
/// hook does not expose a finer split).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EpochTrace {
    /// Which shard's pipeline committed it (0 for an unsharded store).
    pub shard: u32,
    /// The pipeline epoch number.
    pub epoch: u64,
    /// The cross-shard batch stamp, when this epoch is a sealed slice of
    /// a multi-shard `write_batch`.
    pub global_epoch: Option<u64>,
    /// Operations writers enqueued into the epoch.
    pub raw_ops: u64,
    /// Operations surviving last-write-wins deduplication.
    pub applied_ops: u64,
    /// When the epoch segment opened (first write arrived).
    pub open_ns: u64,
    /// When the committer drained the segment (group-commit window end).
    pub drain_ns: u64,
    /// Normalize stage duration (parallel sort + LWW dedup).
    pub normalize_ns: u64,
    /// Commit-hook stage duration (WAL append + fsync; 0 in-memory).
    pub wal_log_ns: u64,
    /// Apply stage duration (bulk insert/delete + head swap).
    pub apply_ns: u64,
    /// Publish stage duration (registry + hook notification).
    pub publish_ns: u64,
}

impl EpochTrace {
    /// When the epoch finished publishing, relative to the [`anchor`].
    pub fn end_ns(&self) -> u64 {
        self.drain_ns + self.normalize_ns + self.wal_log_ns + self.apply_ns + self.publish_ns
    }

    /// Render as one JSON object (stable field set — the flight-dump
    /// format documented in ARCHITECTURE.md).
    pub fn to_json(&self) -> String {
        let global = match self.global_epoch {
            Some(g) => g.to_string(),
            None => "null".to_string(),
        };
        format!(
            "{{\"shard\": {}, \"epoch\": {}, \"global_epoch\": {global}, \
             \"raw_ops\": {}, \"applied_ops\": {}, \"open_ns\": {}, \"drain_ns\": {}, \
             \"normalize_ns\": {}, \"wal_log_ns\": {}, \"apply_ns\": {}, \"publish_ns\": {}}}",
            self.shard,
            self.epoch,
            self.raw_ops,
            self.applied_ops,
            self.open_ns,
            self.drain_ns,
            self.normalize_ns,
            self.wal_log_ns,
            self.apply_ns,
            self.publish_ns,
        )
    }
}

/// The process-wide monotonic zero point every [`EpochTrace`] timestamp
/// is relative to. Touch it **before** capturing any `Instant` that will
/// be converted (see the module docs).
pub fn anchor() -> Instant {
    static ANCHOR: OnceLock<Instant> = OnceLock::new();
    *ANCHOR.get_or_init(Instant::now)
}

/// Nanoseconds from the [`anchor`] to `t` (0 if `t` predates it).
pub fn instant_ns(t: Instant) -> u64 {
    t.saturating_duration_since(anchor()).as_nanos() as u64
}

/// Nanoseconds from the [`anchor`] to now.
pub fn monotonic_ns() -> u64 {
    instant_ns(Instant::now())
}

/// A fixed-size ring of the most recent [`EpochTrace`]s. Committers from
/// every pipeline in the process record into [`FlightRecorder::global`];
/// the `shard` field tells the tracks apart.
#[derive(Default)]
pub struct FlightRecorder {
    ring: Mutex<VecDeque<EpochTrace>>,
}

impl FlightRecorder {
    /// An empty recorder (tests; production uses [`Self::global`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// The process-wide recorder every pipeline records into.
    pub fn global() -> &'static FlightRecorder {
        static GLOBAL: OnceLock<FlightRecorder> = OnceLock::new();
        GLOBAL.get_or_init(FlightRecorder::new)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<EpochTrace>> {
        self.ring.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Append one trace, evicting the oldest past [`FLIGHT_CAPACITY`].
    pub fn record(&self, trace: EpochTrace) {
        let mut ring = self.lock();
        if ring.len() == FLIGHT_CAPACITY {
            ring.pop_front();
        }
        ring.push_back(trace);
    }

    /// The retained traces, oldest first.
    pub fn snapshot(&self) -> Vec<EpochTrace> {
        self.lock().iter().cloned().collect()
    }

    /// Number of traces currently retained.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Is the ring empty?
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }
}

/// Render the full flight-dump document: reason, pid, the poisoned
/// epoch (if the dump came from the fail-stop path), the epoch ring,
/// the global metrics registry, and the recent-event ring.
pub fn render_flight_dump(reason: &str, poisoned_epoch: Option<u64>) -> String {
    let epochs: Vec<String> = FlightRecorder::global()
        .snapshot()
        .iter()
        .map(EpochTrace::to_json)
        .collect();
    let events: Vec<String> = recent_events()
        .iter()
        .map(|e| {
            format!(
                "{{\"level\": \"{}\", \"target\": \"{}\", \"message\": \"{}\"}}",
                e.level,
                escape(&e.target),
                escape(&e.message)
            )
        })
        .collect();
    let poisoned = match poisoned_epoch {
        Some(e) => e.to_string(),
        None => "null".to_string(),
    };
    format!(
        "{{\"reason\": \"{}\", \"pid\": {}, \"poisoned_epoch\": {poisoned}, \
         \"captured_ns\": {}, \"epochs\": [{}], \"metrics\": {}, \"events\": [{}]}}",
        escape(reason),
        std::process::id(),
        monotonic_ns(),
        epochs.join(", "),
        MetricsRegistry::global().render_json(),
        events.join(", "),
    )
}

/// Write a flight dump to `<dir>/flight-<pid>.json` via the same
/// temp+rename idiom the checkpoint writer uses (`.tmp` sibling, then an
/// atomic rename — a reader never sees a torn dump). Returns the final
/// path.
///
/// # Errors
///
/// Filesystem errors pass through (the caller is usually already
/// crashing, so they are reported best-effort).
pub fn write_flight_dump(
    dir: &Path,
    reason: &str,
    poisoned_epoch: Option<u64>,
) -> io::Result<PathBuf> {
    let body = render_flight_dump(reason, poisoned_epoch);
    let path = dir.join(format!("flight-{}.json", std::process::id()));
    let tmp = dir.join(format!("flight-{}.json.tmp", std::process::id()));
    std::fs::write(&tmp, body.as_bytes())?;
    std::fs::rename(&tmp, &path)?;
    Ok(path)
}

struct DumpDirs {
    next_id: u64,
    /// (registration id, directory, already dumped this registration).
    dirs: Vec<(u64, PathBuf, bool)>,
}

fn dump_dirs() -> &'static Mutex<DumpDirs> {
    static DIRS: OnceLock<Mutex<DumpDirs>> = OnceLock::new();
    DIRS.get_or_init(|| {
        Mutex::new(DumpDirs {
            next_id: 0,
            dirs: Vec::new(),
        })
    })
}

/// Unregisters its directory when dropped (a cleanly closed store must
/// not receive dumps for later, unrelated panics).
#[must_use = "dropping the guard immediately unregisters the dump directory"]
pub struct DumpDirGuard {
    id: u64,
}

impl Drop for DumpDirGuard {
    fn drop(&mut self) {
        let mut g = dump_dirs().lock().unwrap_or_else(PoisonError::into_inner);
        g.dirs.retain(|(id, _, _)| *id != self.id);
    }
}

/// Register `dir` to receive a `flight-<pid>.json` black box when the
/// store poisons or the process panics. The first registration installs
/// a chained panic hook (the previous hook still runs). Dumps are
/// first-wins per registration: once a directory has its black box, a
/// cascade of follow-on panics leaves it alone.
pub fn register_dump_dir(dir: &Path) -> DumpDirGuard {
    static HOOK: OnceLock<()> = OnceLock::new();
    HOOK.get_or_init(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let reason = format!("panic: {info}");
            dump_registered(&reason, None);
            prev(info);
        }));
    });
    let mut g = dump_dirs().lock().unwrap_or_else(PoisonError::into_inner);
    let id = g.next_id;
    g.next_id += 1;
    g.dirs.push((id, dir.to_path_buf(), false));
    DumpDirGuard { id }
}

/// Dump the black box into every registered directory that has not
/// received one yet (best-effort: write errors go to stderr — the
/// process is crashing). Returns the paths written.
pub fn dump_registered(reason: &str, poisoned_epoch: Option<u64>) -> Vec<PathBuf> {
    // Snapshot the target list, then render and write *outside* the
    // registry lock: rendering takes the metrics/ring locks, and a panic
    // inside a Drop holding the registry lock must not deadlock us.
    let targets: Vec<(u64, PathBuf)> = {
        let g = dump_dirs().lock().unwrap_or_else(PoisonError::into_inner);
        g.dirs
            .iter()
            .filter(|(_, _, dumped)| !dumped)
            .map(|(id, dir, _)| (*id, dir.clone()))
            .collect()
    };
    if targets.is_empty() {
        return Vec::new();
    }
    let mut written = Vec::new();
    for (id, dir) in targets {
        match write_flight_dump(&dir, reason, poisoned_epoch) {
            Ok(path) => {
                written.push(path);
                let mut g = dump_dirs().lock().unwrap_or_else(PoisonError::into_inner);
                if let Some(entry) = g.dirs.iter_mut().find(|(i, _, _)| *i == id) {
                    entry.2 = true;
                }
            }
            Err(e) => eprintln!(
                "pam-obs: failed to write flight dump to {}: {e}",
                dir.display()
            ),
        }
    }
    if !written.is_empty() {
        eprintln!(
            "pam-obs: flight dump written to {}",
            written
                .iter()
                .map(|p| p.display().to_string())
                .collect::<Vec<_>>()
                .join(", ")
        );
    }
    written
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;

    #[test]
    fn ring_evicts_oldest_at_capacity() {
        let rec = FlightRecorder::new();
        for epoch in 0..(FLIGHT_CAPACITY as u64 + 10) {
            rec.record(EpochTrace {
                epoch,
                ..EpochTrace::default()
            });
        }
        let snap = rec.snapshot();
        assert_eq!(snap.len(), FLIGHT_CAPACITY);
        assert_eq!(snap.first().unwrap().epoch, 10);
        assert_eq!(snap.last().unwrap().epoch, FLIGHT_CAPACITY as u64 + 9);
    }

    #[test]
    fn dump_document_is_valid_json_and_names_the_epoch() {
        FlightRecorder::global().record(EpochTrace {
            shard: 2,
            epoch: 41,
            global_epoch: Some(7),
            raw_ops: 10,
            applied_ops: 9,
            open_ns: 100,
            drain_ns: 200,
            normalize_ns: 10,
            wal_log_ns: 20,
            apply_ns: 30,
            publish_ns: 5,
        });
        let doc = render_flight_dump("test \"reason\"\nline2", Some(42));
        let v = Json::parse(&doc).expect("flight dump parses");
        assert_eq!(
            v.get("reason").unwrap().as_str(),
            Some("test \"reason\"\nline2")
        );
        assert_eq!(v.get("poisoned_epoch").unwrap().as_f64(), Some(42.0));
        let epochs = v.get("epochs").unwrap().as_arr().unwrap();
        let ours = epochs
            .iter()
            .find(|e| e.get("epoch").unwrap().as_f64() == Some(41.0))
            .expect("recorded epoch present");
        assert_eq!(ours.get("global_epoch").unwrap().as_f64(), Some(7.0));
        assert_eq!(ours.get("wal_log_ns").unwrap().as_f64(), Some(20.0));
        assert!(v.get("metrics").unwrap().get("counters").is_some());
        assert!(v.get("events").unwrap().as_arr().is_some());
    }

    #[test]
    fn registered_dirs_dump_first_wins_and_unregister_on_drop() {
        let dir = std::env::temp_dir().join(format!("pam-flight-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let guard = register_dump_dir(&dir);
        let written = dump_registered("first failure", Some(3));
        assert_eq!(written.len(), 1);
        let body = std::fs::read_to_string(&written[0]).unwrap();
        let v = Json::parse(&body).unwrap();
        assert_eq!(v.get("reason").unwrap().as_str(), Some("first failure"));
        // no torn temp file left behind
        assert!(!written[0].with_extension("json.tmp").exists());
        // second dump is suppressed (first-wins), file keeps the cause
        assert!(dump_registered("cascade", None).is_empty());
        let v = Json::parse(&std::fs::read_to_string(&written[0]).unwrap()).unwrap();
        assert_eq!(v.get("reason").unwrap().as_str(), Some("first failure"));
        // dropping the guard unregisters; nothing further is written
        drop(guard);
        assert!(dump_registered("after drop", None).is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn anchor_is_monotone() {
        let a = monotonic_ns();
        let b = monotonic_ns();
        assert!(b >= a);
        assert!(instant_ns(Instant::now()) >= a);
    }
}
