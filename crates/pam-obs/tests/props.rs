//! Property tests for the histogram: percentile estimates against an
//! exact-sort oracle, merge algebra, and concurrent-recorder
//! consistency.

use pam_obs::{Histogram, HistogramSnapshot};
use proptest::prelude::*;

/// Record a slice into a fresh histogram.
fn hist_of(values: &[u64]) -> Histogram {
    let h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

/// The exact order statistic the histogram's `quantile(q)` estimates:
/// rank `ceil(q * n)` (1-based) of the sorted values.
fn oracle(sorted: &[u64], q: f64) -> u64 {
    let n = sorted.len() as u64;
    let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
    sorted[(rank - 1) as usize]
}

/// Mixed-magnitude value strategy: exercises the exact sub-16 buckets,
/// mid-range octaves, and the top of the u64 range.
fn values() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(
        prop_oneof![
            0u64..16,
            16u64..4096,
            4096u64..10_000_000,
            (1u64 << 40)..u64::MAX,
            Just(u64::MAX),
        ],
        1..300,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn quantiles_match_exact_sort_oracle(vals in values()) {
        let snap = hist_of(&vals).snapshot();
        let mut sorted = vals.clone();
        sorted.sort_unstable();
        for q in [0.0, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let exact = oracle(&sorted, q);
            let est = snap.quantile(q);
            // within one bucket's width of the true order statistic:
            // buckets are exact below 16 and <= 1/16 relative above
            let tol = exact / 16 + 1;
            prop_assert!(
                est.abs_diff(exact) <= tol,
                "q={q}: est {est} vs exact {exact} (tol {tol})"
            );
        }
        prop_assert_eq!(snap.max(), *sorted.last().unwrap());
        prop_assert_eq!(snap.count(), vals.len() as u64);
    }

    #[test]
    fn merge_is_associative_and_order_free(
        a in values(),
        b in values(),
        c in values(),
    ) {
        let (sa, sb, sc) = (
            hist_of(&a).snapshot(),
            hist_of(&b).snapshot(),
            hist_of(&c).snapshot(),
        );
        // (a ⊕ b) ⊕ c
        let mut left = sa.clone();
        left.merge(&sb);
        left.merge(&sc);
        // a ⊕ (b ⊕ c)
        let mut right_tail = sb.clone();
        right_tail.merge(&sc);
        let mut right = sa.clone();
        right.merge(&right_tail);
        prop_assert_eq!(&left, &right);
        // and both equal recording everything into one histogram
        let all: Vec<u64> = a.iter().chain(&b).chain(&c).copied().collect();
        prop_assert_eq!(&left, &hist_of(&all).snapshot());
        // merging an empty snapshot is the identity
        let mut id = left.clone();
        id.merge(&HistogramSnapshot::default());
        prop_assert_eq!(&id, &left);
    }

    #[test]
    fn snapshot_roundtrips_through_buckets(vals in values()) {
        // count/sum/max are exact regardless of bucketing
        let snap = hist_of(&vals).snapshot();
        prop_assert_eq!(snap.count(), vals.len() as u64);
        prop_assert_eq!(snap.sum(), vals.iter().fold(0u64, |s, &v| s.wrapping_add(v)));
        prop_assert_eq!(snap.max(), *vals.iter().max().unwrap());
    }
}

#[test]
fn concurrent_recorders_lose_nothing() {
    // Hammer one histogram from a rayon fork scope: every recorded
    // value must land (count and sum exact), matching a sequential
    // reference run.
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 10_000;
    let shared = Histogram::new();
    rayon::scope(|s| {
        for t in 0..THREADS {
            let shared = &shared;
            s.spawn(move |_| {
                for i in 0..PER_THREAD {
                    shared.record((t as u64 + 1) * 37 + i * i % 100_003);
                }
            });
        }
    });
    let reference = Histogram::new();
    for t in 0..THREADS {
        for i in 0..PER_THREAD {
            reference.record((t as u64 + 1) * 37 + i * i % 100_003);
        }
    }
    assert_eq!(shared.snapshot(), reference.snapshot());
    assert_eq!(shared.count(), THREADS as u64 * PER_THREAD);
}
