//! Sharded hash map — the TBB `concurrent_hash_map` stand-in (§6.1's
//! unordered comparison point).

use parking_lot::Mutex;
use std::collections::HashMap;

/// A concurrency-friendly unordered map: `2^shift` independently locked
/// shards, keys routed by a multiplicative hash.
pub struct ShardedMap {
    shards: Vec<Mutex<HashMap<u64, u64>>>,
    mask: u64,
}

impl ShardedMap {
    /// Create with `2^shift` shards and a per-shard capacity hint.
    pub fn new(shift: u32, capacity_per_shard: usize) -> Self {
        let n = 1usize << shift;
        ShardedMap {
            shards: (0..n)
                .map(|_| Mutex::new(HashMap::with_capacity(capacity_per_shard)))
                .collect(),
            mask: (n - 1) as u64,
        }
    }

    #[inline]
    fn shard(&self, key: u64) -> &Mutex<HashMap<u64, u64>> {
        let h = key.wrapping_mul(0x9e3779b97f4a7c15) >> 32;
        &self.shards[(h & self.mask) as usize]
    }

    /// Insert or overwrite; returns `true` if the key was new.
    pub fn insert(&self, key: u64, val: u64) -> bool {
        self.shard(key).lock().insert(key, val).is_none()
    }

    /// Lookup.
    pub fn get(&self, key: u64) -> Option<u64> {
        self.shard(key).lock().get(&key).copied()
    }

    /// Total number of entries (locks every shard; not linearizable).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// Is the map empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for ShardedMap {
    fn default() -> Self {
        Self::new(6, 1024)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn basic_ops() {
        let m = ShardedMap::default();
        assert!(m.insert(1, 10));
        assert!(!m.insert(1, 20));
        assert_eq!(m.get(1), Some(20));
        assert_eq!(m.get(2), None);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn concurrent_inserts() {
        let m = Arc::new(ShardedMap::new(4, 16));
        let handles: Vec<_> = (0..4u64)
            .map(|t| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        m.insert(i * 4 + t, i);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.len(), 40_000);
        assert_eq!(m.get(4 * 9999 + 3), Some(9999));
    }
}
