//! Sequential static 2D range tree — the CGAL comparator for Table 5 and
//! Figure 6(e).
//!
//! A textbook layered range tree over a segment-tree skeleton: points are
//! sorted by `x`; every segment-tree node stores its points sorted by `y`
//! together with prefix weight sums. Build O(n log n) time and space;
//! window weight-sum O(log² n); reporting O(k + log² n). Sequential and
//! non-persistent by design (that is the baseline's point); unlike the
//! real CGAL tree it *can* answer weight sums, which only makes the
//! comparison harder for PAM.

/// A static, sequential 2D range tree over `(x, y, w)` points.
pub struct StaticRangeTree {
    size: usize,                      // number of leaves (padded to a power of two)
    n: usize,                         // number of points
    xs: Vec<u32>,                     // x of each point, sorted
    nodes: Vec<Vec<(u32, u32, u64)>>, // per node: (y, x, w) sorted by (y, x)
    prefix: Vec<Vec<u64>>,            // per node: prefix sums of w
}

impl StaticRangeTree {
    /// Build from points (duplicates of `(x, y)` are kept as distinct
    /// entries — matching CGAL's multiset semantics).
    pub fn build(mut points: Vec<(u32, u32, u64)>) -> Self {
        points.sort_unstable();
        let n = points.len();
        let size = n.next_power_of_two().max(1);
        let xs: Vec<u32> = points.iter().map(|&(x, _, _)| x).collect();
        let mut nodes: Vec<Vec<(u32, u32, u64)>> = vec![Vec::new(); 2 * size];
        // leaves
        for (i, &(x, y, w)) in points.iter().enumerate() {
            nodes[size + i].push((y, x, w));
        }
        // internal: merge children by (y, x)
        for i in (1..size).rev() {
            let (left, right) = (&nodes[2 * i], &nodes[2 * i + 1]);
            let mut merged = Vec::with_capacity(left.len() + right.len());
            let (mut a, mut b) = (0, 0);
            while a < left.len() && b < right.len() {
                if left[a] <= right[b] {
                    merged.push(left[a]);
                    a += 1;
                } else {
                    merged.push(right[b]);
                    b += 1;
                }
            }
            merged.extend_from_slice(&left[a..]);
            merged.extend_from_slice(&right[b..]);
            nodes[i] = merged;
        }
        let prefix: Vec<Vec<u64>> = nodes
            .iter()
            .map(|v| {
                let mut acc = 0u64;
                v.iter()
                    .map(|&(_, _, w)| {
                        acc = acc.wrapping_add(w);
                        acc
                    })
                    .collect()
            })
            .collect();
        StaticRangeTree {
            size,
            n,
            xs,
            nodes,
            prefix,
        }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Is the tree empty?
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Leaf index range `[lo, hi)` of points with `xl <= x <= xr`.
    fn x_span(&self, xl: u32, xr: u32) -> (usize, usize) {
        let lo = self.xs.partition_point(|&x| x < xl);
        let hi = self.xs.partition_point(|&x| x <= xr);
        (lo, hi)
    }

    /// Visit the O(log n) canonical segment-tree nodes covering `[lo, hi)`.
    fn canonical(&self, lo: usize, hi: usize, mut visit: impl FnMut(usize)) {
        let (mut l, mut r) = (lo + self.size, hi + self.size);
        while l < r {
            if l & 1 == 1 {
                visit(l);
                l += 1;
            }
            if r & 1 == 1 {
                r -= 1;
                visit(r);
            }
            l >>= 1;
            r >>= 1;
        }
    }

    /// Sum of weights of points in the window. O(log² n).
    pub fn query_sum(&self, xl: u32, xr: u32, yl: u32, yr: u32) -> u64 {
        if xl > xr || yl > yr {
            return 0;
        }
        let (lo, hi) = self.x_span(xl, xr);
        let mut total = 0u64;
        self.canonical(lo, hi, |node| {
            let v = &self.nodes[node];
            let from = v.partition_point(|&(y, _, _)| y < yl);
            let to = v.partition_point(|&(y, _, _)| y <= yr);
            if to > from {
                let p = &self.prefix[node];
                let upper = p[to - 1];
                let lower = if from == 0 { 0 } else { p[from - 1] };
                total = total.wrapping_add(upper.wrapping_sub(lower));
            }
        });
        total
    }

    /// All points in the window, as `(x, y, w)` sorted by `(x, y)`.
    /// O(k + log² n).
    pub fn query_points(&self, xl: u32, xr: u32, yl: u32, yr: u32) -> Vec<(u32, u32, u64)> {
        if xl > xr || yl > yr {
            return Vec::new();
        }
        let (lo, hi) = self.x_span(xl, xr);
        let mut out = Vec::new();
        self.canonical(lo, hi, |node| {
            let v = &self.nodes[node];
            let from = v.partition_point(|&(y, _, _)| y < yl);
            let to = v.partition_point(|&(y, _, _)| y <= yr);
            out.extend(v[from..to].iter().map(|&(y, x, w)| (x, y, w)));
        });
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute(pts: &[(u32, u32, u64)], xl: u32, xr: u32, yl: u32, yr: u32) -> Vec<(u32, u32, u64)> {
        let mut v: Vec<(u32, u32, u64)> = pts
            .iter()
            .copied()
            .filter(|&(x, y, _)| xl <= x && x <= xr && yl <= y && y <= yr)
            .collect();
        v.sort_unstable();
        v
    }

    fn hash64(mut x: u64) -> u64 {
        x ^= x >> 33;
        x = x.wrapping_mul(0xff51afd7ed558ccd);
        x ^= x >> 33;
        x
    }

    #[test]
    fn tiny() {
        let pts = vec![(1, 1, 10), (2, 5, 20), (5, 2, 30), (7, 7, 40)];
        let t = StaticRangeTree::build(pts.clone());
        assert_eq!(t.query_sum(0, 10, 0, 10), 100);
        assert_eq!(t.query_sum(1, 2, 1, 5), 30);
        assert_eq!(t.query_points(1, 2, 1, 5), brute(&pts, 1, 2, 1, 5));
        assert_eq!(t.query_sum(3, 2, 0, 9), 0);
    }

    #[test]
    fn random_matches_bruteforce() {
        let pts: Vec<(u32, u32, u64)> = (0..3000u64)
            .map(|i| {
                (
                    (hash64(i * 3) % 1000) as u32,
                    (hash64(i * 3 + 1) % 1000) as u32,
                    hash64(i * 3 + 2) % 100,
                )
            })
            .collect();
        let t = StaticRangeTree::build(pts.clone());
        for q in 0..50u64 {
            let xl = (hash64(q * 4) % 1000) as u32;
            let yl = (hash64(q * 4 + 1) % 1000) as u32;
            let xr = (xl + 150).min(999);
            let yr = (yl + 150).min(999);
            let want = brute(&pts, xl, xr, yl, yr);
            assert_eq!(
                t.query_sum(xl, xr, yl, yr),
                want.iter().map(|&(_, _, w)| w).sum::<u64>()
            );
            assert_eq!(t.query_points(xl, xr, yl, yr), want);
        }
    }

    #[test]
    fn empty_and_duplicates() {
        let t = StaticRangeTree::build(vec![]);
        assert_eq!(t.query_sum(0, 10, 0, 10), 0);
        let t2 = StaticRangeTree::build(vec![(1, 1, 5), (1, 1, 7)]);
        assert_eq!(t2.query_sum(1, 1, 1, 1), 12);
        assert_eq!(t2.len(), 2);
    }
}
