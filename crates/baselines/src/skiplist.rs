//! Concurrent lock-free skiplist (insert + lookup) — one of the
//! concurrent comparators for Figures 6(a)/6(b).
//!
//! Design: a classic CAS-based skiplist *without deletion* (the
//! benchmark, like YCSB-C, is insert-then-read-only). Because nodes are
//! never unlinked, no safe-memory-reclamation scheme is needed: a node
//! published once stays valid until the whole list is dropped, at which
//! point exclusive ownership (`&mut self` in `Drop`) lets us free the
//! level-0 chain. This keeps the `unsafe` surface small and auditable.
//!
//! Linearization points: an insert linearizes at the successful CAS of
//! the level-0 predecessor's next pointer; upper-level links are
//! best-effort shortcuts (searches remain correct if they lag).

use std::ptr;
use std::sync::atomic::{AtomicPtr, AtomicU64, AtomicUsize, Ordering};

const MAX_LEVEL: usize = 24;

struct Node {
    key: u64,
    val: AtomicU64,
    next: Vec<AtomicPtr<Node>>, // length = tower height
}

impl Node {
    fn alloc(key: u64, val: u64, height: usize) -> *mut Node {
        let next = (0..height)
            .map(|_| AtomicPtr::new(ptr::null_mut()))
            .collect();
        Box::into_raw(Box::new(Node {
            key,
            val: AtomicU64::new(val),
            next,
        }))
    }
}

/// A concurrent, lock-free (insert/get) skiplist with `u64` keys/values.
pub struct SkipList {
    head: *mut Node, // sentinel; key unused
    len: AtomicUsize,
    seed: AtomicU64,
}

// SAFETY: all shared mutation goes through atomics; nodes are never freed
// while the list is alive.
unsafe impl Send for SkipList {}
// SAFETY: same argument as Send above — atomics only, no reclamation.
unsafe impl Sync for SkipList {}

impl Default for SkipList {
    fn default() -> Self {
        Self::new()
    }
}

impl SkipList {
    /// An empty list.
    pub fn new() -> Self {
        SkipList {
            head: Node::alloc(0, 0, MAX_LEVEL),
            len: AtomicUsize::new(0),
            seed: AtomicU64::new(0x9e3779b97f4a7c15),
        }
    }

    /// Geometric tower height (p = 1/2), from a stateless hash of a
    /// fetch-add counter.
    fn random_height(&self) -> usize {
        // relaxed: only distinctness of the counter values matters; the
        // heights they hash to need no cross-thread ordering
        let mut x = self.seed.fetch_add(0x9e3779b97f4a7c15, Ordering::Relaxed);
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
        x ^= x >> 31;
        ((x.trailing_ones() as usize) + 1).min(MAX_LEVEL)
    }

    /// Fill `preds`/`succs` with the insertion window for `key` at every
    /// level; returns a pointer to the node with `key` if present.
    fn find(
        &self,
        key: u64,
        preds: &mut [*mut Node; MAX_LEVEL],
        succs: &mut [*mut Node; MAX_LEVEL],
    ) -> *mut Node {
        let mut pred = self.head;
        for lvl in (0..MAX_LEVEL).rev() {
            // SAFETY: pred is head or a published node; nodes are never freed.
            let mut cur = unsafe { (&(*pred).next)[lvl].load(Ordering::Acquire) };
            // SAFETY: cur was non-null-checked and read from a published
            // node's next pointer; published nodes are never freed.
            while !cur.is_null() && unsafe { (*cur).key } < key {
                pred = cur;
                // SAFETY: cur is published and non-null (loop condition).
                cur = unsafe { (&(*cur).next)[lvl].load(Ordering::Acquire) };
            }
            preds[lvl] = pred;
            succs[lvl] = cur;
        }
        let candidate = succs[0];
        // SAFETY: candidate is non-null (checked) and came off a
        // published next pointer; nodes are never freed.
        if !candidate.is_null() && unsafe { (*candidate).key } == key {
            candidate
        } else {
            ptr::null_mut()
        }
    }

    /// Insert `key -> val`; overwrites the value if the key exists.
    /// Returns `true` if the key was new. Lock-free.
    pub fn insert(&self, key: u64, val: u64) -> bool {
        let mut preds = [ptr::null_mut(); MAX_LEVEL];
        let mut succs = [ptr::null_mut(); MAX_LEVEL];
        let height = self.random_height();
        loop {
            let existing = self.find(key, &mut preds, &mut succs);
            if !existing.is_null() {
                // SAFETY: published node, never freed while list is alive.
                unsafe { (*existing).val.store(val, Ordering::Release) };
                return false;
            }
            let node = Node::alloc(key, val, height);
            // pre-link the tower before publishing
            // SAFETY: node is freshly allocated and still exclusively
            // ours (not yet published to any other thread).
            for (lvl, n) in unsafe { &(*node).next }.iter().enumerate() {
                // relaxed: the node is unpublished; the release CAS
                // below makes these pre-links visible with it
                n.store(succs[lvl], Ordering::Relaxed);
            }
            // publish at level 0 (the linearization point)
            let pred0 = preds[0];
            // SAFETY: pred0 valid (head or published node).
            let cas = unsafe {
                (&(*pred0).next)[0].compare_exchange(
                    succs[0],
                    node,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                )
            };
            if cas.is_err() {
                // a racing insert got there first: free our node & retry
                // SAFETY: `node` was never published.
                drop(unsafe { Box::from_raw(node) });
                continue;
            }
            // relaxed: statistics counter; publication happened at the
            // level-0 CAS above
            self.len.fetch_add(1, Ordering::Relaxed);
            // best-effort upper levels
            for lvl in 1..height {
                loop {
                    let pred = preds[lvl];
                    let succ = succs[lvl];
                    // SAFETY: node is published; stores race benignly.
                    unsafe { (&(*node).next)[lvl].store(succ, Ordering::Release) };
                    // SAFETY: pred is head or a published node (find()
                    // only yields those); never freed while list lives.
                    let ok = unsafe {
                        (&(*pred).next)[lvl]
                            .compare_exchange(succ, node, Ordering::AcqRel, Ordering::Acquire)
                            .is_ok()
                    };
                    if ok {
                        break;
                    }
                    // contention: recompute the windows and retry this level
                    self.find(key, &mut preds, &mut succs);
                }
            }
            return true;
        }
    }

    /// Lookup. Wait-free for readers.
    pub fn get(&self, key: u64) -> Option<u64> {
        let mut pred = self.head;
        for lvl in (0..MAX_LEVEL).rev() {
            // SAFETY: see `find`.
            let mut cur = unsafe { (&(*pred).next)[lvl].load(Ordering::Acquire) };
            // SAFETY: cur is non-null (loop condition) and published;
            // published nodes are never freed while the list is alive.
            while !cur.is_null() && unsafe { (*cur).key } < key {
                pred = cur;
                // SAFETY: cur is published and non-null (loop condition).
                cur = unsafe { (&(*cur).next)[lvl].load(Ordering::Acquire) };
            }
            // SAFETY: non-null check precedes the deref; same
            // published-node argument as above for both accesses.
            if !cur.is_null() && unsafe { (*cur).key } == key {
                return Some(unsafe { (*cur).val.load(Ordering::Acquire) }); // SAFETY: see above
            }
        }
        None
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        // relaxed: statistics read; no data hangs off this counter
        self.len.load(Ordering::Relaxed)
    }

    /// Is the list empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of all entries in key order (not linearizable under
    /// concurrent inserts; test/debug helper).
    pub fn to_vec(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::with_capacity(self.len());
        // SAFETY: level-0 chain of published nodes.
        let mut cur = unsafe { (&(*self.head).next)[0].load(Ordering::Acquire) };
        while !cur.is_null() {
            // SAFETY: cur is non-null and published; reads are atomic.
            unsafe {
                out.push(((*cur).key, (*cur).val.load(Ordering::Acquire)));
                cur = (&(*cur).next)[0].load(Ordering::Acquire);
            }
        }
        out
    }
}

impl Drop for SkipList {
    fn drop(&mut self) {
        // exclusive access: free the level-0 chain and the sentinel
        let mut cur = self.head;
        while !cur.is_null() {
            // SAFETY: exclusive ownership; each node freed exactly once.
            // relaxed: &mut self means no other thread exists to race —
            // the load is effectively non-atomic
            let next = unsafe { (&(*cur).next)[0].load(Ordering::Relaxed) };
            // SAFETY: cur came from Box::into_raw in Node::alloc and,
            // with &mut self, nothing can reach it after this free.
            drop(unsafe { Box::from_raw(cur) });
            cur = next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn sequential_inserts_and_gets() {
        let s = SkipList::new();
        for i in (0..1000u64).rev() {
            assert!(s.insert(i * 7, i));
        }
        assert_eq!(s.len(), 1000);
        for i in 0..1000u64 {
            assert_eq!(s.get(i * 7), Some(i));
        }
        assert_eq!(s.get(3), None);
        // overwrite
        assert!(!s.insert(7, 999));
        assert_eq!(s.get(7), Some(999));
        assert_eq!(s.len(), 1000);
        // sortedness
        let v = s.to_vec();
        assert!(v.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn concurrent_inserts_lose_nothing() {
        let s = Arc::new(SkipList::new());
        let threads = 4;
        let per = 5000u64;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let s = s.clone();
                std::thread::spawn(move || {
                    for i in 0..per {
                        s.insert(i * threads + t, i);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.len(), (threads * per) as usize);
        let v = s.to_vec();
        assert_eq!(v.len(), (threads * per) as usize);
        assert!(v.windows(2).all(|w| w[0].0 < w[1].0));
        for t in 0..threads {
            for i in (0..per).step_by(97) {
                assert_eq!(s.get(i * threads + t), Some(i));
            }
        }
    }

    #[test]
    fn concurrent_same_key_inserts_keep_one_node() {
        let s = Arc::new(SkipList::new());
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let s = s.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        s.insert(42, t);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.len(), 1);
        assert!(s.get(42).is_some());
    }
}
