//! Brute-force interval collection — the stand-in for the Python
//! `intervaltree` comparison of §6.2 (the paper notes it is ~1000×
//! slower than PAM; a linear scan reproduces "asymptotically naive").

/// A flat list of half-open intervals `[l, r)` with linear-time queries.
#[derive(Default, Clone)]
pub struct IntervalList {
    data: Vec<(u64, u64)>,
}

impl IntervalList {
    /// Build from intervals (invalid ones with `l >= r` are dropped).
    pub fn from_intervals(intervals: Vec<(u64, u64)>) -> Self {
        IntervalList {
            data: intervals.into_iter().filter(|&(l, r)| l < r).collect(),
        }
    }

    /// Number of intervals.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Is the list empty?
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Stabbing query by linear scan. Θ(n).
    pub fn stab(&self, p: u64) -> bool {
        self.data.iter().any(|&(l, r)| l <= p && p < r)
    }

    /// All intervals containing `p`. Θ(n).
    pub fn report_all(&self, p: u64) -> Vec<(u64, u64)> {
        let mut out: Vec<(u64, u64)> = self
            .data
            .iter()
            .copied()
            .filter(|&(l, r)| l <= p && p < r)
            .collect();
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stab_and_report() {
        let l = IntervalList::from_intervals(vec![(1, 5), (3, 8), (10, 12), (4, 4)]);
        assert_eq!(l.len(), 3);
        assert!(l.stab(4));
        assert!(!l.stab(9));
        assert_eq!(l.report_all(4), vec![(1, 5), (3, 8)]);
    }
}
