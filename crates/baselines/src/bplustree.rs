//! Concurrent B+ tree with write lock coupling — the B+-tree / OpenBw
//! comparator for Figures 6(a)/6(b).
//!
//! Classic "crabbing" design with preemptive splits:
//!
//! * every node sits behind its own `parking_lot::RwLock`;
//! * inserts descend holding at most two write locks (parent + child),
//!   splitting any full child *before* descending into it, so splits
//!   never propagate upward;
//! * lookups descend with read-lock coupling;
//! * a root swap is guarded by the root-pointer lock plus a version
//!   counter, which operations check *after* locking the node they
//!   believe is the root (avoiding the stale-root race without taking
//!   the pointer lock mid-descent).

use parking_lot::lock_api::{ArcRwLockReadGuard, ArcRwLockWriteGuard};
use parking_lot::{RawRwLock, RwLock};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

const MAX_KEYS: usize = 32;

type NodeRef = Arc<RwLock<BpNode>>;
type WriteGuard = ArcRwLockWriteGuard<RawRwLock, BpNode>;
type ReadGuard = ArcRwLockReadGuard<RawRwLock, BpNode>;

enum BpNode {
    Leaf {
        keys: Vec<u64>,
        vals: Vec<u64>,
    },
    Internal {
        keys: Vec<u64>, // separators; kids[i] covers [keys[i-1], keys[i])
        kids: Vec<NodeRef>,
    },
}

impl BpNode {
    fn empty_leaf() -> BpNode {
        BpNode::Leaf {
            keys: Vec::with_capacity(MAX_KEYS + 1),
            vals: Vec::with_capacity(MAX_KEYS + 1),
        }
    }

    fn is_full(&self) -> bool {
        match self {
            BpNode::Leaf { keys, .. } => keys.len() >= MAX_KEYS,
            BpNode::Internal { keys, .. } => keys.len() >= MAX_KEYS,
        }
    }

    /// Split in place: `self` keeps the left half; returns the separator
    /// and the new right sibling. Keys `>= sep` live in the right half.
    fn split(&mut self) -> (u64, BpNode) {
        match self {
            BpNode::Leaf { keys, vals } => {
                let mid = keys.len() / 2;
                let rk = keys.split_off(mid);
                let rv = vals.split_off(mid);
                let sep = rk[0];
                (sep, BpNode::Leaf { keys: rk, vals: rv })
            }
            BpNode::Internal { keys, kids } => {
                let mid = keys.len() / 2;
                let sep = keys[mid];
                let rk = keys.split_off(mid + 1);
                keys.pop(); // sep moves up
                let rkids = kids.split_off(mid + 1);
                (
                    sep,
                    BpNode::Internal {
                        keys: rk,
                        kids: rkids,
                    },
                )
            }
        }
    }
}

/// A concurrent B+ tree map with `u64` keys and values.
pub struct BPlusTree {
    root: RwLock<NodeRef>,
    version: AtomicU64,
    len: AtomicUsize,
}

impl Default for BPlusTree {
    fn default() -> Self {
        Self::new()
    }
}

/// The single creation site for node locks: every tree node's `RwLock`
/// is born here, so they all share one lock class. The dynamic
/// lock-order detector in the parking_lot shim exempts same-class
/// nesting, which is exactly the crabbing invariant (parent locked
/// before child) this tree relies on; distinct per-split creation sites
/// would instead look like cross-class cycles.
fn new_node(n: BpNode) -> NodeRef {
    Arc::new(RwLock::new(n))
}

impl BPlusTree {
    /// An empty tree.
    pub fn new() -> Self {
        BPlusTree {
            root: RwLock::new(new_node(BpNode::empty_leaf())),
            version: AtomicU64::new(0),
            len: AtomicUsize::new(0),
        }
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        // relaxed: statistics counter; no data is published through it
        self.len.load(Ordering::Relaxed)
    }

    /// Is the tree empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lock the current root node (write), retrying across root swaps.
    fn lock_root_write(&self) -> WriteGuard {
        loop {
            let v = self.version.load(Ordering::Acquire);
            let root_arc = self.root.read().clone();
            let guard = RwLock::write_arc(&root_arc);
            if self.version.load(Ordering::Acquire) == v {
                return guard;
            }
            // a root swap raced us; retry with the new root
        }
    }

    fn lock_root_read(&self) -> ReadGuard {
        loop {
            let v = self.version.load(Ordering::Acquire);
            let root_arc = self.root.read().clone();
            let guard = RwLock::read_arc(&root_arc);
            if self.version.load(Ordering::Acquire) == v {
                return guard;
            }
        }
    }

    /// Grow the tree by one level (called when the root is full).
    fn split_root(&self) {
        let mut rootptr = self.root.write();
        let root_arc = rootptr.clone();
        let mut g = RwLock::write_arc(&root_arc);
        if !g.is_full() {
            return; // another thread already split it
        }
        let (sep, right) = g.split();
        let new_root = BpNode::Internal {
            keys: vec![sep],
            kids: vec![root_arc.clone(), new_node(right)],
        };
        *rootptr = new_node(new_root);
        self.version.fetch_add(1, Ordering::Release);
    }

    /// Insert or overwrite; returns `true` if the key was new.
    pub fn insert(&self, key: u64, val: u64) -> bool {
        loop {
            let guard = self.lock_root_write();
            if guard.is_full() {
                drop(guard);
                self.split_root();
                continue;
            }
            return self.descend_insert(guard, key, val);
        }
    }

    /// Precondition: `cur` (locked, write) is not full.
    fn descend_insert(&self, mut cur: WriteGuard, key: u64, val: u64) -> bool {
        loop {
            let next: Option<WriteGuard> = match &mut *cur {
                BpNode::Leaf { keys, vals } => {
                    let idx = keys.partition_point(|&x| x < key);
                    if idx < keys.len() && keys[idx] == key {
                        vals[idx] = val;
                        return false;
                    }
                    keys.insert(idx, key);
                    vals.insert(idx, val);
                    // relaxed: count-only; correctness is carried by the
                    // node locks, not by this counter
                    self.len.fetch_add(1, Ordering::Relaxed);
                    return true;
                }
                BpNode::Internal { keys, kids } => {
                    let idx = keys.partition_point(|&x| x <= key);
                    let child = kids[idx].clone();
                    let mut cg = RwLock::write_arc(&child);
                    if cg.is_full() {
                        // preemptive split under the parent lock (parent
                        // is non-full by the crabbing invariant)
                        let (sep, right) = cg.split();
                        let right_ref = new_node(right);
                        keys.insert(idx, sep);
                        kids.insert(idx + 1, right_ref.clone());
                        if key >= sep {
                            drop(cg);
                            cg = RwLock::write_arc(&right_ref);
                        }
                    }
                    Some(cg)
                }
            };
            // coupling: the child is locked and non-full; release parent.
            cur = next.expect("leaf case returns directly");
        }
    }

    /// Lookup with read-lock coupling.
    pub fn get(&self, key: u64) -> Option<u64> {
        let mut cur = self.lock_root_read();
        loop {
            let next: Option<ReadGuard> = match &*cur {
                BpNode::Leaf { keys, vals } => {
                    return keys.binary_search(&key).ok().map(|i| vals[i]);
                }
                BpNode::Internal { keys, kids } => {
                    let idx = keys.partition_point(|&x| x <= key);
                    let child = kids[idx].clone();
                    Some(RwLock::read_arc(&child))
                }
            };
            cur = next.expect("leaf case returns directly");
        }
    }

    /// All entries in key order (single-threaded helper for tests).
    pub fn to_vec(&self) -> Vec<(u64, u64)> {
        fn rec(node: &NodeRef, out: &mut Vec<(u64, u64)>) {
            let g = node.read();
            match &*g {
                BpNode::Leaf { keys, vals } => {
                    out.extend(keys.iter().copied().zip(vals.iter().copied()));
                }
                BpNode::Internal { kids, .. } => {
                    for k in kids {
                        rec(k, out);
                    }
                }
            }
        }
        let mut out = Vec::with_capacity(self.len());
        let root = self.root.read().clone();
        rec(&root, &mut out);
        out
    }

    /// Structural checks: key order, separator consistency, fill bounds
    /// (test helper; not thread-safe).
    pub fn check_invariants(&self) -> Result<(), String> {
        fn rec(node: &NodeRef, lo: Option<u64>, hi: Option<u64>) -> Result<usize, String> {
            let g = node.read();
            match &*g {
                BpNode::Leaf { keys, vals } => {
                    if keys.len() != vals.len() {
                        return Err("leaf keys/vals length mismatch".into());
                    }
                    if !keys.windows(2).all(|w| w[0] < w[1]) {
                        return Err("leaf keys not sorted".into());
                    }
                    if let (Some(l), Some(f)) = (lo, keys.first()) {
                        if *f < l {
                            return Err("leaf key below separator".into());
                        }
                    }
                    if let (Some(h), Some(l)) = (hi, keys.last()) {
                        if *l >= h {
                            return Err("leaf key at/above separator".into());
                        }
                    }
                    Ok(1)
                }
                BpNode::Internal { keys, kids } => {
                    if kids.len() != keys.len() + 1 {
                        return Err("internal fanout mismatch".into());
                    }
                    if !keys.windows(2).all(|w| w[0] < w[1]) {
                        return Err("separators not sorted".into());
                    }
                    let mut depth = None;
                    for (i, kid) in kids.iter().enumerate() {
                        let klo = if i == 0 { lo } else { Some(keys[i - 1]) };
                        let khi = if i == keys.len() { hi } else { Some(keys[i]) };
                        let d = rec(kid, klo, khi)?;
                        if *depth.get_or_insert(d) != d {
                            return Err("unbalanced depth".into());
                        }
                    }
                    Ok(depth.unwrap() + 1)
                }
            }
        }
        let root = self.root.read().clone();
        rec(&root, None, None).map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hash64(mut x: u64) -> u64 {
        x ^= x >> 33;
        x = x.wrapping_mul(0xff51afd7ed558ccd);
        x ^= x >> 33;
        x
    }

    #[test]
    fn sequential_matches_btreemap() {
        let t = BPlusTree::new();
        let mut model = std::collections::BTreeMap::new();
        for i in 0..50_000u64 {
            let k = hash64(i) % 20_000;
            t.insert(k, i);
            model.insert(k, i);
        }
        t.check_invariants().unwrap();
        assert_eq!(t.len(), model.len());
        assert_eq!(
            t.to_vec(),
            model.iter().map(|(&k, &v)| (k, v)).collect::<Vec<_>>()
        );
        for k in (0..20_000).step_by(37) {
            assert_eq!(t.get(k), model.get(&k).copied());
        }
    }

    #[test]
    fn concurrent_inserts_and_reads() {
        let t = Arc::new(BPlusTree::new());
        let threads = 4;
        let per = 10_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|tid| {
                let t = t.clone();
                std::thread::spawn(move || {
                    for i in 0..per {
                        let k = i * threads + tid;
                        t.insert(k, k * 10);
                        if i % 7 == 0 {
                            // read own writes
                            assert_eq!(t.get(k), Some(k * 10));
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(t.len(), (threads * per) as usize);
        t.check_invariants().unwrap();
        let v = t.to_vec();
        assert!(v.windows(2).all(|w| w[0].0 < w[1].0));
        assert_eq!(v.len(), (threads * per) as usize);
    }

    #[test]
    fn overwrite_does_not_grow() {
        let t = BPlusTree::new();
        for _ in 0..100 {
            t.insert(5, 1);
        }
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(5), Some(1));
    }

    #[test]
    fn ascending_and_descending_insertions() {
        let t = BPlusTree::new();
        for i in 0..10_000u64 {
            t.insert(i, i);
        }
        for i in (10_000..20_000u64).rev() {
            t.insert(i, i);
        }
        t.check_invariants().unwrap();
        assert_eq!(t.len(), 20_000);
        assert_eq!(t.get(0), Some(0));
        assert_eq!(t.get(19_999), Some(19_999));
    }
}
