//! # Comparison baselines for the PAM reproduction
//!
//! Every structure the paper benchmarks PAM against, rebuilt from scratch
//! in Rust (with documented substitutions for closed or impractical
//! comparators — see DESIGN.md):
//!
//! | paper comparator            | here                          |
//! |-----------------------------|-------------------------------|
//! | STL `map` (red-black tree)  | [`rbtree::RbTree`]            |
//! | STL sorted `vector` union   | [`sorted_seq::SortedVecMap`]  |
//! | MCSTL parallel multi-insert | [`par_merge::par_union`]      |
//! | concurrent skiplist         | [`skiplist::SkipList`]        |
//! | OpenBw / B+-tree \[63,65\]  | [`bplustree::BPlusTree`]      |
//! | TBB `concurrent_hash_map`   | [`sharded_map::ShardedMap`]   |
//! | CGAL range tree             | [`static_rangetree::StaticRangeTree`] |
//! | Python `intervaltree`       | [`interval_list::IntervalList`] |
//!
//! All baselines use `u64` keys/values (the benchmark currency of the
//! paper's §6.1) rather than full genericity: they exist to be measured,
//! not adopted.

#![warn(missing_docs)]

pub mod bplustree;
pub mod interval_list;
pub mod par_merge;
pub mod rbtree;
pub mod sharded_map;
pub mod skiplist;
pub mod sorted_seq;
pub mod static_rangetree;

pub use bplustree::BPlusTree;
pub use interval_list::IntervalList;
pub use rbtree::RbTree;
pub use sharded_map::ShardedMap;
pub use skiplist::SkipList;
pub use sorted_seq::SortedVecMap;
pub use static_rangetree::StaticRangeTree;
