//! Sequential red-black tree — the STL `std::map` stand-in.
//!
//! A classic single-threaded, mutable red-black tree (Okasaki-style
//! functional balancing over owned `Box`es, blackened at the root). Used
//! for the paper's "STL Insert" and "Union-Tree" rows in Table 3: the
//! Union-Tree baseline inserts the merge of both inputs into a fresh
//! tree, which is what `std::set_union` into an associative container
//! does.

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Color {
    Red,
    Black,
}

struct Node {
    color: Color,
    key: u64,
    val: u64,
    left: Link,
    right: Link,
}

type Link = Option<Box<Node>>;

/// A sequential red-black tree map with `u64` keys and values.
#[derive(Default)]
pub struct RbTree {
    root: Link,
    len: usize,
}

fn is_red(l: &Link) -> bool {
    matches!(l, Some(n) if n.color == Color::Red)
}

/// Okasaki's balance: rewrite any black node with a red child that has a
/// red child into a red node with two black children.
fn balance(mut n: Box<Node>) -> Box<Node> {
    if n.color == Color::Black {
        if is_red(&n.left) && is_red(&n.left.as_ref().unwrap().left) {
            // rotate right
            let mut l = n.left.take().unwrap();
            let mut ll = l.left.take().unwrap();
            n.left = l.right.take();
            ll.color = Color::Black;
            l.left = Some(ll);
            l.right = Some(n);
            l.right.as_mut().unwrap().color = Color::Black;
            l.color = Color::Red;
            return l;
        }
        if is_red(&n.left) && is_red(&n.left.as_ref().unwrap().right) {
            let mut l = n.left.take().unwrap();
            let mut lr = l.right.take().unwrap();
            l.right = lr.left.take();
            n.left = lr.right.take();
            l.color = Color::Black;
            n.color = Color::Black;
            lr.left = Some(l);
            lr.right = Some(n);
            lr.color = Color::Red;
            return lr;
        }
        if is_red(&n.right) && is_red(&n.right.as_ref().unwrap().right) {
            let mut r = n.right.take().unwrap();
            let mut rr = r.right.take().unwrap();
            n.right = r.left.take();
            rr.color = Color::Black;
            r.left = Some(n);
            r.left.as_mut().unwrap().color = Color::Black;
            r.right = Some(rr);
            r.color = Color::Red;
            return r;
        }
        if is_red(&n.right) && is_red(&n.right.as_ref().unwrap().left) {
            let mut r = n.right.take().unwrap();
            let mut rl = r.left.take().unwrap();
            r.left = rl.right.take();
            n.right = rl.left.take();
            r.color = Color::Black;
            n.color = Color::Black;
            rl.left = Some(n);
            rl.left.as_mut().unwrap().color = Color::Black; // n
            rl.right = Some(r);
            rl.color = Color::Red;
            return rl;
        }
    }
    n
}

fn ins(link: Link, key: u64, val: u64, added: &mut bool) -> Box<Node> {
    match link {
        None => {
            *added = true;
            Box::new(Node {
                color: Color::Red,
                key,
                val,
                left: None,
                right: None,
            })
        }
        Some(mut n) => match key.cmp(&n.key) {
            std::cmp::Ordering::Less => {
                n.left = Some(ins(n.left.take(), key, val, added));
                balance(n)
            }
            std::cmp::Ordering::Greater => {
                n.right = Some(ins(n.right.take(), key, val, added));
                balance(n)
            }
            std::cmp::Ordering::Equal => {
                n.val = val;
                n
            }
        },
    }
}

impl RbTree {
    /// The empty tree.
    pub fn new() -> Self {
        RbTree { root: None, len: 0 }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the tree empty?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Insert or overwrite. O(log n).
    pub fn insert(&mut self, key: u64, val: u64) {
        let mut added = false;
        let mut root = ins(self.root.take(), key, val, &mut added);
        root.color = Color::Black;
        self.root = Some(root);
        if added {
            self.len += 1;
        }
    }

    /// Lookup. O(log n).
    pub fn get(&self, key: u64) -> Option<u64> {
        let mut cur = &self.root;
        while let Some(n) = cur {
            match key.cmp(&n.key) {
                std::cmp::Ordering::Equal => return Some(n.val),
                std::cmp::Ordering::Less => cur = &n.left,
                std::cmp::Ordering::Greater => cur = &n.right,
            }
        }
        None
    }

    /// In-order entries.
    pub fn to_vec(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::with_capacity(self.len);
        let mut stack: Vec<&Node> = Vec::new();
        let mut cur = &self.root;
        loop {
            while let Some(n) = cur {
                stack.push(n);
                cur = &n.left;
            }
            match stack.pop() {
                None => break,
                Some(n) => {
                    out.push((n.key, n.val));
                    cur = &n.right;
                }
            }
        }
        out
    }

    /// The paper's "Union-Tree": merge two trees' entries and insert them
    /// one by one into a brand-new tree (what `std::set_union` into a
    /// `std::map` does — and why it loses badly in Table 3).
    pub fn union_by_insertion(a: &RbTree, b: &RbTree, combine: impl Fn(u64, u64) -> u64) -> RbTree {
        let (va, vb) = (a.to_vec(), b.to_vec());
        let mut out = RbTree::new();
        let (mut i, mut j) = (0, 0);
        while i < va.len() && j < vb.len() {
            match va[i].0.cmp(&vb[j].0) {
                std::cmp::Ordering::Less => {
                    out.insert(va[i].0, va[i].1);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.insert(vb[j].0, vb[j].1);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.insert(va[i].0, combine(va[i].1, vb[j].1));
                    i += 1;
                    j += 1;
                }
            }
        }
        for &(k, v) in &va[i..] {
            out.insert(k, v);
        }
        for &(k, v) in &vb[j..] {
            out.insert(k, v);
        }
        out
    }

    /// Validate the red-black invariants (test helper): returns the black
    /// height on success.
    pub fn check_invariants(&self) -> Result<u32, String> {
        if is_red(&self.root) {
            return Err("root is red".into());
        }
        fn rec(l: &Link, min: Option<u64>, max: Option<u64>) -> Result<u32, String> {
            match l {
                None => Ok(0),
                Some(n) => {
                    if let Some(m) = min {
                        if n.key <= m {
                            return Err("order violation".into());
                        }
                    }
                    if let Some(m) = max {
                        if n.key >= m {
                            return Err("order violation".into());
                        }
                    }
                    if n.color == Color::Red && (is_red(&n.left) || is_red(&n.right)) {
                        return Err("red-red violation".into());
                    }
                    let bl = rec(&n.left, min, Some(n.key))?;
                    let br = rec(&n.right, Some(n.key), max)?;
                    if bl != br {
                        return Err(format!("black height mismatch {bl} vs {br}"));
                    }
                    Ok(bl + u32::from(n.color == Color::Black))
                }
            }
        }
        rec(&self.root, None, None)
    }
}

// Iterative drop: Box's default recursive drop is fine for balanced
// trees (depth O(log n)), but be explicit to avoid any doubt at 10^8.
impl Drop for RbTree {
    fn drop(&mut self) {
        let mut stack: Vec<Box<Node>> = Vec::new();
        if let Some(r) = self.root.take() {
            stack.push(r);
        }
        while let Some(mut n) = stack.pop() {
            if let Some(l) = n.left.take() {
                stack.push(l);
            }
            if let Some(r) = n.right.take() {
                stack.push(r);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hash64(mut x: u64) -> u64 {
        x ^= x >> 33;
        x = x.wrapping_mul(0xff51afd7ed558ccd);
        x ^= x >> 33;
        x
    }

    #[test]
    fn insert_get_matches_btreemap() {
        let mut t = RbTree::new();
        let mut model = std::collections::BTreeMap::new();
        for i in 0..20_000u64 {
            let k = hash64(i) % 5000;
            t.insert(k, i);
            model.insert(k, i);
        }
        t.check_invariants().unwrap();
        assert_eq!(t.len(), model.len());
        assert_eq!(
            t.to_vec(),
            model.iter().map(|(&k, &v)| (k, v)).collect::<Vec<_>>()
        );
        for k in 0..5100 {
            assert_eq!(t.get(k), model.get(&k).copied());
        }
    }

    #[test]
    fn union_by_insertion_is_correct() {
        let mut a = RbTree::new();
        let mut b = RbTree::new();
        for i in 0..1000u64 {
            a.insert(i * 2, i);
            b.insert(i * 3, i);
        }
        let u = RbTree::union_by_insertion(&a, &b, |x, y| x + y);
        u.check_invariants().unwrap();
        let mut model = std::collections::BTreeMap::new();
        for i in 0..1000u64 {
            model.insert(i * 2, i);
        }
        for i in 0..1000u64 {
            model.entry(i * 3).and_modify(|v| *v += i).or_insert(i);
        }
        assert_eq!(
            u.to_vec(),
            model.iter().map(|(&k, &v)| (k, v)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn sequential_keys_stay_balanced() {
        let mut t = RbTree::new();
        for i in 0..10_000u64 {
            t.insert(i, i);
        }
        let bh = t.check_invariants().unwrap();
        // black height of a 10^4-node RB tree is at most ~log2(n)
        assert!(bh <= 16, "black height {bh}");
    }
}
