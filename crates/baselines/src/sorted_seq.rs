//! Sorted-array map — the paper's "Union-Array" baseline (STL
//! `std::set_union` on sorted `vector`s).
//!
//! Flat, cache-friendly, unbeatable for same-size unions; loses to the
//! tree when one side is much smaller (O(n + m) vs O(m log(n/m + 1)))
//! and cannot answer range sums in sublinear time — exactly the
//! trade-offs Table 3 demonstrates.

/// An immutable sorted-array map with `u64` keys and values.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SortedVecMap {
    data: Vec<(u64, u64)>,
}

impl SortedVecMap {
    /// Build from unsorted pairs; duplicate keys keep the last value.
    pub fn from_unsorted(mut items: Vec<(u64, u64)>) -> Self {
        items.sort_by_key(|&(k, _)| k);
        // last value wins: iterate and overwrite
        let mut data: Vec<(u64, u64)> = Vec::with_capacity(items.len());
        for (k, v) in items {
            match data.last_mut() {
                Some(last) if last.0 == k => last.1 = v,
                _ => data.push((k, v)),
            }
        }
        SortedVecMap { data }
    }

    /// Wrap a slice already sorted by distinct keys.
    pub fn from_sorted(data: Vec<(u64, u64)>) -> Self {
        debug_assert!(data.windows(2).all(|w| w[0].0 < w[1].0));
        SortedVecMap { data }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Is the map empty?
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Binary-search lookup. O(log n).
    pub fn get(&self, k: u64) -> Option<u64> {
        self.data
            .binary_search_by_key(&k, |&(k, _)| k)
            .ok()
            .map(|i| self.data[i].1)
    }

    /// Sequential merge union (the STL `set_union` analogue): O(n + m)
    /// regardless of the size imbalance. Overlapping keys are combined.
    pub fn union(&self, other: &SortedVecMap, combine: impl Fn(u64, u64) -> u64) -> SortedVecMap {
        let (a, b) = (&self.data, &other.data);
        let mut out = Vec::with_capacity(a.len() + b.len());
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].0.cmp(&b[j].0) {
                std::cmp::Ordering::Less => {
                    out.push(a[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(b[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push((a[i].0, combine(a[i].1, b[j].1)));
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&a[i..]);
        out.extend_from_slice(&b[j..]);
        SortedVecMap { data: out }
    }

    /// Range sum *without* augmentation: binary-search the bounds, then
    /// scan — Θ(k) for k entries in range (the paper's non-augmented
    /// AugRange comparison row).
    pub fn range_sum(&self, lo: u64, hi: u64) -> u64 {
        let from = self.data.partition_point(|&(k, _)| k < lo);
        let to = self.data.partition_point(|&(k, _)| k <= hi);
        if to <= from {
            return 0;
        }
        self.data[from..to]
            .iter()
            .fold(0u64, |s, &(_, v)| s.wrapping_add(v))
    }

    /// Borrow the underlying sorted entries.
    pub fn as_slice(&self) -> &[(u64, u64)] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_get() {
        let m = SortedVecMap::from_unsorted(vec![(3, 30), (1, 10), (2, 20), (3, 99)]);
        assert_eq!(m.len(), 3);
        assert_eq!(m.get(3), Some(99)); // last wins
        assert_eq!(m.get(4), None);
    }

    #[test]
    fn union_combines_overlaps() {
        let a = SortedVecMap::from_sorted(vec![(1, 1), (3, 3), (5, 5)]);
        let b = SortedVecMap::from_sorted(vec![(2, 2), (3, 30), (6, 6)]);
        let u = a.union(&b, |x, y| x + y);
        assert_eq!(u.as_slice(), &[(1, 1), (2, 2), (3, 33), (5, 5), (6, 6)]);
    }

    #[test]
    fn range_sum_matches_scan() {
        let m = SortedVecMap::from_sorted((0..1000u64).map(|i| (i, i)).collect());
        assert_eq!(m.range_sum(10, 19), (10..20).sum::<u64>());
        assert_eq!(m.range_sum(990, 2000), (990..1000).sum::<u64>());
        assert_eq!(m.range_sum(50, 40), 0);
    }
}
