//! Parallel sorted-array union — the MCSTL bulk-insertion stand-in
//! (Table 3's "MCSTL Multi-Insert" rows).
//!
//! Bulk insertion into a sorted array: parallel-merge the (sorted) batch
//! with the existing data, combining values on key collisions. O(n + m)
//! work like the sequential array union, but with parallel merge span.

use std::mem::MaybeUninit;

/// Parallel union of two sorted-by-distinct-key slices; on key collisions
/// the result is `combine(a_val, b_val)`.
pub fn par_union(
    a: &[(u64, u64)],
    b: &[(u64, u64)],
    combine: impl Fn(u64, u64) -> u64 + Sync,
) -> Vec<(u64, u64)> {
    // merge keeping both duplicates adjacent (stable: a's copy first) ...
    let merged = parlay::par_fill(
        a.len() + b.len(),
        |out: &mut [MaybeUninit<(u64, u64)>]| {
            parlay::par_merge_into(a, b, out, &|x: &(u64, u64), y: &(u64, u64)| x.0.cmp(&y.0));
        },
    );
    // ... then collapse the duplicate pairs in parallel.
    parlay::combine_duplicates_by(merged, |x, y| x.0 == y.0, |x, y| (x.0, combine(x.1, y.1)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_sequential_union() {
        let a: Vec<(u64, u64)> = (0..10_000).map(|i| (i * 2, i)).collect();
        let b: Vec<(u64, u64)> = (0..10_000).map(|i| (i * 3, i)).collect();
        let got = par_union(&a, &b, |x, y| x + y);
        let sa = crate::sorted_seq::SortedVecMap::from_sorted(a);
        let sb = crate::sorted_seq::SortedVecMap::from_sorted(b);
        let want = sa.union(&sb, |x, y| x + y);
        assert_eq!(got, want.as_slice());
    }

    #[test]
    fn empty_sides() {
        let a: Vec<(u64, u64)> = vec![(1, 1)];
        assert_eq!(par_union(&a, &[], |x, _| x), a);
        assert_eq!(par_union(&[], &a, |x, _| x), a);
    }
}
