//! Write operations and batch normalization.
//!
//! The committer receives an epoch's operations in arrival order, tagged
//! with global sequence numbers. Before touching the tree it *normalizes*
//! the batch: parallel-sort by `(key, seq)` (`parlay::par_sort_by`), then
//! collapse each key run to its **last** operation
//! (`parlay::combine_duplicates_by` — last-write-wins), and split the
//! survivors into one `multi_insert` batch and one `multi_delete` batch.
//! After normalization the two batches have disjoint key sets, so the
//! order they are applied in does not matter.

use pam::AugSpec;

/// A single key-value store operation.
pub enum WriteOp<S: AugSpec> {
    /// Insert or overwrite `key` with `value`.
    Put(S::K, S::V),
    /// Remove `key` (no-op if absent).
    Delete(S::K),
}

impl<S: AugSpec> WriteOp<S> {
    /// The key this operation targets.
    pub fn key(&self) -> &S::K {
        match self {
            WriteOp::Put(k, _) => k,
            WriteOp::Delete(k) => k,
        }
    }
}

impl<S: AugSpec> Clone for WriteOp<S> {
    fn clone(&self) -> Self {
        match self {
            WriteOp::Put(k, v) => WriteOp::Put(k.clone(), v.clone()),
            WriteOp::Delete(k) => WriteOp::Delete(k.clone()),
        }
    }
}

impl<S: AugSpec> std::fmt::Debug for WriteOp<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WriteOp::Put(..) => write!(f, "Put(..)"),
            WriteOp::Delete(..) => write!(f, "Delete(..)"),
        }
    }
}

/// A normalized epoch: at most one surviving operation per key.
///
/// This is the unit the committer applies to the tree — and, verbatim,
/// the unit a [`crate::pipeline::CommitHook`] logs: because the batch is
/// already sorted and last-write-wins resolved, re-applying it is
/// idempotent, which is what lets crash recovery overlap a checkpoint
/// with the log records it subsumes.
pub struct NormalizedBatch<S: AugSpec> {
    /// Last-write-wins upserts, sorted by key, distinct.
    pub puts: Vec<(S::K, S::V)>,
    /// Keys to remove, sorted, distinct, disjoint from `puts`.
    pub deletes: Vec<S::K>,
    /// Raw operation count before deduplication.
    pub raw_ops: usize,
}

impl<S: AugSpec> NormalizedBatch<S> {
    /// Did every raw operation cancel out (no surviving puts or
    /// deletes)? Such an epoch still commits (and, when durable, still
    /// logs — its WAL record may carry a cross-shard stamp recovery
    /// votes on) but applies no tree work.
    pub fn is_empty(&self) -> bool {
        self.puts.is_empty() && self.deletes.is_empty()
    }

    /// Surviving operations (puts + deletes) after last-write-wins
    /// deduplication.
    pub fn len(&self) -> usize {
        self.puts.len() + self.deletes.len()
    }
}

/// Sort + last-write-wins dedup + partition (see module docs).
pub fn normalize<S: AugSpec>(mut ops: Vec<(u64, WriteOp<S>)>) -> NormalizedBatch<S> {
    let raw_ops = ops.len();
    // Parallel sort by (key, seq): equal keys end up adjacent with their
    // operations in arrival order.
    parlay::par_sort_by(&mut ops, |a, b| {
        S::compare(a.1.key(), b.1.key()).then(a.0.cmp(&b.0))
    });
    // Collapse each key run to its latest operation (LWW).
    let survivors = parlay::combine_duplicates_by(
        ops,
        |a, b| S::compare(a.1.key(), b.1.key()).is_eq(),
        |_earlier, later| later.clone(),
    );
    let mut puts = Vec::with_capacity(survivors.len());
    let mut deletes = Vec::new();
    for (_, op) in survivors {
        match op {
            WriteOp::Put(k, v) => puts.push((k, v)),
            WriteOp::Delete(k) => deletes.push(k),
        }
    }
    NormalizedBatch {
        puts,
        deletes,
        raw_ops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pam::SumAug;

    type S = SumAug<u64, u64>;

    fn norm(ops: Vec<(u64, WriteOp<S>)>) -> NormalizedBatch<S> {
        normalize::<S>(ops)
    }

    #[test]
    fn last_write_wins_per_key() {
        let b = norm(vec![
            (0, WriteOp::Put(5, 50)),
            (1, WriteOp::Put(1, 10)),
            (2, WriteOp::Put(5, 51)),
            (3, WriteOp::Put(5, 52)),
        ]);
        assert_eq!(b.puts, vec![(1, 10), (5, 52)]);
        assert!(b.deletes.is_empty());
        assert_eq!(b.raw_ops, 4);
    }

    #[test]
    fn delete_after_put_deletes() {
        let b = norm(vec![
            (0, WriteOp::Put(9, 1)),
            (1, WriteOp::Delete(9)),
            (2, WriteOp::Put(2, 2)),
        ]);
        assert_eq!(b.puts, vec![(2, 2)]);
        assert_eq!(b.deletes, vec![9]);
    }

    #[test]
    fn put_after_delete_survives() {
        let b = norm(vec![(0, WriteOp::Delete(4)), (1, WriteOp::Put(4, 44))]);
        assert_eq!(b.puts, vec![(4, 44)]);
        assert!(b.deletes.is_empty());
    }

    #[test]
    fn large_batch_is_sorted_and_distinct() {
        let ops: Vec<(u64, WriteOp<S>)> = (0..50_000u64)
            .map(|i| {
                let k = i % 1000;
                if i % 7 == 0 {
                    (i, WriteOp::Delete(k))
                } else {
                    (i, WriteOp::Put(k, i))
                }
            })
            .collect();
        let b = norm(ops);
        assert_eq!(b.puts.len() + b.deletes.len(), 1000);
        assert!(b.puts.windows(2).all(|w| w[0].0 < w[1].0));
        assert!(b.deletes.windows(2).all(|w| w[0] < w[1]));
        // disjoint key sets
        let dels: std::collections::HashSet<u64> = b.deletes.iter().copied().collect();
        assert!(b.puts.iter().all(|(k, _)| !dels.contains(k)));
        // each key's survivor is its chronologically last op
        for &(k, v) in &b.puts {
            let last = (0..50_000u64).filter(|i| i % 1000 == k).max().unwrap();
            assert!(last % 7 != 0, "a deleted key leaked into puts");
            assert_eq!(v, last);
        }
    }
}
