//! The batched group-commit pipeline.
//!
//! Writers append operations to the open *epoch segment* and receive a
//! [`CommitTicket`] immediately — enqueueing is a mutex push, never tree
//! work. The buffer is a FIFO queue of segments, each of which becomes
//! exactly one committed epoch:
//!
//! * plain submissions (`Pipeline::submit_all`) pile into the open
//!   segment at the queue's back, sharing its epoch (group commit);
//! * a **sealed** submission (`Pipeline::submit_sealed`) — one shard's
//!   slice of a cross-shard atomic batch, tagged with a
//!   [`GlobalStamp`] — always gets a segment (and therefore a WAL
//!   record) of its own, so crash recovery can commit or discard the
//!   whole batch at record granularity.
//!
//! A dedicated committer thread:
//!
//! 1. sleeps until a segment has work, then — when the sole queued
//!    segment is an open one — lingers for the configured *group-commit
//!    window* so concurrent writers share the batch;
//! 2. pops the front segment atomically (this is what makes an epoch an
//!    all-or-nothing unit: either every operation of an epoch is in the
//!    published version, or none is);
//! 3. normalizes the batch (parallel sort + last-write-wins dedup, see
//!    [`crate::op`]) and applies it as one work-optimal
//!    `multi_insert` + `multi_delete` on a snapshot — **outside** any
//!    lock — publishing the result via `SharedMap::commit_cas`;
//! 4. publishes the new version in the registry, then wakes every ticket
//!    of the epoch.
//!
//! Tree work per epoch is O(m log(n/m + 1)) for m deduplicated operations
//! — the paper's `multi_insert` bound — regardless of how many writers
//! contributed, which is the whole point of group commit.

use crate::config::StoreConfig;
use crate::op::{normalize, NormalizedBatch, WriteOp};
use crate::registry::Registry;
use crate::stats::{CommitTiming, StatsInner};
use pam::balance::Balance;
use pam::{AugSpec, SharedMap};
use pam_obs::{event, flight, EpochTrace, FlightRecorder, Level};
use pam_wal::GlobalStamp;
use parking_lot::{Condvar, Mutex, MutexGuard};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// The committer's durability extension point (implemented by
/// `DurableStore`'s WAL writer; see [`crate::VersionedStore::with_commit_hook`]).
///
/// Ordering contract, per epoch:
///
/// 1. [`CommitHook::log_epoch`] runs after normalization and **before**
///    the epoch is applied, published, or acknowledged. When it returns
///    `Ok`, the record must be as durable as the hook's policy promises —
///    every [`CommitTicket`] of the epoch is still blocked at this point.
///    `global` is the cross-shard batch stamp when the epoch is a sealed
///    slice of a multi-shard `write_batch` (`None` otherwise); a durable
///    hook must persist it with the record, because recovery's atomicity
///    vote depends on it.
/// 2. [`CommitHook::epoch_published`] runs after the version is visible
///    in the registry and *before* tickets wake, so anything the hook
///    records (e.g. the highest published epoch a checkpoint may claim)
///    is conservative.
///
/// If `log_epoch` fails the store is **poisoned**: the committer stops,
/// buffered writes are dropped, and every in-flight or future
/// `wait`/`flush`/`submit` panics — fail-stop beats silently acking
/// writes that never reached the log.
pub trait CommitHook<S: AugSpec>: Send + Sync {
    /// Make the normalized epoch durable.
    ///
    /// # Errors
    ///
    /// Any error poisons the store (fail-stop): the committer exits and
    /// every subsequent submit/wait/flush panics.
    fn log_epoch(
        &self,
        epoch: u64,
        global: Option<GlobalStamp>,
        batch: &NormalizedBatch<S>,
    ) -> std::io::Result<()>;

    /// The epoch's version is now readable in the registry.
    fn epoch_published(&self, epoch: u64, version: u64) {
        let _ = (epoch, version);
    }
}

/// One queued epoch: its pre-assigned epoch number, its operations, and
/// (for a sealed cross-shard slice) the batch stamp.
struct EpochSeg<S: AugSpec> {
    epoch: u64,
    global: Option<GlobalStamp>,
    ops: Vec<(u64, WriteOp<S>)>,
    /// Sealed segments never accept further operations (cross-shard
    /// slices must map 1:1 onto WAL records); the open segment at the
    /// queue's back keeps accumulating until the committer pops it.
    sealed: bool,
    /// When the segment was created — its group-commit window occupancy
    /// (creation to drain) is measured from here.
    opened_at: Instant,
}

/// Epoch numbering starts at 1 so "nothing committed yet" is 0.
struct PipeState<S: AugSpec> {
    /// FIFO queue of epoch segments; the back may be an open (unsealed)
    /// segment that plain submissions keep joining.
    queue: VecDeque<EpochSeg<S>>,
    /// Epoch number the next created segment will take.
    next_epoch: u64,
    /// Highest epoch fully applied and published.
    committed_epoch: u64,
    /// Version that made `committed_epoch` durable.
    committed_version: u64,
    /// Global sequence counter for LWW ordering.
    next_seq: u64,
    shutdown: bool,
    /// Set when the commit hook failed: the store is fail-stopped. Holds
    /// the original hook error so every later panic, the `/health`
    /// endpoint, and the flight dump can name the root cause instead of
    /// a generic "a commit hook failed".
    poisoned: Option<String>,
    /// While true, `submit` blocks (the committer keeps draining): the
    /// quiesce point sharded snapshots use as their epoch barrier.
    barrier: bool,
}

pub(crate) struct Pipeline<S: AugSpec> {
    state: Mutex<PipeState<S>>,
    /// Wakes the committer (work arrived / batch cap crossed / shutdown).
    work: Condvar,
    /// Wakes ticket holders (an epoch committed).
    done: Condvar,
    /// Wakes submitters blocked on a barrier (see [`Pipeline::begin_barrier`]).
    gate: Condvar,
    /// Crossing this op count in the open segment cuts the group-commit
    /// window short.
    max_batch: usize,
    /// Shared with the owning store: the committer and `admit()` record
    /// into it directly.
    stats: Arc<StatsInner>,
    /// Track id (shard index) stamped onto the [`EpochTrace`]s this
    /// pipeline records into the process flight ring; 0 for unsharded
    /// stores, set by the sharded store at assembly time.
    trace_shard: AtomicU32,
}

impl<S: AugSpec> Pipeline<S> {
    pub fn new(max_batch: usize, stats: Arc<StatsInner>) -> Self {
        // Settle the flight-recorder anchor before the first segment
        // Instant exists, or early epochs' window timestamps would clamp
        // to zero (see `pam_obs::flight`).
        let _ = flight::anchor();
        Pipeline {
            max_batch: max_batch.max(1),
            stats,
            state: Mutex::new(PipeState {
                queue: VecDeque::new(),
                next_epoch: 1,
                committed_epoch: 0,
                committed_version: 0,
                next_seq: 0,
                shutdown: false,
                poisoned: None,
                barrier: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
            gate: Condvar::new(),
            trace_shard: AtomicU32::new(0),
        }
    }

    /// Stamp all future flight-ring traces with `shard` (the sharded
    /// store labels each member pipeline with its index so the Chrome
    /// export gets one track per shard).
    pub fn set_trace_shard(&self, shard: u32) {
        // relaxed: a trace label set once at construction; readers only
        // stamp diagnostics with it
        self.trace_shard.store(shard, Ordering::Relaxed);
    }

    /// The original commit-hook error if the store fail-stopped, `None`
    /// while healthy.
    pub fn poison_reason(&self) -> Option<String> {
        self.state.lock().poisoned.clone()
    }

    /// Panic with the stored root cause if the store is poisoned.
    fn check_poison(g: &PipeState<S>) {
        if let Some(reason) = &g.poisoned {
            // lint: allow(panic) poisoning is the designed fail-stop:
            // once a committer died mid-epoch, every subsequent call
            // must refuse loudly rather than serve a half-applied state
            panic!("store poisoned: {reason}");
        }
    }

    /// Park while a snapshot barrier is up, then check liveness.
    fn admit<'a>(&'a self, mut g: MutexGuard<'a, PipeState<S>>) -> MutexGuard<'a, PipeState<S>> {
        // A barrier (sharded snapshot in progress) parks submitters until
        // it lifts; the committer keeps draining, so the wait is one
        // flush, not a stall. Parked time feeds the barrier-wait
        // histogram (and the `fence_waits` counter).
        if g.barrier {
            let parked = Instant::now();
            while g.barrier {
                self.gate.wait(&mut g);
            }
            self.stats.record_fence_wait(parked.elapsed());
        }
        Self::check_poison(&g);
        assert!(!g.shutdown, "store is shutting down");
        g
    }

    /// Enqueue one operation; returns its epoch.
    pub fn submit(self: &Arc<Self>, op: WriteOp<S>) -> CommitTicket<S> {
        self.submit_all(std::iter::once(op))
    }

    /// Enqueue several operations **atomically**: they share an epoch, so
    /// a reader either sees all of them applied or none.
    pub fn submit_all(
        self: &Arc<Self>,
        ops: impl IntoIterator<Item = WriteOp<S>>,
    ) -> CommitTicket<S> {
        let mut g = self.admit(self.state.lock());
        // Join the open segment at the back, or start one.
        let open_at_back = g.queue.back().is_some_and(|seg| !seg.sealed);
        if !open_at_back {
            let epoch = g.next_epoch;
            g.next_epoch += 1;
            g.queue.push_back(EpochSeg {
                epoch,
                global: None,
                ops: Vec::new(),
                sealed: false,
                opened_at: Instant::now(),
            });
        }
        let mut pushed = false;
        let was_empty;
        {
            let seq0 = g.next_seq;
            // lint: allow(panic) the block above pushed a segment if the
            // back was sealed or the queue empty — an open back segment
            // is this function's loop invariant
            let seg = g.queue.back_mut().expect("open segment present");
            was_empty = seg.ops.is_empty();
            let mut seq = seq0;
            for op in ops {
                seg.ops.push((seq, op));
                seq += 1;
                pushed = true;
            }
            g.next_seq = seq;
        }
        let (seg_epoch, seg_len) = {
            // lint: allow(panic) same invariant as above, still under the
            // same state guard
            let seg = g.queue.back().expect("open segment present");
            (seg.epoch, seg.ops.len())
        };
        // An empty submission is vacuously durable (epoch 0 counts as
        // always-committed). Drop a freshly created empty segment so the
        // committer never sees zero-op epochs.
        let epoch = if pushed {
            seg_epoch
        } else {
            if !open_at_back {
                g.queue.pop_back();
                g.next_epoch -= 1;
            }
            0
        };
        // Wake the committer when the segment gets its first op (starts
        // the group-commit window) and when it crosses the batch cap
        // (cuts the window short, bounding latency and memory).
        if pushed && (was_empty || seg_len >= self.max_batch) {
            self.work.notify_one();
        }
        drop(g);
        CommitTicket {
            epoch,
            pipe: Arc::clone(self),
        }
    }

    /// Enqueue a **sealed** epoch: `ops` get a segment of their own —
    /// one epoch, one WAL record — tagged with the cross-shard batch
    /// stamp. The sharded store submits each shard's slice of a
    /// multi-shard `write_batch` this way so recovery can commit or
    /// discard the batch at record granularity. An empty `ops` is
    /// vacuously durable (ticket epoch 0), mirroring [`Self::submit_all`].
    pub fn submit_sealed(
        self: &Arc<Self>,
        ops: Vec<WriteOp<S>>,
        global: Option<GlobalStamp>,
    ) -> CommitTicket<S> {
        if ops.is_empty() {
            return CommitTicket {
                epoch: 0,
                pipe: Arc::clone(self),
            };
        }
        let mut g = self.admit(self.state.lock());
        let epoch = g.next_epoch;
        g.next_epoch += 1;
        let seq0 = g.next_seq;
        let tagged: Vec<(u64, WriteOp<S>)> = ops
            .into_iter()
            .enumerate()
            .map(|(i, op)| (seq0 + i as u64, op))
            .collect();
        g.next_seq = seq0 + tagged.len() as u64;
        g.queue.push_back(EpochSeg {
            epoch,
            global,
            ops: tagged,
            sealed: true,
            opened_at: Instant::now(),
        });
        self.work.notify_one();
        drop(g);
        CommitTicket {
            epoch,
            pipe: Arc::clone(self),
        }
    }

    /// Wait until everything enqueued so far is committed; returns the
    /// version that contains it.
    pub fn flush(&self) -> u64 {
        let mut g = self.state.lock();
        // An empty queue does NOT mean everything is durable: the
        // committer may have popped an epoch and still be applying it.
        // Wait for every epoch handed out so far.
        let target = match g.queue.back() {
            Some(seg) => seg.epoch,
            None => g.next_epoch - 1,
        };
        if g.committed_epoch >= target {
            return g.committed_version;
        }
        self.work.notify_one();
        while g.committed_epoch < target {
            Self::check_poison(&g);
            self.done.wait(&mut g);
        }
        g.committed_version
    }

    /// Ask the committer to exit once the queue is drained.
    pub fn begin_shutdown(&self) {
        self.state.lock().shutdown = true;
        self.work.notify_one();
    }

    /// Raise the submit barrier: operations already buffered keep
    /// committing, but new `submit` calls block until
    /// [`Pipeline::end_barrier`]. Barriers on one pipeline are serialized
    /// against each other. This is the per-shard half of a consistent
    /// cross-shard snapshot: barrier every shard, flush, pin, release.
    /// (The cross-shard half — no batch may be *half-submitted* when the
    /// barriers go up — is the sharded store's epoch fence.)
    pub fn begin_barrier(&self) {
        let mut g = self.state.lock();
        while g.barrier {
            self.gate.wait(&mut g);
        }
        g.barrier = true;
    }

    /// Lower the submit barrier and wake parked submitters.
    pub fn end_barrier(&self) {
        self.state.lock().barrier = false;
        self.gate.notify_all();
    }

    /// The committer loop. Runs on its own thread until shutdown *and*
    /// empty queue (or until the commit hook fails — see [`CommitHook`]).
    pub fn run_committer<B: Balance>(
        &self,
        head: &SharedMap<S, B>,
        registry: &Registry<S, B>,
        config: &StoreConfig,
        hook: Option<&dyn CommitHook<S>>,
    ) {
        let mut g = self.state.lock();
        loop {
            let Some(front) = g.queue.front() else {
                if g.shutdown {
                    return;
                }
                self.work.wait(&mut g);
                continue;
            };
            // Group-commit window: when the only queued segment is the
            // open one, linger once so concurrent writers can join its
            // epoch (skipped when already over the batch cap, when
            // draining for shutdown, with a zero window, or when sealed
            // segments queue behind — those commit back-to-back). Gate on
            // the *clamped* cap so submit and committer agree even for a
            // `max_batch: 0` config (clamped to 1 in `Pipeline::new`).
            if !config.batch_window.is_zero()
                && g.queue.len() == 1
                && !front.sealed
                && front.ops.len() < self.max_batch
                && !g.shutdown
            {
                let _ = self.work.wait_timeout(&mut g, config.batch_window);
                if g.queue.is_empty() {
                    continue; // spurious wakeup before any op landed
                }
            }
            // Pop the front epoch atomically.
            // lint: allow(panic) the wait loop above only exits when the
            // queue has a sealed front segment (or shutdown returned)
            let seg = g.queue.pop_front().expect("front segment present");
            drop(g);
            let (epoch, global, batch) = (seg.epoch, seg.global, seg.ops);
            let opened_at = seg.opened_at;
            // Window occupancy: segment creation → drained by us.
            let window = opened_at.elapsed();

            let t0 = Instant::now();
            let normalized = normalize::<S>(batch);
            let t_normalized = Instant::now();
            let batch_len = normalized.puts.len() + normalized.deletes.len();
            let raw_ops = normalized.raw_ops;
            // WAL first: the epoch must be durable before it is applied
            // or acked (tickets are still blocked here). A hook failure
            // fail-stops the store.
            if let Some(h) = hook {
                if let Err(e) = h.log_epoch(epoch, global, &normalized) {
                    let reason = format!("commit hook (WAL) failed for epoch {epoch}: {e}");
                    eprintln!("pam-store: {reason}; poisoning store");
                    event!(
                        Level::Error,
                        "pam_store::pipeline",
                        "{reason}; poisoning store"
                    );
                    // Leave the black box next to the WAL before any
                    // waiter panics: the dump names this epoch as the
                    // root cause (first-wins, so a later panic hook
                    // firing for a cascading waiter changes nothing).
                    flight::dump_registered(&reason, Some(epoch));
                    let mut g = self.state.lock();
                    g.poisoned = Some(reason);
                    g.shutdown = true;
                    g.queue.clear();
                    self.done.notify_all();
                    return;
                }
            }
            let t_logged = Instant::now();
            // Apply on a snapshot outside any lock; publish with the
            // optimistic swap (the write lock is held only for the O(1)
            // pointer exchange). The batch vectors are *moved* into the
            // tree ops — no per-commit clone — which is safe because the
            // pipeline is the head's only writer (the store never exposes
            // it), so the swap cannot lose a race.
            let (snap, ver) = head.snapshot_versioned();
            let mut m = snap;
            if !normalized.puts.is_empty() {
                m.multi_insert(normalized.puts);
            }
            if !normalized.deletes.is_empty() {
                m.multi_delete(normalized.deletes);
            }
            let applied = m.clone(); // O(1) snapshot of the result
            let version = head
                .try_swap(ver, m)
                .unwrap_or_else(|_| unreachable!("pipeline is the sole head writer"));
            let t_applied = Instant::now();
            registry.publish(version, applied, batch_len);
            if let Some(h) = hook {
                // after publish, before tickets wake: the hook's notion of
                // "published through epoch E" stays conservative
                h.epoch_published(epoch, version);
            }
            let t_published = Instant::now();
            self.stats.record_commit(
                raw_ops,
                batch_len,
                CommitTiming {
                    total: t_published - t0,
                    window,
                    normalize: t_normalized - t0,
                    wal_log: t_logged - t_normalized,
                    apply: t_applied - t_logged,
                    publish: t_published - t_applied,
                },
            );
            // Flight recorder: one stage timeline per committed epoch in
            // the process-global ring (served at `/trace`, dumped on
            // poison/panic). Outside the pipeline lock — one short mutex
            // push per *epoch*, not per operation.
            FlightRecorder::global().record(EpochTrace {
                // relaxed: diagnostics label, see set_trace_shard
                shard: self.trace_shard.load(Ordering::Relaxed),
                epoch,
                global_epoch: global.map(|s| s.epoch),
                raw_ops: raw_ops as u64,
                applied_ops: batch_len as u64,
                open_ns: flight::instant_ns(opened_at),
                drain_ns: flight::instant_ns(t0),
                normalize_ns: (t_normalized - t0).as_nanos() as u64,
                wal_log_ns: (t_logged - t_normalized).as_nanos() as u64,
                apply_ns: (t_applied - t_logged).as_nanos() as u64,
                publish_ns: (t_published - t_applied).as_nanos() as u64,
            });

            g = self.state.lock();
            g.committed_epoch = epoch;
            g.committed_version = version;
            self.done.notify_all();
        }
    }
}

/// A receipt for enqueued write(s): [`CommitTicket::wait`] blocks until
/// the epoch containing them is applied and published.
pub struct CommitTicket<S: AugSpec> {
    epoch: u64,
    pipe: Arc<Pipeline<S>>,
}

impl<S: AugSpec> CommitTicket<S> {
    /// Block until the write is durable; returns the id of a version that
    /// contains it (the epoch's own version, by construction).
    ///
    /// # Panics
    ///
    /// If the store was poisoned by a failed commit hook (the write may
    /// never become durable).
    pub fn wait(&self) -> u64 {
        let mut g = self.pipe.state.lock();
        while g.committed_epoch < self.epoch {
            Pipeline::check_poison(&g);
            self.pipe.done.wait(&mut g);
        }
        g.committed_version
    }

    /// Has the epoch committed yet (non-blocking)?
    pub fn is_done(&self) -> bool {
        self.pipe.state.lock().committed_epoch >= self.epoch
    }
}
