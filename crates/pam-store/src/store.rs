//! The store facade: ties head, registry, and pipeline together.

use crate::config::StoreConfig;
use crate::op::WriteOp;
use crate::pipeline::{CommitHook, CommitTicket, Pipeline};
use crate::registry::{PinnedVersion, Registry, VersionId, VersionInfo};
use crate::stats::{StatsInner, StoreStats};
use pam::balance::Balance;
use pam::{AugMap, AugSpec, SharedMap, WeightBalanced};
use std::sync::Arc;

struct Inner<S: AugSpec, B: Balance> {
    head: SharedMap<S, B>,
    registry: Registry<S, B>,
    pipeline: Arc<Pipeline<S>>,
    stats: Arc<StatsInner>,
    config: StoreConfig,
    hook: Option<Arc<dyn CommitHook<S>>>,
}

/// A versioned key-value store over a parallel augmented map.
///
/// Writes flow through a batched group-commit pipeline; reads pin O(1)
/// persistent snapshots and never block. See the crate docs for the
/// architecture and [`StoreConfig`] for tuning.
///
/// The store is `Send + Sync`; wrap it in an [`Arc`] to share across
/// threads. Dropping the last handle drains outstanding writes and joins
/// the committer thread.
pub struct VersionedStore<S: AugSpec, B: Balance = WeightBalanced> {
    inner: Arc<Inner<S, B>>,
    committer: Option<std::thread::JoinHandle<()>>,
}

impl<S: AugSpec, B: Balance> VersionedStore<S, B> {
    /// An empty store with the default configuration.
    pub fn new() -> Self {
        Self::with_config(StoreConfig::default())
    }

    /// An empty store with the given configuration.
    pub fn with_config(config: StoreConfig) -> Self {
        Self::from_map(AugMap::new(), config)
    }

    /// A store whose version 0 is `initial`.
    pub fn from_map(initial: AugMap<S, B>, config: StoreConfig) -> Self {
        Self::build(initial, config, None)
    }

    /// A store whose committer calls `hook` around every epoch — the
    /// extension point durability layers (`DurableStore`) attach to. See
    /// [`CommitHook`] for the ordering contract.
    pub fn with_commit_hook(
        initial: AugMap<S, B>,
        config: StoreConfig,
        hook: Arc<dyn CommitHook<S>>,
    ) -> Self {
        Self::build(initial, config, Some(hook))
    }

    fn build(
        initial: AugMap<S, B>,
        config: StoreConfig,
        hook: Option<Arc<dyn CommitHook<S>>>,
    ) -> Self {
        let stats = Arc::new(StatsInner::default());
        let inner = Arc::new(Inner {
            head: SharedMap::new(initial.clone()),
            registry: Registry::new(initial, config.keep_versions),
            pipeline: Arc::new(Pipeline::new(config.max_batch, stats.clone())),
            stats,
            config,
            hook,
        });
        let worker = inner.clone();
        let committer = std::thread::Builder::new()
            .name("pam-store-committer".into())
            .spawn(move || {
                worker.pipeline.run_committer(
                    &worker.head,
                    &worker.registry,
                    &worker.config,
                    worker.hook.as_deref(),
                );
            })
            // lint: allow(panic) construction-time failure with no
            // caller to report to: a store without its committer thread
            // cannot exist, and spawn only fails on resource exhaustion
            .expect("spawn committer thread");
        VersionedStore {
            inner,
            committer: Some(committer),
        }
    }

    // -- writes (through the group-commit pipeline) -----------------------

    /// Insert or overwrite `key`. Returns immediately with a ticket;
    /// [`CommitTicket::wait`] blocks until the write is in a published
    /// version.
    pub fn put(&self, key: S::K, value: S::V) -> CommitTicket<S> {
        self.inner.pipeline.submit(WriteOp::Put(key, value))
    }

    /// Remove `key` (no-op if absent).
    pub fn delete(&self, key: S::K) -> CommitTicket<S> {
        self.inner.pipeline.submit(WriteOp::Delete(key))
    }

    /// Enqueue several operations **atomically**: they land in the same
    /// epoch, so every reader sees either all of them or none.
    pub fn write_batch(&self, ops: impl IntoIterator<Item = WriteOp<S>>) -> CommitTicket<S> {
        self.inner.pipeline.submit_all(ops)
    }

    /// Upsert many pairs atomically (convenience over [`Self::write_batch`]).
    pub fn put_all(&self, pairs: impl IntoIterator<Item = (S::K, S::V)>) -> CommitTicket<S> {
        self.write_batch(pairs.into_iter().map(|(k, v)| WriteOp::Put(k, v)))
    }

    /// Block until every previously enqueued operation is committed;
    /// returns the version containing them.
    ///
    /// # Panics
    ///
    /// If the store was poisoned by a failed commit hook (as do the
    /// write methods themselves — fail-stop, see [`CommitHook`]).
    pub fn flush(&self) -> VersionId {
        self.inner.pipeline.flush()
    }

    /// Enqueue one shard's slice of a cross-shard atomic batch as a
    /// *sealed* epoch: the operations get an epoch (and WAL record) of
    /// their own, stamped with the batch's global epoch so recovery can
    /// commit or discard the whole batch at record granularity. Only the
    /// sharded layer calls this.
    pub(crate) fn submit_sealed(
        &self,
        ops: Vec<WriteOp<S>>,
        global: Option<pam_wal::GlobalStamp>,
    ) -> CommitTicket<S> {
        self.inner.pipeline.submit_sealed(ops, global)
    }

    // -- reads (current version; never block commits) ---------------------
    //
    // All reads go through the registry head — the same source `pin()`
    // uses — so a reader that observes a write via `get` can never then
    // pin an *older* version (no read-your-reads anomaly between the
    // `SharedMap` swap and the registry publish).

    /// The value at `key` in the current version.
    pub fn get(&self, key: &S::K) -> Option<S::V> {
        self.pin().map().get(key).cloned()
    }

    /// The values at several keys, read from **one** snapshot: the
    /// results are mutually consistent (no commit can land between the
    /// lookups), the version is pinned once instead of per key, and the
    /// probes run in sorted key order so successive lookups share their
    /// upper tree path in cache. Results come back in input order.
    pub fn get_many(&self, keys: &[S::K]) -> Vec<Option<S::V>> {
        let pin = self.pin();
        let mut order: Vec<usize> = (0..keys.len()).collect();
        let mut out: Vec<Option<S::V>> = vec![None; keys.len()];
        crate::api::gather_in_key_order(pin.map(), keys, &mut order, &mut out);
        out
    }

    /// All entries with keys in `[lo, hi]` in the current version.
    ///
    /// Allocates one output vector; for large ranges prefer the
    /// zero-materialization [`Self::range_for_each`].
    pub fn range(&self, lo: &S::K, hi: &S::K) -> Vec<(S::K, S::V)> {
        let mut out = Vec::new();
        self.range_for_each(lo, hi, |k, v| out.push((k.clone(), v.clone())));
        out
    }

    /// Stream the entries with keys in `[lo, hi]` to `f` in key order,
    /// without materializing a sub-map or vector. The snapshot is pinned
    /// for the duration of the call; commits are never blocked.
    pub fn range_for_each(&self, lo: &S::K, hi: &S::K, mut f: impl FnMut(&S::K, &S::V)) {
        let pin = self.pin();
        for (k, v) in pin.map().iter_range(lo, hi) {
            f(k, v);
        }
    }

    /// Augmented value over keys in `[lo, hi]` in the current version
    /// (O(log n) — e.g. a range *sum* under `SumAug`).
    pub fn aug_range(&self, lo: &S::K, hi: &S::K) -> S::A {
        self.pin().map().aug_range(lo, hi)
    }

    /// Augmented value of the whole current version (O(1)).
    pub fn aug_val(&self) -> S::A {
        self.pin().map().aug_val()
    }

    /// Entries in the current version.
    pub fn len(&self) -> usize {
        self.pin().map().len()
    }

    /// Is the current version empty?
    pub fn is_empty(&self) -> bool {
        self.pin().map().is_empty()
    }

    // -- versions ----------------------------------------------------------

    /// The group-commit pipeline (the sharded layer raises submit
    /// barriers on it for consistent cross-shard snapshots).
    pub(crate) fn pipeline(&self) -> &Pipeline<S> {
        &self.inner.pipeline
    }

    /// Pin the current head version (O(1)); the pin keeps it readable
    /// while later commits advance the head.
    pub fn pin(&self) -> PinnedVersion<S, B> {
        self.inner.registry.pin_head()
    }

    /// Pin a historical version by id, if the registry still retains it.
    pub fn pin_version(&self, id: VersionId) -> Option<PinnedVersion<S, B>> {
        self.inner.registry.pin_version(id)
    }

    /// Name the current head version; a tag pins it until
    /// [`Self::untag`]. Re-tagging an existing name moves the tag.
    pub fn tag(&self, name: &str) -> VersionId {
        self.inner.registry.tag(name)
    }

    /// Drop a named tag; returns the version it pinned.
    pub fn untag(&self, name: &str) -> Option<VersionId> {
        self.inner.registry.untag(name)
    }

    /// Pin the version a tag refers to.
    pub fn pin_tagged(&self, name: &str) -> Option<PinnedVersion<S, B>> {
        self.inner.registry.pin_tagged(name)
    }

    /// The current head version id (the id [`Self::pin`] would return).
    pub fn head_version(&self) -> VersionId {
        self.pin().id()
    }

    /// Live registry contents, oldest first.
    pub fn versions(&self) -> Vec<VersionInfo> {
        self.inner.registry.infos()
    }

    // -- observability ------------------------------------------------------

    /// A coherent snapshot of commit/batch/version statistics.
    pub fn stats(&self) -> StoreStats {
        StoreStats::from_inner(
            &self.inner.stats,
            self.inner.registry.live_versions(),
            self.inner.registry.retired_versions(),
            self.head_version(),
        )
    }

    /// Liveness of the commit pipeline: [`pam_obs::Health::Poisoned`]
    /// (with the original commit-hook error) after a fail-stop,
    /// `Healthy` otherwise. Served at the telemetry server's `/health`.
    pub fn health(&self) -> pam_obs::Health {
        match self.inner.pipeline.poison_reason() {
            Some(reason) => pam_obs::Health::Poisoned(reason),
            None => pam_obs::Health::Healthy,
        }
    }

    /// Exact heap bytes reachable from *all* live versions together.
    /// Shared nodes count once — the measurable benefit of persistence.
    pub fn memory_bytes(&self) -> usize {
        self.inner.registry.with_live_maps(|maps| {
            let roots: Vec<_> = maps.iter().map(|m| m.root()).collect();
            pam::stats::reachable_bytes(&roots)
        })
    }
}

impl<S: AugSpec, B: Balance> Default for VersionedStore<S, B> {
    fn default() -> Self {
        Self::new()
    }
}

impl<S: AugSpec, B: Balance> Drop for VersionedStore<S, B> {
    fn drop(&mut self) {
        self.inner.pipeline.begin_shutdown();
        if let Some(h) = self.committer.take() {
            let _ = h.join();
        }
    }
}

impl<S: AugSpec, B: Balance> std::fmt::Debug for VersionedStore<S, B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "VersionedStore(v{}, len {})",
            self.head_version(),
            self.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pam::SumAug;
    use std::time::Duration;

    type Store = VersionedStore<SumAug<u64, u64>>;

    fn eager() -> Store {
        Store::with_config(StoreConfig {
            batch_window: Duration::ZERO,
            ..StoreConfig::default()
        })
    }

    #[test]
    fn put_get_delete_roundtrip() {
        let store = eager();
        store.put(1, 10);
        store.put(2, 20);
        store.put(1, 11).wait();
        assert_eq!(store.get(&1), Some(11));
        assert_eq!(store.get(&2), Some(20));
        assert_eq!(store.get(&3), None);
        store.delete(1).wait();
        assert_eq!(store.get(&1), None);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn aug_queries_on_head() {
        let store = eager();
        store.put_all((1..=100u64).map(|k| (k, k))).wait();
        assert_eq!(store.aug_val(), 5050);
        assert_eq!(store.aug_range(&10, &19), (10..=19).sum::<u64>());
        assert_eq!(store.range(&98, &200), vec![(98, 98), (99, 99), (100, 100)]);
    }

    #[test]
    fn pins_freeze_history() {
        let store = eager();
        store.put(1, 1).wait();
        let pinned = store.pin();
        let pinned_id = pinned.id();
        store.put(1, 999).wait();
        store.put(2, 2).wait();
        assert_eq!(pinned.map().get(&1), Some(&1));
        assert_eq!(pinned.map().len(), 1);
        assert_eq!(store.get(&1), Some(999));
        assert!(store.head_version() > pinned_id);
    }

    #[test]
    fn tags_survive_pruning() {
        let store = Store::with_config(StoreConfig {
            batch_window: Duration::ZERO,
            keep_versions: 2,
            ..StoreConfig::default()
        });
        store.put(0, 0).wait();
        store.tag("genesis-data");
        for i in 1..30u64 {
            store.put(i, i).wait();
        }
        let tagged = store.pin_tagged("genesis-data").expect("tag retained");
        assert_eq!(tagged.map().len(), 1);
        assert!(store.stats().retired_versions > 0);
        assert_eq!(store.untag("genesis-data"), Some(tagged.id()));
    }

    #[test]
    fn write_batch_is_atomic_wrt_flush() {
        let store = eager();
        let t = store.write_batch(vec![
            WriteOp::Put(1, 1),
            WriteOp::Put(2, 2),
            WriteOp::Delete(1),
        ]);
        let v = t.wait();
        let pinned = store.pin_version(v).expect("fresh version retained");
        assert_eq!(pinned.map().get(&1), None);
        assert_eq!(pinned.map().get(&2), Some(&2));
    }

    #[test]
    fn get_many_reads_one_snapshot_in_input_order() {
        let store = eager();
        store.put_all((0..100u64).map(|k| (k, k * 2))).wait();
        // unsorted, with duplicates and misses
        let keys = vec![42u64, 7, 999, 7, 0, 63];
        let got = store.get_many(&keys);
        assert_eq!(
            got,
            vec![Some(84), Some(14), None, Some(14), Some(0), Some(126)]
        );
        assert_eq!(store.get_many(&[]), Vec::<Option<u64>>::new());
    }

    #[test]
    fn range_for_each_streams_in_key_order() {
        let store = eager();
        store.put_all((0..1000u64).map(|k| (k, k))).wait();
        let mut seen = Vec::new();
        store.range_for_each(&100, &109, |&k, &v| seen.push((k, v)));
        assert_eq!(seen, (100..=109).map(|k| (k, k)).collect::<Vec<_>>());
        // empty range
        let mut count = 0;
        store.range_for_each(&5000, &6000, |_, _| count += 1);
        assert_eq!(count, 0);
        // agrees with the materializing API
        assert_eq!(store.range(&100, &109), seen);
    }

    #[test]
    fn flush_waits_for_everything() {
        let store = Store::with_config(StoreConfig {
            batch_window: Duration::from_millis(5),
            ..StoreConfig::default()
        });
        for i in 0..500u64 {
            store.put(i, i);
        }
        let v = store.flush();
        assert!(v >= 1);
        assert_eq!(store.len(), 500);
        let s = store.stats();
        assert_eq!(s.raw_ops, 500);
        assert!(
            s.commits < 500,
            "group commit should have batched ({} commits)",
            s.commits
        );
    }

    #[test]
    fn stats_and_memory_are_populated() {
        let store = eager();
        store.put_all((0..1000u64).map(|k| (k, 1))).wait();
        store.put(5, 2).wait();
        let s = store.stats();
        assert_eq!(s.commits, 2);
        assert_eq!(s.raw_ops, 1001);
        assert_eq!(s.applied_ops, 1001);
        assert_eq!(s.head_version, 2);
        assert!(s.max_batch >= 1000);
        assert!(s.mean_commit > Duration::ZERO);
        assert!(store.memory_bytes() > 1000 * 8);
        let display = s.to_string();
        assert!(display.contains("2 commits"));
    }

    #[test]
    fn flush_is_durable_even_mid_apply() {
        // Regression: flush() used to return early when the buffer was
        // empty but the committer was still *applying* a drained epoch.
        // put → flush → get must always observe the write.
        let store = eager();
        for i in 0..1000u64 {
            store.put(i % 7, i);
            store.flush();
            assert_eq!(store.get(&(i % 7)), Some(i), "write lost after flush");
        }
    }

    #[test]
    fn max_batch_zero_behaves_as_one() {
        // Regression: the committer's window gate used to compare against
        // the *raw* config.max_batch while submit used the clamped copy,
        // so the two halves of the pipeline disagreed on the cap. With
        // max_batch: 0 (clamped to 1) a single op is already at the cap:
        // it must commit immediately, never lingering for the window.
        let store = Store::with_config(StoreConfig {
            batch_window: Duration::from_secs(10),
            max_batch: 0,
            ..StoreConfig::default()
        });
        let t0 = std::time::Instant::now();
        store.put(1, 11).wait();
        store.put(2, 22).wait();
        assert!(
            t0.elapsed() < Duration::from_secs(2),
            "max_batch == 0 must clamp to 1 and skip the 10s window (took {:?})",
            t0.elapsed()
        );
        assert_eq!(store.get(&1), Some(11));
        assert_eq!(store.get(&2), Some(22));
    }

    #[test]
    fn crossing_max_batch_cuts_the_window_short() {
        let store = Store::with_config(StoreConfig {
            batch_window: Duration::from_secs(2),
            max_batch: 64,
            ..StoreConfig::default()
        });
        let t0 = std::time::Instant::now();
        for i in 0..64u64 {
            store.put(i, i);
        }
        store.flush();
        assert!(
            t0.elapsed() < Duration::from_secs(1),
            "batch cap must drain before the 2s window elapses (took {:?})",
            t0.elapsed()
        );
        assert_eq!(store.len(), 64);
    }

    #[test]
    fn drop_drains_pending_writes() {
        let inner;
        {
            let store = Store::with_config(StoreConfig {
                batch_window: Duration::from_millis(50),
                ..StoreConfig::default()
            });
            for i in 0..100u64 {
                store.put(i, i);
            }
            inner = store.inner.clone();
            // store dropped here with writes possibly still buffered
        }
        assert_eq!(inner.head.len(), 100, "drop must drain the pipeline");
    }

    #[test]
    fn works_with_other_balance_schemes() {
        let store: VersionedStore<SumAug<u64, u64>, pam::Avl> =
            VersionedStore::with_config(StoreConfig {
                batch_window: Duration::ZERO,
                ..StoreConfig::default()
            });
        store.put_all((0..100u64).map(|k| (k, k))).wait();
        assert_eq!(store.aug_val(), 4950);
        store.pin().map().check_invariants().unwrap();
    }
}
