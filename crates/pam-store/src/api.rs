//! The unified store API: [`StoreRead`] / [`StoreWrite`] / [`StoreSnapshot`].
//!
//! The four store flavors ([`VersionedStore`], [`DurableStore`],
//! [`ShardedStore`], [`DurableShardedStore`]) grew identical inherent
//! read/write surfaces — and nothing could be written generically over
//! them: the ycsb driver carried a private macro-trait, and a network
//! front end would have needed one impl per flavor. These traits are the
//! redesign: one read trait, one write trait, and one snapshot trait
//! implemented by every flavor (and both snapshot types), with the
//! consistency contract of each method stated where callers can hold it.
//!
//! ## The contract ladder
//!
//! Each trait method's docs name its spot on the consistency ladder:
//!
//! * **pin consistency** — the call reads one O(1)-pinned version of one
//!   root; on a sharded store each shard is pinned independently, so two
//!   shards may be observed at different instants (a cross-shard batch
//!   can appear half-applied to *point reads* — never to epoch-fenced
//!   reads).
//! * **epoch-fenced consistency** — the call cuts at a global epoch
//!   boundary (fence + all-shard submit barrier): every cross-shard
//!   batch is observed wholly or not at all.
//! * **ack-vs-durable** — a write ticket resolves when the operation is
//!   *published* (readable by everyone). On a durable store the WAL hook
//!   logs **before** publish, so an acked write is as durable as the
//!   configured [`crate::SyncPolicy`] promises (invariant I1); on an
//!   in-memory store an ack promises visibility only.

use crate::op::WriteOp;
use crate::pipeline::CommitTicket;
use crate::registry::PinnedVersion;
use crate::shard::{ShardKey, ShardedSnapshot, ShardedStore, ShardedTicket};
use crate::stats::StoreStats;
use crate::store::VersionedStore;
use crate::{DurableShardedStore, DurableStore};
use pam::balance::Balance;
use pam::{AugMap, AugSpec};
use pam_obs::Health;
use pam_wal::Codec;

// ---------------------------------------------------------------------------
// Write acknowledgements
// ---------------------------------------------------------------------------

/// A write acknowledgement, unifying [`CommitTicket`] (one pipeline) and
/// [`ShardedTicket`] (one ticket per participating shard).
///
/// An acked write is **published**: every subsequent read through any
/// handle observes it. On a durable store the commit hook logs the epoch
/// before it is published, so the ack additionally carries the
/// [`crate::SyncPolicy`]'s durability promise (invariant I1).
pub trait WriteTicket {
    /// Block until the write is committed and published; returns the
    /// version id containing it (on a sharded store: the highest slice
    /// version — per-shard version ids are independent sequences).
    ///
    /// # Panics
    ///
    /// If the store was poisoned by a failed commit hook (fail-stop).
    fn wait_committed(&self) -> u64;

    /// Has the write committed (non-blocking)?
    fn is_done(&self) -> bool;

    /// The global epoch a **cross-shard** batch was stamped with;
    /// `None` for single-pipeline writes and single-shard batches (the
    /// fast path mints no stamp).
    fn global_epoch(&self) -> Option<u64> {
        None
    }
}

impl<S: AugSpec> WriteTicket for CommitTicket<S> {
    fn wait_committed(&self) -> u64 {
        self.wait()
    }

    fn is_done(&self) -> bool {
        self.is_done()
    }
}

impl<S: AugSpec> WriteTicket for ShardedTicket<S> {
    fn wait_committed(&self) -> u64 {
        self.wait().into_iter().max().unwrap_or(0)
    }

    fn is_done(&self) -> bool {
        self.is_done()
    }

    fn global_epoch(&self) -> Option<u64> {
        self.global_epoch()
    }
}

// ---------------------------------------------------------------------------
// Snapshots
// ---------------------------------------------------------------------------

/// A frozen, immutable view of a store: reads never block, never change,
/// and never observe later writes.
///
/// Implemented by [`PinnedVersion`] (one root, trivially consistent) and
/// [`ShardedSnapshot`] (a cross-shard cut taken under the epoch fence:
/// every cross-shard batch is contained wholly or not at all —
/// invariant I5). Holding the snapshot pins its versions; dropping it
/// lets the registry prune them.
pub trait StoreSnapshot<S: AugSpec> {
    /// The value at `key` in this frozen view.
    fn get(&self, key: &S::K) -> Option<S::V>;

    /// The values at several keys, results in input order — all from
    /// this one frozen view, so they are mutually consistent by
    /// construction.
    fn get_many(&self, keys: &[S::K]) -> Vec<Option<S::V>>;

    /// Entries in the snapshot.
    fn len(&self) -> usize;

    /// Is the snapshot empty?
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All entries with keys in `[lo, hi]`, in key order (merged across
    /// shards where applicable).
    fn range(&self, lo: &S::K, hi: &S::K) -> Vec<(S::K, S::V)> {
        let mut out = Vec::new();
        self.range_for_each(lo, hi, &mut |k, v| out.push((k.clone(), v.clone())));
        out
    }

    /// Stream the entries with keys in `[lo, hi]` to `f` in key order
    /// without materializing them.
    fn range_for_each(&self, lo: &S::K, hi: &S::K, f: &mut dyn FnMut(&S::K, &S::V));

    /// Augmented value over keys in `[lo, hi]`. On a sharded snapshot
    /// the per-shard values are combined out of key order, so the spec's
    /// combine must be commutative (all built-ins are).
    fn aug_range(&self, lo: &S::K, hi: &S::K) -> S::A;

    /// Augmented value of the whole snapshot (same commutativity
    /// caveat as [`Self::aug_range`]).
    fn aug_val(&self) -> S::A;

    /// The epoch coordinate this snapshot was cut at: the pinned
    /// [`crate::VersionId`] for a single-root snapshot, the **global
    /// epoch** for a sharded cut (every cross-shard batch stamped `<=`
    /// this value is wholly contained; none stamped after is visible).
    fn snapshot_epoch(&self) -> u64;
}

impl<S: AugSpec, B: Balance> StoreSnapshot<S> for PinnedVersion<S, B> {
    fn get(&self, key: &S::K) -> Option<S::V> {
        self.map().get(key).cloned()
    }

    fn get_many(&self, keys: &[S::K]) -> Vec<Option<S::V>> {
        let mut idxs: Vec<usize> = (0..keys.len()).collect();
        let mut out: Vec<Option<S::V>> = vec![None; keys.len()];
        gather_in_key_order(self.map(), keys, &mut idxs, &mut out);
        out
    }

    fn len(&self) -> usize {
        self.map().len()
    }

    fn range_for_each(&self, lo: &S::K, hi: &S::K, f: &mut dyn FnMut(&S::K, &S::V)) {
        for (k, v) in self.map().iter_range(lo, hi) {
            f(k, v);
        }
    }

    fn aug_range(&self, lo: &S::K, hi: &S::K) -> S::A {
        self.map().aug_range(lo, hi)
    }

    fn aug_val(&self) -> S::A {
        self.map().aug_val()
    }

    fn snapshot_epoch(&self) -> u64 {
        self.id()
    }
}

impl<S: AugSpec, B: Balance> StoreSnapshot<S> for ShardedSnapshot<S, B>
where
    S::K: ShardKey,
{
    fn get(&self, key: &S::K) -> Option<S::V> {
        ShardedSnapshot::get(self, key)
    }

    fn get_many(&self, keys: &[S::K]) -> Vec<Option<S::V>> {
        ShardedSnapshot::get_many(self, keys)
    }

    fn len(&self) -> usize {
        ShardedSnapshot::len(self)
    }

    fn range_for_each(&self, lo: &S::K, hi: &S::K, f: &mut dyn FnMut(&S::K, &S::V)) {
        ShardedSnapshot::range_for_each(self, lo, hi, f);
    }

    fn aug_range(&self, lo: &S::K, hi: &S::K) -> S::A {
        ShardedSnapshot::aug_range(self, lo, hi)
    }

    fn aug_val(&self) -> S::A {
        ShardedSnapshot::aug_val(self)
    }

    fn snapshot_epoch(&self) -> u64 {
        self.global_epoch()
    }
}

// ---------------------------------------------------------------------------
// Reading
// ---------------------------------------------------------------------------

/// The read half of the unified store API.
///
/// Point reads (`get`, `get_many`), `len`, and aug queries are
/// **pin-consistent**: O(1), lock-free, never blocked by (or blocking)
/// commits — but on a sharded store each shard's head is pinned
/// independently, so a concurrent cross-shard batch may be observed on
/// some shards and not others. Range scans and [`Self::snapshot`] are
/// **epoch-fenced**: they cut at a global epoch boundary and never
/// observe a torn batch (invariant I5). When cross-shard atomicity
/// matters for point reads, take a snapshot and read through it.
pub trait StoreRead<S: AugSpec> {
    /// The snapshot type [`Self::snapshot`] produces.
    type Snapshot: StoreSnapshot<S>;

    /// The value at `key` in the current version (pin-consistent).
    fn get(&self, key: &S::K) -> Option<S::V>;

    /// The values at several keys, results in input order. Reads one
    /// pinned version per involved root (single store: exactly one, so
    /// the results are mutually consistent; sharded: one pin per owning
    /// shard — per-shard consistent, use [`Self::snapshot`] +
    /// [`StoreSnapshot::get_many`] for a cross-shard-consistent set).
    fn get_many(&self, keys: &[S::K]) -> Vec<Option<S::V>>;

    /// Entries in the current version(s) (pin-consistent).
    fn len(&self) -> usize;

    /// Is the store empty?
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All entries with keys in `[lo, hi]` in key order. Epoch-fenced on
    /// a sharded store (the scan internally takes a snapshot); prefer
    /// [`Self::range_for_each`] for large ranges.
    fn range(&self, lo: &S::K, hi: &S::K) -> Vec<(S::K, S::V)> {
        let mut out = Vec::new();
        self.range_for_each(lo, hi, &mut |k, v| out.push((k.clone(), v.clone())));
        out
    }

    /// Stream the entries with keys in `[lo, hi]` to `f` in key order.
    /// Epoch-fenced on a sharded store — a cross-shard batch can never
    /// appear torn mid-scan.
    fn range_for_each(&self, lo: &S::K, hi: &S::K, f: &mut dyn FnMut(&S::K, &S::V));

    /// Augmented value over keys in `[lo, hi]` (pin-consistent;
    /// commutative combine required on a sharded store).
    fn aug_range(&self, lo: &S::K, hi: &S::K) -> S::A;

    /// Augmented value of the whole store (same caveats as
    /// [`Self::aug_range`]).
    fn aug_val(&self) -> S::A;

    /// Freeze the current state into a [`StoreSnapshot`]. Single store:
    /// an O(1) pin of the head. Sharded: an epoch-fenced cut (fence
    /// write side + brief all-shard submit barrier) containing every
    /// write acked before the call, none submitted after it, and every
    /// cross-shard batch wholly or not at all.
    fn snapshot(&self) -> Self::Snapshot;

    /// A coherent statistics snapshot (durability counters included on
    /// durable flavors, zeros otherwise).
    fn stats(&self) -> StoreStats;

    /// Current liveness: `Poisoned` after a commit-hook fail-stop,
    /// `Degraded` when a durable flavor's background checkpointer keeps
    /// failing, `Healthy` otherwise.
    fn health(&self) -> Health;
}

impl<S: AugSpec, B: Balance> StoreRead<S> for VersionedStore<S, B> {
    type Snapshot = PinnedVersion<S, B>;

    fn get(&self, key: &S::K) -> Option<S::V> {
        VersionedStore::get(self, key)
    }

    fn get_many(&self, keys: &[S::K]) -> Vec<Option<S::V>> {
        VersionedStore::get_many(self, keys)
    }

    fn len(&self) -> usize {
        VersionedStore::len(self)
    }

    fn range_for_each(&self, lo: &S::K, hi: &S::K, f: &mut dyn FnMut(&S::K, &S::V)) {
        VersionedStore::range_for_each(self, lo, hi, |k, v| f(k, v));
    }

    fn aug_range(&self, lo: &S::K, hi: &S::K) -> S::A {
        VersionedStore::aug_range(self, lo, hi)
    }

    fn aug_val(&self) -> S::A {
        VersionedStore::aug_val(self)
    }

    fn snapshot(&self) -> Self::Snapshot {
        self.pin()
    }

    fn stats(&self) -> StoreStats {
        VersionedStore::stats(self)
    }

    fn health(&self) -> Health {
        VersionedStore::health(self)
    }
}

impl<S: AugSpec, B: Balance> StoreRead<S> for ShardedStore<S, B>
where
    S::K: ShardKey,
{
    type Snapshot = ShardedSnapshot<S, B>;

    fn get(&self, key: &S::K) -> Option<S::V> {
        ShardedStore::get(self, key)
    }

    fn get_many(&self, keys: &[S::K]) -> Vec<Option<S::V>> {
        ShardedStore::get_many(self, keys)
    }

    fn len(&self) -> usize {
        ShardedStore::len(self)
    }

    fn range_for_each(&self, lo: &S::K, hi: &S::K, f: &mut dyn FnMut(&S::K, &S::V)) {
        ShardedStore::range_for_each(self, lo, hi, |k, v| f(k, v));
    }

    fn aug_range(&self, lo: &S::K, hi: &S::K) -> S::A {
        ShardedStore::aug_range(self, lo, hi)
    }

    fn aug_val(&self) -> S::A {
        ShardedStore::aug_val(self)
    }

    fn snapshot(&self) -> Self::Snapshot {
        ShardedStore::snapshot(self)
    }

    fn stats(&self) -> StoreStats {
        ShardedStore::stats(self)
    }

    fn health(&self) -> Health {
        ShardedStore::health(self)
    }
}

impl<S: AugSpec, B: Balance> StoreRead<S> for DurableStore<S, B>
where
    S::K: Codec,
    S::V: Codec,
{
    type Snapshot = PinnedVersion<S, B>;

    fn get(&self, key: &S::K) -> Option<S::V> {
        VersionedStore::get(self, key)
    }

    fn get_many(&self, keys: &[S::K]) -> Vec<Option<S::V>> {
        VersionedStore::get_many(self, keys)
    }

    fn len(&self) -> usize {
        VersionedStore::len(self)
    }

    fn range_for_each(&self, lo: &S::K, hi: &S::K, f: &mut dyn FnMut(&S::K, &S::V)) {
        VersionedStore::range_for_each(self, lo, hi, |k, v| f(k, v));
    }

    fn aug_range(&self, lo: &S::K, hi: &S::K) -> S::A {
        VersionedStore::aug_range(self, lo, hi)
    }

    fn aug_val(&self) -> S::A {
        VersionedStore::aug_val(self)
    }

    fn snapshot(&self) -> Self::Snapshot {
        self.pin()
    }

    // the durable flavor shadows stats/health with richer versions — the
    // trait must dispatch to those, not the inner store's
    fn stats(&self) -> StoreStats {
        DurableStore::stats(self)
    }

    fn health(&self) -> Health {
        DurableStore::health(self)
    }
}

impl<S: AugSpec, B: Balance> StoreRead<S> for DurableShardedStore<S, B>
where
    S::K: Codec + ShardKey,
    S::V: Codec,
{
    type Snapshot = ShardedSnapshot<S, B>;

    fn get(&self, key: &S::K) -> Option<S::V> {
        ShardedStore::get(self, key)
    }

    fn get_many(&self, keys: &[S::K]) -> Vec<Option<S::V>> {
        ShardedStore::get_many(self, keys)
    }

    fn len(&self) -> usize {
        ShardedStore::len(self)
    }

    fn range_for_each(&self, lo: &S::K, hi: &S::K, f: &mut dyn FnMut(&S::K, &S::V)) {
        ShardedStore::range_for_each(self, lo, hi, |k, v| f(k, v));
    }

    fn aug_range(&self, lo: &S::K, hi: &S::K) -> S::A {
        ShardedStore::aug_range(self, lo, hi)
    }

    fn aug_val(&self) -> S::A {
        ShardedStore::aug_val(self)
    }

    fn snapshot(&self) -> Self::Snapshot {
        ShardedStore::snapshot(self)
    }

    fn stats(&self) -> StoreStats {
        DurableShardedStore::stats(self)
    }

    fn health(&self) -> Health {
        DurableShardedStore::health(self)
    }
}

// ---------------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------------

/// The write half of the unified store API.
///
/// Every write flows through a group-commit pipeline and returns a
/// [`WriteTicket`] immediately; the ticket resolves when the write is
/// published (and, on durable flavors, logged per the configured
/// [`crate::SyncPolicy`] — log-before-ack, invariant I1).
pub trait StoreWrite<S: AugSpec> {
    /// The acknowledgement type writes return.
    type Ticket: WriteTicket;

    /// Insert or overwrite `key`.
    fn put(&self, key: S::K, value: S::V) -> Self::Ticket;

    /// Remove `key` (a no-op if absent — still acked).
    fn delete(&self, key: S::K) -> Self::Ticket;

    /// Enqueue several operations as one **atomic batch**: readers see
    /// all of them or none. On a sharded store a batch spanning several
    /// shards is stamped by the global epoch clock and submitted under
    /// the epoch fence, so epoch-fenced readers and crash recovery keep
    /// or discard it on all shards together (invariants I5, I6);
    /// single-shard batches take the stamp-free fast path.
    fn write_batch(&self, ops: Vec<WriteOp<S>>) -> Self::Ticket;

    /// Block until every previously enqueued operation (from any handle)
    /// is committed and published.
    ///
    /// # Panics
    ///
    /// If the store was poisoned by a failed commit hook.
    fn flush(&self);
}

impl<S: AugSpec, B: Balance> StoreWrite<S> for VersionedStore<S, B> {
    type Ticket = CommitTicket<S>;

    fn put(&self, key: S::K, value: S::V) -> Self::Ticket {
        VersionedStore::put(self, key, value)
    }

    fn delete(&self, key: S::K) -> Self::Ticket {
        VersionedStore::delete(self, key)
    }

    fn write_batch(&self, ops: Vec<WriteOp<S>>) -> Self::Ticket {
        VersionedStore::write_batch(self, ops)
    }

    fn flush(&self) {
        VersionedStore::flush(self);
    }
}

impl<S: AugSpec, B: Balance> StoreWrite<S> for ShardedStore<S, B>
where
    S::K: ShardKey,
{
    type Ticket = ShardedTicket<S>;

    fn put(&self, key: S::K, value: S::V) -> Self::Ticket {
        let shard = self.shard_of(&key);
        ShardedTicket::single(self.shard(shard).put(key, value))
    }

    fn delete(&self, key: S::K) -> Self::Ticket {
        let shard = self.shard_of(&key);
        ShardedTicket::single(self.shard(shard).delete(key))
    }

    fn write_batch(&self, ops: Vec<WriteOp<S>>) -> Self::Ticket {
        ShardedStore::write_batch(self, ops)
    }

    fn flush(&self) {
        ShardedStore::flush(self);
    }
}

impl<S: AugSpec, B: Balance> StoreWrite<S> for DurableStore<S, B>
where
    S::K: Codec,
    S::V: Codec,
{
    type Ticket = CommitTicket<S>;

    fn put(&self, key: S::K, value: S::V) -> Self::Ticket {
        VersionedStore::put(self, key, value)
    }

    fn delete(&self, key: S::K) -> Self::Ticket {
        VersionedStore::delete(self, key)
    }

    fn write_batch(&self, ops: Vec<WriteOp<S>>) -> Self::Ticket {
        VersionedStore::write_batch(self, ops)
    }

    fn flush(&self) {
        VersionedStore::flush(self);
    }
}

impl<S: AugSpec, B: Balance> StoreWrite<S> for DurableShardedStore<S, B>
where
    S::K: Codec + ShardKey,
    S::V: Codec,
{
    type Ticket = ShardedTicket<S>;

    fn put(&self, key: S::K, value: S::V) -> Self::Ticket {
        let shard = self.shard_of(&key);
        ShardedTicket::single(self.shard(shard).put(key, value))
    }

    fn delete(&self, key: S::K) -> Self::Ticket {
        let shard = self.shard_of(&key);
        ShardedTicket::single(self.shard(shard).delete(key))
    }

    fn write_batch(&self, ops: Vec<WriteOp<S>>) -> Self::Ticket {
        ShardedStore::write_batch(self, ops)
    }

    fn flush(&self) {
        ShardedStore::flush(self);
    }
}

// ---------------------------------------------------------------------------
// The one shared read discipline (used by every get_many impl)
// ---------------------------------------------------------------------------

/// Probe `map` for `keys[i]` at each `i` in `idxs`, writing the results
/// into `out[i]`. Probes run in sorted key order so successive lookups
/// share their upper tree path in cache — the single `get_many`
/// discipline shared by [`VersionedStore`], [`ShardedStore`], and
/// [`ShardedSnapshot`] (previously three copy-pasted bodies).
pub(crate) fn gather_in_key_order<S: AugSpec, B: Balance>(
    map: &AugMap<S, B>,
    keys: &[S::K],
    idxs: &mut [usize],
    out: &mut [Option<S::V>],
) {
    idxs.sort_by(|&a, &b| S::compare(&keys[a], &keys[b]));
    for &i in idxs.iter() {
        out[i] = map.get(&keys[i]).cloned();
    }
}

/// Scatter `keys` to their owning shards, probe each involved shard from
/// one pinned version (obtained via `pin`), and gather the results back
/// in input order — the shared body of [`ShardedStore::get_many`] (pins
/// each involved shard's live head) and [`ShardedSnapshot::get_many`]
/// (reuses the snapshot's pins).
pub(crate) fn scatter_gather_get_many<S, B, F>(
    shards: usize,
    keys: &[S::K],
    pin: F,
) -> Vec<Option<S::V>>
where
    S: AugSpec,
    S::K: ShardKey,
    B: Balance,
    F: Fn(usize) -> PinnedVersion<S, B>,
{
    let mut index_of: Vec<Vec<usize>> = (0..shards).map(|_| Vec::new()).collect();
    for (i, k) in keys.iter().enumerate() {
        index_of[route(k.shard_hash(), shards)].push(i);
    }
    let mut out: Vec<Option<S::V>> = vec![None; keys.len()];
    for (shard, idxs) in index_of.iter_mut().enumerate() {
        if idxs.is_empty() {
            continue;
        }
        let pinned = pin(shard);
        gather_in_key_order(pinned.map(), keys, idxs, &mut out);
    }
    out
}

/// The one key→shard routing expression (`hash % shards`), shared by the
/// live store and the snapshot so the two can never diverge.
#[inline]
pub(crate) fn route(hash: u64, shards: usize) -> usize {
    (hash % shards as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ShardedConfig, StoreConfig};
    use pam::SumAug;
    use std::time::Duration;

    fn eager() -> StoreConfig {
        StoreConfig {
            batch_window: Duration::ZERO,
            ..StoreConfig::default()
        }
    }

    /// One generic body covering every `StoreRead`/`StoreWrite` impl —
    /// the point of the redesign is that this compiles at all.
    fn exercise<S, T>(store: &T)
    where
        S: AugSpec<K = u64, V = u64, A = u64>,
        T: StoreRead<S> + StoreWrite<S>,
    {
        store.put(1, 10).wait_committed();
        store.put(2, 20).wait_committed();
        store
            .write_batch(vec![WriteOp::Put(3, 30), WriteOp::Delete(2)])
            .wait_committed();
        store.flush();
        assert_eq!(store.get(&1), Some(10));
        assert_eq!(store.get(&2), None);
        assert_eq!(store.get_many(&[3, 2, 1]), vec![Some(30), None, Some(10)]);
        assert_eq!(store.len(), 2);
        assert!(!store.is_empty());
        assert_eq!(store.range(&0, &100), vec![(1, 10), (3, 30)]);
        let mut seen = 0;
        store.range_for_each(&0, &100, &mut |_, _| seen += 1);
        assert_eq!(seen, 2);
        assert_eq!(store.aug_range(&0, &100), 40);
        assert_eq!(store.aug_val(), 40);
        assert_eq!(store.health(), Health::Healthy);
        assert!(store.stats().raw_ops >= 4);

        let snap = store.snapshot();
        store.put(1, 999).wait_committed();
        assert_eq!(snap.get(&1), Some(10), "snapshot is frozen");
        assert_eq!(snap.get_many(&[1, 3]), vec![Some(10), Some(30)]);
        assert_eq!(snap.len(), 2);
        assert!(!snap.is_empty());
        assert_eq!(snap.range(&0, &100), vec![(1, 10), (3, 30)]);
        assert_eq!(snap.aug_range(&1, &3), 40);
        assert_eq!(snap.aug_val(), 40);
        assert_eq!(store.get(&1), Some(999), "live store moved on");
    }

    #[test]
    fn versioned_store_implements_the_traits() {
        let store: VersionedStore<SumAug<u64, u64>> = VersionedStore::with_config(eager());
        exercise(&store);
        // single-pipeline tickets never carry a global epoch
        assert_eq!(StoreWrite::put(&store, 9, 9).global_epoch(), None);
        assert_eq!(
            StoreRead::snapshot(&store).snapshot_epoch(),
            store.head_version()
        );
    }

    #[test]
    fn sharded_store_implements_the_traits() {
        let store: ShardedStore<SumAug<u64, u64>> = ShardedStore::with_config(ShardedConfig {
            shards: 4,
            store: eager(),
        });
        exercise(&store);
        // a genuinely multi-shard batch carries its stamp through the trait
        let t =
            StoreWrite::write_batch(&store, (100..132u64).map(|k| WriteOp::Put(k, k)).collect());
        assert!(t.global_epoch().is_some());
        t.wait_committed();
        assert_eq!(
            StoreRead::snapshot(&store).snapshot_epoch(),
            store.global_epoch()
        );
    }

    #[test]
    fn durable_flavors_implement_the_traits() {
        let base = std::env::temp_dir().join(format!("pam-api-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);

        let dir = base.join("single");
        let store: DurableStore<SumAug<u64, u64>> =
            DurableStore::open(&dir, eager(), crate::DurabilityConfig::default()).unwrap();
        exercise(&store);
        drop(store);

        let dir = base.join("sharded");
        let store: DurableShardedStore<SumAug<u64, u64>> = DurableShardedStore::open(
            &dir,
            ShardedConfig {
                shards: 2,
                store: eager(),
            },
            crate::DurabilityConfig::default(),
        )
        .unwrap();
        exercise(&store);
        drop(store);
        let _ = std::fs::remove_dir_all(&base);
    }
}
