//! Store tuning knobs.

use pam_wal::SyncPolicy;
use std::time::Duration;

/// Configuration for a [`crate::VersionedStore`].
#[derive(Clone, Debug)]
pub struct StoreConfig {
    /// How long the committer lingers after the first enqueued operation
    /// of an epoch, letting concurrent writers pile into the same batch
    /// (the *group-commit window*). `Duration::ZERO` commits eagerly:
    /// smallest latency, smallest batches.
    pub batch_window: Duration,
    /// Drain the epoch as soon as this many operations are buffered,
    /// even if the window has not elapsed (bounds batch latency and
    /// memory under write bursts).
    pub max_batch: usize,
    /// How many recent *unpinned* versions the registry retains for
    /// `pin_version`-style time travel. Pinned or tagged versions are
    /// always retained (their nodes stay alive through the pin anyway).
    pub keep_versions: usize,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            batch_window: Duration::from_micros(200),
            max_batch: 1 << 14,
            keep_versions: 8,
        }
    }
}

/// Configuration for a [`crate::ShardedStore`]: how many independent
/// roots the key space is hash-partitioned into, plus the per-shard
/// store tuning.
///
/// The shard count is the write-parallelism knob: each shard runs its own
/// group-commit pipeline (its own committer thread, and — when durable —
/// its own WAL + checkpointer), so N shards can normalize, log, and apply
/// N epochs concurrently. For a durable store the count is pinned on disk
/// by a manifest; reopening with a different count is refused.
#[derive(Clone, Debug)]
pub struct ShardedConfig {
    /// Number of hash shards (independent `VersionedStore` roots).
    pub shards: usize,
    /// Per-shard store configuration (every shard gets the same tuning).
    pub store: StoreConfig,
}

impl Default for ShardedConfig {
    fn default() -> Self {
        ShardedConfig {
            shards: 4,
            store: StoreConfig::default(),
        }
    }
}

/// Durability tuning for a [`crate::DurableStore`].
///
/// The write-amplification story is unusually good here: group commit
/// means one WAL record (and at most one fsync) per *epoch*, not per
/// write, and checkpoints stream a pinned persistent snapshot without
/// pausing writers — so the defaults lean toward safety.
#[derive(Clone, Debug)]
pub struct DurabilityConfig {
    /// When the WAL fsyncs (see [`SyncPolicy`]). Default:
    /// [`SyncPolicy::SyncEachEpoch`] — an acked write is on disk.
    ///
    /// In a sharded durable store, **cross-shard batch slices are
    /// force-synced regardless of this policy**: recovery's atomicity
    /// vote treats "logged on all participants" as durable, so a relaxed
    /// policy may not leave a slice in page cache after its batch's
    /// decision is recorded. Single-shard epochs honor the policy as
    /// configured.
    pub sync: SyncPolicy,
    /// WAL segment rotation threshold in bytes. Smaller segments mean
    /// finer-grained space reclamation after checkpoints.
    pub segment_bytes: u64,
    /// Write a checkpoint automatically once this many WAL bytes have
    /// accumulated since the last one (`None`: only explicit
    /// `checkpoint()` calls).
    pub checkpoint_every_bytes: Option<u64>,
    /// Also checkpoint on a wall-clock cadence (`None`: byte-triggered /
    /// manual only).
    pub checkpoint_interval: Option<Duration>,
    /// Checkpoint files to retain; older ones are pruned. The extras are
    /// insurance: a corrupt newest checkpoint falls back to the previous
    /// one plus a longer WAL replay.
    pub keep_checkpoints: usize,
    /// Bind a live telemetry endpoint (`pam_obs::ObsServer`) on this
    /// address at open — e.g. `"127.0.0.1:9184"`, or port `0` to pick a
    /// free port (read it back with `DurableStore::obs_addr`). The server
    /// serves `/metrics`, `/metrics.json`, `/events`, `/health`, and
    /// `/trace` for this store and shuts down when the store drops.
    /// `None` (the default): no listener.
    ///
    /// A [`crate::DurableShardedStore`] binds **one** aggregated endpoint
    /// for the whole store, not one per shard.
    pub obs_addr: Option<String>,
}

impl Default for DurabilityConfig {
    fn default() -> Self {
        DurabilityConfig {
            sync: SyncPolicy::SyncEachEpoch,
            segment_bytes: 16 << 20,
            checkpoint_every_bytes: Some(64 << 20),
            checkpoint_interval: None,
            keep_checkpoints: 2,
            obs_addr: None,
        }
    }
}
