//! Store tuning knobs.
//!
//! Each config type offers a fluent builder — the supported way to
//! deviate from the defaults:
//!
//! ```
//! use pam_store::{DurabilityConfig, ShardedConfig};
//! use pam_wal::SyncPolicy;
//!
//! let cfg = ShardedConfig::builder()
//!     .shards(4)
//!     .batch_window(std::time::Duration::from_micros(100))
//!     .build();
//! let dur = DurabilityConfig::builder()
//!     .sync(SyncPolicy::SyncEveryN(8))
//!     .obs_addr("127.0.0.1:0")
//!     .build();
//! # let _ = (cfg, dur);
//! ```
//!
//! The structs keep public fields and `Default` impls as a
//! backward-compatibility shim for existing field-mutation call sites;
//! the handful of pre-builder convenience constructors are deprecated.

use pam_wal::SyncPolicy;
use std::time::Duration;

/// Configuration for a [`crate::VersionedStore`].
#[derive(Clone, Debug)]
pub struct StoreConfig {
    /// How long the committer lingers after the first enqueued operation
    /// of an epoch, letting concurrent writers pile into the same batch
    /// (the *group-commit window*). `Duration::ZERO` commits eagerly:
    /// smallest latency, smallest batches.
    pub batch_window: Duration,
    /// Drain the epoch as soon as this many operations are buffered,
    /// even if the window has not elapsed (bounds batch latency and
    /// memory under write bursts).
    pub max_batch: usize,
    /// How many recent *unpinned* versions the registry retains for
    /// `pin_version`-style time travel. Pinned or tagged versions are
    /// always retained (their nodes stay alive through the pin anyway).
    pub keep_versions: usize,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            batch_window: Duration::from_micros(200),
            max_batch: 1 << 14,
            keep_versions: 8,
        }
    }
}

/// Configuration for a [`crate::ShardedStore`]: how many independent
/// roots the key space is hash-partitioned into, plus the per-shard
/// store tuning.
///
/// The shard count is the write-parallelism knob: each shard runs its own
/// group-commit pipeline (its own committer thread, and — when durable —
/// its own WAL + checkpointer), so N shards can normalize, log, and apply
/// N epochs concurrently. For a durable store the count is pinned on disk
/// by a manifest; reopening with a different count is refused.
#[derive(Clone, Debug)]
pub struct ShardedConfig {
    /// Number of hash shards (independent `VersionedStore` roots).
    pub shards: usize,
    /// Per-shard store configuration (every shard gets the same tuning).
    pub store: StoreConfig,
}

impl Default for ShardedConfig {
    fn default() -> Self {
        ShardedConfig {
            shards: 4,
            store: StoreConfig::default(),
        }
    }
}

/// Durability tuning for a [`crate::DurableStore`].
///
/// The write-amplification story is unusually good here: group commit
/// means one WAL record (and at most one fsync) per *epoch*, not per
/// write, and checkpoints stream a pinned persistent snapshot without
/// pausing writers — so the defaults lean toward safety.
#[derive(Clone, Debug)]
pub struct DurabilityConfig {
    /// When the WAL fsyncs (see [`SyncPolicy`]). Default:
    /// [`SyncPolicy::SyncEachEpoch`] — an acked write is on disk.
    ///
    /// In a sharded durable store, **cross-shard batch slices are
    /// force-synced regardless of this policy**: recovery's atomicity
    /// vote treats "logged on all participants" as durable, so a relaxed
    /// policy may not leave a slice in page cache after its batch's
    /// decision is recorded. Single-shard epochs honor the policy as
    /// configured.
    pub sync: SyncPolicy,
    /// WAL segment rotation threshold in bytes. Smaller segments mean
    /// finer-grained space reclamation after checkpoints.
    pub segment_bytes: u64,
    /// Write a checkpoint automatically once this many WAL bytes have
    /// accumulated since the last one (`None`: only explicit
    /// `checkpoint()` calls).
    pub checkpoint_every_bytes: Option<u64>,
    /// Also checkpoint on a wall-clock cadence (`None`: byte-triggered /
    /// manual only).
    pub checkpoint_interval: Option<Duration>,
    /// Checkpoint files to retain; older ones are pruned. The extras are
    /// insurance: a corrupt newest checkpoint falls back to the previous
    /// one plus a longer WAL replay.
    pub keep_checkpoints: usize,
    /// Bind a live telemetry endpoint (`pam_obs::ObsServer`) on this
    /// address at open — e.g. `"127.0.0.1:9184"`, or port `0` to pick a
    /// free port (read it back with `DurableStore::obs_addr`). The server
    /// serves `/metrics`, `/metrics.json`, `/events`, `/health`, and
    /// `/trace` for this store and shuts down when the store drops.
    /// `None` (the default): no listener.
    ///
    /// A [`crate::DurableShardedStore`] binds **one** aggregated endpoint
    /// for the whole store, not one per shard.
    pub obs_addr: Option<String>,
}

impl Default for DurabilityConfig {
    fn default() -> Self {
        DurabilityConfig {
            sync: SyncPolicy::SyncEachEpoch,
            segment_bytes: 16 << 20,
            checkpoint_every_bytes: Some(64 << 20),
            checkpoint_interval: None,
            keep_checkpoints: 2,
            obs_addr: None,
        }
    }
}

// ---------------------------------------------------------------------------
// Builders
// ---------------------------------------------------------------------------

impl StoreConfig {
    /// Start a [`StoreConfigBuilder`] seeded with the defaults.
    pub fn builder() -> StoreConfigBuilder {
        StoreConfigBuilder {
            cfg: StoreConfig::default(),
        }
    }

    /// Defaults with a custom group-commit window.
    #[deprecated(note = "use StoreConfig::builder().batch_window(..).build()")]
    pub fn with_batch_window(window: Duration) -> Self {
        StoreConfig {
            batch_window: window,
            ..StoreConfig::default()
        }
    }
}

/// Fluent builder for [`StoreConfig`]; see the module docs for an example.
#[derive(Clone, Debug, Default)]
pub struct StoreConfigBuilder {
    cfg: StoreConfig,
}

impl StoreConfigBuilder {
    /// Set the group-commit window (see [`StoreConfig::batch_window`]).
    pub fn batch_window(mut self, window: Duration) -> Self {
        self.cfg.batch_window = window;
        self
    }

    /// Set the epoch-drain operation cap (see [`StoreConfig::max_batch`]).
    pub fn max_batch(mut self, ops: usize) -> Self {
        self.cfg.max_batch = ops;
        self
    }

    /// Set how many unpinned versions the registry retains (see
    /// [`StoreConfig::keep_versions`]).
    pub fn keep_versions(mut self, n: usize) -> Self {
        self.cfg.keep_versions = n;
        self
    }

    /// Finish, yielding the [`StoreConfig`].
    pub fn build(self) -> StoreConfig {
        self.cfg
    }
}

impl ShardedConfig {
    /// Start a [`ShardedConfigBuilder`] seeded with the defaults.
    pub fn builder() -> ShardedConfigBuilder {
        ShardedConfigBuilder {
            cfg: ShardedConfig::default(),
        }
    }

    /// Defaults with a custom shard count.
    #[deprecated(note = "use ShardedConfig::builder().shards(..).build()")]
    pub fn with_shards(shards: usize) -> Self {
        ShardedConfig {
            shards,
            ..ShardedConfig::default()
        }
    }
}

/// Fluent builder for [`ShardedConfig`]: the shard count plus the
/// per-shard [`StoreConfig`] knobs, flattened for convenience.
#[derive(Clone, Debug, Default)]
pub struct ShardedConfigBuilder {
    cfg: ShardedConfig,
}

impl ShardedConfigBuilder {
    /// Set the number of hash shards (see [`ShardedConfig::shards`]).
    pub fn shards(mut self, n: usize) -> Self {
        self.cfg.shards = n;
        self
    }

    /// Replace the per-shard tuning wholesale.
    pub fn store(mut self, store: StoreConfig) -> Self {
        self.cfg.store = store;
        self
    }

    /// Set every shard's group-commit window (see
    /// [`StoreConfig::batch_window`]).
    pub fn batch_window(mut self, window: Duration) -> Self {
        self.cfg.store.batch_window = window;
        self
    }

    /// Set every shard's epoch-drain cap (see [`StoreConfig::max_batch`]).
    pub fn max_batch(mut self, ops: usize) -> Self {
        self.cfg.store.max_batch = ops;
        self
    }

    /// Set every shard's retained-version count (see
    /// [`StoreConfig::keep_versions`]).
    pub fn keep_versions(mut self, n: usize) -> Self {
        self.cfg.store.keep_versions = n;
        self
    }

    /// Finish, yielding the [`ShardedConfig`].
    pub fn build(self) -> ShardedConfig {
        self.cfg
    }
}

impl DurabilityConfig {
    /// Start a [`DurabilityConfigBuilder`] seeded with the defaults.
    pub fn builder() -> DurabilityConfigBuilder {
        DurabilityConfigBuilder {
            cfg: DurabilityConfig::default(),
        }
    }

    /// Defaults with a custom [`SyncPolicy`].
    #[deprecated(note = "use DurabilityConfig::builder().sync(..).build()")]
    pub fn with_sync(sync: SyncPolicy) -> Self {
        DurabilityConfig {
            sync,
            ..DurabilityConfig::default()
        }
    }
}

/// Fluent builder for [`DurabilityConfig`]; see the module docs for an
/// example.
#[derive(Clone, Debug, Default)]
pub struct DurabilityConfigBuilder {
    cfg: DurabilityConfig,
}

impl DurabilityConfigBuilder {
    /// Set the WAL fsync cadence (see [`DurabilityConfig::sync`]).
    pub fn sync(mut self, sync: SyncPolicy) -> Self {
        self.cfg.sync = sync;
        self
    }

    /// Set the WAL segment rotation threshold (see
    /// [`DurabilityConfig::segment_bytes`]).
    pub fn segment_bytes(mut self, bytes: u64) -> Self {
        self.cfg.segment_bytes = bytes;
        self
    }

    /// Checkpoint automatically every `bytes` of WAL growth (see
    /// [`DurabilityConfig::checkpoint_every_bytes`]).
    pub fn checkpoint_every_bytes(mut self, bytes: u64) -> Self {
        self.cfg.checkpoint_every_bytes = Some(bytes);
        self
    }

    /// Also checkpoint on a wall-clock cadence (see
    /// [`DurabilityConfig::checkpoint_interval`]).
    pub fn checkpoint_interval(mut self, every: Duration) -> Self {
        self.cfg.checkpoint_interval = Some(every);
        self
    }

    /// Disable automatic checkpoints; only explicit `checkpoint()` calls
    /// write one.
    pub fn manual_checkpoints_only(mut self) -> Self {
        self.cfg.checkpoint_every_bytes = None;
        self.cfg.checkpoint_interval = None;
        self
    }

    /// Set how many checkpoint files to retain (see
    /// [`DurabilityConfig::keep_checkpoints`]).
    pub fn keep_checkpoints(mut self, n: usize) -> Self {
        self.cfg.keep_checkpoints = n;
        self
    }

    /// Bind a live telemetry endpoint at open (see
    /// [`DurabilityConfig::obs_addr`]).
    pub fn obs_addr(mut self, addr: impl Into<String>) -> Self {
        self.cfg.obs_addr = Some(addr.into());
        self
    }

    /// Finish, yielding the [`DurabilityConfig`].
    pub fn build(self) -> DurabilityConfig {
        self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_cover_every_knob() {
        let cfg = ShardedConfig::builder()
            .shards(8)
            .batch_window(Duration::from_micros(50))
            .max_batch(512)
            .keep_versions(3)
            .build();
        assert_eq!(cfg.shards, 8);
        assert_eq!(cfg.store.batch_window, Duration::from_micros(50));
        assert_eq!(cfg.store.max_batch, 512);
        assert_eq!(cfg.store.keep_versions, 3);

        let dur = DurabilityConfig::builder()
            .sync(SyncPolicy::SyncEveryN(8))
            .segment_bytes(1 << 20)
            .checkpoint_every_bytes(4 << 20)
            .checkpoint_interval(Duration::from_secs(30))
            .keep_checkpoints(5)
            .obs_addr("127.0.0.1:0")
            .build();
        assert!(matches!(dur.sync, SyncPolicy::SyncEveryN(8)));
        assert_eq!(dur.segment_bytes, 1 << 20);
        assert_eq!(dur.checkpoint_every_bytes, Some(4 << 20));
        assert_eq!(dur.checkpoint_interval, Some(Duration::from_secs(30)));
        assert_eq!(dur.keep_checkpoints, 5);
        assert_eq!(dur.obs_addr.as_deref(), Some("127.0.0.1:0"));

        let manual = DurabilityConfig::builder()
            .manual_checkpoints_only()
            .build();
        assert_eq!(manual.checkpoint_every_bytes, None);
        assert_eq!(manual.checkpoint_interval, None);

        let store = StoreConfig::builder()
            .batch_window(Duration::ZERO)
            .max_batch(64)
            .keep_versions(2)
            .build();
        assert_eq!(store.batch_window, Duration::ZERO);
        assert_eq!(store.max_batch, 64);
        assert_eq!(store.keep_versions, 2);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_shims_still_work() {
        assert_eq!(
            StoreConfig::with_batch_window(Duration::ZERO).batch_window,
            Duration::ZERO
        );
        assert_eq!(ShardedConfig::with_shards(2).shards, 2);
        assert!(matches!(
            DurabilityConfig::with_sync(SyncPolicy::NoSync).sync,
            SyncPolicy::NoSync
        ));
    }
}
