//! Store tuning knobs.

use std::time::Duration;

/// Configuration for a [`crate::VersionedStore`].
#[derive(Clone, Debug)]
pub struct StoreConfig {
    /// How long the committer lingers after the first enqueued operation
    /// of an epoch, letting concurrent writers pile into the same batch
    /// (the *group-commit window*). `Duration::ZERO` commits eagerly:
    /// smallest latency, smallest batches.
    pub batch_window: Duration,
    /// Drain the epoch as soon as this many operations are buffered,
    /// even if the window has not elapsed (bounds batch latency and
    /// memory under write bursts).
    pub max_batch: usize,
    /// How many recent *unpinned* versions the registry retains for
    /// `pin_version`-style time travel. Pinned or tagged versions are
    /// always retained (their nodes stay alive through the pin anyway).
    pub keep_versions: usize,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            batch_window: Duration::from_micros(200),
            max_batch: 1 << 14,
            keep_versions: 8,
        }
    }
}
