//! The store's observability surface.
//!
//! Counters are lock-free atomics bumped by the committer; a coherent
//! [`StoreStats`] snapshot is assembled on demand. Memory numbers come
//! from `pam::stats` (exact distinct-node walks over every live version),
//! which is what makes the multi-version sharing visible: N pinned
//! versions of similar maps report barely more bytes than one.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

#[derive(Default)]
pub(crate) struct StatsInner {
    commits: AtomicU64,
    raw_ops: AtomicU64,
    applied_ops: AtomicU64,
    cas_retries: AtomicU64,
    max_batch: AtomicU64,
    total_commit_nanos: AtomicU64,
    max_commit_nanos: AtomicU64,
}

impl StatsInner {
    pub fn record_commit(&self, raw_ops: usize, applied_ops: usize, retries: u64, took: Duration) {
        let nanos = took.as_nanos() as u64;
        self.commits.fetch_add(1, Ordering::Relaxed);
        self.raw_ops.fetch_add(raw_ops as u64, Ordering::Relaxed);
        self.applied_ops
            .fetch_add(applied_ops as u64, Ordering::Relaxed);
        self.cas_retries.fetch_add(retries, Ordering::Relaxed);
        self.max_batch.fetch_max(raw_ops as u64, Ordering::Relaxed);
        self.total_commit_nanos.fetch_add(nanos, Ordering::Relaxed);
        self.max_commit_nanos.fetch_max(nanos, Ordering::Relaxed);
    }
}

/// A point-in-time summary of store activity.
#[derive(Clone, Debug, Default)]
pub struct StoreStats {
    /// Commits (group-commit epochs) applied so far.
    pub commits: u64,
    /// Operations enqueued by writers and drained by the committer.
    pub raw_ops: u64,
    /// Operations surviving last-write-wins deduplication.
    pub applied_ops: u64,
    /// CAS publish retries (always 0 today: the pipeline is the head's
    /// sole writer; reserved for future direct-commit paths).
    pub cas_retries: u64,
    /// Largest single batch (raw operations) drained in one epoch.
    pub max_batch: u64,
    /// Mean wall time of a commit (normalize + apply + publish).
    pub mean_commit: Duration,
    /// Worst-case commit wall time.
    pub max_commit: Duration,
    /// Versions currently retained by the registry.
    pub live_versions: usize,
    /// Versions pruned since the store started.
    pub retired_versions: u64,
    /// Current head version id.
    pub head_version: u64,
    /// Durability counters (all zero / `None` for a purely in-memory
    /// store; filled in by `DurableStore::stats`).
    pub durability: DurabilityStats,
}

/// WAL and checkpoint activity of a durable store.
#[derive(Clone, Debug, Default)]
pub struct DurabilityStats {
    /// Epoch records appended to the write-ahead log.
    pub wal_records: u64,
    /// Bytes appended to the write-ahead log (framing included).
    pub wal_bytes: u64,
    /// Fsyncs issued by the log (group commit amortizes these: one per
    /// epoch at most, regardless of writer count).
    pub wal_fsyncs: u64,
    /// Live WAL segment files.
    pub wal_segments: u64,
    /// Checkpoints written since open.
    pub checkpoints: u64,
    /// Highest WAL epoch covered by the newest checkpoint.
    pub last_checkpoint_epoch: u64,
    /// Time since the newest checkpoint was written in this process
    /// (`None`: no checkpoint yet this run).
    pub last_checkpoint_age: Option<Duration>,
}

impl std::fmt::Display for DurabilityStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "wal {} records / {} KiB / {} fsyncs / {} segments, {} checkpoints (last: epoch {}, {})",
            self.wal_records,
            self.wal_bytes / 1024,
            self.wal_fsyncs,
            self.wal_segments,
            self.checkpoints,
            self.last_checkpoint_epoch,
            match self.last_checkpoint_age {
                Some(age) => format!("{age:.1?} ago"),
                None => "none this run".to_string(),
            },
        )
    }
}

impl StoreStats {
    pub(crate) fn from_inner(
        inner: &StatsInner,
        live_versions: usize,
        retired_versions: u64,
        head_version: u64,
    ) -> Self {
        let commits = inner.commits.load(Ordering::Relaxed);
        let total = inner.total_commit_nanos.load(Ordering::Relaxed);
        StoreStats {
            commits,
            raw_ops: inner.raw_ops.load(Ordering::Relaxed),
            applied_ops: inner.applied_ops.load(Ordering::Relaxed),
            cas_retries: inner.cas_retries.load(Ordering::Relaxed),
            max_batch: inner.max_batch.load(Ordering::Relaxed),
            mean_commit: Duration::from_nanos(total / commits.max(1)),
            max_commit: Duration::from_nanos(inner.max_commit_nanos.load(Ordering::Relaxed)),
            live_versions,
            retired_versions,
            head_version,
            durability: DurabilityStats::default(),
        }
    }

    /// Mean raw operations per commit — the group-commit amortization
    /// factor (1.0 means no batching benefit).
    pub fn mean_batch(&self) -> f64 {
        self.raw_ops as f64 / self.commits.max(1) as f64
    }

    /// Fold per-shard statistics into one store-wide summary (used by
    /// `ShardedStore::stats`). Counters sum; commit latencies are the
    /// commit-weighted mean and the global max; `head_version` is the
    /// highest per-shard head (shard version ids are independent — use
    /// `ShardedSnapshot::version_vector` for the real coordinate).
    /// Durability counters sum, except `last_checkpoint_epoch` and
    /// `last_checkpoint_age`, which report the *least-advanced* shard —
    /// the conservative answer to "how stale could a checkpoint be".
    pub fn aggregate<'a>(shards: impl IntoIterator<Item = &'a StoreStats>) -> StoreStats {
        let mut out = StoreStats::default();
        let mut total_commit_nanos = 0u128;
        let mut first = true;
        for s in shards {
            out.commits += s.commits;
            out.raw_ops += s.raw_ops;
            out.applied_ops += s.applied_ops;
            out.cas_retries += s.cas_retries;
            out.max_batch = out.max_batch.max(s.max_batch);
            total_commit_nanos += s.mean_commit.as_nanos() * s.commits as u128;
            out.max_commit = out.max_commit.max(s.max_commit);
            out.live_versions += s.live_versions;
            out.retired_versions += s.retired_versions;
            out.head_version = out.head_version.max(s.head_version);
            let d = &s.durability;
            out.durability.wal_records += d.wal_records;
            out.durability.wal_bytes += d.wal_bytes;
            out.durability.wal_fsyncs += d.wal_fsyncs;
            out.durability.wal_segments += d.wal_segments;
            out.durability.checkpoints += d.checkpoints;
            out.durability.last_checkpoint_epoch = if first {
                d.last_checkpoint_epoch
            } else {
                out.durability
                    .last_checkpoint_epoch
                    .min(d.last_checkpoint_epoch)
            };
            out.durability.last_checkpoint_age =
                match (out.durability.last_checkpoint_age, d.last_checkpoint_age) {
                    (Some(a), Some(b)) => Some(a.max(b)),
                    _ if first => d.last_checkpoint_age,
                    // one shard has no checkpoint yet: unboundedly stale
                    _ => None,
                };
            first = false;
        }
        out.mean_commit =
            Duration::from_nanos((total_commit_nanos / out.commits.max(1) as u128) as u64);
        out
    }
}

impl std::fmt::Display for StoreStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "v{} | {} commits, {} ops ({} applied after LWW), mean batch {:.1}, \
             commit mean {:?} max {:?}, {} live / {} retired versions",
            self.head_version,
            self.commits,
            self.raw_ops,
            self.applied_ops,
            self.mean_batch(),
            self.mean_commit,
            self.max_commit,
            self.live_versions,
            self.retired_versions,
        )?;
        if self.durability.wal_records > 0 || self.durability.checkpoints > 0 {
            write!(f, " | {}", self.durability)?;
        }
        Ok(())
    }
}
