//! The store's observability surface.
//!
//! Counters and latency histograms are lock-free atomics bumped by the
//! committer (see `pam_obs::Histogram` — wait-free recording); a
//! coherent [`StoreStats`] snapshot is assembled on demand. Memory
//! numbers come from `pam::stats` (exact distinct-node walks over every
//! live version), which is what makes the multi-version sharing
//! visible: N pinned versions of similar maps report barely more bytes
//! than one.
//!
//! Every histogram records **nanoseconds**. [`StoreStats::export_into`]
//! publishes the whole snapshot into a [`pam_obs::MetricsRegistry`]
//! under the canonical `pam_*` metric names (see the "Observability"
//! section of ARCHITECTURE.md), from which Prometheus-text or JSON
//! exposition follows.

use pam_obs::{Histogram, HistogramSnapshot, MetricsRegistry};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Per-stage wall times of one committed epoch, measured by the
/// committer loop.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct CommitTiming {
    /// Whole commit: normalize + WAL + apply + publish.
    pub total: Duration,
    /// Group-commit window occupancy: how long the epoch segment sat
    /// open accumulating writes before the committer drained it.
    pub window: Duration,
    /// Sort + last-write-wins deduplication.
    pub normalize: Duration,
    /// Commit-hook logging (WAL append + fsync for a durable store;
    /// zero when no hook is installed).
    pub wal_log: Duration,
    /// `multi_insert`/`multi_delete` against the head plus the head
    /// swap.
    pub apply: Duration,
    /// Version-registry publish + hook notification.
    pub publish: Duration,
}

#[derive(Default)]
pub(crate) struct StatsInner {
    commits: AtomicU64,
    raw_ops: AtomicU64,
    applied_ops: AtomicU64,
    fence_waits: AtomicU64,
    max_batch: AtomicU64,
    commit: Histogram,
    commit_window: Histogram,
    commit_normalize: Histogram,
    commit_wal_log: Histogram,
    commit_apply: Histogram,
    commit_publish: Histogram,
    barrier_wait: Histogram,
}

impl StatsInner {
    pub fn record_commit(&self, raw_ops: usize, applied_ops: usize, timing: CommitTiming) {
        // relaxed: throughput counters on the commit hot path — nothing
        // reads them for synchronization, only stats() (all four below)
        self.commits.fetch_add(1, Ordering::Relaxed);
        self.raw_ops.fetch_add(raw_ops as u64, Ordering::Relaxed); // relaxed: see above
        self.applied_ops
            // relaxed: see above
            .fetch_add(applied_ops as u64, Ordering::Relaxed);
        self.max_batch.fetch_max(raw_ops as u64, Ordering::Relaxed); // relaxed: see above
        self.commit.record_duration(timing.total);
        self.commit_window.record_duration(timing.window);
        self.commit_normalize.record_duration(timing.normalize);
        self.commit_wal_log.record_duration(timing.wal_log);
        self.commit_apply.record_duration(timing.apply);
        self.commit_publish.record_duration(timing.publish);
    }

    /// A writer parked in `admit()` while a snapshot barrier held the
    /// pipeline closed, for `took`.
    pub fn record_fence_wait(&self, took: Duration) {
        // relaxed: monitoring counter only
        self.fence_waits.fetch_add(1, Ordering::Relaxed);
        self.barrier_wait.record_duration(took);
    }
}

/// A point-in-time summary of store activity.
#[derive(Clone, Debug, Default)]
pub struct StoreStats {
    /// Commits (group-commit epochs) applied so far.
    pub commits: u64,
    /// Operations enqueued by writers and drained by the committer.
    pub raw_ops: u64,
    /// Operations surviving last-write-wins deduplication.
    pub applied_ops: u64,
    /// Times a writer parked in `admit()` because a snapshot barrier
    /// held the pipeline closed. (This field replaced the stale
    /// `cas_retries` counter, which was always 0 once the pipeline
    /// became the head's sole writer.)
    pub fence_waits: u64,
    /// Largest single batch (raw operations) drained in one epoch.
    pub max_batch: u64,
    /// Mean wall time of a commit (derived from [`Self::commit`]).
    pub mean_commit: Duration,
    /// Worst-case commit wall time (derived from [`Self::commit`]).
    pub max_commit: Duration,
    /// Whole-commit latency distribution, nanoseconds.
    pub commit: HistogramSnapshot,
    /// Group-commit window occupancy: time each epoch segment sat open
    /// accumulating writes before the committer drained it.
    pub commit_window: HistogramSnapshot,
    /// Normalize stage (sort + last-write-wins) latency.
    pub commit_normalize: HistogramSnapshot,
    /// Commit-hook logging stage latency (WAL append + fsync; all-zero
    /// for an in-memory store).
    pub commit_wal_log: HistogramSnapshot,
    /// Apply stage (bulk insert/delete + head swap) latency.
    pub commit_apply: HistogramSnapshot,
    /// Publish stage (registry + hook notification) latency.
    pub commit_publish: HistogramSnapshot,
    /// Time writers spent parked in `admit()` behind snapshot barriers.
    pub barrier_wait: HistogramSnapshot,
    /// Time spent acquiring the sharded store's epoch fence (read side
    /// by cross-shard batches, write side by snapshots). All-zero for
    /// an unsharded store; filled in by `ShardedStore::stats`.
    pub fence_wait: HistogramSnapshot,
    /// Consistent snapshots taken (`ShardedStore::snapshot`; an
    /// unsharded store reports 0 — its snapshots are free root grabs).
    pub snapshots_taken: u64,
    /// Exclusive (write-side) fence acquisitions — one per sharded
    /// snapshot, so "live sharded range scans pay one snapshot per
    /// scan" is measurable here.
    pub fence_write_acquisitions: u64,
    /// Versions currently retained by the registry.
    pub live_versions: usize,
    /// Versions pruned since the store started.
    pub retired_versions: u64,
    /// Current head version id.
    pub head_version: u64,
    /// Durability counters (all zero / `None` for a purely in-memory
    /// store; filled in by `DurableStore::stats`).
    pub durability: DurabilityStats,
}

/// WAL and checkpoint activity of a durable store.
#[derive(Clone, Debug, Default)]
pub struct DurabilityStats {
    /// Epoch records appended to the write-ahead log.
    pub wal_records: u64,
    /// Bytes appended to the write-ahead log (framing included).
    pub wal_bytes: u64,
    /// Fsyncs issued by the log (group commit amortizes these: one per
    /// epoch at most, regardless of writer count).
    pub wal_fsyncs: u64,
    /// Live WAL segment files.
    pub wal_segments: u64,
    /// WAL segment rotations performed since open.
    pub wal_rotations: u64,
    /// Whole-append latency distribution (rotation + write + any
    /// fsync), nanoseconds.
    pub wal_append: HistogramSnapshot,
    /// Fsync (`sync_data`) latency distribution, nanoseconds.
    pub wal_fsync: HistogramSnapshot,
    /// Checkpoints written since open.
    pub checkpoints: u64,
    /// Bytes written by checkpoints since open.
    pub checkpoint_bytes: u64,
    /// Whole-checkpoint duration distribution, nanoseconds.
    pub checkpoint: HistogramSnapshot,
    /// How long each checkpoint held its version pin (the window in
    /// which that version's memory could not be reclaimed).
    pub checkpoint_pin_hold: HistogramSnapshot,
    /// Highest WAL epoch covered by the newest checkpoint.
    pub last_checkpoint_epoch: u64,
    /// Time since the newest checkpoint was written in this process
    /// (`None`: no checkpoint yet this run).
    pub last_checkpoint_age: Option<Duration>,
}

impl std::fmt::Display for DurabilityStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "wal {} records / {} KiB / {} fsyncs (p99 {:?}) / {} segments, {} checkpoints (last: epoch {}, {})",
            self.wal_records,
            self.wal_bytes / 1024,
            self.wal_fsyncs,
            Duration::from_nanos(self.wal_fsync.p99()),
            self.wal_segments,
            self.checkpoints,
            self.last_checkpoint_epoch,
            match self.last_checkpoint_age {
                Some(age) => format!("{age:.1?} ago"),
                None => "none this run".to_string(),
            },
        )
    }
}

impl StoreStats {
    pub(crate) fn from_inner(
        inner: &StatsInner,
        live_versions: usize,
        retired_versions: u64,
        head_version: u64,
    ) -> Self {
        let commit = inner.commit.snapshot();
        StoreStats {
            // relaxed: stats snapshot — counters are independent and
            // tolerate sampling skew (all five below)
            commits: inner.commits.load(Ordering::Relaxed),
            raw_ops: inner.raw_ops.load(Ordering::Relaxed), // relaxed: see above
            applied_ops: inner.applied_ops.load(Ordering::Relaxed), // relaxed: see above
            fence_waits: inner.fence_waits.load(Ordering::Relaxed), // relaxed: see above
            max_batch: inner.max_batch.load(Ordering::Relaxed), // relaxed: see above
            mean_commit: Duration::from_nanos(commit.mean()),
            max_commit: Duration::from_nanos(commit.max()),
            commit,
            commit_window: inner.commit_window.snapshot(),
            commit_normalize: inner.commit_normalize.snapshot(),
            commit_wal_log: inner.commit_wal_log.snapshot(),
            commit_apply: inner.commit_apply.snapshot(),
            commit_publish: inner.commit_publish.snapshot(),
            barrier_wait: inner.barrier_wait.snapshot(),
            fence_wait: HistogramSnapshot::default(),
            snapshots_taken: 0,
            fence_write_acquisitions: 0,
            live_versions,
            retired_versions,
            head_version,
            durability: DurabilityStats::default(),
        }
    }

    /// Mean raw operations per commit — the group-commit amortization
    /// factor (1.0 means no batching benefit).
    pub fn mean_batch(&self) -> f64 {
        self.raw_ops as f64 / self.commits.max(1) as f64
    }

    /// Fold per-shard statistics into one store-wide summary (used by
    /// `ShardedStore::stats`). Counters sum; histograms merge
    /// bucket-wise (so the aggregate percentiles are the percentiles of
    /// the union of all shards' samples); `mean_commit` / `max_commit`
    /// are recomputed from the merged commit histogram; `head_version`
    /// is the highest per-shard head (shard version ids are independent
    /// — use `ShardedSnapshot::version_vector` for the real
    /// coordinate). Durability counters sum, except
    /// `last_checkpoint_epoch` and `last_checkpoint_age`, which report
    /// the *least-advanced* shard — the conservative answer to "how
    /// stale could a checkpoint be".
    pub fn aggregate<'a>(shards: impl IntoIterator<Item = &'a StoreStats>) -> StoreStats {
        let mut out = StoreStats::default();
        let mut first = true;
        for s in shards {
            out.commits += s.commits;
            out.raw_ops += s.raw_ops;
            out.applied_ops += s.applied_ops;
            out.fence_waits += s.fence_waits;
            out.max_batch = out.max_batch.max(s.max_batch);
            out.commit.merge(&s.commit);
            out.commit_window.merge(&s.commit_window);
            out.commit_normalize.merge(&s.commit_normalize);
            out.commit_wal_log.merge(&s.commit_wal_log);
            out.commit_apply.merge(&s.commit_apply);
            out.commit_publish.merge(&s.commit_publish);
            out.barrier_wait.merge(&s.barrier_wait);
            out.fence_wait.merge(&s.fence_wait);
            out.snapshots_taken += s.snapshots_taken;
            out.fence_write_acquisitions += s.fence_write_acquisitions;
            out.live_versions += s.live_versions;
            out.retired_versions += s.retired_versions;
            out.head_version = out.head_version.max(s.head_version);
            let d = &s.durability;
            out.durability.wal_records += d.wal_records;
            out.durability.wal_bytes += d.wal_bytes;
            out.durability.wal_fsyncs += d.wal_fsyncs;
            out.durability.wal_segments += d.wal_segments;
            out.durability.wal_rotations += d.wal_rotations;
            out.durability.wal_append.merge(&d.wal_append);
            out.durability.wal_fsync.merge(&d.wal_fsync);
            out.durability.checkpoints += d.checkpoints;
            out.durability.checkpoint_bytes += d.checkpoint_bytes;
            out.durability.checkpoint.merge(&d.checkpoint);
            out.durability
                .checkpoint_pin_hold
                .merge(&d.checkpoint_pin_hold);
            out.durability.last_checkpoint_epoch = if first {
                d.last_checkpoint_epoch
            } else {
                out.durability
                    .last_checkpoint_epoch
                    .min(d.last_checkpoint_epoch)
            };
            out.durability.last_checkpoint_age =
                match (out.durability.last_checkpoint_age, d.last_checkpoint_age) {
                    (Some(a), Some(b)) => Some(a.max(b)),
                    _ if first => d.last_checkpoint_age,
                    // one shard has no checkpoint yet: unboundedly stale
                    _ => None,
                };
            first = false;
        }
        out.mean_commit = Duration::from_nanos(out.commit.mean());
        out.max_commit = Duration::from_nanos(out.commit.max());
        out
    }

    /// Publish this snapshot into `registry` under the canonical
    /// `pam_*` metric names (listed in ARCHITECTURE.md §Observability).
    /// Every metric is exported unconditionally — an idle store shows
    /// zeros rather than absent series — and re-exporting overwrites
    /// the previous values, so calling this periodically on the same
    /// registry yields a scrapeable surface.
    pub fn export_into(&self, registry: &MetricsRegistry) {
        registry.export_counter("pam_commits_total", self.commits);
        registry.export_counter("pam_raw_ops_total", self.raw_ops);
        registry.export_counter("pam_applied_ops_total", self.applied_ops);
        registry.export_counter("pam_fence_waits_total", self.fence_waits);
        registry.export_counter("pam_snapshots_taken_total", self.snapshots_taken);
        registry.export_counter(
            "pam_fence_write_acquisitions_total",
            self.fence_write_acquisitions,
        );
        registry.export_counter("pam_max_batch_ops", self.max_batch);
        registry.export_gauge("pam_live_versions", self.live_versions as i64);
        registry.export_counter("pam_retired_versions_total", self.retired_versions);
        registry.export_gauge("pam_head_version", self.head_version as i64);
        registry.export_histogram("pam_commit_nanos", self.commit.clone());
        registry.export_histogram("pam_commit_window_nanos", self.commit_window.clone());
        registry.export_histogram("pam_commit_normalize_nanos", self.commit_normalize.clone());
        registry.export_histogram("pam_commit_wal_log_nanos", self.commit_wal_log.clone());
        registry.export_histogram("pam_commit_apply_nanos", self.commit_apply.clone());
        registry.export_histogram("pam_commit_publish_nanos", self.commit_publish.clone());
        registry.export_histogram("pam_barrier_wait_nanos", self.barrier_wait.clone());
        registry.export_histogram("pam_fence_wait_nanos", self.fence_wait.clone());
        let d = &self.durability;
        registry.export_counter("pam_wal_records_total", d.wal_records);
        registry.export_counter("pam_wal_bytes_total", d.wal_bytes);
        registry.export_counter("pam_wal_fsyncs_total", d.wal_fsyncs);
        registry.export_gauge("pam_wal_segments", d.wal_segments as i64);
        registry.export_counter("pam_wal_rotations_total", d.wal_rotations);
        registry.export_histogram("pam_wal_append_nanos", d.wal_append.clone());
        registry.export_histogram("pam_wal_fsync_nanos", d.wal_fsync.clone());
        registry.export_counter("pam_checkpoints_total", d.checkpoints);
        registry.export_counter("pam_checkpoint_bytes_total", d.checkpoint_bytes);
        registry.export_histogram("pam_checkpoint_nanos", d.checkpoint.clone());
        registry.export_histogram("pam_checkpoint_pin_nanos", d.checkpoint_pin_hold.clone());
    }
}

impl std::fmt::Display for StoreStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "v{} | {} commits, {} ops ({} applied after LWW), mean batch {:.1}, \
             commit mean {:?} p99 {:?} max {:?}, {} live / {} retired versions",
            self.head_version,
            self.commits,
            self.raw_ops,
            self.applied_ops,
            self.mean_batch(),
            self.mean_commit,
            Duration::from_nanos(self.commit.p99()),
            self.max_commit,
            self.live_versions,
            self.retired_versions,
        )?;
        if self.fence_waits > 0 || self.snapshots_taken > 0 {
            write!(
                f,
                " | {} fence waits (p99 {:?}), {} snapshots",
                self.fence_waits,
                Duration::from_nanos(self.barrier_wait.p99().max(self.fence_wait.p99())),
                self.snapshots_taken,
            )?;
        }
        if self.durability.wal_records > 0 || self.durability.checkpoints > 0 {
            write!(f, " | {}", self.durability)?;
        }
        Ok(())
    }
}
