//! # pam-store — a versioned snapshot store over parallel augmented maps
//!
//! PAM's concurrency model (§4 of the paper) is "swap in a new root":
//! readers take O(1) persistent snapshots while writers serialize bulk
//! updates. That is exactly the shape of a production multi-version
//! (MVCC) store, and this crate is the serving layer that turns the
//! primitive into one:
//!
//! * **Version registry** ([`registry`]) — every commit publishes an O(1)
//!   snapshot under a monotonically increasing [`VersionId`]. Versions are
//!   *refcount-pinned*: a [`PinnedVersion`] guard (or a named tag) keeps a
//!   historical version readable for free — path-copying means N similar
//!   versions share almost all of their nodes (measurable via
//!   [`VersionedStore::memory_bytes`]).
//! * **Group-commit write pipeline** ([`pipeline`]) — concurrent writers
//!   enqueue operations into an epoch buffer and immediately receive a
//!   [`CommitTicket`]. A dedicated committer thread drains the buffer,
//!   normalizes the batch (parallel sort + last-write-wins dedup, via
//!   `parlay`), and applies it with one work-optimal
//!   `multi_insert`/`multi_delete` per epoch, amortizing the O(log n)
//!   tree work across every writer in the window. The new root is
//!   published with the CAS-retry commit of [`pam::SharedMap`], so the
//!   write lock is held only for the pointer swap.
//! * **Read API** — [`VersionedStore::get`] / [`VersionedStore::range`] /
//!   [`VersionedStore::aug_range`] pin the current version for the
//!   duration of the call and never block (or are blocked by) commits.
//! * **Stats surface** ([`stats`]) — per-stage commit latency histograms,
//!   batch sizes, fence waits, live versions, WAL/checkpoint counters, and
//!   a node-exact memory footprint built on `pam::stats`.
//! * **Durability** ([`durable`]) — [`DurableStore`] wraps the store in a
//!   write-ahead log (one record, one group fsync per epoch — see
//!   `pam-wal`) plus non-blocking snapshot checkpoints, and recovers from
//!   crashes by bulk-loading the newest checkpoint and replaying the log,
//!   tolerating a torn final record.
//! * **Sharding** ([`shard`]) — [`ShardedStore`] hash-partitions the key
//!   space across N independent roots, each with its own group-commit
//!   pipeline (and, in [`DurableShardedStore`], its own WAL directory and
//!   checkpointer): write parallelism beyond one committer, with
//!   scatter-gather reads, k-way merged range scans, and consistent
//!   cross-shard snapshots via a brief all-shard epoch barrier.
//! * **Cross-shard atomicity** — a **global epoch clock** stamps every
//!   multi-shard `write_batch` ([`GlobalStamp`]); the slices are
//!   submitted under an *epoch fence* and logged with the stamp, so
//!   epoch-fenced readers ([`ShardedStore::snapshot`],
//!   [`ShardedStore::range_for_each`]) never observe a torn batch, and
//!   [`DurableShardedStore`] crash-recovers every shard to the same
//!   global epoch (torn batches are discarded everywhere by a 2PC-style
//!   presence vote; the `MANIFEST` pins the clock).
//!
//! ## Quick example
//!
//! ```
//! use pam_store::{StoreConfig, VersionedStore};
//! use pam::SumAug;
//! use std::time::Duration;
//!
//! let store: VersionedStore<SumAug<u64, u64>> = VersionedStore::with_config(
//!     StoreConfig::builder()
//!         .batch_window(Duration::from_micros(100))
//!         .build(),
//! );
//!
//! // writers get a ticket; the committer batches concurrent writes
//! let t = store.put(1, 10);
//! store.put(2, 20);
//! let v = t.wait(); // durable in version `v`
//!
//! // readers never block: O(1) pin of the current version
//! assert_eq!(store.get(&1), Some(10));
//! assert_eq!(store.aug_range(&1, &2), 30); // augmented range sum
//!
//! // pin the current version; later writes don't touch it
//! let snap = store.pin();
//! store.delete(1).wait();
//! assert_eq!(snap.map().get(&1), Some(&10)); // history intact
//! assert_eq!(store.get(&1), None);
//! assert!(snap.id() >= v);
//! ```

#![warn(missing_docs)]

pub mod api;
mod config;
pub mod durable;
pub mod op;
pub mod pipeline;
pub mod registry;
pub mod shard;
pub mod stats;
mod store;

pub use api::{StoreRead, StoreSnapshot, StoreWrite, WriteTicket};
pub use config::{
    DurabilityConfig, DurabilityConfigBuilder, ShardedConfig, ShardedConfigBuilder, StoreConfig,
    StoreConfigBuilder,
};
pub use durable::{DurableShardedStore, DurableStore, RecoveryInfo, RecoveryTimings};
pub use op::{NormalizedBatch, WriteOp};
pub use pam_obs::Health;
pub use pam_wal::{Codec, GlobalStamp, SyncPolicy};
pub use pipeline::{CommitHook, CommitTicket};
pub use registry::{PinnedVersion, VersionId, VersionInfo};
pub use shard::{ShardKey, ShardedSnapshot, ShardedStore, ShardedTicket};
pub use stats::{DurabilityStats, StoreStats};
pub use store::VersionedStore;
