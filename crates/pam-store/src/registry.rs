//! The version registry: named, refcount-pinned snapshots.
//!
//! Every commit publishes the new root as a version entry under a
//! monotonically increasing [`VersionId`]. Entries are held in `Arc`s, so
//! the `Arc` strong count *is* the pin count: a [`PinnedVersion`] guard
//! keeps its version (and therefore the tree nodes it uniquely owns)
//! alive regardless of registry pruning — O(1) to take, free to hold,
//! thanks to path-copying persistence.
//!
//! The registry itself retains the most recent `keep_versions` unpinned
//! versions for id-addressed time travel, plus every *tagged* version
//! (named pins like `"daily-backup"`), pruning the rest as the head
//! advances.

use pam::balance::Balance;
use pam::{AugMap, AugSpec, WeightBalanced};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Instant;

/// Monotonically increasing version number (0 = the store's initial map).
pub type VersionId = u64;

/// One published version.
pub(crate) struct VersionEntry<S: AugSpec, B: Balance> {
    pub id: VersionId,
    pub map: AugMap<S, B>,
    pub created: Instant,
    /// Operations (after dedup) the commit producing this version applied.
    pub batch_len: usize,
}

/// A pinned, immutable view of one version. Holding it keeps the version
/// readable forever; dropping it releases the pin. Cloning is O(1).
pub struct PinnedVersion<S: AugSpec, B: Balance = WeightBalanced> {
    entry: Arc<VersionEntry<S, B>>,
}

impl<S: AugSpec, B: Balance> Clone for PinnedVersion<S, B> {
    fn clone(&self) -> Self {
        PinnedVersion {
            entry: self.entry.clone(),
        }
    }
}

impl<S: AugSpec, B: Balance> PinnedVersion<S, B> {
    /// The version id this pin refers to.
    pub fn id(&self) -> VersionId {
        self.entry.id
    }

    /// The immutable map of this version.
    pub fn map(&self) -> &AugMap<S, B> {
        &self.entry.map
    }

    /// Age of this version (time since its commit).
    pub fn age(&self) -> std::time::Duration {
        self.entry.created.elapsed()
    }

    /// Number of (deduplicated) operations in the commit that produced
    /// this version.
    pub fn batch_len(&self) -> usize {
        self.entry.batch_len
    }
}

impl<S: AugSpec, B: Balance> std::fmt::Debug for PinnedVersion<S, B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PinnedVersion(v{}, len {})", self.id(), self.map().len())
    }
}

/// Summary of a live registry entry (see `VersionedStore::versions`).
#[derive(Clone, Debug)]
pub struct VersionInfo {
    /// Version id.
    pub id: VersionId,
    /// Entries in the map at this version.
    pub len: usize,
    /// External pins currently holding this version.
    pub pins: usize,
    /// Tags naming this version.
    pub tags: Vec<String>,
}

pub(crate) struct Registry<S: AugSpec, B: Balance> {
    inner: Mutex<RegistryInner<S, B>>,
    keep_versions: usize,
}

struct RegistryInner<S: AugSpec, B: Balance> {
    /// Live versions, oldest first. Always non-empty; back is the head.
    versions: VecDeque<Arc<VersionEntry<S, B>>>,
    /// Named pins.
    tags: HashMap<String, Arc<VersionEntry<S, B>>>,
    retired: u64,
}

impl<S: AugSpec, B: Balance> Registry<S, B> {
    pub fn new(initial: AugMap<S, B>, keep_versions: usize) -> Self {
        let entry = Arc::new(VersionEntry {
            id: 0,
            map: initial,
            created: Instant::now(),
            batch_len: 0,
        });
        let mut versions = VecDeque::new();
        versions.push_back(entry);
        Registry {
            inner: Mutex::new(RegistryInner {
                versions,
                tags: HashMap::new(),
                retired: 0,
            }),
            keep_versions: keep_versions.max(1),
        }
    }

    /// Publish a new head version and prune old unpinned entries.
    pub fn publish(&self, id: VersionId, map: AugMap<S, B>, batch_len: usize) {
        let mut g = self.inner.lock();
        debug_assert!(g.versions.back().is_none_or(|b| b.id < id));
        g.versions.push_back(Arc::new(VersionEntry {
            id,
            map,
            created: Instant::now(),
            batch_len,
        }));
        // Prune from the oldest end: keep the head, the last
        // `keep_versions` entries, anything externally pinned, and
        // anything tagged.
        while g.versions.len() > self.keep_versions {
            // lint: allow(panic) the loop condition just proved len > 0
            let front = g.versions.front().expect("non-empty");
            let externally_pinned = Arc::strong_count(front) > 1 + tag_refs(&g.tags, front.id);
            if externally_pinned || g.tags.values().any(|t| t.id == front.id) {
                break; // pinned history is retained in registry order
            }
            g.versions.pop_front();
            g.retired += 1;
        }
    }

    /// Pin the current head.
    pub fn pin_head(&self) -> PinnedVersion<S, B> {
        let g = self.inner.lock();
        PinnedVersion {
            // lint: allow(panic) publish() never leaves the registry
            // empty — the seed version is installed at construction
            entry: g.versions.back().expect("registry never empty").clone(),
        }
    }

    /// Pin a specific (still live) version.
    pub fn pin_version(&self, id: VersionId) -> Option<PinnedVersion<S, B>> {
        let g = self.inner.lock();
        g.versions
            .iter()
            .rev()
            .find(|e| e.id == id)
            .or_else(|| g.tags.values().find(|e| e.id == id))
            .map(|entry| PinnedVersion {
                entry: entry.clone(),
            })
    }

    /// Name the current head; the tag keeps the version alive until
    /// [`Registry::untag`]. Returns the tagged id.
    pub fn tag(&self, name: &str) -> VersionId {
        let mut g = self.inner.lock();
        // lint: allow(panic) see pin_head: the registry holds at least
        // the seed version for its whole lifetime
        let head = g.versions.back().expect("registry never empty").clone();
        let id = head.id;
        g.tags.insert(name.to_string(), head);
        id
    }

    /// Remove a tag; returns the version it referred to.
    pub fn untag(&self, name: &str) -> Option<VersionId> {
        self.inner.lock().tags.remove(name).map(|e| e.id)
    }

    /// Pin the version a tag refers to.
    pub fn pin_tagged(&self, name: &str) -> Option<PinnedVersion<S, B>> {
        let g = self.inner.lock();
        g.tags.get(name).map(|entry| PinnedVersion {
            entry: entry.clone(),
        })
    }

    /// Number of live (registry-retained) versions.
    pub fn live_versions(&self) -> usize {
        self.inner.lock().versions.len()
    }

    /// Number of versions pruned so far.
    pub fn retired_versions(&self) -> u64 {
        self.inner.lock().retired
    }

    /// Snapshot of the registry contents, oldest first.
    pub fn infos(&self) -> Vec<VersionInfo> {
        let g = self.inner.lock();
        g.versions
            .iter()
            .map(|e| {
                let tags: Vec<String> = g
                    .tags
                    .iter()
                    .filter(|(_, t)| t.id == e.id)
                    .map(|(n, _)| n.clone())
                    .collect();
                VersionInfo {
                    id: e.id,
                    len: e.map.len(),
                    pins: Arc::strong_count(e) - 1 - tags.len(),
                    tags,
                }
            })
            .collect()
    }

    /// Roots of every live version (for memory accounting).
    pub fn with_live_maps<R>(&self, f: impl FnOnce(&[&AugMap<S, B>]) -> R) -> R {
        let g = self.inner.lock();
        let maps: Vec<&AugMap<S, B>> = g
            .versions
            .iter()
            .map(|e| &e.map)
            .chain(g.tags.values().map(|e| &e.map))
            .collect();
        f(&maps)
    }
}

fn tag_refs<S: AugSpec, B: Balance>(
    tags: &HashMap<String, Arc<VersionEntry<S, B>>>,
    id: VersionId,
) -> usize {
    tags.values().filter(|t| t.id == id).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pam::SumAug;

    type R = Registry<SumAug<u64, u64>, WeightBalanced>;

    fn map_of(pairs: &[(u64, u64)]) -> AugMap<SumAug<u64, u64>> {
        AugMap::build(pairs.to_vec())
    }

    #[test]
    fn publish_advances_head_and_prunes() {
        let r = R::new(AugMap::new(), 3);
        for v in 1..=10u64 {
            r.publish(v, map_of(&[(v, v)]), 1);
        }
        assert_eq!(r.live_versions(), 3);
        assert_eq!(r.retired_versions(), 8); // v0..v7 pruned
        assert_eq!(r.pin_head().id(), 10);
        assert!(r.pin_version(5).is_none(), "pruned version is gone");
        assert!(r.pin_version(9).is_some());
    }

    #[test]
    fn external_pin_blocks_pruning() {
        let r = R::new(AugMap::new(), 2);
        r.publish(1, map_of(&[(1, 1)]), 1);
        let pin = r.pin_version(1).unwrap();
        for v in 2..=8u64 {
            r.publish(v, map_of(&[(v, v)]), 1);
        }
        // v1 is pinned: it (and everything newer, by registry order)
        // survives
        assert!(r.pin_version(1).is_some());
        assert_eq!(pin.map().get(&1), Some(&1));
        drop(pin);
        r.publish(9, map_of(&[(9, 9)]), 1);
        assert!(r.pin_version(1).is_none(), "unpinned history now pruned");
    }

    #[test]
    fn tags_pin_by_name() {
        let r = R::new(map_of(&[(7, 7)]), 2);
        assert_eq!(r.tag("genesis"), 0);
        for v in 1..=6u64 {
            r.publish(v, map_of(&[(v, v)]), 1);
        }
        let g = r.pin_tagged("genesis").expect("tag holds v0");
        assert_eq!(g.id(), 0);
        assert_eq!(g.map().get(&7), Some(&7));
        assert_eq!(r.untag("genesis"), Some(0));
        assert!(r.pin_tagged("genesis").is_none());
    }

    #[test]
    fn infos_report_pins_and_tags() {
        let r = R::new(AugMap::new(), 8);
        r.publish(1, map_of(&[(1, 1)]), 1);
        r.publish(2, map_of(&[(1, 1), (2, 2)]), 1);
        let _pin = r.pin_version(1).unwrap();
        r.tag("head2");
        let infos = r.infos();
        assert_eq!(infos.len(), 3);
        assert_eq!(infos[1].id, 1);
        assert_eq!(infos[1].pins, 1);
        assert_eq!(infos[2].tags, vec!["head2".to_string()]);
        assert_eq!(infos[2].len, 2);
    }
}
