//! [`ShardedStore`]: write parallelism across multiple store roots.
//!
//! A single [`VersionedStore`] funnels every write through one
//! group-commit pipeline — one committer thread normalizes, (optionally)
//! logs, and applies each epoch, so write throughput caps out at one core
//! no matter how many writers enqueue. But PAM maps *compose*: a map
//! hash-partitioned into N independent maps supports `multi_insert`,
//! WAL append, and root swap on each partition concurrently, which is the
//! same observation the paper exploits inside one `multi_insert` (split
//! the batch, recurse in parallel, `join`) lifted to the serving layer.
//!
//! `ShardedStore` is that lift: N fully independent [`VersionedStore`]
//! roots, keys routed by a *stable* hash ([`ShardKey`] — stable because
//! for a durable store the assignment is part of the on-disk format), and
//! the read API reassembled on top:
//!
//! * point reads route to one shard; [`ShardedStore::get_many`] scatters
//!   to the owning shards and gathers results back in input order;
//! * ordered scans ([`ShardedStore::range_for_each`]) k-way merge the
//!   per-shard streaming ranges — hash partitioning interleaves the key
//!   space, so every shard contributes to every range;
//! * augmented queries combine the per-shard monoid values. Because the
//!   hash interleaves keys, the per-shard values arrive out of key order:
//!   **aug queries on a sharded store require a commutative `combine`**
//!   (all built-in specs — sum, max, min — are commutative).
//!
//! ## Consistency: the global epoch clock and the epoch fence
//!
//! Each shard keeps the single-store guarantees (atomic epochs, snapshot
//! reads, read-your-writes). Cross-shard operations are coordinated by a
//! **global epoch clock** and an **epoch fence**:
//!
//! * a multi-shard [`ShardedStore::write_batch`] is stamped with a fresh
//!   **global epoch** ([`GlobalStamp`]), split per shard, and each
//!   shard's slice commits as its own *sealed* pipeline epoch carrying
//!   the stamp. The slices are submitted while holding the read side of
//!   the fence, so no epoch-fenced reader can ever observe the batch
//!   half-submitted. A batch whose operations all route to **one** shard
//!   skips the clock and the fence entirely (the fast path — a
//!   single-shard epoch is already atomic);
//! * [`ShardedStore::snapshot`] and the live
//!   [`ShardedStore::range_for_each`] / [`ShardedStore::range`] cut at a
//!   global epoch boundary: they take the fence's write side (waiting
//!   out any in-flight batch submission), raise a brief *submit barrier*
//!   on every shard (new writes park, buffered epochs drain), flush and
//!   pin every head, and release. The resulting [`ShardedSnapshot`]
//!   contains every write acknowledged before the cut, none submitted
//!   after it, and **every cross-shard batch wholly or not at all** —
//!   the paper's one-root-pointer snapshot guarantee, restored across N
//!   roots;
//! * point reads (`get`, `get_many`), `len`, and aug queries still pin
//!   each shard's head independently (a concurrent commit may land
//!   between two pins — they trade the fence for zero coordination); use
//!   [`ShardedStore::snapshot`] when cross-shard atomicity matters for
//!   point reads.
//!
//! Durability extends the same stamp: each slice's WAL record carries
//! the global epoch, and [`crate::DurableShardedStore`] recovers to the
//! maximum global epoch fully present on all shards — a batch whose
//! crash-torn log lost a slice on one shard is discarded on every shard
//! (see the `durable` module docs).

use crate::config::ShardedConfig;
use crate::durable::GlobalTracker;
use crate::pipeline::CommitTicket;
use crate::registry::{PinnedVersion, VersionId};
use crate::stats::StoreStats;
use crate::store::VersionedStore;
use crate::WriteOp;
use pam::balance::Balance;
use pam::{AugSpec, WeightBalanced};
use pam_obs::Histogram;
use pam_wal::GlobalStamp;
use parking_lot::{Mutex, RwLock};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

// ---------------------------------------------------------------------------
// Stable shard routing
// ---------------------------------------------------------------------------

/// A key that can be routed to a shard.
///
/// The hash must be **stable across processes and runs**: a durable
/// sharded store persists each shard's data under its own WAL directory,
/// so the key→shard assignment is part of the on-disk format. (This is
/// why `std::hash::Hash` is not used — `DefaultHasher` makes no
/// cross-version stability promise.) Implementations must also spread
/// adjacent keys: range scans already pay a k-way merge, and a hash that
/// clumps consecutive keys onto one shard re-serializes the write load.
pub trait ShardKey {
    /// A well-mixed, stable 64-bit hash of the key.
    fn shard_hash(&self) -> u64;
}

/// SplitMix64 finalizer: cheap, stable, and passes avalanche tests —
/// every input bit flips every output bit with probability ~1/2, so
/// `hash % shards` stays uniform even for sequential integer keys.
#[inline]
pub(crate) fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// FNV-1a over a byte string, finalized with [`mix64`] (FNV alone has
/// weak high bits; the finalizer fixes the distribution for `% shards`).
#[inline]
fn hash_bytes(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    mix64(h)
}

macro_rules! impl_shardkey_uint {
    ($($t:ty),*) => {$(
        impl ShardKey for $t {
            #[inline]
            fn shard_hash(&self) -> u64 {
                mix64(*self as u64)
            }
        }
    )*};
}
impl_shardkey_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_shardkey_int {
    ($($t:ty => $u:ty),*) => {$(
        impl ShardKey for $t {
            #[inline]
            fn shard_hash(&self) -> u64 {
                mix64(*self as $u as u64)
            }
        }
    )*};
}
impl_shardkey_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl ShardKey for u128 {
    #[inline]
    fn shard_hash(&self) -> u64 {
        mix64((*self as u64) ^ mix64((*self >> 64) as u64))
    }
}

impl ShardKey for i128 {
    #[inline]
    fn shard_hash(&self) -> u64 {
        (*self as u128).shard_hash()
    }
}

impl ShardKey for String {
    #[inline]
    fn shard_hash(&self) -> u64 {
        hash_bytes(self.as_bytes())
    }
}

impl ShardKey for str {
    #[inline]
    fn shard_hash(&self) -> u64 {
        hash_bytes(self.as_bytes())
    }
}

impl ShardKey for Vec<u8> {
    #[inline]
    fn shard_hash(&self) -> u64 {
        hash_bytes(self)
    }
}

impl ShardKey for [u8] {
    #[inline]
    fn shard_hash(&self) -> u64 {
        hash_bytes(self)
    }
}

impl<A: ShardKey, B: ShardKey> ShardKey for (A, B) {
    #[inline]
    fn shard_hash(&self) -> u64 {
        mix64(self.0.shard_hash() ^ self.1.shard_hash().rotate_left(32))
    }
}

// ---------------------------------------------------------------------------
// The global epoch clock
// ---------------------------------------------------------------------------

/// The clock refuses to hand out stamps in the last 2^32 of the u64
/// range: a store minting a million cross-shard batches per second would
/// take half a million years to get here, so hitting the guard means a
/// corrupted clock value — panicking beats wrapping to stamps that
/// compare *older* than every persisted decision.
pub(crate) const CLOCK_OVERFLOW_MARGIN: u64 = 1 << 32;

/// Panic if `epoch` is inside the overflow margin (see
/// [`CLOCK_OVERFLOW_MARGIN`]).
#[inline]
pub(crate) fn check_clock_epoch(epoch: u64) {
    assert!(
        epoch < u64::MAX - CLOCK_OVERFLOW_MARGIN,
        "global epoch clock overflow: epoch {epoch} is inside the reserved margin"
    );
}

/// The store-wide monotone clock that stamps cross-shard batches.
///
/// A plain in-memory store only needs the counter; a durable sharded
/// store routes stamping through its `GlobalTracker`, which additionally
/// records each stamp as *outstanding* until every participant shard has
/// logged its slice (the input to checkpoint gating and the recovery
/// vote).
pub(crate) enum GlobalClock {
    /// In-memory counter of the last stamped epoch.
    Untracked(AtomicU64),
    /// Durable stores stamp through the tracker (same monotone sequence,
    /// plus outstanding-batch accounting).
    Tracked(Arc<GlobalTracker>),
}

impl GlobalClock {
    fn new() -> Self {
        GlobalClock::Untracked(AtomicU64::new(0))
    }

    /// A clock whose next stamp is `last + 1` — tests seed it near the
    /// overflow margin to exercise the guard (recovery seeds the tracked
    /// variant with the persisted watermark instead).
    #[cfg(test)]
    pub(crate) fn starting_at(last: u64) -> Self {
        GlobalClock::Untracked(AtomicU64::new(last))
    }

    pub(crate) fn tracked(tracker: Arc<GlobalTracker>) -> Self {
        GlobalClock::Tracked(tracker)
    }

    /// Mint the next global epoch for a batch spanning `participants`
    /// shards.
    ///
    /// # Panics
    ///
    /// On clock overflow (see [`CLOCK_OVERFLOW_MARGIN`]).
    fn stamp(&self, participants: u32) -> GlobalStamp {
        match self {
            GlobalClock::Untracked(last) => {
                // relaxed: uniqueness + monotonicity come from fetch_add
                // atomicity alone; stamps order batches under the
                // xbatch_gate mutex, which supplies the happens-before
                let epoch = last.fetch_add(1, Ordering::Relaxed) + 1;
                check_clock_epoch(epoch);
                GlobalStamp {
                    epoch,
                    participants,
                }
            }
            GlobalClock::Tracked(t) => t.stamp(participants),
        }
    }

    /// The most recently stamped global epoch (0: none yet).
    fn current(&self) -> u64 {
        match self {
            // relaxed: monitoring read; a slightly stale epoch is fine
            GlobalClock::Untracked(last) => last.load(Ordering::Relaxed),
            GlobalClock::Tracked(t) => t.last_stamped(),
        }
    }
}

// ---------------------------------------------------------------------------
// The sharded store
// ---------------------------------------------------------------------------

/// A key-value store hash-partitioned across N independent
/// [`VersionedStore`] roots, each with its own group-commit pipeline.
///
/// Writes to different shards batch, normalize, and apply concurrently —
/// N committer threads instead of one — while every read API of the
/// single store is reassembled on top (see the module docs for the exact
/// consistency contract).
///
/// ```
/// use pam_store::{ShardedConfig, ShardedStore};
/// use pam::SumAug;
/// use std::time::Duration;
///
/// let store: ShardedStore<SumAug<u64, u64>> =
///     ShardedStore::with_config(ShardedConfig {
///         shards: 4,
///         ..ShardedConfig::default()
///     });
/// store.put_all((0..1000u64).map(|k| (k, 1))).wait();
/// assert_eq!(store.get(&17), Some(1));
/// assert_eq!(store.aug_range(&0, &999), 1000); // merged across shards
///
/// let snap = store.snapshot(); // consistent cross-shard cut
/// store.delete(17).wait();
/// assert_eq!(snap.get(&17), Some(1));
/// assert_eq!(store.get(&17), None);
/// ```
pub struct ShardedStore<S: AugSpec, B: Balance = WeightBalanced> {
    shards: Vec<Arc<VersionedStore<S, B>>>,
    /// Serializes [`ShardedStore::snapshot`] barriers (one at a time).
    snapshot_gate: Mutex<()>,
    /// Stamps cross-shard batches with monotone global epochs.
    clock: GlobalClock,
    /// The epoch fence. A multi-shard `write_batch` holds the **read**
    /// side while it submits its per-shard slices; an epoch-fenced
    /// reader ([`ShardedStore::snapshot`]) takes the **write** side
    /// before raising the shard barriers, so at the instant the barriers
    /// go up every cross-shard batch is either submitted to *all* its
    /// shards or to none — the other half of torn-batch freedom (the
    /// barriers + flush then turn "submitted everywhere" into
    /// "committed everywhere" before any head is pinned).
    fence: RwLock<()>,
    /// Serializes the stamp + enqueue phase of cross-shard batches:
    /// without it, two concurrent batches could enqueue their slices in
    /// opposite orders on different shards (shard 0 sees [B1, B2],
    /// shard 1 sees [B2, B1]) and the acked state would match *no*
    /// serial order of the batches. Held only across the N queue pushes
    /// — commits still run in parallel per shard — so per-shard epoch
    /// order always equals global stamp order.
    xbatch_gate: Mutex<()>,
    /// Fence contention metrics (see [`ShardObs`]).
    obs: ShardObs,
}

/// Sharded-layer observability: how often the epoch fence is exercised
/// and how long acquirers wait on it. Per-shard pipeline stats live in
/// each [`VersionedStore`]; these counters belong to the *coordination*
/// layer above them, so [`ShardedStore::stats`] overlays them onto the
/// aggregated per-shard view.
#[derive(Debug, Default)]
struct ShardObs {
    /// Epoch-fenced snapshots cut ([`ShardedStore::snapshot`], including
    /// the ones live `range`/`range_for_each` scans take internally) —
    /// each pays one fence write acquisition and one all-shard barrier.
    snapshots_taken: AtomicU64,
    /// Write-side acquisitions of the epoch fence (currently 1:1 with
    /// snapshots; tracked separately so future write-side users stay
    /// visible).
    fence_write_acquisitions: AtomicU64,
    /// Nanoseconds spent waiting to acquire the epoch fence, both sides:
    /// cross-shard batches blocked behind a snapshot cut (read side) and
    /// snapshots waiting out in-flight submissions (write side).
    fence_wait: Histogram,
}

/// Ends the raised barriers even if a flush panics mid-snapshot (a
/// poisoned shard must not leave every other shard's writers parked).
struct BarrierGuard<'a, S: AugSpec, B: Balance> {
    shards: &'a [Arc<VersionedStore<S, B>>],
    raised: usize,
}

impl<S: AugSpec, B: Balance> Drop for BarrierGuard<'_, S, B> {
    fn drop(&mut self) {
        for s in &self.shards[..self.raised] {
            s.pipeline().end_barrier();
        }
    }
}

impl<S: AugSpec, B: Balance> ShardedStore<S, B>
where
    S::K: ShardKey,
{
    /// An empty store with `shards` roots and default per-shard tuning.
    pub fn new(shards: usize) -> Self {
        Self::with_config(ShardedConfig {
            shards,
            ..ShardedConfig::default()
        })
    }

    /// An empty store with the given configuration.
    pub fn with_config(config: ShardedConfig) -> Self {
        Self::from_stores(
            (0..config.shards.max(1))
                .map(|_| Arc::new(VersionedStore::with_config(config.store.clone())))
                .collect(),
        )
    }

    /// Assemble a sharded store from pre-built roots (the durable layer
    /// uses this to wrap recovered [`crate::DurableStore`] handles).
    /// Shard `i` must hold exactly the keys with `shard_hash() % n == i`
    /// — feeding arbitrary maps in breaks routing.
    pub fn from_stores(shards: Vec<Arc<VersionedStore<S, B>>>) -> Self {
        Self::from_stores_with_clock(shards, GlobalClock::new())
    }

    /// Like [`Self::from_stores`], with an explicit clock — recovery
    /// seeds it past the persisted watermark (durable stores pass a
    /// tracker-backed clock).
    pub(crate) fn from_stores_with_clock(
        shards: Vec<Arc<VersionedStore<S, B>>>,
        clock: GlobalClock,
    ) -> Self {
        assert!(!shards.is_empty(), "a sharded store needs >= 1 shard");
        // Label every member pipeline with its shard index so the
        // flight-recorder ring (and its Chrome export) gets one track
        // per shard.
        for (i, s) in shards.iter().enumerate() {
            s.pipeline().set_trace_shard(i as u32);
        }
        ShardedStore {
            shards,
            snapshot_gate: Mutex::new(()),
            clock,
            fence: RwLock::new(()),
            xbatch_gate: Mutex::new(()),
            obs: ShardObs::default(),
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard index `key` routes to.
    pub fn shard_of(&self, key: &S::K) -> usize {
        crate::api::route(key.shard_hash(), self.shards.len())
    }

    /// Direct handle to one shard's store (diagnostics, per-shard stats).
    pub fn shard(&self, i: usize) -> &Arc<VersionedStore<S, B>> {
        &self.shards[i]
    }

    // -- writes -----------------------------------------------------------

    /// Insert or overwrite `key` on its owning shard. The ticket resolves
    /// when that shard's epoch commits.
    pub fn put(&self, key: S::K, value: S::V) -> CommitTicket<S> {
        let shard = self.shard_of(&key);
        self.shards[shard].put(key, value)
    }

    /// Remove `key` (no-op if absent).
    pub fn delete(&self, key: S::K) -> CommitTicket<S> {
        let shard = self.shard_of(&key);
        self.shards[shard].delete(key)
    }

    /// Enqueue several operations as one **cross-shard atomic batch**.
    ///
    /// A batch spanning several shards is stamped with a fresh global
    /// epoch and split per shard; each slice commits as its own sealed
    /// epoch carrying the stamp, and the slices are submitted under the
    /// epoch fence — so [`Self::snapshot`] / [`Self::range_for_each`]
    /// readers see the whole batch or none of it, and (when durable)
    /// crash recovery keeps or discards it on all shards together. A
    /// batch whose operations all route to one shard takes the fast
    /// path: no stamp, no fence, one ordinary group-committed epoch.
    ///
    /// Point reads (`get`, `get_many`) bypass the fence and may observe
    /// a batch's shards at different instants; use a snapshot when that
    /// matters.
    ///
    /// # Panics
    ///
    /// On global-epoch-clock overflow (after ~2^63 cross-shard batches).
    pub fn write_batch(&self, ops: impl IntoIterator<Item = WriteOp<S>>) -> ShardedTicket<S> {
        let mut per_shard: Vec<Vec<WriteOp<S>>> =
            (0..self.shards.len()).map(|_| Vec::new()).collect();
        for op in ops {
            per_shard[self.shard_of(op.key())].push(op);
        }
        let participants = per_shard.iter().filter(|ops| !ops.is_empty()).count();
        if participants <= 1 {
            // Fast path: an empty batch is vacuously committed; a
            // single-shard batch is already atomic as one ordinary epoch
            // (it may share that epoch with concurrent writers — group
            // commit). Neither consults the clock or the fence.
            return ShardedTicket {
                tickets: per_shard
                    .into_iter()
                    .enumerate()
                    .filter(|(_, ops)| !ops.is_empty())
                    .map(|(i, ops)| self.shards[i].write_batch(ops))
                    .collect(),
                global: None,
            };
        }
        // Hold the fence's read side across the stamp AND every
        // per-shard submit: an epoch-fenced reader (fence write side)
        // can never cut between two slices of this batch — and because
        // stamping happens under the fence, a snapshot's
        // `global_epoch()` (read under the write side) never names a
        // batch the snapshot does not contain. The xbatch gate then
        // orders concurrent batches: stamping and enqueueing are one
        // atomic step, so every shard's pipeline sees cross-shard
        // batches in global stamp order (the committed state is always
        // the serial order of the stamps). Safe to hold across the
        // submits: with the fence read held no barrier can be up, so
        // `submit_sealed` never blocks.
        let parked = Instant::now();
        let _in_flight = self.fence.read();
        self.obs.fence_wait.record_duration(parked.elapsed());
        let _ordered = self.xbatch_gate.lock();
        let stamp = self.clock.stamp(participants as u32);
        ShardedTicket {
            tickets: per_shard
                .into_iter()
                .enumerate()
                .filter(|(_, ops)| !ops.is_empty())
                .map(|(i, ops)| self.shards[i].submit_sealed(ops, Some(stamp)))
                .collect(),
            global: Some(stamp.epoch),
        }
    }

    /// Upsert many pairs (convenience over [`Self::write_batch`]).
    pub fn put_all(&self, pairs: impl IntoIterator<Item = (S::K, S::V)>) -> ShardedTicket<S> {
        self.write_batch(pairs.into_iter().map(|(k, v)| WriteOp::Put(k, v)))
    }

    /// Block until every previously enqueued operation on every shard is
    /// committed; returns the per-shard versions containing them.
    pub fn flush(&self) -> Vec<VersionId> {
        self.shards.iter().map(|s| s.flush()).collect()
    }

    // -- reads ------------------------------------------------------------

    /// The value at `key` in its shard's current version.
    pub fn get(&self, key: &S::K) -> Option<S::V> {
        self.shards[self.shard_of(key)].get(key)
    }

    /// The values at several keys, scattered to their owning shards and
    /// gathered back in input order. Each shard is read from one pinned
    /// snapshot (per-shard consistent); for a cut that is consistent
    /// *across* shards, use [`Self::snapshot`] + [`ShardedSnapshot::get_many`].
    pub fn get_many(&self, keys: &[S::K]) -> Vec<Option<S::V>> {
        crate::api::scatter_gather_get_many(self.shards.len(), keys, |i| self.shards[i].pin())
    }

    /// All entries with keys in `[lo, hi]`, merged across shards in key
    /// order, read from one epoch-fenced cut (see
    /// [`Self::range_for_each`]). Prefer `range_for_each` for large
    /// ranges.
    pub fn range(&self, lo: &S::K, hi: &S::K) -> Vec<(S::K, S::V)> {
        let mut out = Vec::new();
        self.range_for_each(lo, hi, |k, v| out.push((k.clone(), v.clone())));
        out
    }

    /// Stream the entries with keys in `[lo, hi]` to `f` in global key
    /// order: a k-way merge over every shard's streaming range (hash
    /// partitioning interleaves the key space, so all shards
    /// participate).
    ///
    /// The scan reads from an **epoch-fenced cut** — internally it takes
    /// a [`Self::snapshot`] (fence + brief all-shard barrier), so a
    /// cross-shard `write_batch` can never appear torn mid-scan. Writers
    /// park for one flush per scan start; a scan over an already-held
    /// [`ShardedSnapshot`] avoids that cost entirely.
    pub fn range_for_each(&self, lo: &S::K, hi: &S::K, f: impl FnMut(&S::K, &S::V)) {
        self.snapshot().range_for_each(lo, hi, f);
    }

    /// Augmented value over keys in `[lo, hi]`: the combine of the
    /// per-shard `aug_range` results (O(shards × log n)). Requires a
    /// **commutative** combine — see the module docs.
    pub fn aug_range(&self, lo: &S::K, hi: &S::K) -> S::A {
        self.shards.iter().fold(S::identity(), |acc, s| {
            S::combine(&acc, &s.aug_range(lo, hi))
        })
    }

    /// Augmented value of the whole store (O(shards)). Requires a
    /// commutative combine.
    pub fn aug_val(&self) -> S::A {
        self.shards
            .iter()
            .fold(S::identity(), |acc, s| S::combine(&acc, &s.aug_val()))
    }

    /// Total entries across shards (each shard's head read independently).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    /// Is every shard empty?
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.is_empty())
    }

    // -- snapshots ---------------------------------------------------------

    /// Take a **consistent cross-shard snapshot** at a global epoch
    /// boundary: take the epoch fence's write side (waiting out any
    /// in-flight cross-shard batch submission), raise a submit barrier
    /// on every shard (new writes park; epochs already buffered drain),
    /// flush and pin every shard's head, release. The result contains
    /// every write acknowledged before the call, none submitted after
    /// the barrier was up, and every cross-shard batch **wholly or not
    /// at all** — a consistent cut of the version vector, stamped with
    /// the global epoch it cut at ([`ShardedSnapshot::global_epoch`]).
    ///
    /// The fence + barrier are brief (one flush per shard) but do park
    /// writers; for read paths that tolerate per-shard consistency,
    /// `get`/`get_many`/aug queries avoid them entirely.
    pub fn snapshot(&self) -> ShardedSnapshot<S, B> {
        let _serialize = self.snapshot_gate.lock();
        // Write side of the epoch fence: once held, no cross-shard batch
        // is half-submitted anywhere.
        let parked = Instant::now();
        let _fence = self.fence.write();
        self.obs.fence_wait.record_duration(parked.elapsed());
        self.obs
            .fence_write_acquisitions
            // relaxed: monitoring counters only (both below)
            .fetch_add(1, Ordering::Relaxed);
        self.obs.snapshots_taken.fetch_add(1, Ordering::Relaxed); // relaxed: see above
        let mut guard = BarrierGuard {
            shards: &self.shards,
            raised: 0,
        };
        for s in &self.shards {
            s.pipeline().begin_barrier();
            guard.raised += 1;
        }
        // Every fully-submitted batch flushes through on every shard
        // before any head is pinned: the pins form one global-epoch cut.
        let pins = self
            .shards
            .iter()
            .map(|s| {
                s.flush();
                s.pin()
            })
            .collect();
        let global_epoch = self.clock.current();
        drop(guard); // lowers every barrier
        ShardedSnapshot { pins, global_epoch }
    }

    /// The most recently minted global epoch (0: no cross-shard batch
    /// stamped yet). Monotone; durable stores persist its committed
    /// watermark in the `MANIFEST`.
    pub fn global_epoch(&self) -> u64 {
        self.clock.current()
    }

    // -- observability -----------------------------------------------------

    /// Store-wide statistics: the per-shard stats folded with
    /// [`StoreStats::aggregate`], overlaid with the sharded-layer fence
    /// metrics ([`StoreStats::fence_wait`],
    /// [`StoreStats::snapshots_taken`],
    /// [`StoreStats::fence_write_acquisitions`] — always zero on an
    /// unsharded store).
    pub fn stats(&self) -> StoreStats {
        let per: Vec<StoreStats> = self.stats_per_shard();
        let mut s = StoreStats::aggregate(per.iter());
        self.overlay_fence_stats(&mut s);
        s
    }

    /// Overlay the sharded-layer fence metrics onto an aggregated
    /// snapshot (shared with the durable wrapper, whose `stats()`
    /// aggregates shard + durability stats itself).
    pub(crate) fn overlay_fence_stats(&self, s: &mut StoreStats) {
        s.fence_wait = self.obs.fence_wait.snapshot();
        // relaxed: stats snapshot; sampling skew is inherent
        s.snapshots_taken = self.obs.snapshots_taken.load(Ordering::Relaxed);
        // relaxed: see above
        s.fence_write_acquisitions = self.obs.fence_write_acquisitions.load(Ordering::Relaxed);
    }

    /// The worst health over all shards: the first poisoned shard's
    /// reason wins, prefixed with its index.
    pub fn health(&self) -> pam_obs::Health {
        let mut health = pam_obs::Health::Healthy;
        for (i, s) in self.shards.iter().enumerate() {
            let h = match s.health() {
                pam_obs::Health::Poisoned(r) => {
                    pam_obs::Health::Poisoned(format!("shard {i}: {r}"))
                }
                pam_obs::Health::Degraded(r) => {
                    pam_obs::Health::Degraded(format!("shard {i}: {r}"))
                }
                pam_obs::Health::Healthy => pam_obs::Health::Healthy,
            };
            health = health.worse(h);
        }
        health
    }

    /// Per-shard statistics, shard order (spot imbalanced partitions).
    pub fn stats_per_shard(&self) -> Vec<StoreStats> {
        self.shards.iter().map(|s| s.stats()).collect()
    }

    /// Exact heap bytes reachable from all live versions of all shards
    /// (shards share no nodes, so the per-shard numbers sum).
    pub fn memory_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.memory_bytes()).sum()
    }
}

impl<S: AugSpec, B: Balance> std::fmt::Debug for ShardedStore<S, B>
where
    S::K: ShardKey,
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ShardedStore({} shards, len {})",
            self.num_shards(),
            self.len()
        )
    }
}

/// A receipt for a cross-shard batch: one sub-ticket per shard that
/// received operations, plus the batch's global epoch stamp (when it
/// spanned more than one shard).
pub struct ShardedTicket<S: AugSpec> {
    tickets: Vec<CommitTicket<S>>,
    global: Option<u64>,
}

impl<S: AugSpec> ShardedTicket<S> {
    /// Block until every shard's slice of the batch is committed;
    /// returns the per-slice version ids (shard order, shards that
    /// received no operations omitted).
    ///
    /// # Panics
    ///
    /// If a shard's store was poisoned by a failed commit hook.
    pub fn wait(&self) -> Vec<u64> {
        self.tickets.iter().map(|t| t.wait()).collect()
    }

    /// Have all slices committed (non-blocking)?
    pub fn is_done(&self) -> bool {
        self.tickets.iter().all(|t| t.is_done())
    }

    /// The global epoch this batch was stamped with, or `None` for the
    /// single-shard (and empty) fast path that needs no stamp.
    pub fn global_epoch(&self) -> Option<u64> {
        self.global
    }

    /// Wrap one shard's [`CommitTicket`] as a (stampless) sharded
    /// acknowledgement — the `crate::api` write traits route
    /// single-key writes through this.
    pub(crate) fn single(ticket: CommitTicket<S>) -> Self {
        ShardedTicket {
            tickets: vec![ticket],
            global: None,
        }
    }
}

// ---------------------------------------------------------------------------
// Consistent snapshots
// ---------------------------------------------------------------------------

/// A consistent cross-shard snapshot: one pinned version per shard, taken
/// under the epoch fence and an all-shard submit barrier (see
/// [`ShardedStore::snapshot`]) — cross-shard batches appear wholly or
/// not at all. Holding it keeps every pinned version readable; reads
/// never block and never change.
pub struct ShardedSnapshot<S: AugSpec, B: Balance = WeightBalanced> {
    pins: Vec<PinnedVersion<S, B>>,
    global_epoch: u64,
}

impl<S: AugSpec, B: Balance> ShardedSnapshot<S, B>
where
    S::K: ShardKey,
{
    /// The pinned per-shard version ids — the snapshot's coordinate.
    pub fn version_vector(&self) -> Vec<VersionId> {
        self.pins.iter().map(|p| p.id()).collect()
    }

    /// The global epoch this snapshot cut at: every cross-shard batch
    /// stamped `<=` this epoch is wholly contained; none stamped after
    /// it is visible.
    pub fn global_epoch(&self) -> u64 {
        self.global_epoch
    }

    /// The pinned version of one shard.
    pub fn shard(&self, i: usize) -> &PinnedVersion<S, B> {
        &self.pins[i]
    }

    /// The value at `key` in the snapshot.
    pub fn get(&self, key: &S::K) -> Option<S::V> {
        let shard = crate::api::route(key.shard_hash(), self.pins.len());
        self.pins[shard].map().get(key).cloned()
    }

    /// The values at several keys (input order) — all from this one
    /// consistent cut, probed with the same scatter/sorted-gather
    /// discipline as the live stores (see `crate::api`).
    pub fn get_many(&self, keys: &[S::K]) -> Vec<Option<S::V>> {
        crate::api::scatter_gather_get_many(self.pins.len(), keys, |i| self.pins[i].clone())
    }

    /// Total entries in the snapshot.
    pub fn len(&self) -> usize {
        self.pins.iter().map(|p| p.map().len()).sum()
    }

    /// Is the snapshot empty?
    pub fn is_empty(&self) -> bool {
        self.pins.iter().all(|p| p.map().is_empty())
    }

    /// All entries with keys in `[lo, hi]`, merged in key order.
    pub fn range(&self, lo: &S::K, hi: &S::K) -> Vec<(S::K, S::V)> {
        let mut out = Vec::new();
        self.range_for_each(lo, hi, |k, v| out.push((k.clone(), v.clone())));
        out
    }

    /// Stream the entries with keys in `[lo, hi]` in global key order
    /// (k-way merge over the pinned shards).
    pub fn range_for_each(&self, lo: &S::K, hi: &S::K, f: impl FnMut(&S::K, &S::V)) {
        merged_range_for_each(&self.pins, lo, hi, f);
    }

    /// Augmented value over `[lo, hi]` (commutative combine required).
    pub fn aug_range(&self, lo: &S::K, hi: &S::K) -> S::A {
        self.pins.iter().fold(S::identity(), |acc, p| {
            S::combine(&acc, &p.map().aug_range(lo, hi))
        })
    }

    /// Augmented value of the whole snapshot (commutative combine
    /// required).
    pub fn aug_val(&self) -> S::A {
        self.pins
            .iter()
            .fold(S::identity(), |acc, p| S::combine(&acc, &p.map().aug_val()))
    }
}

impl<S: AugSpec, B: Balance> Clone for ShardedSnapshot<S, B> {
    fn clone(&self) -> Self {
        ShardedSnapshot {
            pins: self.pins.clone(),
            global_epoch: self.global_epoch,
        }
    }
}

impl<S: AugSpec, B: Balance> std::fmt::Debug for ShardedSnapshot<S, B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ShardedSnapshot(v{:?})",
            self.pins.iter().map(|p| p.id()).collect::<Vec<_>>()
        )
    }
}

/// K-way merge of the pinned shards' streaming ranges: shards partition
/// the key space disjointly, so repeatedly emitting the smallest head is
/// a strict global key order. O(total × shards) comparisons — shard
/// counts are small (≤ cores), so a linear head scan beats a heap.
fn merged_range_for_each<S: AugSpec, B: Balance>(
    pins: &[PinnedVersion<S, B>],
    lo: &S::K,
    hi: &S::K,
    mut f: impl FnMut(&S::K, &S::V),
) {
    let mut iters: Vec<_> = pins.iter().map(|p| p.map().iter_range(lo, hi)).collect();
    let mut heads: Vec<Option<(&S::K, &S::V)>> = iters.iter_mut().map(|it| it.next()).collect();
    loop {
        let mut best: Option<usize> = None;
        for (i, head) in heads.iter().enumerate() {
            let Some((k, _)) = head else { continue };
            best = match best {
                Some(j) => {
                    // lint: allow(panic) j was only stored after its
                    // head matched `Some` in an earlier iteration
                    let (bk, _) = heads[j].as_ref().expect("best head present");
                    if S::compare(k, bk).is_lt() {
                        Some(i)
                    } else {
                        Some(j)
                    }
                }
                None => Some(i),
            };
        }
        let Some(i) = best else { break };
        // lint: allow(panic) `best` indexes a head the scan above saw
        // as `Some`, and nothing has taken it since
        let (k, v) = heads[i].take().expect("chosen head present");
        f(k, v);
        heads[i] = iters[i].next();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StoreConfig;
    use pam::SumAug;
    use std::collections::BTreeMap;
    use std::time::Duration;

    type Sharded = ShardedStore<SumAug<u64, u64>>;

    fn eager(shards: usize) -> Sharded {
        Sharded::with_config(ShardedConfig {
            shards,
            store: StoreConfig {
                batch_window: Duration::ZERO,
                ..StoreConfig::default()
            },
        })
    }

    #[test]
    fn mix64_spreads_sequential_keys() {
        let shards = 4u64;
        let mut counts = [0usize; 4];
        for k in 0..10_000u64 {
            counts[(k.shard_hash() % shards) as usize] += 1;
        }
        for &c in &counts {
            assert!(
                (2000..=3000).contains(&c),
                "sequential keys must spread evenly, got {counts:?}"
            );
        }
    }

    #[test]
    fn string_and_tuple_hashes_are_stable() {
        // Pinned values: the hash is part of the durable format — if one
        // of these changes, existing sharded directories break.
        assert_eq!(42u64.shard_hash(), mix64(42));
        assert_eq!(
            "user:alice".shard_hash(),
            String::from("user:alice").shard_hash()
        );
        assert_eq!(vec![1u8, 2, 3].shard_hash(), [1u8, 2, 3][..].shard_hash());
        assert_ne!((1u64, 2u64).shard_hash(), (2u64, 1u64).shard_hash());
    }

    #[test]
    fn routing_partitions_every_key_once() {
        let store = eager(5);
        store.put_all((0..500u64).map(|k| (k, k))).wait();
        let total: usize = (0..5).map(|i| store.shard(i).len()).sum();
        assert_eq!(total, 500);
        for i in 0..5 {
            let pin = store.shard(i).pin();
            pin.map().for_each(|k, _| assert_eq!(store.shard_of(k), i));
            assert!(!pin.map().is_empty(), "shard {i} got no keys");
        }
    }

    #[test]
    fn point_reads_and_scatter_gather() {
        let store = eager(4);
        store.put_all((0..200u64).map(|k| (k, k * 2))).wait();
        assert_eq!(store.get(&77), Some(154));
        assert_eq!(store.get(&999), None);
        let keys = vec![5u64, 500, 17, 5, 0];
        assert_eq!(
            store.get_many(&keys),
            vec![Some(10), None, Some(34), Some(10), Some(0)]
        );
        assert_eq!(store.get_many(&[]), Vec::<Option<u64>>::new());
    }

    #[test]
    fn merged_range_is_globally_ordered() {
        let store = eager(4);
        store.put_all((0..1000u64).map(|k| (k, k))).wait();
        let got = store.range(&100, &199);
        assert_eq!(got, (100..=199).map(|k| (k, k)).collect::<Vec<_>>());
        // empty range
        let mut n = 0;
        store.range_for_each(&5000, &6000, |_, _| n += 1);
        assert_eq!(n, 0);
    }

    #[test]
    fn aug_queries_combine_across_shards() {
        let store = eager(3);
        store.put_all((1..=100u64).map(|k| (k, k))).wait();
        assert_eq!(store.aug_val(), 5050);
        assert_eq!(store.aug_range(&10, &19), (10..=19).sum::<u64>());
        assert_eq!(store.len(), 100);
        assert!(!store.is_empty());
    }

    #[test]
    fn cross_shard_batch_commits_atomically_with_a_stamp() {
        let store = eager(2);
        let t = store.write_batch(
            (0..100u64)
                .map(|k| WriteOp::Put(k, k))
                .chain(std::iter::once(WriteOp::Delete(50))),
        );
        assert_eq!(
            t.global_epoch(),
            Some(1),
            "a multi-shard batch mints the first global epoch"
        );
        let versions = t.wait();
        assert!(t.is_done());
        assert_eq!(versions.len(), 2, "both shards received ops");
        assert_eq!(store.len(), 99);
        assert_eq!(store.get(&50), None);
        assert_eq!(store.global_epoch(), 1);
        let snap = store.snapshot();
        assert_eq!(snap.global_epoch(), 1, "the snapshot cut at the stamp");
    }

    #[test]
    fn single_shard_batch_takes_the_fast_path_without_a_stamp() {
        let store = eager(4);
        // all ops on one key → one shard → no clock tick, no fence
        let t = store.write_batch(vec![WriteOp::Put(7, 1), WriteOp::Put(7, 2)]);
        assert_eq!(
            t.global_epoch(),
            None,
            "single-shard batches skip the clock"
        );
        t.wait();
        assert_eq!(store.global_epoch(), 0);
        // plain puts skip it too
        store.put(8, 8).wait();
        store.put_all(std::iter::once((9u64, 9u64))).wait();
        assert_eq!(store.global_epoch(), 0);
        assert_eq!(store.get(&7), Some(2));
        // a one-shard *store* can never span shards
        let one = eager(1);
        let t = one.write_batch((0..50u64).map(|k| WriteOp::Put(k, k)));
        assert_eq!(t.global_epoch(), None);
        t.wait();
        assert_eq!(one.global_epoch(), 0);
    }

    #[test]
    fn empty_cross_shard_batch_is_vacuously_committed() {
        let store = eager(3);
        let t = store.write_batch(std::iter::empty());
        assert_eq!(t.global_epoch(), None);
        assert!(t.is_done(), "an empty batch is already committed");
        assert_eq!(t.wait(), Vec::<u64>::new());
        assert_eq!(store.global_epoch(), 0, "no stamp was spent");
        assert!(store.is_empty());
        // empty submissions interleave harmlessly with real ones
        store.put(1, 1).wait();
        assert_eq!(store.write_batch(std::iter::empty()).wait().len(), 0);
        assert_eq!(store.len(), 1);
    }

    #[test]
    #[should_panic(expected = "global epoch clock overflow")]
    fn clock_overflow_is_a_guarded_panic_not_a_wrap() {
        let store: Sharded = ShardedStore::from_stores_with_clock(
            (0..2)
                .map(|_| {
                    Arc::new(VersionedStore::with_config(StoreConfig {
                        batch_window: Duration::ZERO,
                        ..StoreConfig::default()
                    }))
                })
                .collect(),
            GlobalClock::starting_at(u64::MAX - CLOCK_OVERFLOW_MARGIN),
        );
        // spans both shards → must stamp → must hit the guard
        store.write_batch((0..16u64).map(|k| WriteOp::Put(k, k)));
    }

    #[test]
    fn snapshot_is_a_frozen_consistent_cut() {
        let store = eager(4);
        store.put_all((0..100u64).map(|k| (k, 1))).wait();
        let snap = store.snapshot();
        assert_eq!(snap.version_vector().len(), 4);
        store.put_all((0..100u64).map(|k| (k, 2))).wait();
        store.put(1000, 1).wait();
        // the snapshot still sees the old world
        assert_eq!(snap.len(), 100);
        assert_eq!(snap.get(&7), Some(1));
        assert_eq!(snap.get(&1000), None);
        assert_eq!(snap.aug_val(), 100);
        assert_eq!(
            snap.range(&0, &10),
            (0..=10).map(|k| (k, 1)).collect::<Vec<_>>()
        );
        // while the live store moved on
        assert_eq!(store.get(&7), Some(2));
        assert_eq!(store.get(&1000), Some(1));
        // snapshots clone cheaply and agree
        let snap2 = snap.clone();
        assert_eq!(snap2.version_vector(), snap.version_vector());
        assert_eq!(snap2.get_many(&[7, 1000]), vec![Some(1), None]);
    }

    #[test]
    fn sharded_matches_btree_oracle() {
        let store = eager(7);
        let mut oracle = BTreeMap::new();
        for i in 0..2000u64 {
            let k = workloads::hash64(i) % 300;
            if i % 5 == 0 {
                store.delete(k);
                oracle.remove(&k);
            } else {
                store.put(k, i);
                oracle.insert(k, i);
            }
            // interleave occasional batches
            if i % 97 == 0 {
                store.write_batch(vec![WriteOp::Put(i, i), WriteOp::Delete(i / 2)]);
                oracle.insert(i, i);
                oracle.remove(&(i / 2));
            }
        }
        store.flush();
        let all = store.range(&0, &u64::MAX);
        assert_eq!(all, oracle.into_iter().collect::<Vec<_>>());
    }

    #[test]
    fn stats_aggregate_across_shards() {
        let store = eager(4);
        store.put_all((0..1000u64).map(|k| (k, 1))).wait();
        let s = store.stats();
        assert_eq!(s.raw_ops, 1000);
        assert_eq!(s.applied_ops, 1000);
        assert!(s.commits >= 4, "each shard committed at least once");
        let per = store.stats_per_shard();
        assert_eq!(per.len(), 4);
        assert_eq!(per.iter().map(|p| p.raw_ops).sum::<u64>(), 1000);
        assert!(store.memory_bytes() > 1000 * 8);
    }

    #[test]
    fn one_shard_degenerates_to_single_store() {
        let store = eager(1);
        store.put_all((0..100u64).map(|k| (k, k))).wait();
        assert_eq!(store.num_shards(), 1);
        assert_eq!(store.len(), 100);
        assert_eq!(store.range(&0, &99).len(), 100);
        assert_eq!(store.snapshot().len(), 100);
    }
}
