//! [`DurableStore`]: the versioned store with a disk underneath it.
//!
//! The design exploits the two properties PAM gives us for free:
//!
//! * **One record per epoch.** The group-commit pipeline already merges
//!   all concurrent writers into one normalized batch, so the WAL costs
//!   one append — and under [`pam_wal::SyncPolicy::SyncEachEpoch`] one
//!   *group* fsync — per epoch, not per write. The committer's
//!   [`CommitHook`] logs the batch *before* the epoch is applied or any
//!   ticket wakes: an acknowledged write is a durable write.
//! * **Checkpoints never pause writers.** A checkpoint pins the head
//!   version (O(1), persistent) and streams it to disk in sorted order
//!   while commits keep landing — the same snapshot trick PaC-trees use
//!   for on-disk tree blocks. Afterwards, WAL segments wholly covered by
//!   the checkpoint are unlinked.
//!
//! Recovery ([`DurableStore::open`]) is the composition: load the newest
//! valid checkpoint with the bulk `AugMap::from_sorted_distinct` (O(n)
//! work, parallel), then replay newer WAL epochs through the same
//! `multi_insert`/`multi_delete` path the committer uses. Because logged
//! epochs are normalized (sorted, LWW-resolved), replay is idempotent and
//! may safely overlap the checkpoint's coverage; a torn final record —
//! the signature of a crash mid-append — is truncated away by
//! [`pam_wal::Wal::open`].

use crate::config::{DurabilityConfig, ShardedConfig, StoreConfig};
use crate::op::NormalizedBatch;
use crate::pipeline::CommitHook;
use crate::shard::{GlobalClock, ShardKey, ShardedStore};
use crate::stats::{DurabilityStats, StoreStats};
use crate::store::VersionedStore;
use pam::balance::Balance;
use pam::{AugMap, AugSpec, WeightBalanced};
use pam_obs::{event, flight, Health, Histogram, Level, ObsServer, TelemetrySource};
use pam_wal::wal::WalObs;
use pam_wal::{checkpoint, manifest, record, Codec, DirLock, GlobalStamp, Wal, WalConfig};
use parking_lot::{Condvar, Mutex};
use std::collections::{BTreeMap, BTreeSet};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// What [`DurableStore::open`] found on disk.
#[derive(Clone, Debug, Default)]
pub struct RecoveryInfo {
    /// WAL epoch the loaded checkpoint claimed (0: no checkpoint).
    pub checkpoint_epoch: u64,
    /// Entries bulk-loaded from the checkpoint.
    pub checkpoint_entries: u64,
    /// WAL epochs replayed on top of the checkpoint.
    pub replayed_epochs: u64,
    /// Highest durable WAL epoch after recovery.
    pub last_epoch: u64,
    /// WAL records skipped because their cross-shard batch was voted
    /// torn (logged on some-but-not-all participants) — sharded recovery
    /// only; always 0 for a standalone [`DurableStore`].
    pub discarded_epochs: u64,
    /// Where the recovery wall time went, phase by phase.
    pub timings: RecoveryTimings,
}

/// Per-phase wall-time breakdown of one recovery (all fields zero for
/// phases that did not run).
#[derive(Clone, Copy, Debug, Default)]
pub struct RecoveryTimings {
    /// Sharded only: read-only pre-scan of every shard's WAL for
    /// cross-shard batch stamps. Store-wide — the same value is stamped
    /// into every shard's entry.
    pub prescan: Duration,
    /// Sharded only: the 2PC presence vote deciding torn batches.
    /// Store-wide, like `prescan`.
    pub vote: Duration,
    /// Streaming the newest checkpoint into the map (bulk load).
    pub bulk_load: Duration,
    /// Scanning + frame-decoding the WAL segments ([`Wal::open`]).
    pub segment_scan: Duration,
    /// Decoding epoch bodies and applying them on top of the checkpoint.
    pub replay: Duration,
}

impl RecoveryTimings {
    /// Sum of all phases — the recovery's total accounted wall time.
    pub fn total(&self) -> Duration {
        self.prescan + self.vote + self.bulk_load + self.segment_scan + self.replay
    }
}

// ---------------------------------------------------------------------------
// The global commit tracker (2PC bookkeeping for the epoch clock)
// ---------------------------------------------------------------------------

/// How long a checkpoint will wait for in-flight cross-shard batches to
/// finish logging on their sibling shards before giving up. Decisions
/// normally land in microseconds (each sibling's committer appends one
/// record); the timeout only fires if a sibling is wedged or poisoned —
/// and a failed checkpoint is non-fatal (the WAL still has everything).
const DECISION_TIMEOUT: Duration = Duration::from_secs(10);

/// Shared 2PC bookkeeping for a [`DurableShardedStore`]'s global epoch
/// clock.
///
/// * **Stamping** — the sharded store mints global epochs through
///   [`GlobalTracker::stamp`], which records the batch as *outstanding*
///   until every participant shard's WAL hook reports its slice logged.
/// * **Watermark** — `watermark()` is the largest `W` such that every
///   global epoch `<= W` is *decided* (fully logged). It advances in
///   stamp order, which is what makes "`g <= W`" a sound persisted
///   predicate.
/// * **Persistence** — `persist()` rewrites the shared `MANIFEST` with
///   the current watermark (and the recovery-time discard list). Every
///   shard's checkpoint calls it **before** truncating WAL records, so a
///   record stamped `g` can only be reclaimed once the manifest pins
///   `g`'s decision — the invariant recovery's presence vote relies on:
///   for any `g` above the manifest watermark, every participant's
///   record is still in some WAL.
pub(crate) struct GlobalTracker {
    /// The sharded store's root directory (where `MANIFEST` lives).
    dir: PathBuf,
    shards: u64,
    state: Mutex<TrackerState>,
    /// Serializes manifest rewrites *without* holding `state`: the
    /// commit path (stamp/logged) must never wait on a sibling shard's
    /// checkpoint fsyncing the manifest.
    persist_mutex: Mutex<()>,
}

struct TrackerState {
    /// Next global epoch to mint (watermark + 1 at open).
    next_stamp: u64,
    /// Stamped-but-not-fully-logged batches: global epoch → number of
    /// participant shards that have not logged their slice yet.
    outstanding: BTreeMap<u64, u32>,
    /// Recovery-time discard decisions (all `<=` the open-time
    /// watermark), persisted with every manifest rewrite.
    discarded: Vec<u64>,
    /// Watermark value last written to the manifest.
    persisted: u64,
}

/// The single definition of the watermark: the largest `W` such that
/// every global epoch `<= W` is decided (fully logged). Both checkpoint
/// gating ([`GlobalTracker::watermark`]) and manifest persistence
/// ([`GlobalTracker::persist`]) must agree on this.
fn watermark_of(s: &TrackerState) -> u64 {
    match s.outstanding.keys().next() {
        Some(&oldest_undecided) => oldest_undecided - 1,
        None => s.next_stamp - 1,
    }
}

impl GlobalTracker {
    fn new(dir: PathBuf, shards: u64, watermark: u64, discarded: Vec<u64>) -> Self {
        GlobalTracker {
            dir,
            shards,
            state: Mutex::new(TrackerState {
                next_stamp: watermark + 1,
                outstanding: BTreeMap::new(),
                discarded,
                persisted: watermark,
            }),
            persist_mutex: Mutex::new(()),
        }
    }

    /// Mint the next global epoch and record it as outstanding. The
    /// stamp and the outstanding entry are created atomically — a
    /// watermark read can never observe the stamp as "decided" before
    /// its slices are logged.
    pub(crate) fn stamp(&self, participants: u32) -> GlobalStamp {
        let mut s = self.state.lock();
        let epoch = s.next_stamp;
        crate::shard::check_clock_epoch(epoch);
        s.next_stamp += 1;
        s.outstanding.insert(epoch, participants);
        GlobalStamp {
            epoch,
            participants,
        }
    }

    /// The most recently minted global epoch.
    pub(crate) fn last_stamped(&self) -> u64 {
        self.state.lock().next_stamp - 1
    }

    /// One participant's slice of batch `g` is durable in its WAL.
    fn logged(&self, g: u64) {
        let mut s = self.state.lock();
        if let Some(remaining) = s.outstanding.get_mut(&g) {
            *remaining -= 1;
            if *remaining == 0 {
                s.outstanding.remove(&g);
            }
        }
    }

    /// Largest `W` with every global epoch `<= W` fully logged.
    fn watermark(&self) -> u64 {
        watermark_of(&self.state.lock())
    }

    /// Rewrite the manifest with the current watermark (no-op when it
    /// has not advanced since the last persist). Called by every shard's
    /// checkpoint *before* WAL truncation.
    fn persist(&self) -> io::Result<()> {
        // Serialize writers on a dedicated mutex and read the state
        // under its own (briefly held) lock: the watermark is monotone
        // and each writer reads it *after* acquiring the persist mutex,
        // so the on-disk value stays monotone — while stamp()/logged()
        // on the commit path never wait behind a manifest fsync.
        let _serialize = self.persist_mutex.lock();
        let (w, discarded) = {
            let s = self.state.lock();
            let w = watermark_of(&s);
            if w == s.persisted {
                return Ok(());
            }
            (w, s.discarded.clone())
        };
        manifest::write(&self.dir, self.shards, w, &discarded)?;
        let mut s = self.state.lock();
        s.persisted = s.persisted.max(w);
        Ok(())
    }
}

/// Durability counters shared between the commit hook (writer side) and
/// `stats()` (reader side).
#[derive(Default)]
struct DurCounters {
    records: AtomicU64,
    bytes: AtomicU64,
    fsyncs: AtomicU64,
    checkpoints: AtomicU64,
    ckpt_bytes: AtomicU64,
    last_ckpt_epoch: AtomicU64,
    bytes_at_last_ckpt: AtomicU64,
    /// Whole-checkpoint duration, nanoseconds.
    ckpt_nanos: Histogram,
    /// Per-checkpoint version-pin hold time, nanoseconds.
    ckpt_pin_nanos: Histogram,
}

/// The [`CommitHook`] that gives `VersionedStore` its WAL.
struct WalHook<S: AugSpec>
where
    S::K: Codec,
    S::V: Codec,
{
    wal: Mutex<Wal>,
    /// Serializes checkpoints: a manual `checkpoint()` racing the
    /// background checkpointer must not interleave writes into the same
    /// temp file (or race the prune of stale checkpoints).
    ckpt_mutex: Mutex<()>,
    /// Logged epoch = `base` + pipeline epoch, keeping WAL epochs
    /// monotone across restarts (the pipeline restarts at 1 every open).
    base: u64,
    /// Highest WAL epoch whose version is published — the most a
    /// checkpoint may claim to contain.
    published: AtomicU64,
    /// The sharded store's 2PC bookkeeping (None for standalone stores).
    tracker: Option<Arc<GlobalTracker>>,
    /// Stamped slices this shard has logged whose batch is (possibly)
    /// still undecided: WAL epoch → global epoch. Pruned against the
    /// tracker watermark at checkpoint time; what remains gates how far
    /// a checkpoint may bake — an undecided batch must never be folded
    /// into a checkpoint, because recovery can only discard it at WAL
    /// record granularity.
    pending: Mutex<BTreeMap<u64, u64>>,
    counters: DurCounters,
    /// The WAL's hot-path histograms (append/fsync latency, rotations),
    /// cached here so `stats()` can snapshot them without taking the WAL
    /// mutex away from the committer.
    wal_obs: Arc<WalObs>,
    last_ckpt_at: Mutex<Option<Instant>>,
    /// The background checkpointer's most recent failure (cleared by its
    /// next success): surfaces as `Health::Degraded` on `/health` before
    /// an unbounded WAL becomes an outage.
    last_ckpt_error: Mutex<Option<String>>,
    _spec: std::marker::PhantomData<fn(S)>,
}

impl<S: AugSpec> WalHook<S>
where
    S::K: Codec,
    S::V: Codec,
{
    fn last_ckpt_error(&self) -> Option<String> {
        self.last_ckpt_error.lock().clone()
    }

    fn durability_stats(&self) -> DurabilityStats {
        let segments = self.wal.lock().segments() as u64;
        DurabilityStats {
            // relaxed: a monitoring snapshot — each counter is
            // independently meaningful and slight skew between them is
            // inherent to sampling live writers (all loads below alike)
            wal_records: self.counters.records.load(Ordering::Relaxed),
            wal_bytes: self.counters.bytes.load(Ordering::Relaxed), // relaxed: see above
            wal_fsyncs: self.counters.fsyncs.load(Ordering::Relaxed), // relaxed: see above
            wal_segments: segments,
            wal_rotations: self.wal_obs.rotations(),
            wal_append: self.wal_obs.append_nanos.snapshot(),
            wal_fsync: self.wal_obs.fsync_nanos.snapshot(),
            checkpoints: self.counters.checkpoints.load(Ordering::Relaxed), // relaxed: see above
            checkpoint_bytes: self.counters.ckpt_bytes.load(Ordering::Relaxed), // relaxed: see above
            checkpoint: self.counters.ckpt_nanos.snapshot(),
            checkpoint_pin_hold: self.counters.ckpt_pin_nanos.snapshot(),
            // relaxed: see above
            last_checkpoint_epoch: self.counters.last_ckpt_epoch.load(Ordering::Relaxed),
            last_checkpoint_age: self.last_ckpt_at.lock().map(|at| at.elapsed()),
        }
    }
}

impl<S: AugSpec> CommitHook<S> for WalHook<S>
where
    S::K: Codec,
    S::V: Codec,
{
    fn log_epoch(
        &self,
        epoch: u64,
        global: Option<GlobalStamp>,
        batch: &NormalizedBatch<S>,
    ) -> io::Result<()> {
        let mut body = Vec::with_capacity(16 * batch.len() + 16);
        record::encode_epoch_body(&batch.puts, &batch.deletes, &mut body);
        let wal_epoch = self.base + epoch;
        let synced = {
            let mut wal = self.wal.lock();
            let info = wal.append(wal_epoch, global, &body)?;
            // relaxed: monitoring counters; durability is carried by the
            // append + sync above, not by these
            self.counters.records.fetch_add(1, Ordering::Relaxed);
            self.counters.bytes.fetch_add(info.bytes, Ordering::Relaxed); // relaxed: see above
            let mut synced = info.synced;
            // A cross-shard slice is force-synced regardless of the
            // configured policy: `tracker.logged()` below advances the
            // 2PC watermark, whose meaning is "durable on all
            // participants" — under a relaxed policy (NoSync/SyncEveryN/
            // SyncEveryBytes) an unsynced slice could vanish in a power
            // cut *after* the watermark passed it, and recovery would
            // then trust a decision whose evidence is gone (a sibling
            // may already have baked its slice into a checkpoint).
            // Single-shard epochs keep the relaxed policy untouched.
            if self.tracker.is_some() && global.is_some() && !synced {
                wal.sync()?;
                synced = true;
            }
            synced
        };
        if synced {
            // relaxed: monitoring counter only
            self.counters.fsyncs.fetch_add(1, Ordering::Relaxed);
        }
        if let (Some(tracker), Some(stamp)) = (&self.tracker, global) {
            // Record the slice as pending *before* reporting it logged:
            // a checkpoint that races us must either see the pending
            // entry or see the batch already decided.
            // lint: allow(lock-order) the wal guard above is scoped to
            // the `synced` block and already dropped here
            self.pending.lock().insert(wal_epoch, stamp.epoch);
            tracker.logged(stamp.epoch);
        }
        Ok(())
    }

    fn epoch_published(&self, epoch: u64, _version: u64) {
        self.published.store(self.base + epoch, Ordering::Release);
    }
}

/// Shutdown signal for the background checkpointer.
#[derive(Default)]
struct StopSignal {
    stop: Mutex<bool>,
    cv: Condvar,
}

/// A [`VersionedStore`] whose commits survive restarts and crashes.
///
/// Derefs to the inner [`VersionedStore`], so the whole read/write/version
/// API is available unchanged; writes flow through the same group-commit
/// pipeline, now logged by a [`CommitHook`] before they are acknowledged.
///
/// ```
/// use pam::SumAug;
/// use pam_store::{DurabilityConfig, DurableStore, StoreConfig};
///
/// let dir = std::env::temp_dir().join(format!("pam-doc-{}", std::process::id()));
/// let open = || -> DurableStore<SumAug<u64, u64>> {
///     DurableStore::open(&dir, StoreConfig::default(), DurabilityConfig::default()).unwrap()
/// };
///
/// let store = open();
/// store.put(1, 10).wait(); // on disk when wait() returns
/// drop(store); // releases the directory lock
///
/// let store = open();
/// assert_eq!(store.get(&1), Some(10)); // recovered
/// # drop(store);
/// # std::fs::remove_dir_all(&dir).unwrap();
/// ```
pub struct DurableStore<S: AugSpec, B: Balance = WeightBalanced>
where
    S::K: Codec,
    S::V: Codec,
{
    /// Declared first: the telemetry server's source closures hold store
    /// and hook handles, so the server must shut down (and drain its
    /// in-flight scrapes) before the store below begins its teardown.
    obs: Option<ObsServer>,
    store: Arc<VersionedStore<S, B>>,
    hook: Arc<WalHook<S>>,
    config: DurabilityConfig,
    dir: PathBuf,
    recovery: RecoveryInfo,
    stop: Arc<StopSignal>,
    checkpointer: Option<std::thread::JoinHandle<()>>,
    /// Stays registered through the drain: a panic while the final
    /// epochs flush still leaves its black box next to the WAL.
    _dump_dir: Option<flight::DumpDirGuard>,
    /// Declared last: released only after the store above has drained
    /// its final epochs into the WAL.
    _lock: DirLock,
}

impl<S: AugSpec, B: Balance> DurableStore<S, B>
where
    S::K: Codec,
    S::V: Codec,
{
    /// Open (or create) a durable store in `dir`: load the newest valid
    /// checkpoint, replay newer WAL epochs, and start accepting traffic.
    /// A torn final WAL record (crash mid-append) is tolerated and
    /// truncated; see the module docs for the recovery contract.
    ///
    /// # Errors
    ///
    /// * `WouldBlock` — another live process holds the directory lock;
    /// * `InvalidData` — corruption outside the tolerated torn tail, or
    ///   a WAL gap (acknowledged epochs missing from the log);
    /// * other kinds pass through from the filesystem.
    pub fn open(
        dir: impl AsRef<Path>,
        config: StoreConfig,
        durability: DurabilityConfig,
    ) -> io::Result<Self> {
        Self::open_with(dir, config, durability, None, &BTreeSet::new())
    }

    /// [`Self::open`] with the sharded layer's recovery inputs: the
    /// shared 2PC `tracker` (wired into the WAL hook so logged slices
    /// report in and checkpoints gate/persist), and the `discard` set —
    /// global epochs whose batches the cross-shard vote rejected, whose
    /// records replay must skip.
    pub(crate) fn open_with(
        dir: impl AsRef<Path>,
        config: StoreConfig,
        durability: DurabilityConfig,
        tracker: Option<Arc<GlobalTracker>>,
        discard: &BTreeSet<u64>,
    ) -> io::Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        // one writer per directory: a second open (double-started
        // service) must fail fast, not interleave WAL frames
        let lock = DirLock::acquire(&dir)?;
        checkpoint::clean_temp_files(&dir)?;

        // 1. checkpoint: stream the newest valid snapshot into the map
        //    chunk by chunk — each chunk bulk-loads with the O(chunk)
        //    `from_sorted_distinct` and unions onto the accumulated map's
        //    right edge (chunks ascend globally), so peak memory is one
        //    chunk, never the whole checkpoint vector.
        let mut timings = RecoveryTimings::default();
        let phase_start = Instant::now();
        let loaded = checkpoint::load_latest_with::<S::K, S::V, AugMap<S, B>>(
            &dir,
            AugMap::new,
            |m, chunk| {
                let right = AugMap::from_sorted_distinct(&chunk);
                let left = std::mem::replace(m, AugMap::new());
                *m = left.union(right);
            },
        )?;
        let (ckpt_epoch, checkpoint_entries, mut map) = match loaded {
            Some((epoch, entries, map)) => (epoch, entries, map),
            None => (0, 0, AugMap::new()),
        };
        timings.bulk_load = phase_start.elapsed();

        // 2. WAL: replay epochs past the checkpoint through the same
        //    multi_insert/multi_delete path the committer uses
        let wal_config = WalConfig {
            segment_bytes: durability.segment_bytes,
            sync: durability.sync,
        };
        let phase_start = Instant::now();
        let (wal, records) = Wal::open(&dir, wal_config)?;
        timings.segment_scan = phase_start.elapsed();
        let mut replayed = 0u64;
        let mut last_epoch = ckpt_epoch.max(wal.last_epoch());
        // Gap detection: logged epochs increment by exactly 1 (within a
        // run and across restarts, via `base`), and WAL truncation only
        // ever removes a prefix — so the surviving records must be a
        // contiguous run starting at or before ckpt_epoch + 1. Anything
        // else means acked epochs are missing (e.g. the newest checkpoint
        // failed validation *after* its WAL coverage was truncated), and
        // silently serving that state would lose acknowledged writes.
        let mut prev_epoch: Option<u64> = None;
        for rec in &records {
            let expected_from = match prev_epoch {
                Some(p) => p + 1,
                None => {
                    if rec.epoch > ckpt_epoch + 1 {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!(
                                "WAL gap: checkpoint covers epochs <= {ckpt_epoch} but the \
                                 log resumes at {} — acked epochs are missing (a newer \
                                 checkpoint may have failed validation)",
                                rec.epoch
                            ),
                        ));
                    }
                    rec.epoch
                }
            };
            if rec.epoch != expected_from {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "WAL gap: epoch {} follows {} — the log is not contiguous",
                        rec.epoch,
                        expected_from - 1
                    ),
                ));
            }
            prev_epoch = Some(rec.epoch);
        }
        // Decode epoch bodies in parallel (CPU-bound varint parsing),
        // then apply them in epoch order — application must stay
        // sequential because later epochs overwrite earlier ones. Decode
        // in bounded windows so peak memory is the raw records plus one
        // window of decoded bodies, not a second full copy of the log.
        use rayon::prelude::*;
        const DECODE_WINDOW: usize = 64;
        let phase_start = Instant::now();
        let mut discarded = 0u64;
        let to_replay: Vec<&pam_wal::EpochRecord> = records
            .iter()
            .filter(|r| r.epoch > ckpt_epoch) // inside the checkpoint already (idempotent anyway)
            .filter(|r| {
                // A slice of a torn cross-shard batch: the 2PC vote
                // discarded the whole batch, so this record's epoch
                // number survives (contiguity above already checked it)
                // but its operations must not be applied.
                let drop = r.global.is_some_and(|s| discard.contains(&s.epoch));
                discarded += u64::from(drop);
                !drop
            })
            .collect();
        for window in to_replay.chunks(DECODE_WINDOW) {
            let bodies: Vec<Result<_, _>> = window
                .par_iter()
                .map(|rec| record::decode_epoch_body::<S::K, S::V>(&rec.body))
                .collect();
            for (rec, body) in window.iter().zip(bodies) {
                let body = body?;
                if !body.puts.is_empty() {
                    map.multi_insert(body.puts);
                }
                if !body.deletes.is_empty() {
                    map.multi_delete(body.deletes);
                }
                replayed += 1;
                last_epoch = last_epoch.max(rec.epoch);
            }
        }
        timings.replay = phase_start.elapsed();
        event!(
            Level::Info,
            "pam_store::recovery",
            "recovered {}: checkpoint epoch {ckpt_epoch} ({checkpoint_entries} entries, \
             {:?}), wal scan {:?}, replayed {replayed} epochs ({discarded} discarded) in {:?}",
            dir.display(),
            timings.bulk_load,
            timings.segment_scan,
            timings.replay
        );

        // 3. hand the recovered map to a fresh pipeline with the WAL hook
        let standalone = tracker.is_none();
        let wal_obs = wal.obs();
        let hook = Arc::new(WalHook::<S> {
            wal: Mutex::new(wal),
            ckpt_mutex: Mutex::new(()),
            base: last_epoch,
            published: AtomicU64::new(last_epoch),
            tracker,
            pending: Mutex::new(BTreeMap::new()),
            counters: DurCounters::default(),
            wal_obs,
            last_ckpt_at: Mutex::new(None),
            last_ckpt_error: Mutex::new(None),
            _spec: std::marker::PhantomData,
        });
        let store = Arc::new(VersionedStore::with_commit_hook(
            map,
            config,
            hook.clone() as Arc<dyn CommitHook<S>>,
        ));

        // 4. background checkpointer, if configured
        let stop = Arc::new(StopSignal::default());
        let checkpointer = if durability.checkpoint_every_bytes.is_some()
            || durability.checkpoint_interval.is_some()
        {
            let (store2, hook2, stop2, dir2, cfg2) = (
                store.clone(),
                hook.clone(),
                stop.clone(),
                dir.clone(),
                durability.clone(),
            );
            Some(
                std::thread::Builder::new()
                    .name("pam-store-checkpointer".into())
                    .spawn(move || run_checkpointer(&store2, &hook2, &stop2, &dir2, &cfg2))?,
            )
        } else {
            None
        };

        // 5. observability: register the WAL dir for flight dumps (the
        //    sharded store registers its root directory once instead of
        //    per shard), and bind the live telemetry endpoint if asked.
        let dump_dir = standalone.then(|| flight::register_dump_dir(&dir));
        let obs = match &durability.obs_addr {
            Some(addr) => {
                let (st, hk) = (store.clone(), hook.clone());
                let (st2, hk2) = (store.clone(), hook.clone());
                let source = TelemetrySource {
                    export: Box::new(move |reg| {
                        let mut s = st.stats();
                        s.durability = hk.durability_stats();
                        s.export_into(reg);
                    }),
                    health: Box::new(move || durable_health(st2.health(), hk2.last_ckpt_error())),
                };
                Some(ObsServer::bind(addr.as_str(), source).map_err(|e| {
                    io::Error::new(e.kind(), format!("binding obs_addr {addr}: {e}"))
                })?)
            }
            None => None,
        };

        Ok(DurableStore {
            obs,
            store,
            hook,
            config: durability,
            dir,
            recovery: RecoveryInfo {
                checkpoint_epoch: ckpt_epoch,
                checkpoint_entries,
                replayed_epochs: replayed,
                last_epoch,
                discarded_epochs: discarded,
                timings,
            },
            stop,
            checkpointer,
            _dump_dir: dump_dir,
            _lock: lock,
        })
    }

    /// Write a checkpoint now: pin the head, stream it to disk (writers
    /// keep committing), then truncate WAL segments the checkpoint
    /// covers. Returns the WAL epoch the checkpoint claims.
    ///
    /// # Errors
    ///
    /// Filesystem errors pass through; a sharded store's shard
    /// additionally fails with `TimedOut` if a cross-shard batch stays
    /// undecided (a sibling shard wedged mid-log) — a failed checkpoint
    /// is never fatal, the WAL still holds everything.
    pub fn checkpoint(&self) -> io::Result<u64> {
        do_checkpoint(&self.store, &self.hook, &self.dir, &self.config)
    }

    /// What recovery found when this store was opened.
    pub fn recovery(&self) -> &RecoveryInfo {
        &self.recovery
    }

    /// Highest WAL epoch that is both durable and published.
    pub fn wal_epoch(&self) -> u64 {
        self.hook.published.load(Ordering::Acquire)
    }

    /// The directory holding the WAL and checkpoints.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// A cloneable, `'static` handle to the underlying versioned store —
    /// convenient for spawning reader/writer threads. Writes through the
    /// handle flow through the same logged pipeline and are just as
    /// durable.
    pub fn handle(&self) -> Arc<VersionedStore<S, B>> {
        self.store.clone()
    }

    /// Store statistics including the durability counters (shadows
    /// [`VersionedStore::stats`], which reports them as zeros).
    pub fn stats(&self) -> StoreStats {
        let mut stats = self.store.stats();
        stats.durability = self.hook.durability_stats();
        stats
    }

    /// Liveness including durability (shadows [`VersionedStore::health`]):
    /// `Poisoned` with the original WAL error after a fail-stop,
    /// `Degraded` while the background checkpointer keeps failing,
    /// `Healthy` otherwise.
    pub fn health(&self) -> Health {
        durable_health(self.store.health(), self.hook.last_ckpt_error())
    }

    /// The live telemetry endpoint's bound address, when
    /// [`DurabilityConfig::obs_addr`] was configured (resolves port 0).
    pub fn obs_addr(&self) -> Option<std::net::SocketAddr> {
        self.obs.as_ref().map(|o| o.local_addr())
    }
}

/// Fold the pipeline's fail-stop verdict with the background
/// checkpointer's: poisoned beats degraded beats healthy.
fn durable_health(store: Health, ckpt_error: Option<String>) -> Health {
    match ckpt_error {
        Some(e) => store.worse(Health::Degraded(format!(
            "background checkpoint failing: {e}"
        ))),
        None => store,
    }
}

/// Shared by `checkpoint()` and the background thread.
fn do_checkpoint<S: AugSpec, B: Balance>(
    store: &VersionedStore<S, B>,
    hook: &WalHook<S>,
    dir: &Path,
    config: &DurabilityConfig,
) -> io::Result<u64>
where
    S::K: Codec,
    S::V: Codec,
{
    // One checkpoint at a time: a manual call racing the background
    // thread must not interleave into the same temp file.
    let _serialize = hook.ckpt_mutex.lock();
    // Read the published epoch *before* pinning: every epoch <= `epoch`
    // is then guaranteed inside the pin (versions publish in epoch
    // order). The pin may contain later epochs too — harmless, replay is
    // idempotent.
    let ckpt_start = Instant::now();
    let epoch = hook.published.load(Ordering::Acquire);
    let pin = store.pin();
    let pin_start = Instant::now();
    if let Some(tracker) = &hook.tracker {
        // Epoch-clock gating. The pin may contain slices of cross-shard
        // batches not yet logged by every sibling shard. Baking such a
        // slice into the checkpoint would make it un-discardable if the
        // batch later loses the recovery vote, so wait (decisions land
        // as fast as the siblings' committers append — microseconds)
        // until the watermark passes every stamp that can be in the pin.
        // Every such stamp is in `pending` right now: slices log before
        // they publish, and pruning only removes already-decided ones.
        let gate = hook.pending.lock().values().copied().max();
        if let Some(newest_stamp) = gate {
            let deadline = Instant::now() + DECISION_TIMEOUT;
            while tracker.watermark() < newest_stamp {
                if Instant::now() > deadline {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        "checkpoint blocked: a cross-shard batch is still awaiting \
                         its sibling shards' WAL appends (is a sibling wedged?)",
                    ));
                }
                std::thread::sleep(Duration::from_millis(1));
            }
            let w = tracker.watermark();
            hook.pending.lock().retain(|_, g| *g > w);
        }
    }
    let map = pin.map();
    let ckpt_bytes = checkpoint::write(
        dir,
        epoch,
        map.len() as u64,
        |emit| map.for_each(|k, v| emit(k, v)),
        config.keep_checkpoints,
    )?;
    drop(pin); // the snapshot is on disk; release the version
    hook.counters
        .ckpt_pin_nanos
        .record_duration(pin_start.elapsed());
    if let Some(tracker) = &hook.tracker {
        // Pin the clock in the manifest *before* truncation may reclaim
        // stamped records: recovery's presence vote only runs for stamps
        // above the manifest watermark, so a record may vanish from the
        // log only once its batch's decision is persisted.
        tracker.persist()?;
    }
    hook.wal.lock().truncate_through(epoch)?;
    // relaxed: checkpoint bookkeeping counters — the checkpointer is the
    // only writer (ckpt_mutex) and readers tolerate sampling skew; the
    // last_ckpt_epoch/bytes_at_last_ckpt pair only throttles the *next*
    // checkpoint, where an off-by-one read is harmless
    hook.counters.checkpoints.fetch_add(1, Ordering::Relaxed);
    hook.counters
        .ckpt_bytes
        // relaxed: see above
        .fetch_add(ckpt_bytes, Ordering::Relaxed);
    hook.counters
        .last_ckpt_epoch
        // relaxed: see above
        .store(epoch, Ordering::Relaxed);
    // relaxed: see above
    hook.counters.bytes_at_last_ckpt.store(
        hook.counters.bytes.load(Ordering::Relaxed), // relaxed: see above
        Ordering::Relaxed,                           // relaxed: see above
    );
    *hook.last_ckpt_at.lock() = Some(Instant::now());
    let took = ckpt_start.elapsed();
    hook.counters.ckpt_nanos.record_duration(took);
    event!(
        Level::Info,
        "pam_store::checkpoint",
        "checkpoint at epoch {epoch}: {ckpt_bytes} bytes in {took:?}"
    );
    Ok(epoch)
}

fn run_checkpointer<S: AugSpec, B: Balance>(
    store: &VersionedStore<S, B>,
    hook: &WalHook<S>,
    stop: &StopSignal,
    dir: &Path,
    config: &DurabilityConfig,
) where
    S::K: Codec,
    S::V: Codec,
{
    let opened_at = Instant::now();
    let poll = Duration::from_millis(50);
    let mut g = stop.stop.lock();
    loop {
        if *g {
            return;
        }
        let _ = stop.cv.wait_timeout(&mut g, poll);
        if *g {
            return;
        }

        let published = hook.published.load(Ordering::Acquire);
        // relaxed: freshness heuristics — a stale counter read at worst
        // delays or repeats one checkpoint poll (all loads below alike)
        if published == hook.counters.last_ckpt_epoch.load(Ordering::Relaxed) {
            continue; // nothing new to checkpoint
        }
        let bytes_due = config.checkpoint_every_bytes.is_some_and(|threshold| {
            // relaxed: see above
            hook.counters.bytes.load(Ordering::Relaxed)
                - hook.counters.bytes_at_last_ckpt.load(Ordering::Relaxed) // relaxed: see above
                >= threshold
        });
        let time_due = config.checkpoint_interval.is_some_and(|interval| {
            hook.last_ckpt_at
                .lock()
                .map_or(opened_at.elapsed(), |at| at.elapsed())
                >= interval
        });
        if !(bytes_due || time_due) {
            continue;
        }
        drop(g);
        match do_checkpoint(store, hook, dir, config) {
            Ok(_) => {
                *hook.last_ckpt_error.lock() = None;
            }
            Err(e) => {
                // a failed checkpoint is not fatal: the WAL still has
                // everything; surface the problem (stderr, the event
                // ring, and `/health` as Degraded) and retry next tick
                eprintln!("pam-store: background checkpoint failed: {e}");
                event!(
                    Level::Warn,
                    "pam_store::checkpoint",
                    "background checkpoint failed: {e}"
                );
                *hook.last_ckpt_error.lock() = Some(e.to_string());
            }
        }
        // lint: allow(lock-order) re-arming the poll loop: every
        // checkpoint-side guard is dropped, nothing is held here
        g = stop.stop.lock();
    }
}

impl<S: AugSpec, B: Balance> std::ops::Deref for DurableStore<S, B>
where
    S::K: Codec,
    S::V: Codec,
{
    type Target = VersionedStore<S, B>;
    fn deref(&self) -> &Self::Target {
        &self.store
    }
}

impl<S: AugSpec, B: Balance> Drop for DurableStore<S, B>
where
    S::K: Codec,
    S::V: Codec,
{
    fn drop(&mut self) {
        *self.stop.stop.lock() = true;
        self.stop.cv.notify_all();
        if let Some(h) = self.checkpointer.take() {
            let _ = h.join();
        }
        // `self.store` drops after this, draining (and logging) every
        // buffered write; the WAL's own Drop then flushes the tail.
    }
}

impl<S: AugSpec, B: Balance> std::fmt::Debug for DurableStore<S, B>
where
    S::K: Codec,
    S::V: Codec,
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "DurableStore({}, v{}, len {}, wal epoch {})",
            self.dir.display(),
            self.head_version(),
            self.len(),
            self.wal_epoch(),
        )
    }
}

// ---------------------------------------------------------------------------
// Sharded durability
// ---------------------------------------------------------------------------

/// Does `dir` contain any `shard-<i>` subdirectory?
fn has_shard_dirs(dir: &Path) -> io::Result<bool> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if name
            .strip_prefix("shard-")
            .is_some_and(|d| !d.is_empty() && d.bytes().all(|b| b.is_ascii_digit()))
            && entry.file_type()?.is_dir()
        {
            return Ok(true);
        }
    }
    Ok(false)
}

/// A [`ShardedStore`] whose shards each carry their own WAL and
/// checkpointer — N independent durability pipelines under one directory:
///
/// ```text
/// <dir>/MANIFEST            shard count, pinned at creation
/// <dir>/LOCK.pid            one writer per sharded directory
/// <dir>/shard-0/            a full DurableStore dir: wal-*.seg, ckpt-*,
/// <dir>/shard-1/            LOCK.pid — recovered independently
/// ...
/// ```
///
/// Because the shard assignment is a pure function of the key and the
/// shard count ([`ShardKey`]), the count is part of the on-disk format:
/// [`DurableShardedStore::open`] refuses a directory whose manifest
/// disagrees with the requested count rather than silently routing keys
/// to WALs that never held them.
///
/// Recovery is per shard (checkpoint bulk-load + WAL replay, torn tails
/// tolerated) — but **cross-shard batches recover atomically**. Every
/// slice of a multi-shard `write_batch` is logged with its global epoch
/// stamp, and `open` first pre-scans all shards' logs and runs a
/// 2PC-style presence vote: a global epoch logged on *every* participant
/// commits; one logged on some-but-not-all (a crash tore the tail
/// mid-batch) is **discarded on every shard**. The store therefore
/// recovers to the maximum global epoch fully present on all shards — a
/// prefix-consistent cut of the epoch clock — and pins that watermark
/// (plus the discard list) in the `MANIFEST` before serving traffic, so
/// re-opens re-apply the same decisions even after other shards'
/// checkpoints truncate the evidence. Derefs to [`ShardedStore`] for the
/// whole read/write/snapshot API.
pub struct DurableShardedStore<S: AugSpec, B: Balance = WeightBalanced>
where
    S::K: Codec + ShardKey,
    S::V: Codec,
{
    /// Declared first: the telemetry server's source closures hold
    /// sharded-store and hook handles, so the server must shut down
    /// before the shards below begin their teardown.
    obs: Option<ObsServer>,
    /// Declared before `shards`: drops its shard handles before the
    /// `DurableStore`s below join their checkpointers and drain their
    /// pipelines.
    sharded: Arc<ShardedStore<S, B>>,
    shards: Vec<DurableStore<S, B>>,
    tracker: Arc<GlobalTracker>,
    recovery: Vec<RecoveryInfo>,
    dir: PathBuf,
    /// The root directory receives the flight dump for the whole store
    /// (one black box, not one per shard); stays registered through the
    /// shards' drain.
    _dump_dir: flight::DumpDirGuard,
    /// Declared last: the directory stays locked until every shard has
    /// shut down.
    _lock: DirLock,
}

impl<S: AugSpec, B: Balance> DurableShardedStore<S, B>
where
    S::K: Codec + ShardKey,
    S::V: Codec,
{
    /// Open (or create) a sharded durable store in `dir`: verify the
    /// shard-count manifest, **vote on cross-shard batches**, then
    /// recover every shard **in parallel** — checkpoint bulk-load plus
    /// WAL replay, reusing the single-store path per shard.
    ///
    /// The vote is the cross-shard half of recovery: a read-only
    /// pre-scan collects every global epoch stamp from every shard's
    /// log; stamps above the manifest's persisted watermark that are
    /// missing on at least one of their participants mark torn batches,
    /// which every shard's replay then skips. The advanced watermark and
    /// the discard list are pinned back into the manifest *before* any
    /// shard serves traffic, and the global epoch clock resumes past the
    /// watermark.
    ///
    /// # Errors
    ///
    /// * `InvalidInput` — the manifest pins a different shard count (the
    ///   hash routing is part of the on-disk format);
    /// * `InvalidData` — shard directories without a manifest (guessing
    ///   a layout could route keys into the wrong WAL), or corruption /
    ///   WAL gaps inside a shard;
    /// * `WouldBlock` — another live process holds the directory lock.
    pub fn open(
        dir: impl AsRef<Path>,
        config: ShardedConfig,
        durability: DurabilityConfig,
    ) -> io::Result<Self> {
        use rayon::prelude::*;

        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let lock = DirLock::acquire(&dir)?;
        manifest::clean_temp_file(&dir)?;
        let want = config.shards.max(1) as u64;
        let existing = manifest::load(&dir)?;
        match &existing {
            Some(m) if m.shards == want => {}
            Some(m) => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!(
                        "shard-count mismatch: {} holds {} shards, open asked for {want} \
                         (the hash routing is pinned at creation — resharding needs a \
                         rewrite, not a reopen)",
                        dir.display(),
                        m.shards
                    ),
                ));
            }
            // any surviving shard-<i> subdir (not just shard-0 — partial
            // restores can lose arbitrary shards along with the manifest)
            // means there is a layout we would be guessing at
            None if has_shard_dirs(&dir)? => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "{} has shard directories but no manifest — refusing to guess \
                         the layout",
                        dir.display()
                    ),
                ));
            }
            None => {}
        }
        let (prev_watermark, prev_discarded) = existing
            .map(|m| (m.global_epoch, m.discarded))
            .unwrap_or((0, Vec::new()));

        // Phase 1 — the vote. Pre-scan every shard's log (read-only, in
        // parallel) for cross-shard batch stamps, then decide each
        // global epoch above the persisted watermark: present on every
        // participant → commit; missing anywhere (a crash tore the tail
        // mid-batch) → discard on all shards. Epochs at or below the
        // watermark keep their persisted decision — their records may
        // already have been truncated elsewhere, so re-counting them
        // would be unsound. (Known cost: the pre-scan decodes the WALs
        // once and phase 2's `Wal::open` decodes them again — threading
        // the scan results through would halve open-time I/O; see
        // ROADMAP.)
        let phase_start = Instant::now();
        let scans = (0..want as usize)
            .into_par_iter()
            .map(|i| pam_wal::wal::scan_global_stamps(manifest::shard_dir(&dir, i)))
            .collect::<Vec<io::Result<Vec<GlobalStamp>>>>()
            .into_iter()
            .collect::<io::Result<Vec<_>>>()?;
        let prescan_took = phase_start.elapsed();
        let phase_start = Instant::now();
        let mut seen: BTreeMap<u64, (u32, u32)> = BTreeMap::new(); // g → (participants, present)
        for per_shard in &scans {
            let mut uniq = BTreeSet::new();
            for stamp in per_shard {
                if uniq.insert(stamp.epoch) {
                    let entry = seen.entry(stamp.epoch).or_insert((stamp.participants, 0));
                    entry.1 += 1;
                }
            }
        }
        let mut discard: BTreeSet<u64> = prev_discarded.into_iter().collect();
        let mut watermark = prev_watermark;
        for (&g, &(participants, present)) in &seen {
            watermark = watermark.max(g);
            if g > prev_watermark && present < participants {
                discard.insert(g);
            }
        }
        // Forget discards no shard's log still mentions: once the last
        // record of a torn batch is truncated away, nothing can resurface
        // it (the clock never re-mints an old epoch).
        discard.retain(|g| seen.contains_key(g));
        let discard_list: Vec<u64> = discard.iter().copied().collect();
        // Pin the decisions before any shard opens for traffic: every
        // global epoch <= watermark now has a persisted verdict.
        manifest::write(&dir, want, watermark, &discard_list)?;
        let vote_took = phase_start.elapsed();
        event!(
            Level::Info,
            "pam_store::recovery",
            "sharded vote over {want} shards: watermark {watermark}, {} discarded \
             (pre-scan {prescan_took:?}, vote {vote_took:?})",
            discard.len()
        );
        let tracker = Arc::new(GlobalTracker::new(
            dir.clone(),
            want,
            watermark,
            discard_list,
        ));

        // Phase 2 — recover every shard concurrently: each open is an
        // independent checkpoint bulk-load + WAL replay in its own
        // `shard-<i>/` directory (its own DirLock), so shard recovery
        // time is the max over shards instead of the sum. Replay skips
        // the discarded batches. The parallel driver keeps the results
        // in shard order; the first error wins (already-opened shards
        // shut down cleanly when dropped).
        // Shards never bind their own telemetry endpoint: one aggregated
        // server (below) covers the whole store.
        let shard_durability = DurabilityConfig {
            obs_addr: None,
            ..durability.clone()
        };
        let shards = (0..want as usize)
            .into_par_iter()
            .map(|i| {
                DurableStore::open_with(
                    manifest::shard_dir(&dir, i),
                    config.store.clone(),
                    shard_durability.clone(),
                    Some(tracker.clone()),
                    &discard,
                )
            })
            .collect::<Vec<io::Result<DurableStore<S, B>>>>()
            .into_iter()
            .collect::<io::Result<Vec<_>>>()?;
        // The pre-scan and vote are store-wide phases; stamp the same
        // wall times into every shard's entry (documented on
        // `RecoveryTimings`).
        let recovery = shards
            .iter()
            .map(|s| {
                let mut info = s.recovery().clone();
                info.timings.prescan = prescan_took;
                info.timings.vote = vote_took;
                info
            })
            .collect();
        let sharded = Arc::new(ShardedStore::from_stores_with_clock(
            shards.iter().map(|s| s.handle()).collect(),
            GlobalClock::tracked(tracker.clone()),
        ));

        // Observability: the root directory gets the flight dump, and one
        // aggregated telemetry endpoint serves the whole store (per-shard
        // stats folded + fence overlay, worst shard health wins).
        let dump_dir = flight::register_dump_dir(&dir);
        let obs = match &durability.obs_addr {
            Some(addr) => {
                let hooks: Vec<Arc<WalHook<S>>> = shards.iter().map(|s| s.hook.clone()).collect();
                let (sh, hooks2) = (sharded.clone(), hooks.clone());
                let sh2 = sharded.clone();
                let source = TelemetrySource {
                    export: Box::new(move |reg| {
                        let mut per = sh.stats_per_shard();
                        for (s, h) in per.iter_mut().zip(&hooks) {
                            s.durability = h.durability_stats();
                        }
                        let mut agg = StoreStats::aggregate(per.iter());
                        sh.overlay_fence_stats(&mut agg);
                        agg.export_into(reg);
                    }),
                    health: Box::new(move || sharded_health(&sh2, &hooks2)),
                };
                Some(ObsServer::bind(addr.as_str(), source).map_err(|e| {
                    io::Error::new(e.kind(), format!("binding obs_addr {addr}: {e}"))
                })?)
            }
            None => None,
        };

        Ok(DurableShardedStore {
            obs,
            sharded,
            shards,
            tracker,
            recovery,
            dir,
            _dump_dir: dump_dir,
            _lock: lock,
        })
    }

    /// Checkpoint every shard (each pins its own head and streams it
    /// concurrently with writers); returns the per-shard WAL epochs the
    /// checkpoints claim. Each shard persists the global epoch
    /// watermark to the manifest before truncating its WAL.
    ///
    /// # Errors
    ///
    /// The first failing shard's error (see [`DurableStore::checkpoint`]);
    /// earlier shards' checkpoints remain valid.
    pub fn checkpoint(&self) -> io::Result<Vec<u64>> {
        self.shards.iter().map(|s| s.checkpoint()).collect()
    }

    /// What recovery found per shard when this store was opened.
    pub fn recovery(&self) -> &[RecoveryInfo] {
        &self.recovery
    }

    /// Highest durable-and-published WAL epoch per shard.
    pub fn wal_epochs(&self) -> Vec<u64> {
        self.shards.iter().map(|s| s.wal_epoch()).collect()
    }

    /// The global epoch clock's committed watermark: every cross-shard
    /// batch stamped `<=` this value is decided (durable on all its
    /// shards, or discarded on all of them). At open this is the
    /// *maximum global epoch fully present on all shards* — the
    /// prefix-consistent cut recovery restored.
    pub fn global_watermark(&self) -> u64 {
        self.tracker.watermark()
    }

    /// The directory holding the manifest and shard subdirectories.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of shards (as pinned by the manifest).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// A cloneable, `'static` handle to the sharded store — for spawning
    /// reader/writer threads. Writes through the handle flow through the
    /// same per-shard logged pipelines.
    pub fn handle(&self) -> Arc<ShardedStore<S, B>> {
        self.sharded.clone()
    }

    /// Store-wide statistics with durability counters aggregated across
    /// shards (see [`StoreStats::aggregate`] for the folding rules),
    /// overlaid with the sharded-layer fence metrics.
    pub fn stats(&self) -> StoreStats {
        let per = self.stats_per_shard();
        let mut s = StoreStats::aggregate(per.iter());
        self.sharded.overlay_fence_stats(&mut s);
        s
    }

    /// Per-shard statistics including each shard's durability counters.
    pub fn stats_per_shard(&self) -> Vec<StoreStats> {
        self.shards.iter().map(|s| s.stats()).collect()
    }

    /// The worst health over all shards, durability included: a poisoned
    /// shard's WAL error (prefixed with its index) beats a failing
    /// background checkpointer's `Degraded`, which beats `Healthy`.
    pub fn health(&self) -> Health {
        let hooks: Vec<Arc<WalHook<S>>> = self.shards.iter().map(|s| s.hook.clone()).collect();
        sharded_health(&self.sharded, &hooks)
    }

    /// The live telemetry endpoint's bound address, when
    /// [`DurabilityConfig::obs_addr`] was configured (resolves port 0).
    pub fn obs_addr(&self) -> Option<std::net::SocketAddr> {
        self.obs.as_ref().map(|o| o.local_addr())
    }
}

/// The sharded health fold shared by [`DurableShardedStore::health`] and
/// its telemetry source: worst shard wins, checkpointer failures surface
/// as `Degraded` with the shard index prefixed.
fn sharded_health<S: AugSpec, B: Balance>(
    sharded: &ShardedStore<S, B>,
    hooks: &[Arc<WalHook<S>>],
) -> Health
where
    S::K: Codec + ShardKey,
    S::V: Codec,
{
    let mut health = sharded.health();
    for (i, hook) in hooks.iter().enumerate() {
        if let Some(e) = hook.last_ckpt_error() {
            health = health.worse(Health::Degraded(format!(
                "shard {i}: background checkpoint failing: {e}"
            )));
        }
    }
    health
}

impl<S: AugSpec, B: Balance> std::ops::Deref for DurableShardedStore<S, B>
where
    S::K: Codec + ShardKey,
    S::V: Codec,
{
    type Target = ShardedStore<S, B>;
    fn deref(&self) -> &Self::Target {
        &self.sharded
    }
}

impl<S: AugSpec, B: Balance> std::fmt::Debug for DurableShardedStore<S, B>
where
    S::K: Codec + ShardKey,
    S::V: Codec,
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "DurableShardedStore({}, {} shards, len {})",
            self.dir.display(),
            self.num_shards(),
            self.sharded.len(),
        )
    }
}
