//! Property tests: the pipeline's parallel normalize (parlay sort +
//! last-write-wins dedup) must agree with a boring sequential replay.

use pam::{AugMap, SumAug};
use pam_store::op::normalize;
use pam_store::{StoreConfig, VersionedStore, WriteOp};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::time::Duration;

type S = SumAug<u64, u64>;

/// Put/Delete over a deliberately small key space so batches collide.
fn op_strategy() -> impl Strategy<Value = WriteOp<S>> {
    prop_oneof![
        (0u64..64, 0u64..1_000_000).prop_map(|(k, v)| WriteOp::Put(k, v)),
        (0u64..64).prop_map(WriteOp::Delete),
    ]
}

fn apply_sequentially(oracle: &mut BTreeMap<u64, u64>, ops: &[WriteOp<S>]) {
    for op in ops {
        match op {
            WriteOp::Put(k, v) => {
                oracle.insert(*k, *v);
            }
            WriteOp::Delete(k) => {
                oracle.remove(k);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // One epoch: normalize + one multi_insert/multi_delete must land on
    // the same state as replaying the raw operations one by one.
    #[test]
    fn normalize_matches_sequential_replay(
        base in collection::vec((0u64..64, 0u64..1_000_000), 0..40),
        ops in collection::vec(op_strategy(), 0..400),
    ) {
        let mut oracle: BTreeMap<u64, u64> = BTreeMap::new();
        apply_sequentially(
            &mut oracle,
            &base.iter().map(|&(k, v)| WriteOp::Put(k, v)).collect::<Vec<_>>(),
        );
        apply_sequentially(&mut oracle, &ops);

        let mut map: AugMap<S> = AugMap::build(base);
        let tagged: Vec<(u64, WriteOp<S>)> =
            ops.into_iter().enumerate().map(|(i, op)| (i as u64, op)).collect();
        let batch = normalize::<S>(tagged);
        // normalized halves are disjoint, so application order is free
        if !batch.deletes.is_empty() {
            map.multi_delete(batch.deletes);
        }
        if !batch.puts.is_empty() {
            map.multi_insert(batch.puts);
        }

        prop_assert_eq!(map.to_vec(), oracle.into_iter().collect::<Vec<_>>());
    }

    // Many epochs through the real store (arbitrary batch boundaries)
    // must equal the same sequential replay.
    #[test]
    fn store_matches_sequential_replay_across_epochs(
        ops in collection::vec(op_strategy(), 0..300),
        cuts in collection::vec(1usize..24, 1..24),
    ) {
        let store: VersionedStore<S> = VersionedStore::with_config(StoreConfig {
            batch_window: Duration::ZERO,
            ..StoreConfig::default()
        });
        let mut oracle: BTreeMap<u64, u64> = BTreeMap::new();
        apply_sequentially(&mut oracle, &ops);

        let mut rest = ops.as_slice();
        let mut cut_iter = cuts.iter().cycle();
        while !rest.is_empty() {
            let n = (*cut_iter.next().unwrap()).min(rest.len());
            let (chunk, tail) = rest.split_at(n);
            store.write_batch(chunk.to_vec());
            rest = tail;
        }
        store.flush();

        let pin = store.pin();
        prop_assert_eq!(pin.map().to_vec(), oracle.into_iter().collect::<Vec<_>>());
    }
}
