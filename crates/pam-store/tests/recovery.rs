//! Crash-recovery integration tests for `DurableStore`.
//!
//! The centerpiece is `kill_and_recover`: the test re-executes its own
//! binary as a child process that writes through a `DurableStore` and
//! then `abort()`s — no destructors, no WAL flush, exactly like a crash —
//! and the parent recovers the directory and checks the durable prefix
//! against an in-memory oracle. Torn-tail and checkpoint interplay get
//! their own deterministic tests.

use pam::{NoAug, SumAug};
use pam_store::{DurabilityConfig, DurableStore, StoreConfig, SyncPolicy, WriteOp};
use std::collections::BTreeMap;
use std::fs;
use std::path::PathBuf;
use std::time::Duration;

type Store = DurableStore<SumAug<u64, u64>>;

fn eager() -> StoreConfig {
    StoreConfig {
        batch_window: Duration::ZERO,
        ..StoreConfig::default()
    }
}

fn fresh_dir(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("pam-recovery-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&d);
    d
}

fn open(dir: &PathBuf, durability: DurabilityConfig) -> Store {
    Store::open(dir, eager(), durability).expect("open durable store")
}

#[test]
fn reopen_sees_acked_writes() {
    let dir = fresh_dir("reopen");
    {
        let store = open(&dir, DurabilityConfig::default());
        for e in 1..=30u64 {
            store.put(e, e * 2).wait();
        }
        store.delete(7).wait();
        let stats = store.stats();
        assert!(stats.durability.wal_records >= 31);
        assert!(stats.durability.wal_bytes > 0);
        assert!(
            stats.durability.wal_fsyncs >= 31,
            "SyncEachEpoch must fsync per epoch"
        );
        assert_eq!(store.wal_epoch(), stats.durability.wal_records);
    }
    let store = open(&dir, DurabilityConfig::default());
    let rec = store.recovery().clone();
    assert_eq!(rec.checkpoint_epoch, 0, "no checkpoint was written");
    assert!(rec.replayed_epochs >= 31);
    assert_eq!(store.len(), 29);
    for e in 1..=30u64 {
        assert_eq!(store.get(&e), (e != 7).then_some(e * 2));
    }
    // writes continue with monotone WAL epochs
    store.put(100, 100).wait();
    assert!(store.wal_epoch() > rec.last_epoch);
    drop(store);
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn torn_tail_recovers_exactly_the_durable_prefix() {
    let dir = fresh_dir("torn");
    let mut oracle: BTreeMap<u64, u64> = BTreeMap::new();
    {
        let store = open(&dir, DurabilityConfig::default());
        for e in 1..=25u64 {
            store.put(e % 10, e).wait();
            oracle.insert(e % 10, e);
        }
    }
    // simulate a crash mid-append: garbage half-record on the active
    // segment (a frame header promising more bytes than exist)
    let seg = fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| {
            let p = e.unwrap().path();
            p.extension().is_some_and(|x| x == "seg").then_some(p)
        })
        .max()
        .expect("a WAL segment exists");
    let mut bytes = fs::read(&seg).unwrap();
    bytes.extend_from_slice(&[0x40, 0, 0, 0, 0xba, 0xad, 0xf0, 0x0d, 9, 9, 9]);
    fs::write(&seg, bytes).unwrap();

    let store = open(&dir, DurabilityConfig::default());
    let recovered: BTreeMap<u64, u64> = store.pin().map().to_vec().into_iter().collect();
    assert_eq!(recovered, oracle, "recovery must equal the durable prefix");
    // the truncated tail must not poison future appends
    store.put(999, 1).wait();
    drop(store);
    let store = open(&dir, DurabilityConfig::default());
    assert_eq!(store.get(&999), Some(1));
    drop(store);
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn checkpoint_truncates_wal_and_bulk_loads() {
    let dir = fresh_dir("ckpt");
    let tiny_segments = DurabilityConfig {
        segment_bytes: 256, // rotate every few epochs
        checkpoint_every_bytes: None,
        checkpoint_interval: None,
        ..DurabilityConfig::default()
    };
    let mut oracle: BTreeMap<u64, u64> = BTreeMap::new();
    let ckpt_epoch;
    {
        let store = open(&dir, tiny_segments.clone());
        for e in 1..=60u64 {
            store.put(e, e * 3).wait();
            oracle.insert(e, e * 3);
        }
        let segments_before = store.stats().durability.wal_segments;
        assert!(segments_before > 3, "tiny segments must rotate");
        ckpt_epoch = store.checkpoint().expect("manual checkpoint");
        assert_eq!(ckpt_epoch, store.wal_epoch());
        let stats = store.stats();
        assert_eq!(stats.durability.checkpoints, 1);
        assert_eq!(stats.durability.last_checkpoint_epoch, ckpt_epoch);
        assert!(stats.durability.last_checkpoint_age.is_some());
        assert!(
            stats.durability.wal_segments < segments_before,
            "checkpoint must unlink covered segments"
        );
        // a few post-checkpoint epochs for replay to pick up
        for e in 100..=105u64 {
            store.put(e, e).wait();
            oracle.insert(e, e);
        }
    }
    let store = open(&dir, tiny_segments);
    let rec = store.recovery().clone();
    assert_eq!(rec.checkpoint_epoch, ckpt_epoch);
    assert_eq!(rec.checkpoint_entries, 60);
    assert!(
        (6..=60).contains(&rec.replayed_epochs),
        "should replay the post-checkpoint epochs (and at most a \
         segment's worth of pre-checkpoint ones), got {}",
        rec.replayed_epochs
    );
    let recovered: BTreeMap<u64, u64> = store.pin().map().to_vec().into_iter().collect();
    assert_eq!(recovered, oracle);
    drop(store);
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn background_checkpointer_fires_on_bytes_threshold() {
    let dir = fresh_dir("auto-ckpt");
    let auto = DurabilityConfig {
        sync: SyncPolicy::NoSync,
        checkpoint_every_bytes: Some(1024),
        checkpoint_interval: None,
        ..DurabilityConfig::default()
    };
    let store = open(&dir, auto);
    for e in 1..=200u64 {
        store.put(e, e).wait();
    }
    // the checkpointer polls every 50ms; give it a few ticks
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while store.stats().durability.checkpoints == 0 {
        assert!(
            std::time::Instant::now() < deadline,
            "background checkpointer never fired"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    drop(store);
    let store = open(&dir, DurabilityConfig::default());
    assert!(store.recovery().checkpoint_epoch > 0);
    assert_eq!(store.len(), 200);
    drop(store);
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn second_open_on_a_live_directory_is_refused() {
    let dir = fresh_dir("double-open");
    let store = open(&dir, DurabilityConfig::default());
    store.put(1, 1).wait();
    let err = Store::open(&dir, eager(), DurabilityConfig::default())
        .expect_err("a second writer on the same dir must be refused");
    assert_eq!(err.kind(), std::io::ErrorKind::WouldBlock);
    drop(store);
    // released on drop: reopening now succeeds
    let store = open(&dir, DurabilityConfig::default());
    assert_eq!(store.get(&1), Some(1));
    drop(store);
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn string_keys_and_blob_values_roundtrip() {
    let dir = fresh_dir("strings");
    type Blob = DurableStore<NoAug<String, Vec<u8>>>;
    {
        let store: Blob = Blob::open(&dir, eager(), DurabilityConfig::default()).unwrap();
        store.put("user:alice".into(), b"profile-a".to_vec());
        store.put("user:bob".into(), vec![0u8; 300]);
        store.delete("user:alice".into());
        store.flush();
    }
    let store: Blob = Blob::open(&dir, eager(), DurabilityConfig::default()).unwrap();
    assert_eq!(store.get(&"user:alice".into()), None);
    assert_eq!(store.get(&"user:bob".into()), Some(vec![0u8; 300]));
    drop(store);
    fs::remove_dir_all(&dir).unwrap();
}

/// The crash test proper. When `PAM_CRASH_DIR` is set this test *is* the
/// crashing child: it writes 20 acked epochs, checkpoints, writes 20
/// more, submits one unacked batch, and aborts without unwinding. The
/// parent run spawns that child, waits for the abort, and recovers.
#[test]
fn kill_and_recover() {
    if let Ok(dir) = std::env::var("PAM_CRASH_DIR") {
        let store = open(&PathBuf::from(dir), DurabilityConfig::default());
        for e in 1..=20u64 {
            store.put(e, e * 7).wait();
        }
        store.checkpoint().expect("child checkpoint");
        for e in 21..=40u64 {
            store.put(e, e * 7).wait();
        }
        // enqueued but never awaited: may or may not reach the log
        store.write_batch((0..10u64).map(|i| WriteOp::Put(1000 + i, i)));
        std::process::abort();
    }

    let dir = fresh_dir("kill");
    fs::create_dir_all(&dir).unwrap();
    let status = std::process::Command::new(std::env::current_exe().unwrap())
        .args([
            "kill_and_recover",
            "--exact",
            "--test-threads=1",
            "--nocapture",
        ])
        .env("PAM_CRASH_DIR", &dir)
        .status()
        .expect("spawn crash child");
    assert!(
        !status.success(),
        "child must die by abort, not exit cleanly"
    );

    let store = open(&dir, DurabilityConfig::default());
    // every acked write survives — that is the durability contract
    for e in 1..=40u64 {
        assert_eq!(store.get(&e), Some(e * 7), "acked write {e} lost");
    }
    assert!(store.recovery().checkpoint_epoch >= 1, "child checkpointed");
    // every recovery phase that did real work reports nonzero wall time
    let t = store.recovery().timings;
    assert!(t.bulk_load > Duration::ZERO, "checkpoint bulk-load untimed");
    assert!(t.segment_scan > Duration::ZERO, "WAL segment scan untimed");
    assert!(t.replay > Duration::ZERO, "post-checkpoint replay untimed");
    assert_eq!(
        (t.prescan, t.vote),
        (Duration::ZERO, Duration::ZERO),
        "pre-scan and vote are sharded-only phases"
    );
    assert!(t.total() >= t.bulk_load + t.segment_scan + t.replay);
    // the unacked tail batch is atomic: all ten keys or none
    let tail: Vec<u64> = (0..10u64).filter_map(|i| store.get(&(1000 + i))).collect();
    assert!(
        tail.is_empty() || tail == (0..10u64).collect::<Vec<_>>(),
        "unacked epoch must be all-or-nothing, saw {} keys",
        tail.len()
    );
    assert_eq!(
        store.len() as u64,
        40 + if tail.is_empty() { 0 } else { 10 }
    );
    drop(store);
    fs::remove_dir_all(&dir).unwrap();
}
