//! Store-level stress tests: many writer threads racing many reader
//! threads through the group-commit pipeline, with version pins taken
//! throughout. These are the acceptance tests for the subsystem:
//!
//! * group-commit epochs apply **atomically** (a reader never sees half
//!   of a `write_batch`);
//! * **no write is lost** across batching, LWW dedup, and CAS publish;
//! * **pinned historical versions** remain readable and bit-identical
//!   while the head advances.

use pam::{AugMap, SumAug};
use pam_store::{StoreConfig, VersionedStore, WriteOp};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

type Spec = SumAug<u64, u64>;
type Store = VersionedStore<Spec>;

fn fingerprint(m: &AugMap<Spec>) -> u64 {
    m.map_reduce(
        |&k, &v| k.wrapping_mul(0x9e3779b97f4a7c15) ^ v,
        u64::wrapping_add,
        0,
    )
}

/// Each writer submits two-key batches `{k, MIRROR+k}` with equal values;
/// readers continuously check the mirror invariant on the head and on
/// freshly taken pins. Any torn batch breaks the invariant.
#[test]
fn atomic_batches_under_contention() {
    const MIRROR: u64 = 1 << 32;
    let store = Arc::new(Store::with_config(StoreConfig {
        batch_window: Duration::from_micros(100),
        ..StoreConfig::default()
    }));
    let stop = Arc::new(AtomicBool::new(false));
    let writers = 4u64;
    let readers = 4u64;
    let per_writer = 300u64;

    let reader_handles: Vec<_> = (0..readers)
        .map(|_| {
            let s = store.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut checks = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    let pin = s.pin();
                    let m = pin.map();
                    let low = m.range(&0, &(MIRROR - 1));
                    let high = m.down_to(&MIRROR);
                    assert_eq!(low.len(), high.len(), "torn batch visible at v{}", pin.id());
                    let lo_fp = low.map_reduce(
                        |&k, &v| k.wrapping_mul(31).wrapping_add(v),
                        u64::wrapping_add,
                        0,
                    );
                    let hi_fp = high.map_reduce(
                        |&k, &v| (k - MIRROR).wrapping_mul(31).wrapping_add(v),
                        u64::wrapping_add,
                        0,
                    );
                    assert_eq!(lo_fp, hi_fp, "mirror halves diverged at v{}", pin.id());
                    checks += 1;
                }
                checks
            })
        })
        .collect();

    let writer_handles: Vec<_> = (0..writers)
        .map(|t| {
            let s = store.clone();
            std::thread::spawn(move || {
                let mut last = None;
                for i in 0..per_writer {
                    let k = t * per_writer + i;
                    let v = k.wrapping_mul(13);
                    last =
                        Some(s.write_batch(vec![WriteOp::Put(k, v), WriteOp::Put(MIRROR + k, v)]));
                }
                last.unwrap().wait()
            })
        })
        .collect();

    for w in writer_handles {
        w.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    let total_checks: usize = reader_handles.into_iter().map(|r| r.join().unwrap()).sum();
    assert!(total_checks > 0, "readers must have raced the writers");

    let head = store.pin();
    assert_eq!(head.map().len() as u64, 2 * writers * per_writer);
    head.map().check_invariants().unwrap();

    let stats = store.stats();
    assert_eq!(stats.raw_ops, 2 * writers * per_writer);
    assert_eq!(
        stats.applied_ops, stats.raw_ops,
        "all keys distinct: LWW drops nothing"
    );
    assert!(
        stats.commits < stats.raw_ops,
        "group commit must batch ({} commits for {} ops)",
        stats.commits,
        stats.raw_ops
    );
}

/// Writers churn overlapping keys (so LWW dedup actually fires) while a
/// pinner thread keeps pinning versions; after the storm, every pin must
/// be exactly as it was when taken, and the head must equal a sequential
/// model of "last committed value per key" for the keys each writer owns.
#[test]
fn pinned_versions_immutable_while_head_churns() {
    let store = Arc::new(Store::with_config(StoreConfig {
        batch_window: Duration::from_micros(50),
        keep_versions: 4,
        ..StoreConfig::default()
    }));
    store.put_all((0..1_000u64).map(|k| (k, 0))).wait();

    let stop = Arc::new(AtomicBool::new(false));
    let pinner = {
        let s = store.clone();
        let stop = stop.clone();
        std::thread::spawn(move || {
            let mut pins = Vec::new();
            while !stop.load(Ordering::Relaxed) && pins.len() < 400 {
                let pin = s.pin();
                let fp = fingerprint(pin.map());
                pins.push((pin, fp));
            }
            pins
        })
    };

    let writers = 4u64;
    let rounds = 200u64;
    let writer_handles: Vec<_> = (0..writers)
        .map(|t| {
            let s = store.clone();
            std::thread::spawn(move || {
                // writer t owns keys  t*250 .. (t+1)*250: no cross-writer
                // conflicts, but heavy same-key churn within a writer
                let base = t * 250;
                for r in 1..=rounds {
                    let ops: Vec<WriteOp<Spec>> = (0..250u64)
                        .map(|i| {
                            let k = base + i;
                            if r % 10 == 0 && i % 50 == 0 {
                                WriteOp::Delete(k)
                            } else {
                                WriteOp::Put(k, r)
                            }
                        })
                        .collect();
                    s.write_batch(ops);
                }
                s.flush()
            })
        })
        .collect();

    for w in writer_handles {
        w.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    let pins = pinner.join().unwrap();

    // every pin is exactly as it was when taken
    assert!(!pins.is_empty());
    for (pin, fp) in &pins {
        assert_eq!(fingerprint(pin.map()), *fp, "pinned v{} mutated", pin.id());
        pin.map().check_invariants().unwrap();
    }
    // pins are monotone in version id
    assert!(pins.windows(2).all(|w| w[0].0.id() <= w[1].0.id()));

    // the head equals the sequential model: final round deleted nothing
    // (rounds=200, 200 % 10 == 0 deletes k where i % 50 == 0)
    let head = store.pin();
    for t in 0..writers {
        let base = t * 250;
        for i in 0..250u64 {
            let k = base + i;
            let expect = if i % 50 == 0 { None } else { Some(rounds) };
            assert_eq!(head.map().get(&k).copied(), expect, "key {k}");
        }
    }

    // stats surface reflects the churn and the dedup
    let stats = store.stats();
    assert!(stats.applied_ops <= stats.raw_ops);
    assert!(stats.live_versions <= 4 + pins.len());
    println!("churn stats: {stats}");
    println!(
        "memory: {} bytes across {} live versions",
        store.memory_bytes(),
        stats.live_versions
    );
}

/// Mixed read/write workload with waits sprinkled in: tickets resolve,
/// writes become visible in order, and `get` always reflects some
/// committed prefix (monotone reads per key through a single store handle).
#[test]
fn tickets_resolve_and_reads_are_committed_states() {
    let store = Arc::new(Store::with_config(StoreConfig {
        batch_window: Duration::from_micros(100),
        ..StoreConfig::default()
    }));
    let threads = 6u64;
    let per = 100u64;
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let s = store.clone();
            std::thread::spawn(move || {
                let key = t; // each thread increments its own counter key
                for i in 1..=per {
                    let ticket = s.put(key, i);
                    if i % 25 == 0 {
                        let v = ticket.wait();
                        assert!(v >= 1);
                        // after wait, our write (or a later one) is visible
                        let got = s.get(&key).expect("key exists after wait");
                        assert!(got >= i, "read went backwards: {got} < {i}");
                    }
                }
                s.put(key, u64::MAX).wait();
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    for t in 0..threads {
        assert_eq!(store.get(&t), Some(u64::MAX));
    }
    assert_eq!(store.len() as u64, threads);
    // every op was enqueued; LWW within shared epochs may drop some
    let stats = store.stats();
    assert_eq!(stats.raw_ops, threads * (per + 1));
}
