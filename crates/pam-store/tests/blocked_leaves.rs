//! Regression bounds for the blocked-leaf (PaC-tree style) representation
//! as seen through the store: memory reachable from live versions and
//! on-disk checkpoint size must stay within bounds that the per-entry
//! (one node per entry) seed layout could not meet.

use pam::{AugMap, SumAug, WeightBalanced};
use pam_store::{DurabilityConfig, DurableStore, StoreConfig, VersionedStore};
use std::fs;
use std::path::{Path, PathBuf};
use std::time::Duration;

type Spec = SumAug<u64, u64>;

const N: u64 = 100_000;

/// Heap bytes the pre-blocking layout would need: one heap node (+ two
/// `Arc` refcount words) per entry.
fn per_entry_baseline(n: usize) -> usize {
    n * (pam::stats::node_size::<Spec, WeightBalanced>() + 2 * std::mem::size_of::<usize>())
}

#[test]
fn store_memory_is_at_least_2x_below_per_entry_baseline() {
    let store: VersionedStore<Spec> = VersionedStore::from_map(
        AugMap::from_sorted_distinct(&(0..N).map(|i| (i, i)).collect::<Vec<_>>()),
        StoreConfig::default(),
    );
    assert_eq!(store.len(), N as usize);
    let reachable = store.memory_bytes();
    let baseline = per_entry_baseline(N as usize);
    assert!(
        reachable * 2 <= baseline,
        "blocked leaves must at least halve the per-entry footprint: \
         reachable {reachable} vs baseline {baseline}"
    );
    // sanity floor: the entries themselves (two u64 each) are counted
    assert!(
        reachable >= N as usize * 16,
        "implausibly small: {reachable}"
    );
}

#[test]
fn point_updates_keep_memory_within_baseline() {
    // after random single-key churn the tree must stay block-packed
    // enough to hold the 2x bound (non-root blocks >= half full)
    let store: VersionedStore<Spec> = VersionedStore::from_map(
        AugMap::from_sorted_distinct(&(0..N).map(|i| (i, i)).collect::<Vec<_>>()),
        StoreConfig {
            batch_window: Duration::ZERO,
            ..StoreConfig::default()
        },
    );
    for i in 0..2_000u64 {
        let k = (i * 7919) % N;
        if i % 3 == 0 {
            store.delete(k);
        } else {
            store.put(k, i);
        }
    }
    store.flush();
    let reachable = store.memory_bytes();
    let baseline = per_entry_baseline(store.len());
    assert!(
        reachable * 2 <= baseline,
        "churned store footprint regressed: {reachable} vs baseline {baseline}"
    );
}

fn dir_bytes(dir: &Path) -> u64 {
    let mut total = 0;
    for entry in fs::read_dir(dir).unwrap().flatten() {
        let meta = entry.metadata().unwrap();
        if meta.is_dir() {
            total += dir_bytes(&entry.path());
        } else {
            total += meta.len();
        }
    }
    total
}

fn fresh_dir(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("pam-blocked-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&d);
    d
}

#[test]
fn checkpoint_size_stays_within_per_entry_bound() {
    let n = 20_000u64;
    let dir = fresh_dir("ckpt");
    {
        let store: DurableStore<Spec> = DurableStore::open(
            &dir,
            StoreConfig {
                batch_window: Duration::ZERO,
                ..StoreConfig::default()
            },
            DurabilityConfig::default(),
        )
        .expect("open");
        store.handle().put_all((0..n).map(|i| (i, i * 3))).wait();
        store.checkpoint().expect("checkpoint");
        // the WAL was truncated by the checkpoint; what remains on disk
        // is dominated by the checkpoint stream of n (u64, u64) entries.
        // Regression bound: 48 bytes/entry (16 payload + framing) + 64 KiB
        // fixed overhead — the seed layout met this and blocking must not
        // regress it.
        let bytes = dir_bytes(&dir);
        let bound = n * 48 + (64 << 10);
        assert!(
            bytes <= bound,
            "on-disk footprint after checkpoint too large: {bytes} > {bound}"
        );
    }
    // recovery from that checkpoint reproduces the exact contents
    let store: DurableStore<Spec> =
        DurableStore::open(&dir, StoreConfig::default(), DurabilityConfig::default())
            .expect("reopen");
    assert!(store.recovery().checkpoint_epoch > 0, "checkpoint was used");
    assert_eq!(store.len(), n as usize);
    for k in [0u64, 1, n / 2, n - 1] {
        assert_eq!(store.get(&k), Some(k * 3));
    }
    drop(store);
    let _ = fs::remove_dir_all(&dir);
}
