//! Integration tests for the live-telemetry surface: a `DurableStore`
//! (and a 4-shard `DurableShardedStore`) scraped over a raw `TcpStream`,
//! the poison path surfacing its reason through `health()` and
//! `/health`, and — in a re-executed child process, mirroring
//! `recovery.rs` — the flight recorder dumping `flight-<pid>.json` into
//! the WAL directory when a commit hook fails.

use pam::{AugMap, SumAug};
use pam_obs::json::Json;
use pam_obs::{Health, ObsServer, TelemetrySource};
use pam_store::{
    CommitHook, DurabilityConfig, DurableShardedStore, DurableStore, GlobalStamp, NormalizedBatch,
    ShardedConfig, StoreConfig, VersionedStore,
};
use std::fs;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

type Spec = SumAug<u64, u64>;

fn eager() -> StoreConfig {
    StoreConfig {
        batch_window: Duration::ZERO,
        ..StoreConfig::default()
    }
}

fn fresh_dir(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("pam-obs-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&d);
    d
}

fn with_obs() -> DurabilityConfig {
    DurabilityConfig {
        obs_addr: Some("127.0.0.1:0".into()),
        ..DurabilityConfig::default()
    }
}

/// Minimal HTTP/1.0 GET over a raw socket; returns (status, body).
fn http_get(addr: SocketAddr, path: &str) -> (u16, String) {
    let mut s = TcpStream::connect(addr).expect("connect to obs server");
    write!(s, "GET {path} HTTP/1.0\r\nHost: test\r\n\r\n").unwrap();
    let mut raw = String::new();
    s.read_to_string(&mut raw).expect("read response");
    let (head, body) = raw.split_once("\r\n\r\n").expect("header/body split");
    let code = head
        .split_whitespace()
        .nth(1)
        .and_then(|c| c.parse().ok())
        .expect("status code");
    (code, body.to_string())
}

/// Every non-comment Prometheus line must be `name[{labels}] value`
/// with a parseable float value.
fn assert_prometheus_shape(body: &str) {
    for line in body
        .lines()
        .filter(|l| !l.starts_with('#') && !l.is_empty())
    {
        let (name, value) = line.rsplit_once(' ').unwrap_or_else(|| {
            panic!("prometheus line has no value: {line:?}");
        });
        assert!(!name.is_empty(), "empty metric name in {line:?}");
        assert!(
            value.parse::<f64>().is_ok(),
            "unparseable value in {line:?}"
        );
    }
}

#[test]
fn obs_endpoints_serve_live_store() {
    let dir = fresh_dir("live");
    let store: DurableStore<Spec> =
        DurableStore::open(&dir, eager(), with_obs()).expect("open with obs_addr");
    let addr = store.obs_addr().expect("obs server bound");
    for e in 1..=50u64 {
        store.put(e, e * 2).wait();
    }

    // /metrics: canonical pam_* names, parseable Prometheus text.
    let (code, prom) = http_get(addr, "/metrics");
    assert_eq!(code, 200);
    assert_prometheus_shape(&prom);
    for name in [
        "pam_commits_total",
        "pam_raw_ops_total",
        "pam_applied_ops_total",
        "pam_commit_nanos",
        "pam_wal_records_total",
        "pam_wal_fsyncs_total",
        "pam_live_versions",
    ] {
        assert!(prom.contains(name), "/metrics missing {name}:\n{prom}");
    }

    // /metrics.json: valid JSON with the registry's three sections and
    // a live commit counter matching what we just did.
    let (code, mj) = http_get(addr, "/metrics.json");
    assert_eq!(code, 200);
    let v = Json::parse(&mj).expect("/metrics.json parses");
    let commits = v
        .get("counters")
        .and_then(|c| c.get("pam_commits_total"))
        .and_then(Json::as_f64)
        .expect("counters.pam_commits_total");
    assert!(commits >= 50.0, "expected >= 50 commits, saw {commits}");
    assert!(v.get("gauges").is_some() && v.get("histograms").is_some());

    // /health: healthy while nothing is wrong.
    let (code, hj) = http_get(addr, "/health");
    assert_eq!(code, 200);
    let h = Json::parse(&hj).expect("/health parses");
    assert_eq!(h.get("status").and_then(Json::as_str), Some("healthy"));

    // /trace: chrome trace-event JSON; this store's committer recorded
    // its epochs into the global flight ring.
    let (code, tj) = http_get(addr, "/trace");
    assert_eq!(code, 200);
    let t = Json::parse(&tj).expect("/trace parses");
    assert!(
        !t.get("traceEvents")
            .and_then(Json::as_arr)
            .expect("traceEvents array")
            .is_empty(),
        "trace should contain epoch slices"
    );

    // /events: the recent-event ring renders as a JSON array.
    let (code, ev) = http_get(addr, "/events");
    assert_eq!(code, 200);
    assert!(
        Json::parse(&ev).expect("/events parses").as_arr().is_some(),
        "/events must be a JSON array"
    );

    // Unknown paths 404.
    let (code, _) = http_get(addr, "/nope");
    assert_eq!(code, 404);

    drop(store);
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn sharded_store_binds_one_aggregated_endpoint() {
    let dir = fresh_dir("sharded");
    let config = ShardedConfig {
        shards: 4,
        store: eager(),
    };
    let store: DurableShardedStore<Spec> =
        DurableShardedStore::open(&dir, config, with_obs()).expect("open sharded with obs_addr");
    let addr = store.obs_addr().expect("aggregated obs server bound");
    for k in 0..256u64 {
        store.put(k, k).wait();
    }
    let snap = store.snapshot(); // bump the fence/snapshot counters
    drop(snap);

    // One endpoint, aggregated metrics: shard commits fold together and
    // the epoch-fence counters appear alongside the per-shard sums.
    let (code, prom) = http_get(addr, "/metrics");
    assert_eq!(code, 200);
    assert_prometheus_shape(&prom);
    for name in [
        "pam_commits_total",
        "pam_fence_waits_total",
        "pam_snapshots_taken_total",
        "pam_fence_wait_nanos",
        "pam_wal_records_total",
    ] {
        assert!(prom.contains(name), "/metrics missing {name}");
    }
    let v = Json::parse(&http_get(addr, "/metrics.json").1).expect("json");
    let commits = v
        .get("counters")
        .and_then(|c| c.get("pam_commits_total"))
        .and_then(Json::as_f64)
        .unwrap();
    assert!(
        commits >= 256.0,
        "aggregated commits across 4 shards, saw {commits}"
    );
    let snaps = v
        .get("counters")
        .and_then(|c| c.get("pam_snapshots_taken_total"))
        .and_then(Json::as_f64)
        .unwrap();
    assert!(snaps >= 1.0, "snapshot() must count, saw {snaps}");

    // /trace: one track per shard — with 256 sequential keys every one
    // of the 4 hash shards has committed epochs, so the global flight
    // ring holds slices with tids 0..=3.
    let t = Json::parse(&http_get(addr, "/trace").1).expect("/trace parses");
    let mut tids: Vec<i64> = t
        .get("traceEvents")
        .and_then(Json::as_arr)
        .unwrap()
        .iter()
        .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
        .filter_map(|e| e.get("tid").and_then(Json::as_f64))
        .map(|tid| tid as i64)
        .collect();
    tids.sort_unstable();
    tids.dedup();
    for shard in 0..4 {
        assert!(
            tids.contains(&shard),
            "trace missing a track for shard {shard}; saw tids {tids:?}"
        );
    }

    let (code, hj) = http_get(addr, "/health");
    assert_eq!(code, 200);
    assert_eq!(
        Json::parse(&hj)
            .unwrap()
            .get("status")
            .and_then(Json::as_str),
        Some("healthy")
    );

    drop(store);
    fs::remove_dir_all(&dir).unwrap();
}

/// A commit hook that starts failing at the given `log_epoch` call,
/// poisoning the store the way a dying disk would.
struct FailingHook {
    fail_from: u64,
    calls: AtomicU64,
}

impl CommitHook<Spec> for FailingHook {
    fn log_epoch(
        &self,
        _epoch: u64,
        _global: Option<GlobalStamp>,
        _batch: &NormalizedBatch<Spec>,
    ) -> std::io::Result<()> {
        let n = self.calls.fetch_add(1, Ordering::SeqCst) + 1;
        if n >= self.fail_from {
            Err(std::io::Error::other("injected disk failure"))
        } else {
            Ok(())
        }
    }
}

#[test]
fn poisoned_health_reports_reason() {
    let hook = Arc::new(FailingHook {
        fail_from: 1,
        calls: AtomicU64::new(0),
    });
    let store: Arc<VersionedStore<Spec>> = Arc::new(VersionedStore::with_commit_hook(
        AugMap::new(),
        eager(),
        hook,
    ));

    // The failed epoch's waiter panics with the preserved reason.
    let ticket = store.put(1, 1);
    let panic = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| ticket.wait()))
        .expect_err("wait on a poisoned epoch must panic");
    let msg = panic
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_else(|| "<non-string panic>".into());
    assert!(
        msg.contains("injected disk failure"),
        "panic must carry the hook error, got {msg:?}"
    );
    assert!(msg.contains("poisoned"), "panic names the poison: {msg:?}");

    // health() preserves the original error text...
    match store.health() {
        Health::Poisoned(reason) => {
            assert!(reason.contains("injected disk failure"), "reason: {reason}");
            assert!(reason.contains("epoch 1"), "reason names epoch: {reason}");
        }
        other => panic!("expected Poisoned, got {other:?}"),
    }

    // ...and an obs server over this store serves 503 with the reason.
    let st = store.clone();
    let st2 = store.clone();
    let server = ObsServer::bind(
        "127.0.0.1:0",
        TelemetrySource {
            export: Box::new(move |reg| st.stats().export_into(reg)),
            health: Box::new(move || st2.health()),
        },
    )
    .expect("bind");
    let (code, body) = http_get(server.local_addr(), "/health");
    assert_eq!(code, 503, "poisoned store must serve 503");
    let h = Json::parse(&body).unwrap();
    assert_eq!(h.get("status").and_then(Json::as_str), Some("poisoned"));
    assert!(
        h.get("reason")
            .and_then(Json::as_str)
            .is_some_and(|r| r.contains("injected disk failure")),
        "/health reason must carry the hook error: {body}"
    );
}

/// When `PAM_OBS_CRASH_DIR` is set this test *is* the crashing child:
/// it registers the dump directory, commits three clean epochs, hits
/// the injected hook failure on epoch 4, and `abort()`s — exactly the
/// fail-stop path. The parent run re-executes the binary and asserts
/// the flight recorder left `flight-<pid>.json` naming the poisoned
/// epoch, with the ring, metrics, and recent events inside.
#[test]
fn flight_dump_written_on_poison() {
    if let Ok(dir) = std::env::var("PAM_OBS_CRASH_DIR") {
        let dir = PathBuf::from(dir);
        fs::create_dir_all(&dir).unwrap();
        let _guard = pam_obs::flight::register_dump_dir(&dir);
        let hook = Arc::new(FailingHook {
            fail_from: 4,
            calls: AtomicU64::new(0),
        });
        let store: VersionedStore<Spec> =
            VersionedStore::with_commit_hook(AugMap::new(), eager(), hook);
        for e in 1..=3u64 {
            store.put(e, e).wait(); // epochs 1..=3 land in the flight ring
        }
        let ticket = store.put(4, 4);
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| ticket.wait()));
        // The committer wrote the dump before waking us; die like a crash.
        std::process::abort();
    }

    let dir = fresh_dir("flight-dump");
    let status = std::process::Command::new(std::env::current_exe().unwrap())
        .args([
            "flight_dump_written_on_poison",
            "--exact",
            "--test-threads=1",
            "--nocapture",
        ])
        .env("PAM_OBS_CRASH_DIR", &dir)
        .status()
        .expect("spawn crashing child");
    assert!(!status.success(), "child is expected to abort");

    let dump = fs::read_dir(&dir)
        .expect("dump dir exists")
        .filter_map(|e| {
            let p = e.unwrap().path();
            let name = p.file_name().unwrap().to_string_lossy().into_owned();
            (name.starts_with("flight-") && name.ends_with(".json")).then_some(p)
        })
        .max()
        .expect("flight-<pid>.json written on poison");
    let v = Json::parse(&fs::read_to_string(&dump).unwrap()).expect("flight dump parses");
    let reason = v.get("reason").and_then(Json::as_str).expect("reason");
    assert!(
        reason.contains("injected disk failure"),
        "dump reason preserves the hook error: {reason}"
    );
    assert_eq!(
        v.get("poisoned_epoch").and_then(Json::as_f64),
        Some(4.0),
        "dump names the poisoned epoch"
    );
    let epochs = v.get("epochs").and_then(Json::as_arr).expect("epochs ring");
    assert!(
        epochs.len() >= 3,
        "the three clean epochs are in the ring, saw {}",
        epochs.len()
    );
    assert!(v.get("metrics").is_some(), "dump embeds metrics");
    assert!(
        v.get("events").and_then(Json::as_arr).is_some(),
        "dump embeds recent events"
    );
    fs::remove_dir_all(&dir).unwrap();
}
