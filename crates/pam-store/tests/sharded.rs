//! Integration tests for the sharded store: routing correctness against
//! a single-store oracle, cross-shard snapshot consistency under
//! concurrent writers, and durable recovery — including a subprocess
//! `abort()` crash with a torn WAL tail in one shard.

use pam::SumAug;
use pam_store::{
    DurabilityConfig, DurableShardedStore, ShardKey, ShardedConfig, ShardedStore, StoreConfig,
    VersionedStore, WriteOp,
};
use proptest::prelude::*;
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

type S = SumAug<u64, u64>;
type Sharded = ShardedStore<S>;
type Durable = DurableShardedStore<S>;

fn eager_store() -> StoreConfig {
    StoreConfig {
        batch_window: Duration::ZERO,
        ..StoreConfig::default()
    }
}

fn eager_sharded(shards: usize) -> ShardedConfig {
    ShardedConfig {
        shards,
        store: eager_store(),
    }
}

fn fresh_dir(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("pam-sharded-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&d);
    d
}

fn op_strategy() -> impl Strategy<Value = WriteOp<S>> {
    prop_oneof![
        (0u64..128, 0u64..1_000_000).prop_map(|(k, v)| WriteOp::Put(k, v)),
        (0u64..128).prop_map(WriteOp::Delete),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // The same op stream through an N-shard store and a plain store must
    // land on identical final contents: hash routing + per-shard group
    // commit is invisible to the map semantics.
    #[test]
    fn sharded_store_matches_single_store_oracle(
        ops in collection::vec(op_strategy(), 0..400),
        shards in 1usize..7,
        cuts in collection::vec(1usize..32, 1..16),
    ) {
        let single: VersionedStore<S> = VersionedStore::with_config(eager_store());
        let sharded = Sharded::with_config(eager_sharded(shards));
        let mut rest = ops.as_slice();
        let mut cut_iter = cuts.iter().cycle();
        while !rest.is_empty() {
            let n = (*cut_iter.next().unwrap()).min(rest.len());
            let (chunk, tail) = rest.split_at(n);
            single.write_batch(chunk.to_vec());
            sharded.write_batch(chunk.to_vec());
            rest = tail;
        }
        single.flush();
        sharded.flush();
        let oracle = single.pin().map().to_vec();
        prop_assert_eq!(sharded.range(&0, &u64::MAX), oracle.clone());
        prop_assert_eq!(sharded.snapshot().range(&0, &u64::MAX), oracle.clone());
        prop_assert_eq!(sharded.len(), oracle.len());
        prop_assert_eq!(sharded.aug_val(), single.aug_val());
    }
}

/// Two writer threads, each acking write i before submitting write i+1,
/// while snapshots are taken concurrently: every snapshot must contain a
/// *prefix* of each writer's sequence (a hole would mean the barrier cut
/// one shard after a later write but another shard before an earlier
/// one — exactly the anomaly the epoch barrier exists to prevent).
#[test]
fn snapshots_are_consistent_cuts_under_concurrent_writers() {
    const PER_WRITER: u64 = 400;
    let store = Arc::new(Sharded::with_config(ShardedConfig {
        shards: 4,
        store: StoreConfig {
            batch_window: Duration::from_micros(50),
            ..StoreConfig::default()
        },
    }));
    let stop = Arc::new(AtomicBool::new(false));

    let writers: Vec<_> = (0..2u64)
        .map(|w| {
            let s = store.clone();
            std::thread::spawn(move || {
                for i in 1..=PER_WRITER {
                    // key encodes (writer, seq); hash spreads across shards
                    s.put(w * 1_000_000 + i, i).wait();
                }
            })
        })
        .collect();

    let snapshotter = {
        let s = store.clone();
        let stop = stop.clone();
        std::thread::spawn(move || {
            let mut taken = 0u32;
            while !stop.load(Ordering::Relaxed) {
                let snap = s.snapshot();
                for w in 0..2u64 {
                    let mut seqs = Vec::new();
                    snap.range_for_each(&(w * 1_000_000), &(w * 1_000_000 + PER_WRITER), |k, _| {
                        seqs.push(k - w * 1_000_000)
                    });
                    let expected: Vec<u64> = (1..=seqs.len() as u64).collect();
                    assert_eq!(
                        seqs, expected,
                        "writer {w}: snapshot must hold a gap-free prefix"
                    );
                }
                taken += 1;
            }
            taken
        })
    };

    for wtr in writers {
        wtr.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    let taken = snapshotter.join().unwrap();
    assert!(taken > 0, "snapshotter raced at least once");
    assert_eq!(store.snapshot().len() as u64, 2 * PER_WRITER);
}

/// The PR-5 note "live sharded range scans pay one snapshot per scan"
/// made measurable: every epoch-fenced cut bumps `snapshots_taken` and
/// `fence_write_acquisitions` and records its fence wait, and the
/// aggregated histograms carry exactly the union of the per-shard
/// samples.
#[test]
fn fence_counters_and_wait_histograms_are_recorded() {
    let store = Sharded::with_config(eager_sharded(3));
    let t = store.put_all((0..100u64).map(|k| (k, 1)));
    assert!(t.global_epoch().is_some(), "preload must span shards");
    t.wait();
    assert_eq!(store.stats().snapshots_taken, 0, "no snapshot yet");

    for _ in 0..5 {
        let _ = store.snapshot();
    }
    let mut n = 0;
    store.range_for_each(&0, &u64::MAX, |_, _| n += 1); // 1 internal snapshot
    assert_eq!(n, 100);

    let s = store.stats();
    assert_eq!(s.snapshots_taken, 6, "5 explicit + 1 per live range scan");
    assert_eq!(s.fence_write_acquisitions, 6);
    // the fence-wait histogram saw every acquisition: 6 write-side
    // (snapshots) + 1 read-side (the cross-shard preload batch)
    assert_eq!(s.fence_wait.count(), 7);
    // aggregate percentiles come from the union of per-shard samples
    assert_eq!(s.commit.count(), s.commits);
    assert_eq!(
        s.commits,
        store
            .stats_per_shard()
            .iter()
            .map(|p| p.commit.count())
            .sum::<u64>()
    );
}

#[test]
fn durable_sharded_reopen_sees_acked_writes() {
    let dir = fresh_dir("reopen");
    {
        let store = Durable::open(&dir, eager_sharded(4), DurabilityConfig::default()).unwrap();
        store.put_all((0..100u64).map(|k| (k, k * 3))).wait();
        store.delete(17).wait();
        let stats = store.stats();
        assert!(stats.durability.wal_records > 0);
        assert!(
            stats.durability.wal_fsyncs > 0,
            "SyncEachEpoch shards fsync"
        );
        assert_eq!(stats.durability.wal_segments as usize, store.num_shards());
    }
    let store = Durable::open(&dir, eager_sharded(4), DurabilityConfig::default()).unwrap();
    assert_eq!(store.recovery().len(), 4);
    assert!(
        store.recovery().iter().all(|r| r.replayed_epochs > 0),
        "every shard replays its own WAL"
    );
    assert_eq!(store.len(), 99);
    for k in 0..100u64 {
        assert_eq!(store.get(&k), (k != 17).then_some(k * 3));
    }
    // writes keep flowing after recovery, on every shard
    store.put_all((1000..1100u64).map(|k| (k, k))).wait();
    assert_eq!(store.len(), 199);
    drop(store);
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn shard_count_mismatch_is_refused() {
    let dir = fresh_dir("mismatch");
    {
        let store = Durable::open(&dir, eager_sharded(4), DurabilityConfig::default()).unwrap();
        store.put(1, 1).wait();
    }
    let err = Durable::open(&dir, eager_sharded(8), DurabilityConfig::default())
        .expect_err("opening a 4-shard directory as 8 shards must fail");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
    // the refused open must not have wedged the directory
    let store = Durable::open(&dir, eager_sharded(4), DurabilityConfig::default()).unwrap();
    assert_eq!(store.get(&1), Some(1));
    drop(store);
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn missing_manifest_with_shard_dirs_is_refused() {
    let dir = fresh_dir("no-manifest");
    {
        let store = Durable::open(&dir, eager_sharded(2), DurabilityConfig::default()).unwrap();
        store.put(1, 1).wait();
    }
    fs::remove_file(dir.join("MANIFEST")).unwrap();
    let err = Durable::open(&dir, eager_sharded(2), DurabilityConfig::default())
        .expect_err("shard dirs without a manifest must not be guessed at");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    // a partial restore that lost shard-0 too must still be refused:
    // shard-1's surviving data is a layout we would be guessing at
    fs::remove_dir_all(dir.join("shard-0")).unwrap();
    let err = Durable::open(&dir, eager_sharded(2), DurabilityConfig::default())
        .expect_err("surviving non-zero shard dirs must also be refused");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn second_open_on_a_live_sharded_directory_is_refused() {
    let dir = fresh_dir("double-open");
    let store = Durable::open(&dir, eager_sharded(2), DurabilityConfig::default()).unwrap();
    store.put(1, 1).wait();
    let err = Durable::open(&dir, eager_sharded(2), DurabilityConfig::default())
        .expect_err("a second writer on the same sharded dir must be refused");
    assert_eq!(err.kind(), std::io::ErrorKind::WouldBlock);
    drop(store);
    let store = Durable::open(&dir, eager_sharded(2), DurabilityConfig::default()).unwrap();
    assert_eq!(store.get(&1), Some(1));
    drop(store);
    fs::remove_dir_all(&dir).unwrap();
}

/// The sharded crash test. When `PAM_SHARD_CRASH_DIR` is set this test
/// *is* the crashing child: it writes 30 acked keys, checkpoints every
/// shard, writes 30 more acked keys, submits one unacked batch, and
/// aborts without unwinding. The parent spawns that child, **tears the
/// WAL tail of one shard** (garbage half-record, as a crash mid-append
/// would leave), and recovers: every acked write must survive, in every
/// shard, with the torn shard truncating cleanly and independently.
#[test]
fn kill_and_recover_with_torn_shard_tail() {
    const SHARDS: usize = 3;
    if let Ok(dir) = std::env::var("PAM_SHARD_CRASH_DIR") {
        let store = Durable::open(
            PathBuf::from(dir),
            eager_sharded(SHARDS),
            DurabilityConfig::default(),
        )
        .unwrap();
        for k in 1..=30u64 {
            store.put(k, k * 7).wait();
        }
        store.checkpoint().expect("child checkpoint");
        for k in 31..=60u64 {
            store.put(k, k * 7).wait();
        }
        // enqueued but never awaited: may or may not reach each shard's log
        store.write_batch((0..12u64).map(|i| WriteOp::Put(1000 + i, i)));
        std::process::abort();
    }

    let dir = fresh_dir("kill");
    fs::create_dir_all(&dir).unwrap();
    let status = std::process::Command::new(std::env::current_exe().unwrap())
        .args([
            "kill_and_recover_with_torn_shard_tail",
            "--exact",
            "--test-threads=1",
            "--nocapture",
        ])
        .env("PAM_SHARD_CRASH_DIR", &dir)
        .status()
        .expect("spawn crash child");
    assert!(
        !status.success(),
        "child must die by abort, not exit cleanly"
    );

    // tear one shard's active segment: a frame header promising more
    // bytes than exist, then garbage
    let shard1 = dir.join("shard-1");
    let seg = fs::read_dir(&shard1)
        .unwrap()
        .filter_map(|e| {
            let p = e.unwrap().path();
            p.extension().is_some_and(|x| x == "seg").then_some(p)
        })
        .max()
        .expect("shard-1 has a WAL segment");
    let mut bytes = fs::read(&seg).unwrap();
    bytes.extend_from_slice(&[0x80, 0, 0, 0, 0xba, 0xad, 0xf0, 0x0d, 7, 7, 7]);
    fs::write(&seg, bytes).unwrap();

    let store = Durable::open(&dir, eager_sharded(SHARDS), DurabilityConfig::default()).unwrap();
    // every acked write survives, including those owned by the torn shard
    for k in 1..=60u64 {
        assert_eq!(store.get(&k), Some(k * 7), "acked write {k} lost");
    }
    assert!(
        store.recovery().iter().all(|r| r.checkpoint_epoch >= 1),
        "child checkpointed every shard: {:?}",
        store.recovery()
    );
    // per-shard phase timings: every shard bulk-loaded its checkpoint,
    // scanned its segments, and replayed its tail; the store-wide
    // pre-scan and vote phases are stamped identically into every entry
    let t0 = store.recovery()[0].timings;
    assert!(t0.prescan > Duration::ZERO, "sharded recovery pre-scans");
    assert!(t0.vote > Duration::ZERO, "sharded recovery votes");
    for r in store.recovery() {
        let t = r.timings;
        assert!(t.bulk_load > Duration::ZERO, "shard bulk-load untimed");
        assert!(
            t.segment_scan > Duration::ZERO,
            "shard segment scan untimed"
        );
        assert!(t.replay > Duration::ZERO, "shard replay untimed");
        assert_eq!((t.prescan, t.vote), (t0.prescan, t0.vote));
    }
    // The unacked batch was stamped with a global epoch and split per
    // shard; since PR 5 recovery votes on it as a unit — it must appear
    // **wholly or not at all across the entire store**, never partially
    // (the pre-PR-5 guarantee was only per-shard atomicity).
    let present = (0..12u64)
        .filter(|i| store.get(&(1000 + i)).is_some())
        .count();
    assert!(
        present == 0 || present == 12,
        "unacked cross-shard batch must be all-or-nothing store-wide \
         ({present}/12 present)"
    );
    drop(store);
    fs::remove_dir_all(&dir).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    // The tentpole invariant, raced: a writer commits cross-shard
    // batches that set a fixed key set to one uniform value per batch,
    // while the main thread takes epoch-fenced snapshots. Any snapshot
    // showing two different values — or a mix of present and absent —
    // caught a torn batch.
    #[test]
    fn interleaved_batches_and_snapshots_never_observe_a_partial_batch(
        shards in 2usize..6,
        batches in 4u64..24,
        nkeys in 4usize..20,
    ) {
        let store = Arc::new(Sharded::with_config(ShardedConfig {
            shards,
            store: StoreConfig {
                batch_window: Duration::from_micros(20),
                ..StoreConfig::default()
            },
        }));
        // spread keys; whether a given case crosses shards or collapses
        // onto one (fast path) is part of the space being tested
        let keys: Arc<Vec<u64>> = Arc::new((0..nkeys as u64).map(|i| i * 911 + 17).collect());

        // TWO writers racing over the same keys: besides torn batches,
        // this catches cross-batch order divergence (shard 0 committing
        // [B1, B2] while shard 1 commits [B2, B1] would leave a mixed
        // state no serial order produced — the xbatch gate forbids it)
        let writers: Vec<_> = (0..2u64)
            .map(|w| {
                let (s, keys) = (store.clone(), keys.clone());
                std::thread::spawn(move || {
                    for i in 1..batches + 1 {
                        let val = w * 1_000_000 + i;
                        s.write_batch(keys.iter().map(|&k| WriteOp::Put(k, val))).wait();
                    }
                })
            })
            .collect();
        while writers.iter().any(|w| !w.is_finished()) {
            let snap = store.snapshot();
            let vals = snap.get_many(&keys);
            let first = &vals[0];
            prop_assert!(
                vals.iter().all(|v| v == first),
                "snapshot at global epoch {} tore or reordered a batch: {vals:?}",
                snap.global_epoch()
            );
        }
        for w in writers {
            w.join().unwrap();
        }
        // after both writers finish, the state is the last batch in
        // stamp order — uniform across every key and every shard
        let final_vals = store.snapshot().get_many(&keys);
        let winner = final_vals[0];
        prop_assert!(winner.is_some_and(|v| v % 1_000_000 == batches));
        prop_assert!(final_vals.iter().all(|v| *v == winner), "{final_vals:?}");
        // the live fenced range sees the final state too
        let mut seen = 0usize;
        store.range_for_each(&0, &u64::MAX, |_, &v| {
            assert_eq!(Some(v), winner);
            seen += 1;
        });
        prop_assert_eq!(seen, keys.len());
    }
}

/// The PR-5 acceptance test: a subprocess `abort()`s right after acking
/// a cross-shard batch; the parent then **removes one shard's slice
/// record** from its WAL tail (the torn-tail signature of a crash
/// mid-batch). Recovery must vote the batch down *everywhere*: no shard
/// retains its slice, all shards agree on the global watermark, and the
/// decision is stable across further reopens.
#[test]
fn torn_cross_shard_batch_is_discarded_on_every_shard() {
    const SHARDS: usize = 3;
    const BATCH: std::ops::Range<u64> = 2000..2012;
    if let Ok(dir) = std::env::var("PAM_XBATCH_CRASH_DIR") {
        let store = Durable::open(
            PathBuf::from(dir),
            eager_sharded(SHARDS),
            DurabilityConfig::default(),
        )
        .unwrap();
        for k in 1..=40u64 {
            store.put(k, k * 3).wait();
        }
        // the batch must genuinely span all shards for the tear below to
        // be a *slice* tear
        let hit: std::collections::BTreeSet<usize> = BATCH.map(|k| store.shard_of(&k)).collect();
        assert_eq!(hit.len(), SHARDS, "batch keys must cover every shard");
        let t = store.write_batch(BATCH.map(|k| WriteOp::Put(k, 1)));
        assert_eq!(t.global_epoch(), Some(1), "first stamp of this store");
        t.wait(); // acked — every slice is on disk when this returns
        std::process::abort();
    }

    let dir = fresh_dir("xbatch-torn");
    fs::create_dir_all(&dir).unwrap();
    let status = std::process::Command::new(std::env::current_exe().unwrap())
        .args([
            "torn_cross_shard_batch_is_discarded_on_every_shard",
            "--exact",
            "--test-threads=1",
            "--nocapture",
        ])
        .env("PAM_XBATCH_CRASH_DIR", &dir)
        .status()
        .expect("spawn crash child");
    assert!(!status.success(), "child must die by abort");

    // Tear shard-1's slice off: find the last frame of its active
    // segment — the stamped batch slice, the last record every shard
    // wrote — verify the stamp, and cut the file at the frame boundary,
    // exactly what a crash that lost the final append would leave.
    let seg = fs::read_dir(dir.join("shard-1"))
        .unwrap()
        .filter_map(|e| {
            let p = e.unwrap().path();
            p.extension().is_some_and(|x| x == "seg").then_some(p)
        })
        .max()
        .expect("shard-1 has a WAL segment");
    let bytes = fs::read(&seg).unwrap();
    let mut pos = 8; // segment magic
    let mut last_frame_at = None;
    while pos < bytes.len() {
        match pam_wal::frame::next_frame(&bytes[pos..]) {
            pam_wal::frame::Frame::Ok { payload, consumed } => {
                last_frame_at = Some((pos, payload.to_vec()));
                pos += consumed;
            }
            other => panic!("unexpected frame state {other:?} at {pos}"),
        }
    }
    let (cut_at, payload) = last_frame_at.expect("shard-1 logged records");
    let mut r = pam_wal::Reader::new(&payload);
    let _wal_epoch = r.varint().unwrap();
    assert_eq!(
        r.varint().unwrap(),
        1,
        "shard-1's last record must be the global-epoch-1 slice"
    );
    assert_eq!(r.varint().unwrap(), SHARDS as u64, "participant count");
    fs::write(&seg, &bytes[..cut_at]).unwrap();

    let reopen = || Durable::open(&dir, eager_sharded(SHARDS), DurabilityConfig::default());
    let store = reopen().unwrap();
    // every acked single-shard write survives
    for k in 1..=40u64 {
        assert_eq!(store.get(&k), Some(k * 3), "acked write {k} lost");
    }
    // the torn batch is gone from EVERY shard, not just the torn one
    for k in BATCH {
        assert_eq!(store.get(&k), None, "discarded batch key {k} resurfaced");
    }
    // shards 0 and 2 each skipped exactly their slice record
    let skipped: Vec<u64> = store
        .recovery()
        .iter()
        .map(|r| r.discarded_epochs)
        .collect();
    assert_eq!(
        skipped.iter().sum::<u64>(),
        2,
        "two surviving slices voted down: {skipped:?}"
    );
    assert_eq!(skipped[1], 0, "the torn shard has nothing left to discard");
    // all shards recovered to the same global epoch: the watermark covers
    // the (discarded) batch, and the clock resumes past it
    assert_eq!(store.global_watermark(), 1);
    assert_eq!(store.global_epoch(), 1);

    // the decision is durable: a clean reopen re-discards nothing new
    // and never resurrects the batch
    drop(store);
    let store = reopen().unwrap();
    for k in BATCH {
        assert_eq!(store.get(&k), None, "batch key {k} resurfaced on reopen");
    }
    assert_eq!(store.global_watermark(), 1);

    // life goes on: the next cross-shard batch stamps epoch 2, commits,
    // and survives a further clean reopen
    let t = store.put_all(BATCH.map(|k| (k, 9)));
    assert_eq!(t.global_epoch(), Some(2));
    t.wait();
    drop(store);
    let store = reopen().unwrap();
    for k in BATCH {
        assert_eq!(store.get(&k), Some(9));
    }
    assert_eq!(store.global_watermark(), 2);
    drop(store);
    fs::remove_dir_all(&dir).unwrap();
}

/// Cross-shard slices must hit the disk even under a relaxed fsync
/// policy: the 2PC watermark advances when a slice reports "logged",
/// and recovery trusts that decision — an unsynced slice could vanish
/// in a power cut after the vote, tearing the batch. Single-shard
/// epochs keep the relaxed policy.
#[test]
fn cross_shard_slices_are_force_synced_under_relaxed_policies() {
    use pam_store::SyncPolicy;
    let dir = fresh_dir("force-sync");
    let lazy = DurabilityConfig {
        sync: SyncPolicy::SyncEveryN(1_000_000),
        ..DurabilityConfig::default()
    };
    let store = Durable::open(&dir, eager_sharded(3), lazy).unwrap();
    for k in 0..20u64 {
        store.put(k, k).wait();
    }
    let before = store.stats().durability.wal_fsyncs;
    assert_eq!(before, 0, "single-shard epochs honor SyncEveryN");
    let t = store.write_batch((100..120u64).map(|k| WriteOp::Put(k, 1)));
    assert!(t.global_epoch().is_some(), "batch must span shards");
    t.wait();
    let after = store.stats().durability.wal_fsyncs;
    assert!(
        after >= 2,
        "every participating shard force-syncs its slice (got {after} fsyncs)"
    );
    drop(store);
    fs::remove_dir_all(&dir).unwrap();
}

/// A store laid down by PR 2–4 code — format-1 manifest, `PAMWAL01`
/// segments with no stamp fields — must open and replay unchanged, and
/// new epochs (v2 records) must coexist with the old segments.
#[test]
fn pre_clock_on_disk_format_still_replays() {
    use pam_wal::codec::put_varint;

    const SHARDS: u64 = 2;
    let dir = fresh_dir("v1-format");

    // hand-write the old layout: MANIFEST format 1 + one v1 segment per
    // shard holding that shard's keys
    fs::create_dir_all(&dir).unwrap();
    {
        let mut out = pam_wal::manifest::MANIFEST_MAGIC.to_vec();
        let mut payload = Vec::new();
        put_varint(&mut payload, 1); // format 1: no clock fields
        put_varint(&mut payload, SHARDS);
        let mut framed = Vec::new();
        pam_wal::frame::put_frame(&mut framed, &payload);
        out.extend_from_slice(&framed);
        fs::write(dir.join("MANIFEST"), out).unwrap();
    }
    let mut per_shard: Vec<Vec<(u64, u64)>> = vec![Vec::new(); SHARDS as usize];
    for k in 0..100u64 {
        per_shard[(k.shard_hash() % SHARDS) as usize].push((k, k + 500));
    }
    for (i, pairs) in per_shard.iter().enumerate() {
        let shard_dir = dir.join(format!("shard-{i}"));
        fs::create_dir_all(&shard_dir).unwrap();
        let mut seg = pam_wal::wal::SEGMENT_MAGIC.to_vec(); // v1!
        for (epoch, &(k, v)) in pairs.iter().enumerate() {
            let mut body = Vec::new();
            pam_wal::record::encode_epoch_body(&[(k, v)], &[], &mut body);
            let mut payload = Vec::new();
            put_varint(&mut payload, epoch as u64 + 1);
            payload.extend_from_slice(&body);
            pam_wal::frame::put_frame(&mut seg, &payload);
        }
        fs::write(shard_dir.join("wal-00000000000000000001.seg"), seg).unwrap();
    }

    let store = Durable::open(
        &dir,
        eager_sharded(SHARDS as usize),
        DurabilityConfig::default(),
    )
    .expect("a PR 2-4 store must open under PR 5 code");
    assert_eq!(store.len(), 100);
    for k in 0..100u64 {
        assert_eq!(store.get(&k), Some(k + 500), "v1-replayed key {k}");
    }
    assert_eq!(
        store.global_watermark(),
        0,
        "no stamps existed before the clock"
    );
    // new writes — including a stamped cross-shard batch — append v2
    // records after the sealed v1 segments
    let hit: std::collections::BTreeSet<usize> =
        (200..220u64).map(|k| store.shard_of(&k)).collect();
    assert_eq!(hit.len(), 2, "upgrade batch must span both shards");
    store.put_all((200..220u64).map(|k| (k, 1))).wait();
    drop(store);
    let store = Durable::open(
        &dir,
        eager_sharded(SHARDS as usize),
        DurabilityConfig::default(),
    )
    .unwrap();
    assert_eq!(store.len(), 120);
    assert_eq!(store.get(&205), Some(1));
    assert_eq!(store.get(&42), Some(542));
    assert_eq!(store.global_watermark(), 1, "the upgrade batch was stamped");
    drop(store);
    fs::remove_dir_all(&dir).unwrap();
}
