//! Integration tests for the sharded store: routing correctness against
//! a single-store oracle, cross-shard snapshot consistency under
//! concurrent writers, and durable recovery — including a subprocess
//! `abort()` crash with a torn WAL tail in one shard.

use pam::SumAug;
use pam_store::{
    DurabilityConfig, DurableShardedStore, ShardKey, ShardedConfig, ShardedStore, StoreConfig,
    VersionedStore, WriteOp,
};
use proptest::prelude::*;
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

type S = SumAug<u64, u64>;
type Sharded = ShardedStore<S>;
type Durable = DurableShardedStore<S>;

fn eager_store() -> StoreConfig {
    StoreConfig {
        batch_window: Duration::ZERO,
        ..StoreConfig::default()
    }
}

fn eager_sharded(shards: usize) -> ShardedConfig {
    ShardedConfig {
        shards,
        store: eager_store(),
    }
}

fn fresh_dir(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("pam-sharded-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&d);
    d
}

fn op_strategy() -> impl Strategy<Value = WriteOp<S>> {
    prop_oneof![
        (0u64..128, 0u64..1_000_000).prop_map(|(k, v)| WriteOp::Put(k, v)),
        (0u64..128).prop_map(WriteOp::Delete),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // The same op stream through an N-shard store and a plain store must
    // land on identical final contents: hash routing + per-shard group
    // commit is invisible to the map semantics.
    #[test]
    fn sharded_store_matches_single_store_oracle(
        ops in collection::vec(op_strategy(), 0..400),
        shards in 1usize..7,
        cuts in collection::vec(1usize..32, 1..16),
    ) {
        let single: VersionedStore<S> = VersionedStore::with_config(eager_store());
        let sharded = Sharded::with_config(eager_sharded(shards));
        let mut rest = ops.as_slice();
        let mut cut_iter = cuts.iter().cycle();
        while !rest.is_empty() {
            let n = (*cut_iter.next().unwrap()).min(rest.len());
            let (chunk, tail) = rest.split_at(n);
            single.write_batch(chunk.to_vec());
            sharded.write_batch(chunk.to_vec());
            rest = tail;
        }
        single.flush();
        sharded.flush();
        let oracle = single.pin().map().to_vec();
        prop_assert_eq!(sharded.range(&0, &u64::MAX), oracle.clone());
        prop_assert_eq!(sharded.snapshot().range(&0, &u64::MAX), oracle.clone());
        prop_assert_eq!(sharded.len(), oracle.len());
        prop_assert_eq!(sharded.aug_val(), single.aug_val());
    }
}

/// Two writer threads, each acking write i before submitting write i+1,
/// while snapshots are taken concurrently: every snapshot must contain a
/// *prefix* of each writer's sequence (a hole would mean the barrier cut
/// one shard after a later write but another shard before an earlier
/// one — exactly the anomaly the epoch barrier exists to prevent).
#[test]
fn snapshots_are_consistent_cuts_under_concurrent_writers() {
    const PER_WRITER: u64 = 400;
    let store = Arc::new(Sharded::with_config(ShardedConfig {
        shards: 4,
        store: StoreConfig {
            batch_window: Duration::from_micros(50),
            ..StoreConfig::default()
        },
    }));
    let stop = Arc::new(AtomicBool::new(false));

    let writers: Vec<_> = (0..2u64)
        .map(|w| {
            let s = store.clone();
            std::thread::spawn(move || {
                for i in 1..=PER_WRITER {
                    // key encodes (writer, seq); hash spreads across shards
                    s.put(w * 1_000_000 + i, i).wait();
                }
            })
        })
        .collect();

    let snapshotter = {
        let s = store.clone();
        let stop = stop.clone();
        std::thread::spawn(move || {
            let mut taken = 0u32;
            while !stop.load(Ordering::Relaxed) {
                let snap = s.snapshot();
                for w in 0..2u64 {
                    let mut seqs = Vec::new();
                    snap.range_for_each(&(w * 1_000_000), &(w * 1_000_000 + PER_WRITER), |k, _| {
                        seqs.push(k - w * 1_000_000)
                    });
                    let expected: Vec<u64> = (1..=seqs.len() as u64).collect();
                    assert_eq!(
                        seqs, expected,
                        "writer {w}: snapshot must hold a gap-free prefix"
                    );
                }
                taken += 1;
            }
            taken
        })
    };

    for wtr in writers {
        wtr.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    let taken = snapshotter.join().unwrap();
    assert!(taken > 0, "snapshotter raced at least once");
    assert_eq!(store.snapshot().len() as u64, 2 * PER_WRITER);
}

#[test]
fn durable_sharded_reopen_sees_acked_writes() {
    let dir = fresh_dir("reopen");
    {
        let store = Durable::open(&dir, eager_sharded(4), DurabilityConfig::default()).unwrap();
        store.put_all((0..100u64).map(|k| (k, k * 3))).wait();
        store.delete(17).wait();
        let stats = store.stats();
        assert!(stats.durability.wal_records > 0);
        assert!(
            stats.durability.wal_fsyncs > 0,
            "SyncEachEpoch shards fsync"
        );
        assert_eq!(stats.durability.wal_segments as usize, store.num_shards());
    }
    let store = Durable::open(&dir, eager_sharded(4), DurabilityConfig::default()).unwrap();
    assert_eq!(store.recovery().len(), 4);
    assert!(
        store.recovery().iter().all(|r| r.replayed_epochs > 0),
        "every shard replays its own WAL"
    );
    assert_eq!(store.len(), 99);
    for k in 0..100u64 {
        assert_eq!(store.get(&k), (k != 17).then_some(k * 3));
    }
    // writes keep flowing after recovery, on every shard
    store.put_all((1000..1100u64).map(|k| (k, k))).wait();
    assert_eq!(store.len(), 199);
    drop(store);
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn shard_count_mismatch_is_refused() {
    let dir = fresh_dir("mismatch");
    {
        let store = Durable::open(&dir, eager_sharded(4), DurabilityConfig::default()).unwrap();
        store.put(1, 1).wait();
    }
    let err = Durable::open(&dir, eager_sharded(8), DurabilityConfig::default())
        .expect_err("opening a 4-shard directory as 8 shards must fail");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
    // the refused open must not have wedged the directory
    let store = Durable::open(&dir, eager_sharded(4), DurabilityConfig::default()).unwrap();
    assert_eq!(store.get(&1), Some(1));
    drop(store);
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn missing_manifest_with_shard_dirs_is_refused() {
    let dir = fresh_dir("no-manifest");
    {
        let store = Durable::open(&dir, eager_sharded(2), DurabilityConfig::default()).unwrap();
        store.put(1, 1).wait();
    }
    fs::remove_file(dir.join("MANIFEST")).unwrap();
    let err = Durable::open(&dir, eager_sharded(2), DurabilityConfig::default())
        .expect_err("shard dirs without a manifest must not be guessed at");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    // a partial restore that lost shard-0 too must still be refused:
    // shard-1's surviving data is a layout we would be guessing at
    fs::remove_dir_all(dir.join("shard-0")).unwrap();
    let err = Durable::open(&dir, eager_sharded(2), DurabilityConfig::default())
        .expect_err("surviving non-zero shard dirs must also be refused");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn second_open_on_a_live_sharded_directory_is_refused() {
    let dir = fresh_dir("double-open");
    let store = Durable::open(&dir, eager_sharded(2), DurabilityConfig::default()).unwrap();
    store.put(1, 1).wait();
    let err = Durable::open(&dir, eager_sharded(2), DurabilityConfig::default())
        .expect_err("a second writer on the same sharded dir must be refused");
    assert_eq!(err.kind(), std::io::ErrorKind::WouldBlock);
    drop(store);
    let store = Durable::open(&dir, eager_sharded(2), DurabilityConfig::default()).unwrap();
    assert_eq!(store.get(&1), Some(1));
    drop(store);
    fs::remove_dir_all(&dir).unwrap();
}

/// The sharded crash test. When `PAM_SHARD_CRASH_DIR` is set this test
/// *is* the crashing child: it writes 30 acked keys, checkpoints every
/// shard, writes 30 more acked keys, submits one unacked batch, and
/// aborts without unwinding. The parent spawns that child, **tears the
/// WAL tail of one shard** (garbage half-record, as a crash mid-append
/// would leave), and recovers: every acked write must survive, in every
/// shard, with the torn shard truncating cleanly and independently.
#[test]
fn kill_and_recover_with_torn_shard_tail() {
    const SHARDS: usize = 3;
    if let Ok(dir) = std::env::var("PAM_SHARD_CRASH_DIR") {
        let store = Durable::open(
            PathBuf::from(dir),
            eager_sharded(SHARDS),
            DurabilityConfig::default(),
        )
        .unwrap();
        for k in 1..=30u64 {
            store.put(k, k * 7).wait();
        }
        store.checkpoint().expect("child checkpoint");
        for k in 31..=60u64 {
            store.put(k, k * 7).wait();
        }
        // enqueued but never awaited: may or may not reach each shard's log
        store.write_batch((0..12u64).map(|i| WriteOp::Put(1000 + i, i)));
        std::process::abort();
    }

    let dir = fresh_dir("kill");
    fs::create_dir_all(&dir).unwrap();
    let status = std::process::Command::new(std::env::current_exe().unwrap())
        .args([
            "kill_and_recover_with_torn_shard_tail",
            "--exact",
            "--test-threads=1",
            "--nocapture",
        ])
        .env("PAM_SHARD_CRASH_DIR", &dir)
        .status()
        .expect("spawn crash child");
    assert!(
        !status.success(),
        "child must die by abort, not exit cleanly"
    );

    // tear one shard's active segment: a frame header promising more
    // bytes than exist, then garbage
    let shard1 = dir.join("shard-1");
    let seg = fs::read_dir(&shard1)
        .unwrap()
        .filter_map(|e| {
            let p = e.unwrap().path();
            p.extension().is_some_and(|x| x == "seg").then_some(p)
        })
        .max()
        .expect("shard-1 has a WAL segment");
    let mut bytes = fs::read(&seg).unwrap();
    bytes.extend_from_slice(&[0x80, 0, 0, 0, 0xba, 0xad, 0xf0, 0x0d, 7, 7, 7]);
    fs::write(&seg, bytes).unwrap();

    let store = Durable::open(&dir, eager_sharded(SHARDS), DurabilityConfig::default()).unwrap();
    // every acked write survives, including those owned by the torn shard
    for k in 1..=60u64 {
        assert_eq!(store.get(&k), Some(k * 7), "acked write {k} lost");
    }
    assert!(
        store.recovery().iter().all(|r| r.checkpoint_epoch >= 1),
        "child checkpointed every shard: {:?}",
        store.recovery()
    );
    // the unacked batch was split per shard; each shard's slice is
    // atomic (all its keys or none), even though the cross-shard batch
    // as a whole may be partial
    for shard in 0..SHARDS as u64 {
        let mine: Vec<u64> = (0..12u64)
            .filter(|i| (1000 + i).shard_hash() % SHARDS as u64 == shard)
            .collect();
        let present = mine
            .iter()
            .filter(|&&i| store.get(&(1000 + i)).is_some())
            .count();
        assert!(
            present == 0 || present == mine.len(),
            "shard {shard}: unacked slice must be all-or-nothing \
             ({present}/{} present)",
            mine.len()
        );
    }
    drop(store);
    fs::remove_dir_all(&dir).unwrap();
}
