//! # Interval trees on PAM (paper §5.1)
//!
//! An interval map stores a set of half-open intervals `[l, r)` and
//! answers *stabbing* queries — "is point `p` covered by any interval?" —
//! in O(log n), plus reporting queries in O(k log(n/k + 1)).
//!
//! Following the paper, this is a ~50-line adaptation of the augmented
//! map interface, the Rust analogue of Figure 3's C++:
//!
//! * **keys** are intervals ordered by left endpoint,
//! * **values** are right endpoints,
//! * the **base** function is `g(k, v) = v`,
//! * the **combine** function is `max`, so every subtree knows the
//!   maximum right endpoint below it.
//!
//! A point `p` is covered iff the maximum right endpoint among intervals
//! starting at or before `p` exceeds `p` — one `aug_left` call. All
//! covering intervals are exactly those with `left <= p < right`, found
//! by `aug_filter` with `h(a) = a > p` (valid since
//! `h(a) ∨ h(b) ⇔ h(max(a,b))`).
//!
//! One deliberate deviation from Figure 3: keys are `(left, right)`
//! *pairs*, so multiple intervals sharing a left endpoint coexist (the
//! paper's map keyed on `left` alone silently replaces them).

#![warn(missing_docs)]

use pam::{AugMap, AugSpec, Maxable, Minable};
use std::cmp::Ordering;
use std::marker::PhantomData;

/// Endpoint types usable in an interval map: totally ordered with both a
/// bottom (for the `max` identity) and a top (for "left endpoint ≤ p"
/// range probes). All primitive integers qualify.
pub trait Endpoint:
    Ord + Copy + Clone + Send + Sync + Maxable + Minable + std::fmt::Debug + 'static
{
}
impl<T> Endpoint for T where
    T: Ord + Copy + Clone + Send + Sync + Maxable + Minable + std::fmt::Debug + 'static
{
}

/// The augmented-map specification of Figure 3: intervals keyed by
/// `(left, right)`, augmented with the maximum right endpoint.
pub struct IntervalSpec<P>(PhantomData<fn(P)>);

impl<P: Endpoint> AugSpec for IntervalSpec<P> {
    type K = (P, P);
    type V = P;
    type A = P;
    #[inline]
    fn compare(a: &(P, P), b: &(P, P)) -> Ordering {
        a.cmp(b)
    }
    #[inline]
    fn identity() -> P {
        P::bottom()
    }
    #[inline]
    fn base(_k: &(P, P), v: &P) -> P {
        *v
    }
    #[inline]
    fn combine(a: &P, b: &P) -> P {
        P::max2(a, b)
    }
}

/// A parallel, persistent interval tree over half-open intervals `[l, r)`.
pub struct IntervalMap<P: Endpoint = u64> {
    map: AugMap<IntervalSpec<P>>,
}

impl<P: Endpoint> Clone for IntervalMap<P> {
    /// O(1) snapshot.
    fn clone(&self) -> Self {
        IntervalMap {
            map: self.map.clone(),
        }
    }
}

impl<P: Endpoint> Default for IntervalMap<P> {
    fn default() -> Self {
        Self::new()
    }
}

impl<P: Endpoint> IntervalMap<P> {
    /// The empty interval map.
    pub fn new() -> Self {
        IntervalMap { map: AugMap::new() }
    }

    /// Build from a set of intervals in parallel — the paper's
    /// `interval_map(A, n)` constructor (O(n log n) work, O(log n) span).
    /// Empty or inverted intervals (`l >= r`) are ignored.
    pub fn from_intervals(intervals: Vec<(P, P)>) -> Self {
        let items: Vec<((P, P), P)> = intervals
            .into_iter()
            .filter(|&(l, r)| l < r)
            .map(|(l, r)| ((l, r), r))
            .collect();
        IntervalMap {
            map: AugMap::build(items),
        }
    }

    /// Number of stored intervals.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Is the map empty?
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Insert interval `[l, r)`. O(log n). No-op if `l >= r`.
    pub fn insert(&mut self, l: P, r: P) {
        if l < r {
            self.map.insert((l, r), r);
        }
    }

    /// Remove interval `[l, r)` if present. O(log n).
    pub fn remove(&mut self, l: P, r: P) {
        self.map.remove(&(l, r));
    }

    /// Bulk-insert intervals (parallel).
    pub fn multi_insert(&mut self, intervals: Vec<(P, P)>) {
        let items: Vec<((P, P), P)> = intervals
            .into_iter()
            .filter(|&(l, r)| l < r)
            .map(|(l, r)| ((l, r), r))
            .collect();
        self.map.multi_insert(items);
    }

    /// Bulk-remove intervals (parallel; absent intervals are ignored).
    pub fn multi_remove(&mut self, intervals: Vec<(P, P)>) {
        self.map.multi_delete(intervals);
    }

    /// Stabbing query: is `p` inside any interval? O(log n) — the paper's
    /// `stab(p)`, one augmented prefix query.
    pub fn stab(&self, p: P) -> bool {
        self.map.aug_left(&(p, P::top())) > p
    }

    /// All intervals containing `p`, i.e. `l <= p < r` — the paper's
    /// `report_all(p)`. O(k log(n/k + 1)) work for k results, thanks to
    /// `aug_filter` pruning subtrees whose max right endpoint is `<= p`.
    pub fn report_all(&self, p: P) -> Vec<(P, P)> {
        self.covering(p).map.keys()
    }

    /// Number of intervals containing `p`, without materializing them all
    /// into a vector.
    pub fn count_containing(&self, p: P) -> usize {
        self.covering(p).len()
    }

    /// The sub-map of intervals containing `p`, as a persistent interval
    /// map (shares nodes with `self`).
    pub fn covering(&self, p: P) -> Self {
        let candidates = self.map.up_to(&(p, P::top()));
        IntervalMap {
            map: candidates.aug_filter(|&a| a > p),
        }
    }

    /// The maximum right endpoint over all intervals starting at or
    /// before `p` (the raw augmented prefix the stabbing test uses).
    pub fn max_right_up_to(&self, p: P) -> P {
        self.map.aug_left(&(p, P::top()))
    }

    /// All stored intervals that overlap the query interval `[ql, qr)`,
    /// i.e. `l < qr && ql < r` — the classic interval-intersection
    /// query, answered with the same max-augmentation pruning as
    /// stabbing: candidates start before `qr`, and subtrees whose max
    /// right endpoint is `<= ql` are discarded wholesale.
    /// O(k log(n/k + 1)) for k results.
    pub fn overlapping(&self, ql: P, qr: P) -> Vec<(P, P)> {
        if ql >= qr {
            return Vec::new();
        }
        // left endpoint strictly below qr: up_to is inclusive, so probe
        // just-below-qr via the (qr, bottom) sentinel pair (no key can
        // have right endpoint == bottom, and (qr, bottom) < (qr, r)).
        let candidates = self.map.up_to(&(qr, P::bottom()));
        candidates.aug_filter(|&a| a > ql).keys()
    }

    /// All stored intervals, sorted.
    pub fn to_vec(&self) -> Vec<(P, P)> {
        self.map.keys()
    }

    /// Validate all tree invariants (testing helper).
    pub fn check_invariants(&self) -> Result<(), String> {
        self.map.check_invariants()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute_stab(intervals: &[(u64, u64)], p: u64) -> bool {
        intervals.iter().any(|&(l, r)| l <= p && p < r)
    }

    fn brute_report(intervals: &[(u64, u64)], p: u64) -> Vec<(u64, u64)> {
        let mut v: Vec<(u64, u64)> = intervals
            .iter()
            .copied()
            .filter(|&(l, r)| l <= p && p < r)
            .collect();
        v.sort();
        v.dedup();
        v
    }

    #[test]
    fn figure4_example() {
        // The example tree of Figure 4 in the paper.
        let m = IntervalMap::from_intervals(vec![
            (1, 7),
            (2, 6),
            (3, 5),
            (4, 5),
            (5, 8),
            (6, 7),
            (7, 9),
        ]);
        assert!(m.stab(4));
        assert!(m.stab(8)); // covered by (7,9)
        assert!(!m.stab(9)); // intervals are half-open
        assert_eq!(m.report_all(6), vec![(1, 7), (5, 8), (6, 7)]);
    }

    #[test]
    fn matches_bruteforce() {
        let intervals = workloads::random_intervals(2000, 7, 10_000, 50);
        let m = IntervalMap::from_intervals(intervals.clone());
        m.check_invariants().unwrap();
        for p in (0..10_050).step_by(13) {
            assert_eq!(m.stab(p), brute_stab(&intervals, p), "stab({p})");
            assert_eq!(m.report_all(p), brute_report(&intervals, p), "report({p})");
            assert_eq!(m.count_containing(p), brute_report(&intervals, p).len());
        }
    }

    #[test]
    fn insert_remove_roundtrip() {
        let mut m = IntervalMap::new();
        m.insert(10u64, 20);
        m.insert(15, 30);
        assert!(m.stab(25));
        m.remove(15, 30);
        assert!(!m.stab(25));
        assert!(m.stab(12));
        m.remove(10, 20);
        assert!(m.is_empty());
    }

    #[test]
    fn duplicate_left_endpoints_coexist() {
        let mut m = IntervalMap::new();
        m.insert(5u64, 10);
        m.insert(5, 50);
        assert_eq!(m.len(), 2);
        assert_eq!(m.report_all(30), vec![(5, 50)]);
        assert_eq!(m.report_all(7), vec![(5, 10), (5, 50)]);
    }

    #[test]
    fn degenerate_intervals_ignored() {
        let m = IntervalMap::from_intervals(vec![(5u64, 5), (9, 3), (1, 2)]);
        assert_eq!(m.len(), 1);
        let mut m2 = IntervalMap::new();
        m2.insert(7u64, 7);
        assert!(m2.is_empty());
    }

    #[test]
    fn snapshots_are_persistent() {
        let mut m = IntervalMap::from_intervals(vec![(1u64, 5), (10, 20)]);
        let snap = m.clone();
        m.multi_insert(vec![(3, 30), (4, 40)]);
        assert_eq!(snap.len(), 2);
        assert!(!snap.stab(25));
        assert!(m.stab(25));
    }

    #[test]
    fn overlapping_matches_bruteforce() {
        let intervals = workloads::random_intervals(1500, 21, 5_000, 40);
        let m = IntervalMap::from_intervals(intervals.clone());
        let mut dedup = intervals.clone();
        dedup.sort();
        dedup.dedup();
        for q in 0..60u64 {
            let ql = workloads::hash64(q * 2) % 5_000;
            let qr = ql + 1 + workloads::hash64(q * 2 + 1) % 100;
            let want: Vec<(u64, u64)> = dedup
                .iter()
                .copied()
                .filter(|&(l, r)| l < qr && ql < r)
                .collect();
            assert_eq!(m.overlapping(ql, qr), want, "query [{ql},{qr})");
        }
        // degenerate query
        assert!(m.overlapping(10, 10).is_empty());
        assert!(m.overlapping(10, 5).is_empty());
    }

    #[test]
    fn signed_endpoints() {
        let m = IntervalMap::from_intervals(vec![(-10i64, -2), (-5, 5)]);
        assert!(m.stab(-7));
        assert!(m.stab(0));
        assert!(!m.stab(6));
        assert_eq!(m.report_all(-4), vec![(-10, -2), (-5, 5)]);
    }
}

#[cfg(test)]
mod bulk_tests {
    use super::*;

    #[test]
    fn multi_remove_roundtrip() {
        let ivals = workloads::random_intervals(5000, 3, 50_000, 100);
        let mut m = IntervalMap::from_intervals(ivals.clone());
        let n0 = m.len();
        let removed: Vec<(u64, u64)> = ivals.iter().step_by(2).copied().collect();
        m.multi_remove(removed.clone());
        m.check_invariants().unwrap();
        assert!(m.len() < n0);
        // removed intervals are gone; kept intervals still stab
        let kept: Vec<(u64, u64)> = m.to_vec();
        for iv in &removed {
            assert!(!kept.contains(iv));
        }
        // removing unknown intervals is a no-op
        let before = m.len();
        m.multi_remove(vec![(1_000_000, 1_000_001)]);
        assert_eq!(m.len(), before);
    }
}
