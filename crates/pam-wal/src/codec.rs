//! Binary serialization for log and checkpoint payloads.
//!
//! [`Codec`] is the `(encode, decode)` pair a key or value type needs to
//! ride through the WAL and checkpoints. The wire format is compact and
//! deliberately boring: LEB128 varints for unsigned integers, zigzag
//! varints for signed ones, length-prefixed bytes for strings and byte
//! vectors, and field concatenation for tuples. Decoding is
//! allocation-bounded and never trusts a length it has not range-checked
//! against the remaining input, so a corrupt frame fails with a
//! [`CodecError`] instead of a huge allocation or a panic.

use std::fmt;

/// Error produced when decoding malformed bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CodecError {
    /// What went wrong, for humans.
    pub msg: &'static str,
}

impl CodecError {
    pub(crate) fn new(msg: &'static str) -> Self {
        CodecError { msg }
    }
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "codec error: {}", self.msg)
    }
}

impl std::error::Error for CodecError {}

impl From<CodecError> for std::io::Error {
    fn from(e: CodecError) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e)
    }
}

/// A bounds-checked cursor over a byte slice.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over the whole of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Has every byte been consumed?
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Consume exactly `n` bytes.
    ///
    /// # Errors
    ///
    /// Fails if fewer than `n` bytes remain.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::new("unexpected end of input"));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Consume one byte.
    ///
    /// # Errors
    ///
    /// Fails at end of input.
    pub fn byte(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Consume a LEB128 varint.
    ///
    /// # Errors
    ///
    /// Fails on truncated input or an encoding exceeding `u64::MAX`.
    pub fn varint(&mut self) -> Result<u64, CodecError> {
        let mut out = 0u64;
        let mut shift = 0u32;
        loop {
            let b = self.byte()?;
            if shift == 63 && b > 1 {
                return Err(CodecError::new("varint overflows u64"));
            }
            out |= u64::from(b & 0x7f) << shift;
            if b & 0x80 == 0 {
                return Ok(out);
            }
            shift += 7;
        }
    }

    /// Consume a varint and range-check it as a collection length.
    ///
    /// # Errors
    ///
    /// Fails on a malformed varint or a length larger than the
    /// remaining input (an attacker-controlled allocation request).
    pub fn length(&mut self) -> Result<usize, CodecError> {
        let n = self.varint()?;
        if n > self.remaining() as u64 {
            return Err(CodecError::new("length prefix exceeds input"));
        }
        Ok(n as usize)
    }
}

/// Append `v` to `out` as a LEB128 varint.
pub fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        out.push((v as u8) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

#[inline]
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

#[inline]
fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Types that can serialize themselves into WAL / checkpoint payloads.
///
/// Implementations must round-trip: `decode(encode(x)) == x`, consuming
/// exactly the bytes `encode` produced (so values can be concatenated).
pub trait Codec: Sized {
    /// Append the encoding of `self` to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// Decode one value from the reader, consuming exactly its bytes.
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError>;
}

macro_rules! impl_codec_unsigned {
    ($($t:ty),*) => {$(
        impl Codec for $t {
            #[inline]
            fn encode(&self, out: &mut Vec<u8>) {
                put_varint(out, *self as u64);
            }
            #[inline]
            fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
                let v = r.varint()?;
                <$t>::try_from(v).map_err(|_| CodecError::new("integer out of range"))
            }
        }
    )*};
}
impl_codec_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_codec_signed {
    ($($t:ty),*) => {$(
        impl Codec for $t {
            #[inline]
            fn encode(&self, out: &mut Vec<u8>) {
                put_varint(out, zigzag(*self as i64));
            }
            #[inline]
            fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
                let v = unzigzag(r.varint()?);
                <$t>::try_from(v).map_err(|_| CodecError::new("integer out of range"))
            }
        }
    )*};
}
impl_codec_signed!(i8, i16, i32, i64, isize);

impl Codec for u128 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let b = r.take(16)?;
        // lint: allow(panic) take(n) above returned exactly n bytes
        Ok(u128::from_le_bytes(b.try_into().expect("16 bytes")))
    }
}

impl Codec for i128 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let b = r.take(16)?;
        // lint: allow(panic) take(n) above returned exactly n bytes
        Ok(i128::from_le_bytes(b.try_into().expect("16 bytes")))
    }
}

impl Codec for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(*self as u8);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.byte()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(CodecError::new("invalid bool byte")),
        }
    }
}

// Floats in stores are payload, not keys: raw IEEE-754 bits.
impl Codec for f64 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let b = r.take(8)?;
        // lint: allow(panic) take(n) above returned exactly n bytes
        Ok(f64::from_le_bytes(b.try_into().expect("8 bytes")))
    }
}

impl Codec for f32 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let b = r.take(4)?;
        // lint: allow(panic) take(n) above returned exactly n bytes
        Ok(f32::from_le_bytes(b.try_into().expect("4 bytes")))
    }
}

impl Codec for String {
    fn encode(&self, out: &mut Vec<u8>) {
        put_varint(out, self.len() as u64);
        out.extend_from_slice(self.as_bytes());
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let n = r.length()?;
        let bytes = r.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CodecError::new("invalid utf-8 in string"))
    }
}

impl Codec for Vec<u8> {
    fn encode(&self, out: &mut Vec<u8>) {
        put_varint(out, self.len() as u64);
        out.extend_from_slice(self);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let n = r.length()?;
        Ok(r.take(n)?.to_vec())
    }
}

impl Codec for () {
    fn encode(&self, _out: &mut Vec<u8>) {}
    fn decode(_r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(())
    }
}

impl<T: Codec> Codec for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode(out);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.byte()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            _ => Err(CodecError::new("invalid option tag")),
        }
    }
}

macro_rules! impl_codec_tuple {
    ($(($($n:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($n: Codec),+> Codec for ($($n,)+) {
            fn encode(&self, out: &mut Vec<u8>) {
                $(self.$idx.encode(out);)+
            }
            fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
                Ok(($($n::decode(r)?,)+))
            }
        }
    )+};
}
impl_codec_tuple!((A.0), (A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3));

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Codec + PartialEq + std::fmt::Debug>(v: T) {
        let mut buf = Vec::new();
        v.encode(&mut buf);
        let mut r = Reader::new(&buf);
        assert_eq!(T::decode(&mut r).unwrap(), v);
        assert!(r.is_empty(), "decode must consume exactly the encoding");
    }

    #[test]
    fn integer_roundtrips() {
        for v in [0u64, 1, 127, 128, 300, u64::MAX] {
            roundtrip(v);
        }
        for v in [0i64, -1, 1, i64::MIN, i64::MAX] {
            roundtrip(v);
        }
        roundtrip(u128::MAX);
        roundtrip(i128::MIN);
        roundtrip(255u8);
        roundtrip(-128i8);
    }

    #[test]
    fn container_roundtrips() {
        roundtrip(String::from("héllo, wal"));
        roundtrip(vec![0u8, 1, 2, 255]);
        roundtrip((7u64, String::from("k")));
        roundtrip(Some(42u32));
        roundtrip(Option::<u32>::None);
        roundtrip(());
        roundtrip(2.5f64);
    }

    #[test]
    fn truncated_input_is_an_error_not_a_panic() {
        let mut buf = Vec::new();
        String::from("hello").encode(&mut buf);
        for cut in 0..buf.len() {
            let mut r = Reader::new(&buf[..cut]);
            assert!(String::decode(&mut r).is_err());
        }
    }

    #[test]
    fn hostile_length_prefix_is_rejected() {
        // Claims a 2^60-byte string with 2 bytes of payload: must fail
        // fast without trying to allocate.
        let mut buf = Vec::new();
        put_varint(&mut buf, 1 << 60);
        buf.extend_from_slice(b"xy");
        assert!(String::decode(&mut Reader::new(&buf)).is_err());
        assert!(Vec::<u8>::decode(&mut Reader::new(&buf)).is_err());
    }

    #[test]
    fn overlong_varint_is_rejected() {
        let buf = [0xffu8; 11];
        assert!(Reader::new(&buf).varint().is_err());
    }
}
