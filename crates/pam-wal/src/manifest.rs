//! The shard-layout manifest: how a directory of WAL/checkpoint
//! subdirectories is partitioned.
//!
//! A sharded store splits its key space across N independent WAL
//! directories (`shard-0/ .. shard-<N-1>/`). The shard *assignment* of a
//! key is a pure function of the key and N — which makes N part of the
//! on-disk format: reopening a 4-shard directory as 8 shards would route
//! every key to a (mostly) different WAL and silently "lose" the data
//! sitting in the old layout. The manifest pins N (and the layout format
//! version) at creation time so an open with the wrong shard count fails
//! loudly instead.
//!
//! ```text
//! MANIFEST = [ magic "PAMSHRD1" ][ frame: varint(format) ++ varint(shards) ]
//! ```
//!
//! The file is written to a `.tmp` sibling, fsynced, and atomically
//! renamed, like a checkpoint: it either exists wholly or not at all.

use crate::codec::{put_varint, Reader};
use crate::frame::{self, Frame};
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// Magic bytes opening the manifest file.
pub const MANIFEST_MAGIC: &[u8; 8] = b"PAMSHRD1";

/// On-disk layout format version written by this crate.
pub const MANIFEST_FORMAT: u64 = 1;

/// The pinned layout of a sharded store directory.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Manifest {
    /// Layout format version (see [`MANIFEST_FORMAT`]).
    pub format: u64,
    /// Number of hash shards the key space is partitioned into.
    pub shards: u64,
}

fn manifest_path(dir: &Path) -> PathBuf {
    dir.join("MANIFEST")
}

/// The per-shard subdirectory for shard `i` under `dir`.
pub fn shard_dir(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("shard-{shard}"))
}

fn sync_dir(dir: &Path) -> io::Result<()> {
    File::open(dir)?.sync_all()
}

/// Atomically write the manifest for a fresh sharded directory.
pub fn write(dir: &Path, shards: u64) -> io::Result<()> {
    fs::create_dir_all(dir)?;
    let final_path = manifest_path(dir);
    let tmp_path = final_path.with_extension("tmp");
    let mut out = Vec::new();
    out.extend_from_slice(MANIFEST_MAGIC);
    let mut payload = Vec::new();
    put_varint(&mut payload, MANIFEST_FORMAT);
    put_varint(&mut payload, shards);
    frame::put_frame(&mut out, &payload);
    let mut file = OpenOptions::new()
        .create(true)
        .write(true)
        .truncate(true)
        .open(&tmp_path)?;
    file.write_all(&out)?;
    file.sync_all()?;
    drop(file);
    fs::rename(&tmp_path, &final_path)?;
    sync_dir(dir)
}

/// Load the manifest, if one exists. A present-but-invalid manifest is an
/// error, never a silent "no manifest": guessing a layout risks routing
/// keys into the wrong shard's WAL.
pub fn load(dir: &Path) -> io::Result<Option<Manifest>> {
    let path = manifest_path(dir);
    let bad = |msg: &str| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{msg} in manifest {}", path.display()),
        )
    };
    let bytes = match fs::read(&path) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    if bytes.len() < MANIFEST_MAGIC.len() || &bytes[..MANIFEST_MAGIC.len()] != MANIFEST_MAGIC {
        return Err(bad("bad magic"));
    }
    let payload = match frame::next_frame(&bytes[MANIFEST_MAGIC.len()..]) {
        Frame::Ok { payload, .. } => payload,
        _ => return Err(bad("bad frame")),
    };
    let mut r = Reader::new(payload);
    let format = r.varint().map_err(|_| bad("bad format field"))?;
    let shards = r.varint().map_err(|_| bad("bad shard count"))?;
    if !r.is_empty() {
        return Err(bad("trailing bytes"));
    }
    if format != MANIFEST_FORMAT {
        return Err(bad(&format!("unsupported format {format}")));
    }
    if shards == 0 {
        return Err(bad("zero shards"));
    }
    Ok(Some(Manifest { format, shards }))
}

/// Remove a leftover `MANIFEST.tmp` from a crash mid-write.
pub fn clean_temp_file(dir: &Path) -> io::Result<()> {
    match fs::remove_file(manifest_path(dir).with_extension("tmp")) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("pam-manifest-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn roundtrip_and_missing() {
        let dir = tmp_dir("roundtrip");
        assert_eq!(load(&dir).ok(), Some(None), "missing dir: no manifest");
        write(&dir, 4).unwrap();
        assert_eq!(
            load(&dir).unwrap(),
            Some(Manifest {
                format: MANIFEST_FORMAT,
                shards: 4
            })
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_manifest_is_an_error_not_none() {
        let dir = tmp_dir("corrupt");
        write(&dir, 8).unwrap();
        let path = manifest_path(&dir);
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        fs::write(&path, bytes).unwrap();
        let err = load(&dir).expect_err("corrupt manifest must not look absent");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn temp_file_is_cleaned() {
        let dir = tmp_dir("tmpclean");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("MANIFEST.tmp"), b"junk").unwrap();
        clean_temp_file(&dir).unwrap();
        assert_eq!(fs::read_dir(&dir).unwrap().count(), 0);
        clean_temp_file(&dir).unwrap(); // idempotent
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn shard_dir_layout() {
        assert!(shard_dir(Path::new("/x"), 3).ends_with("shard-3"));
    }
}
