//! The shard-layout manifest: how a directory of WAL/checkpoint
//! subdirectories is partitioned, and where the global epoch clock
//! stands.
//!
//! A sharded store splits its key space across N independent WAL
//! directories (`shard-0/ .. shard-<N-1>/`). The shard *assignment* of a
//! key is a pure function of the key and N — which makes N part of the
//! on-disk format: reopening a 4-shard directory as 8 shards would route
//! every key to a (mostly) different WAL and silently "lose" the data
//! sitting in the old layout. The manifest pins N (and the layout format
//! version) at creation time so an open with the wrong shard count fails
//! loudly instead.
//!
//! Since format 2 the manifest also **pins the global epoch clock**: the
//! committed watermark `global_epoch` (every cross-shard batch stamped
//! `<= global_epoch` has a persisted commit/discard decision) and the
//! short list of *discarded* global epochs — batches a crash left logged
//! on some-but-not-all participant shards, voted down at recovery. The
//! watermark is rewritten before any shard's WAL truncation may reclaim
//! a stamped record, which is what keeps the 2PC presence vote sound
//! across restarts (see `pam-store::DurableShardedStore`).
//!
//! ```text
//! MANIFEST = [ magic "PAMSHRD1" ]
//!            [ frame: varint(format) ++ varint(shards)            (v1)
//!                  ++ varint(global_epoch)
//!                  ++ varint(len) ++ len * varint(discarded)      (v2) ]
//! ```
//!
//! The file is written to a `.tmp` sibling, fsynced, and atomically
//! renamed, like a checkpoint: it either exists wholly or not at all.
//! Format-1 manifests (PR 3–4 stores) load as `global_epoch = 0` with an
//! empty discard list — a store from before the clock existed has
//! everything decided by construction.

use crate::codec::{put_varint, Reader};
use crate::frame::{self, Frame};
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// Magic bytes opening the manifest file.
pub const MANIFEST_MAGIC: &[u8; 8] = b"PAMSHRD1";

/// On-disk layout format version written by this crate.
pub const MANIFEST_FORMAT: u64 = 2;

/// The pinned layout (and global-clock state) of a sharded store
/// directory.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Manifest {
    /// Layout format version this file was read as (1 or
    /// [`MANIFEST_FORMAT`]; writes always use [`MANIFEST_FORMAT`]).
    pub format: u64,
    /// Number of hash shards the key space is partitioned into.
    pub shards: u64,
    /// The committed global-epoch watermark: every cross-shard batch
    /// stamped `<= global_epoch` has a persisted decision (committed
    /// unless listed in [`Manifest::discarded`]). `0` for format-1 files.
    pub global_epoch: u64,
    /// Global epochs whose batches were voted down at recovery (logged
    /// on some-but-not-all participants); always `<= global_epoch`.
    /// Pruned once no shard's WAL still holds a record stamped with
    /// them. Empty for format-1 files.
    pub discarded: Vec<u64>,
}

fn manifest_path(dir: &Path) -> PathBuf {
    dir.join("MANIFEST")
}

/// The per-shard subdirectory for shard `i` under `dir`.
pub fn shard_dir(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("shard-{shard}"))
}

fn sync_dir(dir: &Path) -> io::Result<()> {
    File::open(dir)?.sync_all()
}

/// Atomically write the manifest: `shards` pinned at creation,
/// `global_epoch` the committed global-clock watermark, `discarded` the
/// voted-down global epochs (sorted). Rewritten whenever the watermark
/// advances past state a WAL truncation is about to reclaim.
///
/// # Errors
///
/// Propagates filesystem errors from the temp-file write, fsync, or
/// rename.
pub fn write(dir: &Path, shards: u64, global_epoch: u64, discarded: &[u64]) -> io::Result<()> {
    fs::create_dir_all(dir)?;
    let final_path = manifest_path(dir);
    let tmp_path = final_path.with_extension("tmp");
    let mut out = Vec::new();
    out.extend_from_slice(MANIFEST_MAGIC);
    let mut payload = Vec::new();
    put_varint(&mut payload, MANIFEST_FORMAT);
    put_varint(&mut payload, shards);
    put_varint(&mut payload, global_epoch);
    put_varint(&mut payload, discarded.len() as u64);
    for &g in discarded {
        put_varint(&mut payload, g);
    }
    frame::put_frame(&mut out, &payload);
    let mut file = OpenOptions::new()
        .create(true)
        .write(true)
        .truncate(true)
        .open(&tmp_path)?;
    file.write_all(&out)?;
    file.sync_all()?;
    drop(file);
    fs::rename(&tmp_path, &final_path)?;
    sync_dir(dir)
}

/// Load the manifest, if one exists. A present-but-invalid manifest is an
/// error, never a silent "no manifest": guessing a layout risks routing
/// keys into the wrong shard's WAL. Format-1 files (no clock fields)
/// load with `global_epoch = 0` and no discarded epochs.
///
/// # Errors
///
/// `InvalidData` when the file exists but its magic, frame, fields, or
/// format version are invalid; other kinds pass through from the
/// filesystem.
pub fn load(dir: &Path) -> io::Result<Option<Manifest>> {
    let path = manifest_path(dir);
    let bad = |msg: &str| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{msg} in manifest {}", path.display()),
        )
    };
    let bytes = match fs::read(&path) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    if bytes.len() < MANIFEST_MAGIC.len() || &bytes[..MANIFEST_MAGIC.len()] != MANIFEST_MAGIC {
        return Err(bad("bad magic"));
    }
    let payload = match frame::next_frame(&bytes[MANIFEST_MAGIC.len()..]) {
        Frame::Ok { payload, .. } => payload,
        _ => return Err(bad("bad frame")),
    };
    let mut r = Reader::new(payload);
    let format = r.varint().map_err(|_| bad("bad format field"))?;
    if format == 0 || format > MANIFEST_FORMAT {
        return Err(bad(&format!("unsupported format {format}")));
    }
    let shards = r.varint().map_err(|_| bad("bad shard count"))?;
    let (global_epoch, discarded) = if format >= 2 {
        let g = r.varint().map_err(|_| bad("bad global epoch"))?;
        let n = r.varint().map_err(|_| bad("bad discard count"))?;
        let mut d = Vec::with_capacity(n.min(1 << 16) as usize);
        for _ in 0..n {
            d.push(r.varint().map_err(|_| bad("bad discarded epoch"))?);
        }
        (g, d)
    } else {
        (0, Vec::new())
    };
    if !r.is_empty() {
        return Err(bad("trailing bytes"));
    }
    if shards == 0 {
        return Err(bad("zero shards"));
    }
    Ok(Some(Manifest {
        format,
        shards,
        global_epoch,
        discarded,
    }))
}

/// Remove a leftover `MANIFEST.tmp` from a crash mid-write.
///
/// # Errors
///
/// Propagates filesystem errors other than the file being absent.
pub fn clean_temp_file(dir: &Path) -> io::Result<()> {
    match fs::remove_file(manifest_path(dir).with_extension("tmp")) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("pam-manifest-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn roundtrip_and_missing() {
        let dir = tmp_dir("roundtrip");
        assert_eq!(load(&dir).ok(), Some(None), "missing dir: no manifest");
        write(&dir, 4, 17, &[3, 9]).unwrap();
        assert_eq!(
            load(&dir).unwrap(),
            Some(Manifest {
                format: MANIFEST_FORMAT,
                shards: 4,
                global_epoch: 17,
                discarded: vec![3, 9],
            })
        );
        // the watermark rewrite path: same shards, advanced clock
        write(&dir, 4, 21, &[]).unwrap();
        let m = load(&dir).unwrap().unwrap();
        assert_eq!((m.shards, m.global_epoch, m.discarded.len()), (4, 21, 0));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn format_1_manifests_load_with_zero_clock() {
        let dir = tmp_dir("v1");
        fs::create_dir_all(&dir).unwrap();
        // raw format-1 bytes, as PR 3-4 stores wrote them
        let mut out = MANIFEST_MAGIC.to_vec();
        let mut payload = Vec::new();
        put_varint(&mut payload, 1); // format 1
        put_varint(&mut payload, 6); // shards
        frame::put_frame(&mut out, &payload);
        fs::write(manifest_path(&dir), out).unwrap();
        assert_eq!(
            load(&dir).unwrap(),
            Some(Manifest {
                format: 1,
                shards: 6,
                global_epoch: 0,
                discarded: vec![],
            })
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_manifest_is_an_error_not_none() {
        let dir = tmp_dir("corrupt");
        write(&dir, 8, 0, &[]).unwrap();
        let path = manifest_path(&dir);
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        fs::write(&path, bytes).unwrap();
        let err = load(&dir).expect_err("corrupt manifest must not look absent");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn future_format_is_refused() {
        let dir = tmp_dir("future");
        fs::create_dir_all(&dir).unwrap();
        let mut out = MANIFEST_MAGIC.to_vec();
        let mut payload = Vec::new();
        put_varint(&mut payload, MANIFEST_FORMAT + 1);
        put_varint(&mut payload, 2);
        frame::put_frame(&mut out, &payload);
        fs::write(manifest_path(&dir), out).unwrap();
        let err = load(&dir).expect_err("future formats must not be guessed at");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn temp_file_is_cleaned() {
        let dir = tmp_dir("tmpclean");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("MANIFEST.tmp"), b"junk").unwrap();
        clean_temp_file(&dir).unwrap();
        assert_eq!(fs::read_dir(&dir).unwrap().count(), 0);
        clean_temp_file(&dir).unwrap(); // idempotent
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn shard_dir_layout() {
        assert!(shard_dir(Path::new("/x"), 3).ends_with("shard-3"));
    }
}
