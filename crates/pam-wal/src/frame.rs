//! Length + checksum framing for on-disk records.
//!
//! Every WAL record and checkpoint chunk is written as
//!
//! ```text
//! [ payload_len : u32 LE ][ crc32(payload) : u32 LE ][ payload ... ]
//! ```
//!
//! which is what makes crash recovery decidable: a reader scanning a file
//! can classify every position as a whole valid frame, a *torn* frame
//! (the file ends before the announced payload does — the signature of a
//! crash mid-append), or a *corrupt* frame (all bytes present, checksum
//! disagrees). The CRC is the standard IEEE CRC-32 (the zlib/Ethernet
//! polynomial), implemented here table-driven because the workspace is
//! offline and vendors no checksum crate.

use std::io;

/// Frame header size: `u32` length + `u32` CRC.
pub const HEADER_LEN: usize = 8;

/// Upper bound on a single payload. Nothing legitimate approaches this
/// (epochs are capped by the store's `max_batch`); its job is to make a
/// garbage length field land in `Corrupt` instead of a 4 GiB read.
pub const MAX_PAYLOAD: usize = 1 << 30;

const fn make_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xedb8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = make_crc_table();

/// IEEE CRC-32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xffff_ffffu32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xff) as usize] ^ (c >> 8);
    }
    !c
}

/// Append one frame around `payload` to `out`; returns the frame's size.
pub fn put_frame(out: &mut Vec<u8>, payload: &[u8]) -> usize {
    debug_assert!(payload.len() <= MAX_PAYLOAD);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    HEADER_LEN + payload.len()
}

/// One step of a frame scan over `buf` (see [`next_frame`]).
#[derive(Debug, PartialEq, Eq)]
pub enum Frame<'a> {
    /// A whole, checksum-valid frame: its payload and total on-disk size.
    Ok {
        /// The verified payload bytes.
        payload: &'a [u8],
        /// Header + payload bytes consumed from the input.
        consumed: usize,
    },
    /// The buffer ends mid-frame — a torn tail from a crash mid-append.
    Torn,
    /// All announced bytes are present but the checksum (or the length
    /// field itself) is invalid.
    Corrupt,
}

/// Classify the frame starting at the beginning of `buf`.
///
/// An empty `buf` is *not* a frame state — callers check for end-of-input
/// first.
pub fn next_frame(buf: &[u8]) -> Frame<'_> {
    if buf.len() < HEADER_LEN {
        return Frame::Torn;
    }
    let len = le32(buf, 0) as usize;
    if len > MAX_PAYLOAD {
        return Frame::Corrupt;
    }
    let want = le32(buf, 4);
    let Some(payload) = buf.get(HEADER_LEN..HEADER_LEN + len) else {
        return Frame::Torn;
    };
    if crc32(payload) != want {
        return Frame::Corrupt;
    }
    Frame::Ok {
        payload,
        consumed: HEADER_LEN + len,
    }
}

/// Infallible little-endian `u32` at `buf[at..at + 4]` (caller
/// guarantees the bounds, checked above in every use).
fn le32(buf: &[u8], at: usize) -> u32 {
    u32::from_le_bytes([buf[at], buf[at + 1], buf[at + 2], buf[at + 3]])
}

/// Fill `buf` from `r`, returning how many bytes were available. Unlike
/// `read_exact`, a short read is reported as a count — the caller can
/// tell a clean end-of-file (0 bytes) from a torn tail (some bytes) —
/// and genuine I/O errors pass through untouched.
fn read_up_to(r: &mut impl io::Read, buf: &mut [u8]) -> io::Result<usize> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(filled)
}

/// Stream one frame out of `r`, enforcing `cap` on the announced payload
/// length **before allocating** — the reader for input that may be
/// hostile (network peers) or oversized (damaged files). `Ok(None)` at a
/// clean end-of-input at a frame boundary.
///
/// This is the reader every frame consumer outside pam-wal should use
/// (`pam-lint` flags direct [`read_frame`] calls elsewhere); pick the
/// cap to match what the peer is allowed to send, e.g. pam-serve's
/// 16 MiB wire limit vs [`MAX_PAYLOAD`] for trusted local files.
///
/// # Errors
///
/// `InvalidData` for a torn header ("torn frame header"), over-cap
/// length ("frame length over limit"), truncated payload ("torn frame"),
/// or CRC mismatch ("bad frame crc"). Real I/O errors (e.g. `EIO`) keep
/// their kind — they mean a failing device, not a corrupt file, and
/// callers with fallback-on-corruption logic (checkpoint loading) must
/// be able to tell the two apart.
pub fn read_frame_capped(r: &mut impl io::Read, cap: usize) -> io::Result<Option<Vec<u8>>> {
    let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg);
    let mut header = [0u8; HEADER_LEN];
    match read_up_to(r, &mut header)? {
        0 => return Ok(None),
        n if n < header.len() => return Err(bad("torn frame header")),
        _ => {}
    }
    let len = le32(&header, 0) as usize;
    if len > cap {
        return Err(bad("frame length over limit"));
    }
    let want = le32(&header, 4);
    let mut payload = vec![0u8; len];
    if read_up_to(r, &mut payload)? < len {
        return Err(bad("torn frame"));
    }
    if crc32(&payload) != want {
        return Err(bad("bad frame crc"));
    }
    Ok(Some(payload))
}

/// Stream one frame out of `r` (the incremental sibling of
/// [`next_frame`], same `[len | crc | payload]` validation), trusting
/// the length field up to [`MAX_PAYLOAD`]. **WAL-internal**: anything
/// reading frames from a network peer or a file of unknown provenance
/// must call [`read_frame_capped`] with an appropriate cap instead —
/// `pam-lint` enforces this outside pam-wal.
///
/// # Errors
///
/// As for [`read_frame_capped`] with a [`MAX_PAYLOAD`] cap.
pub fn read_frame(r: &mut impl io::Read) -> io::Result<Option<Vec<u8>>> {
    read_frame_capped(r, MAX_PAYLOAD)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
    }

    #[test]
    fn frame_roundtrip() {
        let mut buf = Vec::new();
        let n = put_frame(&mut buf, b"hello");
        assert_eq!(n, buf.len());
        match next_frame(&buf) {
            Frame::Ok { payload, consumed } => {
                assert_eq!(payload, b"hello");
                assert_eq!(consumed, n);
            }
            other => panic!("expected Ok, got {other:?}"),
        }
    }

    #[test]
    fn capped_reader_rejects_before_allocating() {
        let mut buf = Vec::new();
        put_frame(&mut buf, &[7u8; 100]);
        // under the cap: round-trips
        let got = read_frame_capped(&mut &buf[..], 100).expect("frame ok");
        assert_eq!(got.as_deref(), Some(&[7u8; 100][..]));
        // over the cap: rejected on the header, payload never read
        let err = read_frame_capped(&mut &buf[..], 99).expect_err("over cap");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("frame length over limit"));
        // clean EOF at a frame boundary
        assert!(read_frame_capped(&mut &[][..], 99).expect("eof").is_none());
        // uncapped alias trusts up to MAX_PAYLOAD
        let got = read_frame(&mut &buf[..]).expect("frame ok");
        assert_eq!(got.map(|p| p.len()), Some(100));
    }

    #[test]
    fn torn_and_corrupt_are_distinguished() {
        let mut buf = Vec::new();
        put_frame(&mut buf, b"payload bytes");
        // every strict prefix is torn
        for cut in 0..buf.len() {
            assert_eq!(next_frame(&buf[..cut]), Frame::Torn, "cut at {cut}");
        }
        // a flipped payload bit is corrupt
        let mut bad = buf.clone();
        *bad.last_mut().unwrap() ^= 1;
        assert_eq!(next_frame(&bad), Frame::Corrupt);
        // an absurd length field is corrupt, not a huge read
        let mut hostile = ((MAX_PAYLOAD + 1) as u32).to_le_bytes().to_vec();
        hostile.extend_from_slice(&[0u8; 12]);
        assert_eq!(next_frame(&hostile), Frame::Corrupt);
    }
}
