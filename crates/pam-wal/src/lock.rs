//! Single-writer directory lock.
//!
//! A WAL directory has exactly one legitimate writer; a second
//! `DurableStore::open` on the same directory (double-started service,
//! operator mistake) would append interleaved frames through an
//! independent file handle and corrupt the log. [`DirLock`] makes the
//! second open fail fast instead.
//!
//! The lock is a `LOCK.pid` file created with `O_EXCL` and holding the
//! owner's pid. Staleness (the owner crashed without unlinking) is
//! detected by probing `/proc/<pid>` — crash recovery must not require
//! manual lock removal. The probe is Linux-specific; on systems without
//! `/proc` every existing lock looks stale, degrading to advisory-only.
//! Pid recycling can cause a spurious refusal (never a spurious grant of
//! a *live* lock to a second caller racing the same stale file — the
//! `create_new` retry is atomic).

use std::fs::{self, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// Holds the exclusive write lock on a WAL directory; dropping releases
/// it (unlinks the lock file).
#[derive(Debug)]
pub struct DirLock {
    path: PathBuf,
}

fn lock_path(dir: &Path) -> PathBuf {
    dir.join("LOCK.pid")
}

fn owner_alive(pid: u32) -> bool {
    Path::new("/proc").exists() && Path::new(&format!("/proc/{pid}")).exists()
}

impl DirLock {
    /// Take the lock, failing with `WouldBlock` if a live process holds
    /// it. A lock left behind by a dead process is broken and re-taken.
    ///
    /// # Errors
    ///
    /// `WouldBlock` when another live process owns the directory;
    /// filesystem errors pass through.
    pub fn acquire(dir: impl AsRef<Path>) -> io::Result<DirLock> {
        let dir = dir.as_ref();
        fs::create_dir_all(dir)?;
        let path = lock_path(dir);
        // two attempts: the second runs after breaking a stale lock
        for attempt in 0..2 {
            match OpenOptions::new().write(true).create_new(true).open(&path) {
                Ok(mut f) => {
                    write!(f, "{}", std::process::id())?;
                    f.sync_all()?;
                    return Ok(DirLock { path });
                }
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                    let owner: Option<u32> = fs::read_to_string(&path)
                        .ok()
                        .and_then(|s| s.trim().parse().ok());
                    match owner {
                        Some(pid) if owner_alive(pid) => {
                            return Err(io::Error::new(
                                io::ErrorKind::WouldBlock,
                                format!(
                                    "WAL directory {} is locked by live process {pid}",
                                    dir.display()
                                ),
                            ));
                        }
                        _ if attempt == 0 => {
                            // dead owner (or unreadable garbage): break it
                            let _ = fs::remove_file(&path);
                        }
                        _ => {
                            return Err(io::Error::new(
                                io::ErrorKind::WouldBlock,
                                format!("WAL directory {} lock contention", dir.display()),
                            ));
                        }
                    }
                }
                Err(e) => return Err(e),
            }
        }
        unreachable!("both lock attempts returned")
    }
}

impl Drop for DirLock {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("pam-lock-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn second_acquire_fails_while_held_then_succeeds_after_drop() {
        let dir = tmp_dir("exclusive");
        let lock = DirLock::acquire(&dir).unwrap();
        let err = DirLock::acquire(&dir).expect_err("held lock must refuse");
        assert_eq!(err.kind(), io::ErrorKind::WouldBlock);
        drop(lock);
        let _relock = DirLock::acquire(&dir).expect("released lock is free");
        drop(_relock);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_lock_from_dead_pid_is_broken() {
        let dir = tmp_dir("stale");
        fs::create_dir_all(&dir).unwrap();
        // pid 0 is the idle task: never a userspace /proc entry
        fs::write(lock_path(&dir), "0").unwrap();
        let _lock = DirLock::acquire(&dir).expect("stale lock must be broken");
        drop(_lock);
        // garbage contents are also stale
        fs::write(lock_path(&dir), "not-a-pid").unwrap();
        let _lock = DirLock::acquire(&dir).expect("garbage lock must be broken");
        fs::remove_dir_all(&dir).unwrap();
    }
}
